#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace mocos::runtime {

/// Fixed-size worker pool: `threads` OS threads pulling tasks off one queue.
///
/// The pool is a dumb executor on purpose — determinism lives one level up.
/// Callers index their work (task i writes slot i, draws from RNG stream i)
/// so results are independent of which worker runs what and in which order;
/// the pool only provides the concurrency.
class ThreadPool {
 public:
  /// Spawns `threads` workers. `threads == 0` uses the hardware concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: outstanding tasks still run, but new submissions are
  /// rejected; joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. The task must not throw out of the pool — wrap work in
  /// a TaskGroup (which captures exceptions per task) or catch internally.
  void submit(std::function<void()> task) MOCOS_EXCLUDES(mu_);

  /// Tasks queued but not yet picked up by a worker. Advisory only — the
  /// value is stale the moment the lock drops; admission control in
  /// mocos_serve keeps its own authoritative in-flight count.
  [[nodiscard]] std::size_t pending() const MOCOS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return queue_.size();
  }

 private:
  void worker_loop() MOCOS_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  mutable util::Mutex mu_;
  std::deque<std::function<void()>> queue_ MOCOS_GUARDED_BY(mu_);
  util::CondVar cv_;
  bool stopping_ MOCOS_GUARDED_BY(mu_) = false;
};

/// Tracks a batch of tasks submitted to a pool and waits for all of them.
///
/// Exceptions thrown by tasks are captured per submission index; `wait()`
/// rethrows the one with the lowest index, so the propagated error is the
/// same no matter how the scheduler interleaved the tasks.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Waits (and swallows nothing: terminates if a captured exception was
  /// never observed via wait()). Call wait() explicitly in normal flow.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `task` as the next indexed member of the group.
  void run(std::function<void()> task) MOCOS_EXCLUDES(mu_);

  /// Blocks until every submitted task finished; rethrows the
  /// lowest-submission-index captured exception, if any.
  void wait() MOCOS_EXCLUDES(mu_);

 private:
  ThreadPool& pool_;
  util::Mutex mu_;
  util::CondVar done_cv_;
  std::size_t submitted_ MOCOS_GUARDED_BY(mu_) = 0;
  std::size_t finished_ MOCOS_GUARDED_BY(mu_) = 0;
  bool waited_ MOCOS_GUARDED_BY(mu_) = false;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_
      MOCOS_GUARDED_BY(mu_);
};

}  // namespace mocos::runtime
