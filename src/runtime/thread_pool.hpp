#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mocos::runtime {

/// Fixed-size worker pool: `threads` OS threads pulling tasks off one queue.
///
/// The pool is a dumb executor on purpose — determinism lives one level up.
/// Callers index their work (task i writes slot i, draws from RNG stream i)
/// so results are independent of which worker runs what and in which order;
/// the pool only provides the concurrency.
class ThreadPool {
 public:
  /// Spawns `threads` workers. `threads == 0` uses the hardware concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: outstanding tasks still run, but new submissions are
  /// rejected; joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. The task must not throw out of the pool — wrap work in
  /// a TaskGroup (which captures exceptions per task) or catch internally.
  void submit(std::function<void()> task);

  /// Tasks queued but not yet picked up by a worker. Advisory only — the
  /// value is stale the moment the lock drops; admission control in
  /// mocos_serve keeps its own authoritative in-flight count.
  [[nodiscard]] std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Tracks a batch of tasks submitted to a pool and waits for all of them.
///
/// Exceptions thrown by tasks are captured per submission index; `wait()`
/// rethrows the one with the lowest index, so the propagated error is the
/// same no matter how the scheduler interleaved the tasks.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Waits (and swallows nothing: terminates if a captured exception was
  /// never observed via wait()). Call wait() explicitly in normal flow.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `task` as the next indexed member of the group.
  void run(std::function<void()> task);

  /// Blocks until every submitted task finished; rethrows the
  /// lowest-submission-index captured exception, if any.
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::size_t submitted_ = 0;
  std::size_t finished_ = 0;
  bool waited_ = false;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
};

}  // namespace mocos::runtime
