#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

#include "src/runtime/thread_pool.hpp"

namespace mocos::runtime {

/// Execution policy threaded through the library's fan-out entry points
/// (replicated simulation, multi-start descent, team best response, batch
/// serving).
///
/// Determinism contract: for a fixed root seed, every result produced
/// through an ExecutionContext is bit-identical for any `jobs` value,
/// including `jobs = 1`. Parallel call sites must (a) derive per-task RNGs
/// by task index (`util::Rng::stream`), never by scheduling order, (b) write
/// results into index-addressed slots, and (c) reduce sequentially after the
/// barrier.
///
/// A parallel context owns its fixed-size pool from construction; copies
/// share it, so one pool serves a whole batch of scenarios.
class ExecutionContext {
 public:
  /// Serial context: `jobs = 1`, no pool is ever created.
  ExecutionContext() = default;

  /// `jobs = 0` means "use the hardware concurrency". A pool is spawned
  /// immediately when the resolved count exceeds 1.
  explicit ExecutionContext(std::size_t jobs, std::uint64_t root_seed = 0);

  std::size_t jobs() const { return jobs_; }
  std::uint64_t root_seed() const { return root_seed_; }

  /// Worker count after resolving `jobs = 0`.
  std::size_t effective_jobs() const {
    if (jobs_ != 0) return jobs_;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  bool serial() const { return pool_ == nullptr; }

  /// The shared worker pool. Must not be called on a serial context.
  ThreadPool& pool() const;

 private:
  std::size_t jobs_ = 1;
  std::uint64_t root_seed_ = 0;
  std::shared_ptr<ThreadPool> pool_;
};

/// Runs `fn(i)` for i in [0, n). Serial contexts (and n <= 1) loop inline;
/// otherwise the iterations run as indexed tasks on the context's pool with
/// a full barrier. Exceptions propagate deterministically (lowest index).
template <typename Fn>
void parallel_for(const ExecutionContext& ctx, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  if (n == 1 || ctx.serial()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskGroup group(ctx.pool());
  for (std::size_t i = 0; i < n; ++i) {
    group.run([&fn, i] { fn(i); });
  }
  group.wait();
}

}  // namespace mocos::runtime
