#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/runtime/thread_pool.hpp"

namespace mocos::runtime {

/// Execution policy threaded through the library's fan-out entry points
/// (replicated simulation, multi-start descent, team best response, batch
/// serving).
///
/// Determinism contract: for a fixed root seed, every result produced
/// through an ExecutionContext is bit-identical for any `jobs` value,
/// including `jobs = 1`. Parallel call sites must (a) derive per-task RNGs
/// by task index (`util::Rng::stream`), never by scheduling order, (b) write
/// results into index-addressed slots, and (c) reduce sequentially after the
/// barrier.
///
/// A parallel context owns its fixed-size pool from construction; copies
/// share it, so one pool serves a whole batch of scenarios.
class ExecutionContext {
 public:
  /// Serial context: `jobs = 1`, no pool is ever created.
  ExecutionContext() = default;

  /// `jobs = 0` means "use the hardware concurrency". A pool is spawned
  /// immediately when the resolved count exceeds 1.
  explicit ExecutionContext(std::size_t jobs, std::uint64_t root_seed = 0);

  std::size_t jobs() const { return jobs_; }
  std::uint64_t root_seed() const { return root_seed_; }

  /// Worker count after resolving `jobs = 0`.
  std::size_t effective_jobs() const {
    if (jobs_ != 0) return jobs_;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  bool serial() const { return pool_ == nullptr; }

  /// The shared worker pool. Must not be called on a serial context.
  ThreadPool& pool() const;

 private:
  std::size_t jobs_ = 1;
  std::uint64_t root_seed_ = 0;
  std::shared_ptr<ThreadPool> pool_;
};

/// Runs `fn(i)` for i in [0, n). Serial contexts (and n <= 1) loop inline;
/// otherwise the iterations run as indexed tasks on the context's pool with
/// a full barrier. Exceptions propagate deterministically (lowest index).
///
/// Metrics sharding: when a metrics registry is installed
/// (obs::current_metrics() != nullptr), every task index gets its own shard
/// registry — in the serial path too, so the arithmetic association of
/// gauge/histogram folds is identical for any --jobs value — and the shards
/// merge into the parent sequentially in index order after the barrier.
/// That is what makes metric values bit-identical across job counts.
template <typename Fn>
void parallel_for(const ExecutionContext& ctx, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  obs::MetricsRegistry* parent = obs::current_metrics();
  if (parent != nullptr) {
    // Counted identically in both paths below, so these are jobs-invariant.
    parent->counter("runtime.parallel_for.calls").add(1);
    parent->counter("runtime.parallel_for.tasks").add(n);
  }
  if (n == 1 || ctx.serial()) {
    if (parent == nullptr) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::vector<std::unique_ptr<obs::MetricsRegistry>> shards(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards[i] = std::make_unique<obs::MetricsRegistry>();
      obs::ScopedMetrics scope(shards[i].get());
      fn(i);
    }
    for (const auto& shard : shards) parent->merge(shard->snapshot());
    return;
  }
  TaskGroup group(ctx.pool());
  if (parent == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      group.run([&fn, i] { fn(i); });
    }
    group.wait();
    return;
  }
  std::vector<std::unique_ptr<obs::MetricsRegistry>> shards(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i] = std::make_unique<obs::MetricsRegistry>();
    group.run([&fn, i, shard = shards[i].get()] {
      obs::ScopedMetrics scope(shard);
      fn(i);
    });
  }
  group.wait();
  for (const auto& shard : shards) parent->merge(shard->snapshot());
}

}  // namespace mocos::runtime
