#include "src/runtime/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/obs/trace.hpp"

namespace mocos::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool::submit: empty task");
  {
    util::MutexLock lock(mu_);
    if (stopping_)
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

TaskGroup::~TaskGroup() {
  // A group destroyed without wait() must still not leave tasks running with
  // dangling captures; block here. Exceptions captured but never observed
  // are dropped (destructors must not throw) — call wait() in normal flow.
  util::MutexLock lock(mu_);
  while (finished_ != submitted_) done_cv_.wait(mu_);
}

void TaskGroup::run(std::function<void()> task) {
  std::size_t index;
  {
    util::MutexLock lock(mu_);
    if (waited_)
      throw std::runtime_error("TaskGroup::run: group already waited on");
    index = submitted_++;
  }
  pool_.submit([this, index, task = std::move(task)] {
    std::exception_ptr error;
    try {
      // Span timing only — no metric counters here: TaskGroups never exist
      // at --jobs 1, so any metric emitted from this wrapper would break
      // jobs-invariance. Wall-time belongs to traces alone.
      if (obs::trace_active()) {
        obs::ScopedSpan span(
            "runtime.task", "runtime",
            obs::TraceArgs().num("index", static_cast<double>(index)));
        task();
      } else {
        task();
      }
    } catch (...) {
      error = std::current_exception();
    }
    {
      util::MutexLock lock(mu_);
      if (error) errors_.emplace_back(index, error);
      ++finished_;
    }
    done_cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::exception_ptr error;
  {
    util::MutexLock lock(mu_);
    while (finished_ != submitted_) done_cv_.wait(mu_);
    waited_ = true;
    if (!errors_.empty()) {
      // Deterministic propagation: the lowest submission index wins,
      // regardless of the order in which workers hit their exceptions.
      auto first = std::min_element(
          errors_.begin(), errors_.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      error = first->second;
      errors_.clear();
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace mocos::runtime
