#include "src/runtime/execution_context.hpp"

#include <stdexcept>

namespace mocos::runtime {

ExecutionContext::ExecutionContext(std::size_t jobs, std::uint64_t root_seed)
    : jobs_(jobs), root_seed_(root_seed) {
  if (effective_jobs() > 1)
    pool_ = std::make_shared<ThreadPool>(effective_jobs());
}

ThreadPool& ExecutionContext::pool() const {
  if (!pool_)
    throw std::logic_error("ExecutionContext::pool: serial context");
  return *pool_;
}

}  // namespace mocos::runtime
