#include "src/cost/minimax_exposure_term.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/cost/exposure_term.hpp"

namespace mocos::cost {

MinimaxExposureTerm::MinimaxExposureTerm(double weight, double beta)
    : weight_(weight), beta_(beta) {
  if (!(weight_ > 0.0))
    throw std::invalid_argument("MinimaxExposureTerm: weight must be > 0");
  if (!(beta_ > 0.0))
    throw std::invalid_argument("MinimaxExposureTerm: beta must be > 0");
}

double MinimaxExposureTerm::smooth_max(
    const markov::ChainAnalysis& chain) const {
  const linalg::Vector e = ExposureTerm::compute_mean_exposures(chain);
  // Max-shifted log-sum-exp: every exponent is <= 0, so no overflow for any
  // β, and the shift cancels exactly in the log.
  const double m = *std::max_element(e.begin(), e.end());
  double acc = 0.0;
  for (std::size_t i = 0; i < e.size(); ++i)
    acc += std::exp(beta_ * (e[i] - m));
  return m + std::log(acc) / beta_;
}

linalg::Vector MinimaxExposureTerm::softmax_weights(
    const markov::ChainAnalysis& chain) const {
  const linalg::Vector e = ExposureTerm::compute_mean_exposures(chain);
  const double m = *std::max_element(e.begin(), e.end());
  linalg::Vector sigma(e.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < e.size(); ++i) {
    sigma[i] = std::exp(beta_ * (e[i] - m));
    acc += sigma[i];
  }
  for (std::size_t i = 0; i < e.size(); ++i) sigma[i] /= acc;
  return sigma;
}

double MinimaxExposureTerm::value(const markov::ChainAnalysis& chain) const {
  return weight_ * smooth_max(chain);
}

void MinimaxExposureTerm::accumulate_partials(
    const markov::ChainAnalysis& chain, Partials& out) const {
  // ∂U/∂Ē_i = weight·σ_i; the Ē_i → (π, Z, P) chain is shared with the
  // quadratic exposure term.
  linalg::Vector g = softmax_weights(chain);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= weight_;
  ExposureTerm::accumulate_weighted_exposure_partials(chain, g, out);
}

}  // namespace mocos::cost
