#pragma once

#include <vector>

#include "src/markov/fundamental.hpp"
#include "src/sensing/coverage_tensors.hpp"

namespace mocos::cost {

/// The scalar performance metrics the paper reports (§VI):
///
///   ΔC = Σ_i [Σ_{j,k} π_j p_jk (T_jk,i − Φ_i T_jk)]²   (Eq. 12)
///   Ē  = sqrt(Σ_i Ē_i²)                                 (Eq. 13)
///   U  = ½ α ΔC + ½ β Ē²                                (Eq. 14)
///
/// plus the long-run per-PoI shares C̄_i (Eq. 2) and exposures Ē_i (Eq. 3)
/// reported in Tables I/II.
struct Metrics {
  double delta_c = 0.0;          // Eq. 12
  double e_bar = 0.0;            // Eq. 13
  std::vector<double> c_share;   // C̄_i, Eq. 2
  std::vector<double> exposure;  // Ē_i, Eq. 3

  /// Eq. 14 for scalar weights α, β.
  double cost(double alpha, double beta) const {
    return 0.5 * alpha * delta_c + 0.5 * beta * e_bar * e_bar;
  }
};

Metrics compute_metrics(const markov::ChainAnalysis& chain,
                        const sensing::CoverageTensors& tensors,
                        const std::vector<double>& targets);

/// Long-run coverage shares C̄_i (Eq. 2) alone.
std::vector<double> coverage_shares(const markov::ChainAnalysis& chain,
                                    const sensing::CoverageTensors& tensors);

}  // namespace mocos::cost
