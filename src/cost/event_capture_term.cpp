#include "src/cost/event_capture_term.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mocos::cost {

namespace {
// Residual hitting times collapse toward zero when a PoI is visited almost
// every transition; the floor keeps the exp() argument finite. When it
// engages the capture probability saturates at 1 and the partials are
// treated as zero (the true derivative through the clamp).
constexpr double kMinWait = 1e-9;
// π_i and 1 − π_i both appear in denominators; ergodic chains keep them in
// (0, 1) but line-search probes can step arbitrarily close to the boundary.
constexpr double kMinMass = 1e-12;
}  // namespace

EventCaptureTerm::EventCaptureTerm(std::vector<double> rates, double duration,
                                   double weight)
    : rates_(std::move(rates)), duration_(duration), weight_(weight),
      rate_sum_(0.0) {
  if (rates_.empty())
    throw std::invalid_argument("EventCaptureTerm: empty rates");
  for (double r : rates_) {
    if (!(r >= 0.0))
      throw std::invalid_argument("EventCaptureTerm: negative rate");
    rate_sum_ += r;
  }
  if (rate_sum_ <= 0.0)
    throw std::invalid_argument("EventCaptureTerm: all rates zero");
  if (!(duration_ > 0.0))
    throw std::invalid_argument("EventCaptureTerm: duration must be > 0");
  if (!(weight_ > 0.0))
    throw std::invalid_argument("EventCaptureTerm: weight must be > 0");
}

double EventCaptureTerm::mean_hitting_from_stationarity(
    const markov::ChainAnalysis& chain, std::size_t i) {
  const double pi = std::max(chain.pi[i], kMinMass);
  return chain.z(i, i) / pi - 1.0;
}

linalg::Vector EventCaptureTerm::per_poi_capture(
    const markov::ChainAnalysis& chain) const {
  const std::size_t n = chain.p.size();
  if (n != rates_.size())
    throw std::invalid_argument("EventCaptureTerm: chain size mismatch");
  linalg::Vector f(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double pi = std::max(chain.pi[i], kMinMass);
    const double q = std::max(1.0 - pi, kMinMass);
    const double w =
        std::max(mean_hitting_from_stationarity(chain, i) / q, kMinWait);
    f[i] = pi + q * (1.0 - std::exp(-duration_ / w));
  }
  return f;
}

double EventCaptureTerm::capture_fraction(
    const markov::ChainAnalysis& chain) const {
  const linalg::Vector f = per_poi_capture(chain);
  double acc = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) acc += rates_[i] * f[i];
  return acc / rate_sum_;
}

double EventCaptureTerm::value(const markov::ChainAnalysis& chain) const {
  return weight_ * (1.0 - capture_fraction(chain));
}

void EventCaptureTerm::accumulate_partials(const markov::ChainAnalysis& chain,
                                           Partials& out) const {
  const std::size_t n = chain.p.size();
  if (n != rates_.size())
    throw std::invalid_argument("EventCaptureTerm: chain size mismatch");
  // U = weight·(1 − Σ_i λ_i F_i / Λ): each PoI touches only π_i and z_ii.
  // Writing q = 1 − π, w = (z_ii − π)/(π q) and g = 1 − e^{−d/w}:
  //   ∂F/∂z_ii = q · g'(w) / (π q) = g'(w)/π,
  //   ∂F/∂π    = 1 − g + q · g'(w) · ∂w/∂π,
  //   ∂w/∂π    = (−(π q) − (z_ii − π)(1 − 2π)) / (π q)²,
  //   g'(w)    = −e^{−d/w} · d / w².
  for (std::size_t i = 0; i < n; ++i) {
    const double lambda = rates_[i];
    // Exact on purpose: rate == 0 means no event stream at this PoI by
    // config contract, and every partial below is scaled by λ_i.
    // mocos-lint: allow(float-eq)
    if (lambda == 0.0) continue;
    const double scale = -weight_ * lambda / rate_sum_;
    const double pi = std::max(chain.pi[i], kMinMass);
    const double q = std::max(1.0 - pi, kMinMass);
    const double piq = pi * q;
    const double w_raw = (chain.z(i, i) - pi) / piq;
    const double w = std::max(w_raw, kMinWait);
    const double g = 1.0 - std::exp(-duration_ / w);
    double df_dz = 0.0;
    double df_dpi = 1.0 - g;
    if (w_raw > kMinWait) {
      const double gprime = -std::exp(-duration_ / w) * duration_ / (w * w);
      const double dw_dpi =
          (-piq - (chain.z(i, i) - pi) * (1.0 - 2.0 * pi)) / (piq * piq);
      df_dz = gprime / pi;
      df_dpi += q * gprime * dw_dpi;
    }
    out.du_dz(i, i) += scale * df_dz;
    out.du_dpi[i] += scale * df_dpi;
  }
}

}  // namespace mocos::cost
