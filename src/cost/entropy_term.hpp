#pragma once

#include "src/cost/cost_term.hpp"

namespace mocos::cost {

/// Entropy objective (§VII "Entropy of Markov chain"): contributes
///
///   U_H = −w H,   H = −Σ_i π_i Σ_j p_ij ln p_ij,
///
/// so that minimizing the composite cost maximizes the schedule's entropy
/// rate with weight w — the paper's "U − εH" construction that makes the
/// patrol unpredictable to smart adversaries.
class EntropyTerm final : public CostTerm {
 public:
  explicit EntropyTerm(double weight);

  std::string name() const override { return "entropy"; }
  double value(const markov::ChainAnalysis& chain) const override;
  void accumulate_partials(const markov::ChainAnalysis& chain,
                           Partials& out) const override;

 private:
  double weight_;
};

}  // namespace mocos::cost
