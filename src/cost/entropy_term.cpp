#include "src/cost/entropy_term.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/markov/entropy.hpp"

namespace mocos::cost {

namespace {
// ln clamp: the barrier keeps p_ij > 0, but defensive clamping keeps any
// boundary probe finite instead of NaN.
constexpr double kMinProb = 1e-300;
}  // namespace

EntropyTerm::EntropyTerm(double weight) : weight_(weight) {
  if (weight_ < 0.0) throw std::invalid_argument("EntropyTerm: negative w");
}

double EntropyTerm::value(const markov::ChainAnalysis& chain) const {
  return -weight_ * markov::entropy_rate(chain.p.matrix(), chain.pi);
}

void EntropyTerm::accumulate_partials(const markov::ChainAnalysis& chain,
                                      Partials& out) const {
  // Exact on purpose: weight == 0 is the "term disabled" config contract.
  // mocos-lint: allow(float-eq)
  if (weight_ == 0.0) return;
  const std::size_t n = chain.p.size();
  // U_H = -w H:
  //   ∂U_H/∂π_i  = w Σ_j p_ij ln p_ij
  //   ∂U_H/∂p_ij = w π_i (ln p_ij + 1)
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double p = std::max(chain.p(i, j), kMinProb);
      const double lp = std::log(p);
      row += chain.p(i, j) * lp;
      out.du_dp(i, j) += weight_ * chain.pi[i] * (lp + 1.0);
    }
    out.du_dpi[i] += weight_ * row;
  }
}

}  // namespace mocos::cost
