#pragma once

#include "src/cost/cost_term.hpp"

namespace mocos::cost {

/// Penalization (barrier) terms of Eq. 9 keeping every p_ij strictly inside
/// (0, 1):
///
///   + Σ_ij −(1/ε) ln(p_ij)   (ε − p_ij)²     for p_ij ≤ ε
///   + Σ_ij −(1/ε) ln(1−p_ij) (1 − ε − p_ij)² for p_ij ≥ 1 − ε
///
/// (the paper writes both with sgn(·) gates; each piece is zero at the gate
/// boundary and diverges to +∞ as p_ij → 0 or 1, which — combined with the
/// line-search step bounds — preserves ergodicity for the whole run).
class BarrierTerm final : public CostTerm {
 public:
  /// `epsilon` is the paper's ε (0 < ε < 1/2); experiments use 1e-4.
  explicit BarrierTerm(double epsilon);

  std::string name() const override { return "barrier"; }
  double value(const markov::ChainAnalysis& chain) const override;
  void accumulate_partials(const markov::ChainAnalysis& chain,
                           Partials& out) const override;

  double epsilon() const { return epsilon_; }

  /// Scalar barrier for a single probability — exposed for unit tests.
  double entry_value(double p) const;
  double entry_derivative(double p) const;

 private:
  double epsilon_;
};

}  // namespace mocos::cost
