#include "src/cost/projection.hpp"

#include <cmath>

namespace mocos::cost {

linalg::Matrix project_row_sum_zero(const linalg::Matrix& grad) {
  linalg::Matrix out(grad.rows(), grad.cols());
  for (std::size_t i = 0; i < grad.rows(); ++i) {
    double mean = 0.0;
    for (std::size_t j = 0; j < grad.cols(); ++j) mean += grad(i, j);
    mean /= static_cast<double>(grad.cols());
    for (std::size_t j = 0; j < grad.cols(); ++j)
      out(i, j) = grad(i, j) - mean;
  }
  return out;
}

linalg::Matrix project_row_sum_zero_on_support(const linalg::Matrix& grad,
                                               const linalg::Matrix& p) {
  linalg::Matrix out(grad.rows(), grad.cols());
  for (std::size_t i = 0; i < grad.rows(); ++i) {
    double mean = 0.0;
    std::size_t support = 0;
    for (std::size_t j = 0; j < grad.cols(); ++j) {
      // Exact on purpose: structural zeros of a support-restricted chain are
      // exact 0s by construction; near-zeros are live probabilities.
      // mocos-lint: allow(float-eq)
      if (p(i, j) == 0.0) continue;
      mean += grad(i, j);
      ++support;
    }
    if (support == 0) continue;  // all-zero row: leave the projection at 0
    mean /= static_cast<double>(support);
    for (std::size_t j = 0; j < grad.cols(); ++j) {
      // mocos-lint: allow(float-eq)
      if (p(i, j) == 0.0) continue;
      out(i, j) = grad(i, j) - mean;
    }
  }
  return out;
}

double max_abs_row_sum(const linalg::Matrix& m) {
  double best = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) s += m(i, j);
    best = std::max(best, std::abs(s));
  }
  return best;
}

}  // namespace mocos::cost
