#include "src/cost/projection.hpp"

#include <cmath>

namespace mocos::cost {

linalg::Matrix project_row_sum_zero(const linalg::Matrix& grad) {
  linalg::Matrix out(grad.rows(), grad.cols());
  for (std::size_t i = 0; i < grad.rows(); ++i) {
    double mean = 0.0;
    for (std::size_t j = 0; j < grad.cols(); ++j) mean += grad(i, j);
    mean /= static_cast<double>(grad.cols());
    for (std::size_t j = 0; j < grad.cols(); ++j)
      out(i, j) = grad(i, j) - mean;
  }
  return out;
}

double max_abs_row_sum(const linalg::Matrix& m) {
  double best = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) s += m(i, j);
    best = std::max(best, std::abs(s));
  }
  return best;
}

}  // namespace mocos::cost
