#pragma once

#include "src/cost/cost_term.hpp"

namespace mocos::cost {

/// Minimax (worst-PoI) exposure objective via a log-sum-exp smooth max
/// (the smooth-minimax coverage formulation of Pinto et al.,
/// arXiv:2009.11386, dropped into the paper's composite cost):
///
///   U_mm = weight · smax_β(Ē),
///   smax_β(Ē) = (1/β) log Σ_i exp(β Ē_i)  ∈  [max_i Ē_i,
///                                             max_i Ē_i + log(M)/β],
///
/// with the per-PoI mean exposures Ē_i of Eq. 3. As the temperature β grows
/// the term converges to the hard worst-case max_i Ē_i while staying C^∞,
/// so the steepest-descent machinery applies unchanged; β is annealable
/// stage-wise via the `smoothmax_beta_final` / `smoothmax_anneal_stages`
/// config keys (see cli.hpp). Partials chain through the shared Ē_i
/// formulas of ExposureTerm with the softmax weights as outer derivative:
///
///   ∂U_mm/∂Ē_i = weight · σ_i,   σ_i = exp(β Ē_i) / Σ_j exp(β Ē_j).
class MinimaxExposureTerm final : public CostTerm {
 public:
  /// `weight` > 0 scales the objective; `beta` > 0 is the smooth-max
  /// temperature (larger = closer to the hard max, stiffer gradients).
  MinimaxExposureTerm(double weight, double beta);

  std::string name() const override { return "minimax_exposure"; }
  double value(const markov::ChainAnalysis& chain) const override;
  void accumulate_partials(const markov::ChainAnalysis& chain,
                           Partials& out) const override;

  /// smax_β(Ē) at the analyzed chain (before the weight).
  double smooth_max(const markov::ChainAnalysis& chain) const;

  /// Softmax weights σ_i (non-negative, summing to 1) — the active-PoI
  /// attribution the sensitivity report surfaces.
  linalg::Vector softmax_weights(const markov::ChainAnalysis& chain) const;

  double beta() const { return beta_; }

 private:
  double weight_;
  double beta_;
};

}  // namespace mocos::cost
