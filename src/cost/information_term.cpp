#include "src/cost/information_term.hpp"

#include <stdexcept>
#include <utility>

namespace mocos::cost {

InformationCaptureTerm::InformationCaptureTerm(
    const sensing::CoverageTensors& tensors, std::vector<double> rates,
    double gamma)
    : durations_(tensors.durations()), rates_(std::move(rates)),
      gamma_(gamma) {
  const std::size_t n = tensors.num_pois();
  if (rates_.size() != n)
    throw std::invalid_argument("InformationCaptureTerm: rate count");
  for (double r : rates_)
    if (r < 0.0)
      throw std::invalid_argument("InformationCaptureTerm: negative rate");
  if (gamma_ <= 0.0)
    throw std::invalid_argument("InformationCaptureTerm: gamma must be > 0");
  coverage_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) coverage_.push_back(tensors.coverage_of(i));
}

double InformationCaptureTerm::capture_rate(
    const markov::ChainAnalysis& chain) const {
  const std::size_t n = chain.p.size();
  if (n != rates_.size())
    throw std::invalid_argument("InformationCaptureTerm: chain size");
  double d = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t k = 0; k < n; ++k)
      d += chain.pi[j] * chain.p(j, k) * durations_(j, k);
  double j_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Exact on purpose (all four sites in this file): rate == 0 means the
    // PoI has no event stream by config contract; the skip is lossless
    // because every contribution is scaled by rates_[i].
    // mocos-lint: allow(float-eq)
    if (rates_[i] == 0.0) continue;
    double num = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        num += chain.pi[j] * chain.p(j, k) * coverage_[i](j, k);
    j_total += rates_[i] * num / d;
  }
  return j_total;
}

double InformationCaptureTerm::value(
    const markov::ChainAnalysis& chain) const {
  return -gamma_ * capture_rate(chain);
}

void InformationCaptureTerm::accumulate_partials(
    const markov::ChainAnalysis& chain, Partials& out) const {
  const std::size_t n = chain.p.size();
  if (n != rates_.size())
    throw std::invalid_argument("InformationCaptureTerm: chain size");

  // D and the per-PoI numerators N_i, plus their partial derivatives:
  //   ∂N_i/∂π_j = Σ_k p_jk T_jk,i,  ∂N_i/∂p_jk = π_j T_jk,i (same shape for
  //   D with T_jk). For U = −γ Σ_i λ_i N_i/D:
  //   ∂U/∂x = −γ Σ_i λ_i (∂N_i/∂x · D − N_i · ∂D/∂x) / D².
  double d = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t k = 0; k < n; ++k)
      d += chain.pi[j] * chain.p(j, k) * durations_(j, k);
  const double d2 = d * d;

  std::vector<double> num(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // mocos-lint: allow(float-eq)
    if (rates_[i] == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        num[i] += chain.pi[j] * chain.p(j, k) * coverage_[i](j, k);
  }

  for (std::size_t j = 0; j < n; ++j) {
    double dd_dpi = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      dd_dpi += chain.p(j, k) * durations_(j, k);
    double dpi_acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // mocos-lint: allow(float-eq)
      if (rates_[i] == 0.0) continue;
      double dn_dpi = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        dn_dpi += chain.p(j, k) * coverage_[i](j, k);
      dpi_acc += rates_[i] * (dn_dpi * d - num[i] * dd_dpi) / d2;
    }
    out.du_dpi[j] += -gamma_ * dpi_acc;

    for (std::size_t k = 0; k < n; ++k) {
      const double dd_dp = chain.pi[j] * durations_(j, k);
      double dp_acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        // mocos-lint: allow(float-eq)
        if (rates_[i] == 0.0) continue;
        const double dn_dp = chain.pi[j] * coverage_[i](j, k);
        dp_acc += rates_[i] * (dn_dp * d - num[i] * dd_dp) / d2;
      }
      out.du_dp(j, k) += -gamma_ * dp_acc;
    }
  }
}

}  // namespace mocos::cost
