#pragma once

#include "src/linalg/matrix.hpp"

namespace mocos::cost {

/// Orthogonal projection of a gradient matrix onto the subspace of matrices
/// whose rows each sum to zero (Eq. 11):
///
///   Π_ij = U_ij − (Σ_k U_ik)/M.
///
/// Moving P along −Π keeps every row sum of P equal to 1, so the iterate
/// stays a (sub)stochastic matrix as long as the step also respects the
/// entrywise bounds (handled by descent/step_bounds).
linalg::Matrix project_row_sum_zero(const linalg::Matrix& grad);

/// Support-masked variant: per row, the mean is taken over the entries where
/// p(i,j) != 0 (the support of a support-restricted chain) and off-support
/// entries of the result are forced to exactly 0, so a step along the
/// projected direction never re-opens a structurally-zero transition. For a
/// strictly positive `p` this reduces to project_row_sum_zero bit-for-bit
/// (same summation order, same divisor).
linalg::Matrix project_row_sum_zero_on_support(const linalg::Matrix& grad,
                                               const linalg::Matrix& p);

/// Max-abs row-sum — used by tests to assert the projection's invariant and
/// by the descent loop to detect drift that would need re-normalization.
double max_abs_row_sum(const linalg::Matrix& m);

}  // namespace mocos::cost
