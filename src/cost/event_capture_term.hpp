#pragma once

#include <vector>

#include "src/cost/cost_term.hpp"

namespace mocos::cost {

/// Expected captured-event fraction under Poisson event arrivals (the
/// persistent-monitoring objective of Yu/Karaman/Rus, arXiv:1309.6041,
/// transplanted onto the paper's Markov patrol schedules).
///
/// Events of interest arrive at PoI i as a Poisson process with rate λ_i
/// (per transition) and persist for a window of d transitions (the config's
/// `capture_duration`). An event is captured iff the sensor reaches PoI i
/// while the event is live. With the chain in stationarity at the arrival
/// instant, the capture probability decomposes into an immediate-capture
/// atom and a window term driven by the residual hitting time of i:
///
///   F_i = π_i + (1 − π_i)·(1 − exp(−d / w_i)),
///   w_i = W_i / (1 − π_i),   W_i = z_ii / π_i − 1,
///
/// where W_i = Σ_j π_j R_ji is the mean first-passage time to i from a
/// stationary start (the random-target identity — exactly the paper's Eq. 8
/// machinery, no new solver math), and the conditional hitting time given a
/// miss at arrival is approximated as exponential with mean w_i. The
/// exponentialization is the term's documented modeling assumption; it is
/// asymptotically exact for rarely-visited PoIs and is cross-checked against
/// the `sim::EventCaptureSimulator` Monte Carlo in the test suite.
///
/// The rate-weighted expected captured fraction and the term value are
///
///   F = Σ_i λ_i F_i / Σ_i λ_i,   U_cap = weight · (1 − F),
///
/// so minimizing the composite cost maximizes the captured-event fraction.
/// Unlike InformationCaptureTerm this needs no coverage tensors — only
/// (π, Z) — so it composes with support-restricted (sparse) problems.
class EventCaptureTerm final : public CostTerm {
 public:
  /// `rates` are per-PoI arrival rates λ_i (non-negative, at least one
  /// positive); `duration` d > 0 is the event window in transitions;
  /// `weight` > 0 scales the objective against the others.
  EventCaptureTerm(std::vector<double> rates, double duration, double weight);

  std::string name() const override { return "event_capture"; }
  double value(const markov::ChainAnalysis& chain) const override;
  void accumulate_partials(const markov::ChainAnalysis& chain,
                           Partials& out) const override;

  /// Per-PoI capture probabilities F_i.
  linalg::Vector per_poi_capture(const markov::ChainAnalysis& chain) const;

  /// Rate-weighted expected captured-event fraction F ∈ (0, 1).
  double capture_fraction(const markov::ChainAnalysis& chain) const;

  /// Mean first-passage time to i from a stationary start,
  /// W_i = Σ_j π_j R_ji = z_ii/π_i − 1 (in transitions).
  static double mean_hitting_from_stationarity(
      const markov::ChainAnalysis& chain, std::size_t i);

  double duration() const { return duration_; }
  const std::vector<double>& rates() const { return rates_; }

 private:
  std::vector<double> rates_;
  double duration_;
  double weight_;
  double rate_sum_;
};

}  // namespace mocos::cost
