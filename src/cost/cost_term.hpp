#pragma once

#include <string>

#include "src/cost/partials.hpp"
#include "src/markov/fundamental.hpp"

namespace mocos::cost {

/// One additive objective in the multi-objective cost function.
///
/// A term exposes its scalar value and accumulates its ∂U/∂π, ∂U/∂Z, ∂U/∂P
/// contributions; the composite cost sums terms and applies the Markov-chain
/// chain rule (Eq. 10) once. New objectives (information capture, latency,
/// ...) plug in by implementing this interface — exactly the extensibility
/// the paper claims for its formulation (§III, §VII).
class CostTerm {
 public:
  virtual ~CostTerm() = default;

  virtual std::string name() const = 0;

  /// Scalar value at the analyzed chain. May return +infinity (e.g. the
  /// barrier outside the open polytope); must not return NaN for valid
  /// inputs.
  virtual double value(const markov::ChainAnalysis& chain) const = 0;

  /// Adds this term's partial derivatives into `out` (sized to the chain).
  virtual void accumulate_partials(const markov::ChainAnalysis& chain,
                                   Partials& out) const = 0;
};

}  // namespace mocos::cost
