#include "src/cost/partials.hpp"

#include <stdexcept>

namespace mocos::cost {

Partials& Partials::operator+=(const Partials& rhs) {
  if (rhs.size() != size())
    throw std::invalid_argument("Partials::+=: size mismatch");
  for (std::size_t i = 0; i < du_dpi.size(); ++i) du_dpi[i] += rhs.du_dpi[i];
  du_dz += rhs.du_dz;
  du_dp += rhs.du_dp;
  return *this;
}

void Partials::clear() {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) du_dpi[i] = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      du_dz(i, j) = 0.0;
      du_dp(i, j) = 0.0;
    }
}

}  // namespace mocos::cost
