#include "src/cost/partials.hpp"

#include <stdexcept>

namespace mocos::cost {

Partials& Partials::operator+=(const Partials& rhs) {
  if (rhs.size() != size())
    throw std::invalid_argument("Partials::+=: size mismatch");
  for (std::size_t i = 0; i < du_dpi.size(); ++i) du_dpi[i] += rhs.du_dpi[i];
  du_dz += rhs.du_dz;
  du_dp += rhs.du_dp;
  return *this;
}

}  // namespace mocos::cost
