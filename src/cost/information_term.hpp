#pragma once

#include <vector>

#include "src/cost/cost_term.hpp"
#include "src/sensing/coverage_tensors.hpp"

namespace mocos::cost {

/// Information-capture objective (§III lists "amount of information
/// captured" among the extensible criteria; cf. the stochastic event capture
/// model of Bisnik et al. cited as [6]).
///
/// Events of interest occur at PoI i at rate λ_i; an (instantaneous) event
/// is captured iff the sensor covers i at that moment, which in the long run
/// happens with probability C̄_i (the coverage share, Eq. 2). The expected
/// capture rate is therefore
///
///   J = Σ_i λ_i C̄_i,   C̄_i = N_i / D,
///   N_i = Σ_{j,k} π_j p_jk T_jk,i,   D = Σ_{j,k} π_j p_jk T_jk,
///
/// and the term contributes U_J = −γ·J so that minimizing the composite
/// cost maximizes capture. Unlike the coverage-deviation term, this is a
/// ratio of two bilinear forms in (π, P), so its partials carry quotient
/// terms.
class InformationCaptureTerm final : public CostTerm {
 public:
  /// `rates` are the per-PoI event rates λ_i (non-negative); γ > 0 scales
  /// the objective against the others.
  InformationCaptureTerm(const sensing::CoverageTensors& tensors,
                         std::vector<double> rates, double gamma);

  std::string name() const override { return "information_capture"; }
  double value(const markov::ChainAnalysis& chain) const override;
  void accumulate_partials(const markov::ChainAnalysis& chain,
                           Partials& out) const override;

  /// Expected capture rate J at the given chain (before the −γ weighting).
  double capture_rate(const markov::ChainAnalysis& chain) const;

 private:
  std::vector<linalg::Matrix> coverage_;  // T_jk,i per PoI
  linalg::Matrix durations_;              // T_jk
  std::vector<double> rates_;
  double gamma_;
};

}  // namespace mocos::cost
