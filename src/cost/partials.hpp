#pragma once

#include "src/linalg/matrix.hpp"

namespace mocos::cost {

/// Partial derivatives of a scalar cost U(π, Z, P) with respect to each
/// argument, holding the others fixed — the raw ingredients of the paper's
/// Eq. 10 before the Markov-chain chain rule is applied.
///
/// Cost terms *accumulate* into a shared Partials so a composite cost makes a
/// single chain-rule pass.
struct Partials {
  explicit Partials(std::size_t n)
      : du_dpi(n, 0.0), du_dz(n, n, 0.0), du_dp(n, n, 0.0) {}

  linalg::Vector du_dpi;  // ∂U/∂π_i
  linalg::Matrix du_dz;   // ∂U/∂z_ij
  linalg::Matrix du_dp;   // ∂U/∂p_ij (the direct dependence only)

  std::size_t size() const { return du_dpi.size(); }

  Partials& operator+=(const Partials& rhs);

  /// Zeroes all three buffers in place (no reallocation) so a probe loop —
  /// e.g. gradient evaluations against an incremental ChainSolveCache — can
  /// reuse one Partials across iterations.
  void clear();
};

}  // namespace mocos::cost
