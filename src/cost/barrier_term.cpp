#include "src/cost/barrier_term.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mocos::cost {

BarrierTerm::BarrierTerm(double epsilon) : epsilon_(epsilon) {
  if (!(epsilon > 0.0) || !(epsilon < 0.5))
    throw std::invalid_argument("BarrierTerm: epsilon must be in (0, 1/2)");
}

double BarrierTerm::entry_value(double p) const {
  if (p <= 0.0 || p >= 1.0) return std::numeric_limits<double>::infinity();
  double v = 0.0;
  if (p <= epsilon_) {
    const double d = epsilon_ - p;
    v += -(1.0 / epsilon_) * std::log(p) * d * d;
  }
  if (p >= 1.0 - epsilon_) {
    const double d = 1.0 - epsilon_ - p;
    v += -(1.0 / epsilon_) * std::log(1.0 - p) * d * d;
  }
  return v;
}

double BarrierTerm::entry_derivative(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw std::domain_error("BarrierTerm: derivative outside (0,1)");
  double g = 0.0;
  if (p <= epsilon_) {
    const double d = epsilon_ - p;
    // d/dp [ -(1/ε)(ε-p)² ln p ] = (2(ε-p) ln p)/ε − (ε-p)²/(ε p)
    g += (2.0 * d * std::log(p)) / epsilon_ - (d * d) / (epsilon_ * p);
  }
  if (p >= 1.0 - epsilon_) {
    const double d = 1.0 - epsilon_ - p;
    // d/dp [ -(1/ε)(1-ε-p)² ln(1-p) ]
    //   = (2(1-ε-p) ln(1-p))/ε + (1-ε-p)²/(ε (1-p))
    g += (2.0 * d * std::log(1.0 - p)) / epsilon_ +
         (d * d) / (epsilon_ * (1.0 - p));
  }
  return g;
}

double BarrierTerm::value(const markov::ChainAnalysis& chain) const {
  const std::size_t n = chain.p.size();
  double u = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double p = chain.p(i, j);
      // Exact zeros are the structural zeros of a support-restricted chain:
      // the descent holds them at zero (support-masked projection +
      // zero-preserving steps), so they sit outside the barrier's domain
      // rather than on its boundary. entry_value(0) itself stays +inf — the
      // right answer for a *probed* zero on a dense chain.
      // mocos-lint: allow(float-eq)
      if (p == 0.0) continue;
      u += entry_value(p);
      if (std::isinf(u)) return u;
    }
  }
  return u;
}

void BarrierTerm::accumulate_partials(const markov::ChainAnalysis& chain,
                                      Partials& out) const {
  const std::size_t n = chain.p.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double p = chain.p(i, j);
      // Structural zeros carry no barrier gradient (see value() above);
      // entry_derivative would throw for them by design.
      // mocos-lint: allow(float-eq)
      if (p == 0.0) continue;
      out.du_dp(i, j) += entry_derivative(p);
    }
  }
}

}  // namespace mocos::cost
