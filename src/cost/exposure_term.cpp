#include "src/cost/exposure_term.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mocos::cost {

namespace {
// The barrier keeps p_ii strictly below 1, but line-search probes may step
// close; the clamp keeps the evaluation finite-and-huge instead of dividing
// by zero.
constexpr double kMinStay = 1e-12;

double hold_probability(const markov::ChainAnalysis& chain, std::size_t i) {
  return std::max(1.0 - chain.p(i, i), kMinStay);
}
}  // namespace

ExposureTerm::ExposureTerm(std::vector<double> betas)
    : betas_(std::move(betas)) {
  if (betas_.empty()) throw std::invalid_argument("ExposureTerm: empty betas");
  for (double b : betas_)
    if (b < 0.0) throw std::invalid_argument("ExposureTerm: negative beta");
}

ExposureTerm::ExposureTerm(std::size_t n, double beta)
    : ExposureTerm(std::vector<double>(n, beta)) {}

linalg::Vector ExposureTerm::compute_mean_exposures(
    const markov::ChainAnalysis& chain) {
  const std::size_t n = chain.p.size();
  linalg::Vector e(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double h = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      // R_ji = (z_ii - z_ji)/π_i for j != i.
      h += chain.p(i, j) * (chain.z(i, i) - chain.z(j, i));
    }
    e[i] = h / (chain.pi[i] * hold_probability(chain, i));
  }
  return e;
}

linalg::Vector ExposureTerm::mean_exposures(
    const markov::ChainAnalysis& chain) const {
  if (chain.p.size() != betas_.size())
    throw std::invalid_argument("ExposureTerm: chain size mismatch");
  return compute_mean_exposures(chain);
}

double ExposureTerm::value(const markov::ChainAnalysis& chain) const {
  const linalg::Vector e = mean_exposures(chain);
  double u = 0.0;
  for (std::size_t i = 0; i < e.size(); ++i)
    u += 0.5 * betas_[i] * e[i] * e[i];
  return u;
}

void ExposureTerm::accumulate_weighted_exposure_partials(
    const markov::ChainAnalysis& chain, const linalg::Vector& dcost_dexposure,
    Partials& out) {
  const std::size_t n = chain.p.size();
  if (dcost_dexposure.size() != n)
    throw std::invalid_argument(
        "accumulate_weighted_exposure_partials: weight size mismatch");
  const linalg::Vector e = compute_mean_exposures(chain);
  // dU = Σ_i g_i dĒ_i with g_i = dcost_dexposure[i] and, writing
  // s_i = 1 - p_ii:
  //   ∂Ē_i/∂π_i       = -Ē_i / π_i
  //   ∂Ē_i/∂p_ii      =  Ē_i / s_i
  //   ∂Ē_i/∂p_ij      = (z_ii - z_ji)/(π_i s_i)          (j ≠ i)
  //   ∂Ē_i/∂z_ii      = Σ_{j≠i} p_ij /(π_i s_i) = 1/π_i
  //   ∂Ē_i/∂z_ji      = -p_ij /(π_i s_i)                 (j ≠ i)
  for (std::size_t i = 0; i < n; ++i) {
    const double w = dcost_dexposure[i];
    // Exact on purpose: every partial below is scaled by w, so skipping an
    // exact zero is lossless; skipping near-zeros would bias the gradient.
    // mocos-lint: allow(float-eq)
    if (w == 0.0) continue;
    const double s = hold_probability(chain, i);
    const double inv_pis = 1.0 / (chain.pi[i] * s);
    out.du_dpi[i] += w * (-e[i] / chain.pi[i]);
    out.du_dp(i, i) += w * (e[i] / s);
    out.du_dz(i, i) += w * ((1.0 - chain.p(i, i)) * inv_pis);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      out.du_dp(i, j) += w * (chain.z(i, i) - chain.z(j, i)) * inv_pis;
      out.du_dz(j, i) += w * (-chain.p(i, j) * inv_pis);
    }
  }
}

void ExposureTerm::accumulate_partials(const markov::ChainAnalysis& chain,
                                       Partials& out) const {
  // The quadratic objective U = Σ_i ½ β_i Ē_i² has outer derivative
  // ∂U/∂Ē_i = β_i Ē_i; everything else is the shared Ē_i chain rule.
  const linalg::Vector e = mean_exposures(chain);
  linalg::Vector g(e.size(), 0.0);
  for (std::size_t i = 0; i < e.size(); ++i) g[i] = betas_[i] * e[i];
  accumulate_weighted_exposure_partials(chain, g, out);
}

}  // namespace mocos::cost
