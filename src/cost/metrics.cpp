#include "src/cost/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "src/cost/exposure_term.hpp"

namespace mocos::cost {

std::vector<double> coverage_shares(const markov::ChainAnalysis& chain,
                                    const sensing::CoverageTensors& tensors) {
  const std::size_t n = chain.p.size();
  if (tensors.num_pois() != n)
    throw std::invalid_argument("coverage_shares: size mismatch");
  double total = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t k = 0; k < n; ++k)
      total += chain.pi[j] * chain.p(j, k) * tensors.durations()(j, k);
  std::vector<double> shares(n, 0.0);
  if (tensors.sparse()) {
    for (std::size_t i = 0; i < n; ++i) {
      double c = 0.0;
      for (const sensing::CoverageEntry& e : tensors.coverage_entries(i))
        c += chain.pi[e.j] * chain.p(e.j, e.k) * e.value;
      shares[i] = c / total;
    }
    return shares;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const linalg::Matrix& cov = tensors.coverage_of(i);
    double c = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        c += chain.pi[j] * chain.p(j, k) * cov(j, k);
    shares[i] = c / total;
  }
  return shares;
}

Metrics compute_metrics(const markov::ChainAnalysis& chain,
                        const sensing::CoverageTensors& tensors,
                        const std::vector<double>& targets) {
  const std::size_t n = chain.p.size();
  if (targets.size() != n)
    throw std::invalid_argument("compute_metrics: target size mismatch");
  Metrics m;
  m.c_share = coverage_shares(chain, tensors);

  if (tensors.sparse()) {
    // g_i = Σ π_j p_jk (T_jk,i − Φ_i T_jk) = covered_i − Φ_i Ē, with the
    // coverage sum over the stored entries and Ē over the dense durations —
    // the same split the sparse CoverageDeviationTerm uses.
    double expected = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        expected += chain.pi[j] * chain.p(j, k) * tensors.durations()(j, k);
    for (std::size_t i = 0; i < n; ++i) {
      double covered = 0.0;
      for (const sensing::CoverageEntry& e : tensors.coverage_entries(i))
        covered += chain.pi[e.j] * chain.p(e.j, e.k) * e.value;
      const double g = covered - targets[i] * expected;
      m.delta_c += g * g;
    }
  } else {
    const auto kernels = tensors.deviation_kernels(targets);
    for (std::size_t i = 0; i < n; ++i) {
      double g = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t k = 0; k < n; ++k)
          g += chain.pi[j] * chain.p(j, k) * kernels[i](j, k);
      m.delta_c += g * g;
    }
  }

  linalg::Vector e = ExposureTerm::compute_mean_exposures(chain);
  m.exposure.assign(e.begin(), e.end());
  double sum_sq = 0.0;
  for (double x : e) sum_sq += x * x;
  m.e_bar = std::sqrt(sum_sq);
  return m;
}

}  // namespace mocos::cost
