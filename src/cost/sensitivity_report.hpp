#pragma once

#include <vector>

#include "src/linalg/matrix.hpp"
#include "src/markov/fundamental.hpp"
#include "src/sensing/coverage_tensors.hpp"

namespace mocos::cost {

/// Robustness analysis of a schedule: the (projected) gradients of the two
/// headline metrics with respect to every transition probability,
///
///   delta_c(k,l) = ∂ΔC/∂p_kl,   e_bar(k,l) = ∂Ē/∂p_kl,
///
/// restricted to the row-sum-zero subspace (feasible perturbations). Large
/// entries mark the coin tosses whose mis-implementation (hardware bias,
/// quantization to a lookup table, ...) hurts the most — where a deployment
/// should spend its precision budget.
struct MetricSensitivity {
  linalg::Matrix delta_c;
  linalg::Matrix e_bar;
};

MetricSensitivity metric_sensitivity(const markov::ChainAnalysis& chain,
                                     const sensing::CoverageTensors& tensors,
                                     const std::vector<double>& targets);

}  // namespace mocos::cost
