#include "src/cost/energy_term.hpp"

#include <stdexcept>

namespace mocos::cost {

EnergyTerm::EnergyTerm(const sensing::CoverageTensors& tensors, double gamma,
                       double target)
    : distances_(tensors.distances()), gamma_(gamma), target_(target) {
  if (gamma_ < 0.0) throw std::invalid_argument("EnergyTerm: negative gamma");
  if (target_ < 0.0) throw std::invalid_argument("EnergyTerm: negative target");
}

double EnergyTerm::expected_distance(
    const markov::ChainAnalysis& chain) const {
  const std::size_t n = chain.p.size();
  if (n != distances_.rows())
    throw std::invalid_argument("EnergyTerm: chain size mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      d += chain.pi[i] * chain.p(i, j) * distances_(i, j);
  return d;
}

double EnergyTerm::value(const markov::ChainAnalysis& chain) const {
  const double diff = expected_distance(chain) - target_;
  return 0.5 * gamma_ * diff * diff;
}

void EnergyTerm::accumulate_partials(const markov::ChainAnalysis& chain,
                                     Partials& out) const {
  const std::size_t n = chain.p.size();
  const double w = gamma_ * (expected_distance(chain) - target_);
  // Exact on purpose: every partial is scaled by w; an exact-zero skip is
  // lossless, a tolerance would bias the gradient near the target.
  // mocos-lint: allow(float-eq)
  if (w == 0.0) return;
  // ∂D/∂π_i = Σ_j p_ij d_ij ;  ∂D/∂p_ij = π_i d_ij.
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row += chain.p(i, j) * distances_(i, j);
      out.du_dp(i, j) += w * chain.pi[i] * distances_(i, j);
    }
    out.du_dpi[i] += w * row;
  }
}

}  // namespace mocos::cost
