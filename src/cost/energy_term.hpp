#pragma once

#include "src/cost/cost_term.hpp"
#include "src/sensing/coverage_tensors.hpp"

namespace mocos::cost {

/// Motion-energy objective (§VII "Energy cost"):
///
///   D = Σ_i π_i Σ_{j≠i} p_ij d_ij        (expected distance per transition)
///   U_D = ½ γ (D − target)²
///
/// With target = 0 this penalizes total movement (the paper's D² option);
/// a positive target *requires* a prescribed amount of patrol movement.
class EnergyTerm final : public CostTerm {
 public:
  EnergyTerm(const sensing::CoverageTensors& tensors, double gamma,
             double target = 0.0);

  std::string name() const override { return "energy"; }
  double value(const markov::ChainAnalysis& chain) const override;
  void accumulate_partials(const markov::ChainAnalysis& chain,
                           Partials& out) const override;

  /// Expected travel distance per transition D at the given chain.
  double expected_distance(const markov::ChainAnalysis& chain) const;

 private:
  linalg::Matrix distances_;
  double gamma_;
  double target_;
};

}  // namespace mocos::cost
