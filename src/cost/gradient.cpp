#include "src/cost/gradient.hpp"

#include <limits>
#include <stdexcept>

#include "src/cost/projection.hpp"
#include "src/markov/sensitivity.hpp"
#include "src/util/fault_injection.hpp"

namespace mocos::cost {

linalg::Matrix cost_gradient(const CompositeCost& cost,
                             const markov::ChainAnalysis& chain) {
  const Partials p = cost.partials(chain);
  linalg::Matrix g =
      markov::chain_rule_gradient(chain, p.du_dpi, p.du_dz, p.du_dp);
  if (util::fault::fire(util::fault::Site::kGradient))
    g(0, 0) = std::numeric_limits<double>::quiet_NaN();
  return g;
}

linalg::Matrix projected_cost_gradient(const CompositeCost& cost,
                                       const markov::ChainAnalysis& chain) {
  // The support-masked projection keeps the structural zeros of a
  // support-restricted chain at zero; for strictly positive chains it is
  // bit-identical to project_row_sum_zero.
  return project_row_sum_zero_on_support(cost_gradient(cost, chain),
                                         chain.p.matrix());
}

linalg::Matrix cost_gradient(const CompositeCost& cost,
                             const markov::ChainSolveCache& cache) {
  if (!cache.has_state())
    throw std::logic_error("cost_gradient: ChainSolveCache has no state");
  return cost_gradient(cost, cache.analysis());
}

linalg::Matrix projected_cost_gradient(const CompositeCost& cost,
                                       const markov::ChainSolveCache& cache) {
  if (!cache.has_state())
    throw std::logic_error(
        "projected_cost_gradient: ChainSolveCache has no state");
  return project_row_sum_zero_on_support(cost_gradient(cost, cache.analysis()),
                                         cache.analysis().p.matrix());
}

}  // namespace mocos::cost
