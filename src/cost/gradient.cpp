#include "src/cost/gradient.hpp"

#include "src/cost/projection.hpp"
#include "src/markov/sensitivity.hpp"

namespace mocos::cost {

linalg::Matrix cost_gradient(const CompositeCost& cost,
                             const markov::ChainAnalysis& chain) {
  const Partials p = cost.partials(chain);
  return markov::chain_rule_gradient(chain, p.du_dpi, p.du_dz, p.du_dp);
}

linalg::Matrix projected_cost_gradient(const CompositeCost& cost,
                                       const markov::ChainAnalysis& chain) {
  return project_row_sum_zero(cost_gradient(cost, chain));
}

}  // namespace mocos::cost
