#pragma once

#include <memory>
#include <vector>

#include "src/cost/cost_term.hpp"

namespace mocos::cost {

/// Weighted multi-objective cost U_ε: the sum of its terms. The term weights
/// (α_i, β_i, γ, ...) live inside the terms themselves; this class only sums
/// values and partials and hands the result to the chain rule.
class CompositeCost {
 public:
  CompositeCost() = default;

  CompositeCost& add(std::unique_ptr<CostTerm> term);
  std::size_t num_terms() const { return terms_.size(); }
  const CostTerm& term(std::size_t i) const;

  /// Total cost at an analyzed chain; +infinity if any term diverges (e.g.
  /// barrier at the boundary).
  double value(const markov::ChainAnalysis& chain) const;

  /// Convenience: analyzes the chain internally.
  double value(const markov::TransitionMatrix& p) const;

  /// Sum of per-term partials (∂U/∂π, ∂U/∂Z, ∂U/∂P).
  Partials partials(const markov::ChainAnalysis& chain) const;

  /// As partials(), but clears and refills a caller-owned buffer (which must
  /// match the chain's size) — no per-probe allocations in gradient loops.
  void partials_into(const markov::ChainAnalysis& chain, Partials& out) const;

  /// Per-term breakdown, for reporting.
  std::vector<std::pair<std::string, double>> breakdown(
      const markov::ChainAnalysis& chain) const;

 private:
  std::vector<std::unique_ptr<CostTerm>> terms_;
};

}  // namespace mocos::cost
