#pragma once

#include <vector>

#include "src/cost/cost_term.hpp"
#include "src/sensing/coverage_tensors.hpp"

namespace mocos::cost {

/// Coverage-time deviation objective (the α part of Eq. 4/9):
///
///   U_cov = Σ_i ½ α_i g_i²,   g_i = Σ_{j,k} π_j p_jk (T_jk,i − Φ_i T_jk).
///
/// g_i measures, per unit of expected transition, how far PoI i's covered
/// time runs above/below its target share of the total elapsed time.
///
/// Dense tensors: the deviation kernels B^i_jk = T_jk,i − Φ_i T_jk are
/// precomputed (O(M³) storage). Sparse tensors (city-scale): g_i splits into
/// the sparse coverage sum Σ π_j p_jk T_jk,i over stored entries minus
/// Φ_i · Ē with Ē = Σ π_j p_jk T_jk — exact for every P, with no O(M³)
/// object anywhere.
class CoverageDeviationTerm final : public CostTerm {
 public:
  /// `alphas` are the per-PoI weights α_i (all equal in the paper's §VI).
  CoverageDeviationTerm(const sensing::CoverageTensors& tensors,
                        const std::vector<double>& targets,
                        std::vector<double> alphas);

  /// Uniform-weight convenience (α_i = alpha for all i).
  CoverageDeviationTerm(const sensing::CoverageTensors& tensors,
                        const std::vector<double>& targets, double alpha);

  std::string name() const override { return "coverage_deviation"; }
  double value(const markov::ChainAnalysis& chain) const override;
  void accumulate_partials(const markov::ChainAnalysis& chain,
                           Partials& out) const override;

  /// The per-PoI discrepancies g_i at the given chain — also what the ΔC
  /// metric (Eq. 12) is built from.
  linalg::Vector discrepancies(const markov::ChainAnalysis& chain) const;

 private:
  std::vector<linalg::Matrix> kernels_;  // B^i (dense mode only)
  // Sparse mode: per-PoI coverage entries + the dense duration matrix.
  bool sparse_ = false;
  std::vector<std::vector<sensing::CoverageEntry>> entries_;
  linalg::Matrix durations_;
  std::vector<double> targets_;
  std::vector<double> alphas_;
};

}  // namespace mocos::cost
