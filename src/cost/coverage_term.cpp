#include "src/cost/coverage_term.hpp"

#include <stdexcept>
#include <utility>

namespace mocos::cost {

CoverageDeviationTerm::CoverageDeviationTerm(
    const sensing::CoverageTensors& tensors, const std::vector<double>& targets,
    std::vector<double> alphas)
    : alphas_(std::move(alphas)) {
  if (alphas_.size() != tensors.num_pois())
    throw std::invalid_argument("CoverageDeviationTerm: alpha count mismatch");
  for (double a : alphas_)
    if (a < 0.0)
      throw std::invalid_argument("CoverageDeviationTerm: negative alpha");
  if (tensors.sparse()) {
    if (targets.size() != tensors.num_pois())
      throw std::invalid_argument(
          "CoverageDeviationTerm: target size mismatch");
    sparse_ = true;
    entries_.reserve(tensors.num_pois());
    for (std::size_t i = 0; i < tensors.num_pois(); ++i)
      entries_.push_back(tensors.coverage_entries(i));
    durations_ = tensors.durations();
    targets_ = targets;
  } else {
    kernels_ = tensors.deviation_kernels(targets);
  }
}

CoverageDeviationTerm::CoverageDeviationTerm(
    const sensing::CoverageTensors& tensors, const std::vector<double>& targets,
    double alpha)
    : CoverageDeviationTerm(tensors, targets,
                            std::vector<double>(tensors.num_pois(), alpha)) {}

linalg::Vector CoverageDeviationTerm::discrepancies(
    const markov::ChainAnalysis& chain) const {
  const std::size_t n = chain.p.size();
  if (n != alphas_.size())
    throw std::invalid_argument("CoverageDeviationTerm: chain size mismatch");
  linalg::Vector g(n, 0.0);
  if (sparse_) {
    // Ē = Σ_{j,k} π_j p_jk T_jk; exact zero transitions (the structural
    // zeros of a support-restricted chain) contribute nothing.
    double expected = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double pj = chain.pi[j];
      for (std::size_t k = 0; k < n; ++k) {
        const double pjk = chain.p(j, k);
        // mocos-lint: allow(float-eq)
        if (pjk != 0.0) expected += pj * pjk * durations_(j, k);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      double covered = 0.0;
      for (const sensing::CoverageEntry& e : entries_[i])
        covered += chain.pi[e.j] * chain.p(e.j, e.k) * e.value;
      g[i] = covered - targets_[i] * expected;
    }
    return g;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const linalg::Matrix& b = kernels_[i];
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double pj = chain.pi[j];
      for (std::size_t k = 0; k < n; ++k) s += pj * chain.p(j, k) * b(j, k);
    }
    g[i] = s;
  }
  return g;
}

double CoverageDeviationTerm::value(const markov::ChainAnalysis& chain) const {
  const linalg::Vector g = discrepancies(chain);
  double u = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) u += 0.5 * alphas_[i] * g[i] * g[i];
  return u;
}

void CoverageDeviationTerm::accumulate_partials(
    const markov::ChainAnalysis& chain, Partials& out) const {
  const std::size_t n = chain.p.size();
  const linalg::Vector g = discrepancies(chain);
  // dU = Σ_i α_i g_i dg_i with
  //   ∂g_i/∂π_j     = Σ_k p_jk B^i_jk
  //   ∂g_i/∂p_jk    = π_j B^i_jk
  if (sparse_) {
    // B^i_jk = T_jk,i − Φ_i T_jk: the coverage part runs over the sparse
    // entries; the −Φ_i T_jk part is identical in shape for every i, so it
    // collapses into one dense O(M²) pass scaled by Σ_i w_i Φ_i.
    double phi_dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double w = alphas_[i] * g[i];
      phi_dot += w * targets_[i];
      // Exact on purpose: every partial is scaled by w, so skipping an
      // exact zero is lossless; skipping near-zeros would bias the gradient.
      // mocos-lint: allow(float-eq)
      if (w == 0.0) continue;
      for (const sensing::CoverageEntry& e : entries_[i]) {
        out.du_dp(e.j, e.k) += w * chain.pi[e.j] * e.value;
        out.du_dpi[e.j] += w * chain.p(e.j, e.k) * e.value;
      }
    }
    // mocos-lint: allow(float-eq)
    if (phi_dot != 0.0) {
      for (std::size_t j = 0; j < n; ++j) {
        double row_dot = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          const double t = durations_(j, k);
          row_dot += chain.p(j, k) * t;
          out.du_dp(j, k) -= phi_dot * chain.pi[j] * t;
        }
        out.du_dpi[j] -= phi_dot * row_dot;
      }
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double w = alphas_[i] * g[i];
    // Exact on purpose: every partial below is scaled by w, so skipping an
    // exact zero is lossless; skipping near-zeros would bias the gradient.
    // mocos-lint: allow(float-eq)
    if (w == 0.0) continue;
    const linalg::Matrix& b = kernels_[i];
    for (std::size_t j = 0; j < n; ++j) {
      double row_dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        row_dot += chain.p(j, k) * b(j, k);
        out.du_dp(j, k) += w * chain.pi[j] * b(j, k);
      }
      out.du_dpi[j] += w * row_dot;
    }
  }
}

}  // namespace mocos::cost
