#include "src/cost/coverage_term.hpp"

#include <stdexcept>
#include <utility>

namespace mocos::cost {

CoverageDeviationTerm::CoverageDeviationTerm(
    const sensing::CoverageTensors& tensors, const std::vector<double>& targets,
    std::vector<double> alphas)
    : kernels_(tensors.deviation_kernels(targets)),
      alphas_(std::move(alphas)) {
  if (alphas_.size() != kernels_.size())
    throw std::invalid_argument("CoverageDeviationTerm: alpha count mismatch");
  for (double a : alphas_)
    if (a < 0.0)
      throw std::invalid_argument("CoverageDeviationTerm: negative alpha");
}

CoverageDeviationTerm::CoverageDeviationTerm(
    const sensing::CoverageTensors& tensors, const std::vector<double>& targets,
    double alpha)
    : CoverageDeviationTerm(tensors, targets,
                            std::vector<double>(tensors.num_pois(), alpha)) {}

linalg::Vector CoverageDeviationTerm::discrepancies(
    const markov::ChainAnalysis& chain) const {
  const std::size_t n = chain.p.size();
  if (n != kernels_.size())
    throw std::invalid_argument("CoverageDeviationTerm: chain size mismatch");
  linalg::Vector g(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const linalg::Matrix& b = kernels_[i];
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double pj = chain.pi[j];
      for (std::size_t k = 0; k < n; ++k) s += pj * chain.p(j, k) * b(j, k);
    }
    g[i] = s;
  }
  return g;
}

double CoverageDeviationTerm::value(const markov::ChainAnalysis& chain) const {
  const linalg::Vector g = discrepancies(chain);
  double u = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) u += 0.5 * alphas_[i] * g[i] * g[i];
  return u;
}

void CoverageDeviationTerm::accumulate_partials(
    const markov::ChainAnalysis& chain, Partials& out) const {
  const std::size_t n = chain.p.size();
  const linalg::Vector g = discrepancies(chain);
  // dU = Σ_i α_i g_i dg_i with
  //   ∂g_i/∂π_j     = Σ_k p_jk B^i_jk
  //   ∂g_i/∂p_jk    = π_j B^i_jk
  for (std::size_t i = 0; i < n; ++i) {
    const double w = alphas_[i] * g[i];
    // Exact on purpose: every partial below is scaled by w, so skipping an
    // exact zero is lossless; skipping near-zeros would bias the gradient.
    // mocos-lint: allow(float-eq)
    if (w == 0.0) continue;
    const linalg::Matrix& b = kernels_[i];
    for (std::size_t j = 0; j < n; ++j) {
      double row_dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        row_dot += chain.p(j, k) * b(j, k);
        out.du_dp(j, k) += w * chain.pi[j] * b(j, k);
      }
      out.du_dpi[j] += w * row_dot;
    }
  }
}

}  // namespace mocos::cost
