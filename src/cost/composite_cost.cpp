#include "src/cost/composite_cost.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/obs/phase_timer.hpp"

namespace mocos::cost {

CompositeCost& CompositeCost::add(std::unique_ptr<CostTerm> term) {
  if (!term) throw std::invalid_argument("CompositeCost::add: null term");
  terms_.push_back(std::move(term));
  return *this;
}

const CostTerm& CompositeCost::term(std::size_t i) const {
  if (i >= terms_.size()) throw std::out_of_range("CompositeCost::term");
  return *terms_[i];
}

double CompositeCost::value(const markov::ChainAnalysis& chain) const {
  double u = 0.0;
  // The per-term phase splits only exist while a profiler is installed:
  // name() allocates, so the disabled path must not touch it.
  const bool profiling = obs::current_profiler() != nullptr;
  for (const auto& t : terms_) {
    if (profiling) {
      obs::ScopedPhase phase(t->name());
      u += t->value(chain);
    } else {
      u += t->value(chain);
    }
    if (std::isinf(u)) return u;
  }
  return u;
}

double CompositeCost::value(const markov::TransitionMatrix& p) const {
  return value(markov::analyze_chain(p));
}

Partials CompositeCost::partials(const markov::ChainAnalysis& chain) const {
  Partials out(chain.p.size());
  for (const auto& t : terms_) t->accumulate_partials(chain, out);
  return out;
}

void CompositeCost::partials_into(const markov::ChainAnalysis& chain,
                                  Partials& out) const {
  if (out.size() != chain.p.size())
    throw std::invalid_argument("CompositeCost::partials_into: size mismatch");
  out.clear();
  for (const auto& t : terms_) t->accumulate_partials(chain, out);
}

std::vector<std::pair<std::string, double>> CompositeCost::breakdown(
    const markov::ChainAnalysis& chain) const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(terms_.size());
  for (const auto& t : terms_) out.emplace_back(t->name(), t->value(chain));
  return out;
}

}  // namespace mocos::cost
