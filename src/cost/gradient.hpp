#pragma once

#include "src/cost/composite_cost.hpp"
#include "src/markov/fundamental.hpp"

namespace mocos::cost {

/// Full cost gradient [D_P U] in transition-matrix space (Eq. 10): the
/// terms' raw partials combined through the Schweitzer chain rule.
linalg::Matrix cost_gradient(const CompositeCost& cost,
                             const markov::ChainAnalysis& chain);

/// The descent direction the algorithm actually uses: Π[D_P U], the gradient
/// orthogonally projected onto the row-sum-zero subspace (Eq. 11) so that
/// P + Δt·(−Π[D_P U]) remains row-stochastic.
linalg::Matrix projected_cost_gradient(const CompositeCost& cost,
                                       const markov::ChainAnalysis& chain);

}  // namespace mocos::cost
