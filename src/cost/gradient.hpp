#pragma once

#include "src/cost/composite_cost.hpp"
#include "src/markov/fundamental.hpp"
#include "src/markov/incremental.hpp"

namespace mocos::cost {

/// Full cost gradient [D_P U] in transition-matrix space (Eq. 10): the
/// terms' raw partials combined through the Schweitzer chain rule.
linalg::Matrix cost_gradient(const CompositeCost& cost,
                             const markov::ChainAnalysis& chain);

/// The descent direction the algorithm actually uses: Π[D_P U], the gradient
/// orthogonally projected onto the row-sum-zero subspace (Eq. 11) so that
/// P + Δt·(−Π[D_P U]) remains row-stochastic.
linalg::Matrix projected_cost_gradient(const CompositeCost& cost,
                                       const markov::ChainAnalysis& chain);

/// Cache-backed variants: evaluate the gradient at the chain currently held
/// by a ChainSolveCache (the cache must hold state — call
/// ChainSolveCache::reset / update first). Probe sequences that perturb a
/// row at a time refresh the analysis in O(M²) between calls.
linalg::Matrix cost_gradient(const CompositeCost& cost,
                             const markov::ChainSolveCache& cache);
linalg::Matrix projected_cost_gradient(const CompositeCost& cost,
                                       const markov::ChainSolveCache& cache);

}  // namespace mocos::cost
