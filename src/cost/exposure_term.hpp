#pragma once

#include <vector>

#include "src/cost/cost_term.hpp"

namespace mocos::cost {

/// Exposure-time objective (the β part of Eq. 4/9):
///
///   U_exp = Σ_i ½ β_i Ē_i²,
///   Ē_i = Σ_{j≠i} p_ij R_ji / (1 − p_ii),
///   R_ji = (δ_ji − z_ji + z_ii)/π_i   (unit-transition first passage time).
///
/// Ē_i is the expected length (in transitions) of a continuous interval
/// during which PoI i is out of the sensor's range, measured from the PoI
/// the sensor moves to right after leaving i, under the paper's simplifying
/// assumptions (pass-bys are not return visits; each transition takes one
/// time unit).
class ExposureTerm final : public CostTerm {
 public:
  explicit ExposureTerm(std::vector<double> betas);
  ExposureTerm(std::size_t n, double beta);

  std::string name() const override { return "exposure"; }
  double value(const markov::ChainAnalysis& chain) const override;
  void accumulate_partials(const markov::ChainAnalysis& chain,
                           Partials& out) const override;

  /// Per-PoI mean exposures Ē_i (Eq. 3) — also what the Ē metric (Eq. 13)
  /// is built from.
  linalg::Vector mean_exposures(const markov::ChainAnalysis& chain) const;

  /// Static helper so metrics code can reuse the formula without a term.
  static linalg::Vector compute_mean_exposures(
      const markov::ChainAnalysis& chain);

  /// Accumulates Σ_i g_i dĒ_i into `out`, where `dcost_dexposure[i]` = g_i is
  /// the outer derivative ∂U/∂Ē_i of whatever scalar U the caller built from
  /// the mean exposures. This factors the Ē_i partial formulas out of the
  /// quadratic exposure objective so other exposure-derived terms (e.g. the
  /// smooth-max MinimaxExposureTerm) reuse them instead of re-deriving.
  static void accumulate_weighted_exposure_partials(
      const markov::ChainAnalysis& chain,
      const linalg::Vector& dcost_dexposure, Partials& out);

 private:
  std::vector<double> betas_;
};

}  // namespace mocos::cost
