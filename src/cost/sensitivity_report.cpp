#include "src/cost/sensitivity_report.hpp"

#include <cmath>
#include <memory>

#include "src/cost/composite_cost.hpp"
#include "src/cost/coverage_term.hpp"
#include "src/cost/exposure_term.hpp"
#include "src/cost/gradient.hpp"
#include "src/cost/metrics.hpp"

namespace mocos::cost {

MetricSensitivity metric_sensitivity(const markov::ChainAnalysis& chain,
                                     const sensing::CoverageTensors& tensors,
                                     const std::vector<double>& targets) {
  // ΔC = Σ g_i² = 2 · U_cov(α = 1)  ⇒  ∇ΔC = 2 ∇U_cov.
  CompositeCost cov;
  cov.add(std::make_unique<CoverageDeviationTerm>(tensors, targets, 1.0));
  MetricSensitivity out{projected_cost_gradient(cov, chain) * 2.0,
                        linalg::Matrix(chain.p.size(), chain.p.size())};

  // Ē = sqrt(Σ Ē_i²); U_exp(β = 1) = ½ Σ Ē_i² = ½ Ē²  ⇒  ∇Ē = ∇U_exp / Ē.
  CompositeCost exp_cost;
  exp_cost.add(std::make_unique<ExposureTerm>(chain.p.size(), 1.0));
  const Metrics m = compute_metrics(chain, tensors, targets);
  if (m.e_bar > 0.0)
    out.e_bar = projected_cost_gradient(exp_cost, chain) * (1.0 / m.e_bar);
  return out;
}

}  // namespace mocos::cost
