#pragma once

#include <vector>

#include "src/geometry/polygon.hpp"
#include "src/geometry/topology.hpp"

namespace mocos::geometry {

/// A feasible route between two PoIs: the polyline of waypoints (including
/// both endpoints) and its total length.
struct Route {
  std::vector<Vec2> waypoints;
  double length = 0.0;

  std::size_t num_segments() const {
    return waypoints.size() < 2 ? 0 : waypoints.size() - 1;
  }
  Segment segment(std::size_t i) const;
};

/// Shortest feasible routes between PoIs around polygonal obstacles, via a
/// visibility graph over {PoI positions} ∪ {inflated obstacle vertices} and
/// Dijkstra. §III requires travel along "a physically feasible route"; this
/// planner supplies such routes when straight lines are blocked.
///
/// Best suited to convex obstacles (vertex inflation is radial from the
/// centroid); concave obstacles work when their pockets are not needed for
/// the shortest path.
class RoutePlanner {
 public:
  /// `clearance` is how far route corners stay from obstacle vertices.
  /// PoIs must not lie inside (or within clearance of) any obstacle.
  RoutePlanner(const Topology& topology, std::vector<Polygon> obstacles,
               double clearance = 1e-3);

  const std::vector<Polygon>& obstacles() const { return obstacles_; }

  /// Shortest route from PoI j to PoI k. Throws std::runtime_error when no
  /// feasible route exists (obstacles fully separate the PoIs).
  const Route& route(std::size_t from, std::size_t to) const;

  /// True when the straight segment between two points is unobstructed.
  bool line_of_sight(Vec2 a, Vec2 b) const;

 private:
  Route shortest_route(std::size_t from, std::size_t to) const;

  std::vector<Vec2> pois_;
  std::vector<Polygon> obstacles_;
  std::vector<Vec2> nodes_;  // pois first, then inflated obstacle vertices
  std::vector<std::vector<double>> edge_;  // adjacency: length or +inf
  std::vector<std::vector<Route>> routes_;  // all-pairs PoI routes, cached
};

}  // namespace mocos::geometry
