#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/geometry/topology.hpp"

namespace mocos::geometry {

/// City-scale random-geometric map: a jittered grid of PoIs. The grid keeps
/// placement O(N) and deterministic (no dart throwing at N = 10k), the
/// jitter breaks the lattice symmetry so chains on it behave like irregular
/// street maps.
struct CityConfig {
  std::size_t count = 1024;
  /// Grid cell edge length.
  double spacing = 1.0;
  /// Per-coordinate displacement is uniform in ±jitter·spacing. Capped at
  /// 0.35 so neighbouring PoIs stay >= 0.3·spacing apart — the topology's
  /// pairwise-distinct invariant holds by construction.
  double jitter = 0.35;
  std::uint64_t seed = 0;
};

/// Builds the jittered-grid topology. PoI index order is row-major cell
/// order, so indices are spatially sorted — the layout the spatial
/// partitioner and bandwidth orderings exploit. Target shares are sampled
/// like random_topology's (min weight 0.2, normalized). Deterministic from
/// `config.seed` alone. Throws std::invalid_argument for count < 2 or
/// non-positive spacing.
[[nodiscard]] Topology city_topology(const CityConfig& config);

/// For each PoI, the sorted indices of all PoIs within `radius` (self
/// included) — the support neighbourhoods of a city-scale sparse chain.
/// Uses a spatial hash with radius-sized cells, so the whole sweep is
/// O(N · neighbours) instead of O(N²).
[[nodiscard]] std::vector<std::vector<std::size_t>> radius_neighbors(
    const Topology& topology, double radius);

}  // namespace mocos::geometry
