#pragma once

#include "src/geometry/topology.hpp"
#include "src/util/rng.hpp"

namespace mocos::geometry {

struct RandomTopologyConfig {
  std::size_t num_pois = 6;
  /// PoIs are sampled uniformly in [0, extent]² ...
  double extent = 10.0;
  /// ... subject to a minimum pairwise separation (dart throwing).
  double min_separation = 1.0;
  /// Target shares are sampled from [min_weight, min_weight + 1) and
  /// normalized; raise min_weight toward 1 to flatten them.
  double min_weight = 0.2;
  /// Dart-throwing attempts before giving up (the configuration may be
  /// infeasible, e.g. too many PoIs for the extent).
  std::size_t max_attempts = 10000;
};

/// Samples a random topology (PoI cloud + targets) for stress tests, fuzz
/// suites and scaling benchmarks. Deterministic given the Rng state.
/// Throws std::runtime_error when dart throwing cannot place all PoIs.
Topology random_topology(const RandomTopologyConfig& config, util::Rng& rng);

}  // namespace mocos::geometry
