#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/geometry/vec2.hpp"

namespace mocos::geometry {

/// A named set of PoI locations with per-PoI target coverage shares Φ_i
/// (§III: "the user specifies a target allocation Φ of the sensor's coverage
/// time among the PoIs").
///
/// Invariants enforced at construction:
///  - at least two PoIs;
///  - positions, targets the same length;
///  - targets non-negative and summing to 1 (within 1e-9, then renormalized);
///  - PoIs pairwise distinct.
class Topology {
 public:
  Topology(std::string name, std::vector<Vec2> positions,
           std::vector<double> targets);

  const std::string& name() const { return name_; }
  std::size_t size() const { return positions_.size(); }
  const std::vector<Vec2>& positions() const { return positions_; }
  Vec2 position(std::size_t i) const;
  const std::vector<double>& targets() const { return targets_; }
  double target(std::size_t i) const;

  /// Euclidean distance between PoIs i and j.
  double distance(std::size_t i, std::size_t j) const;

  /// Maximum pairwise distance — useful for sizing sensing radii and pauses.
  double diameter() const;

  /// Smallest pairwise distance; the disjointness condition of §III requires
  /// the sensing radius r < min_separation()/2.
  double min_separation() const;

 private:
  std::string name_;
  std::vector<Vec2> positions_;
  std::vector<double> targets_;
};

/// Builds a rows x cols grid of PoIs on unit cells (PoI i at the centre of
/// cell i, row-major), with the given target allocation.
Topology make_grid(std::string name, std::size_t rows, std::size_t cols,
                   std::vector<double> targets, double cell = 1.0);

/// Uniform target allocation of the given size.
std::vector<double> uniform_targets(std::size_t n);

}  // namespace mocos::geometry
