#include "src/geometry/topology.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace mocos::geometry {

Topology::Topology(std::string name, std::vector<Vec2> positions,
                   std::vector<double> targets)
    : name_(std::move(name)),
      positions_(std::move(positions)),
      targets_(std::move(targets)) {
  if (positions_.size() < 2)
    throw std::invalid_argument("Topology: need at least two PoIs");
  if (targets_.size() != positions_.size())
    throw std::invalid_argument("Topology: targets/positions size mismatch");
  double sum = 0.0;
  for (double t : targets_) {
    if (t < 0.0) throw std::invalid_argument("Topology: negative target");
    sum += t;
  }
  if (std::abs(sum - 1.0) > 1e-9)
    throw std::invalid_argument("Topology: targets must sum to 1");
  for (double& t : targets_) t /= sum;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    for (std::size_t j = i + 1; j < positions_.size(); ++j) {
      if (positions_[i] == positions_[j])
        throw std::invalid_argument("Topology: duplicate PoI positions");
    }
  }
}

Vec2 Topology::position(std::size_t i) const {
  if (i >= positions_.size()) throw std::out_of_range("Topology::position");
  return positions_[i];
}

double Topology::target(std::size_t i) const {
  if (i >= targets_.size()) throw std::out_of_range("Topology::target");
  return targets_[i];
}

double Topology::distance(std::size_t i, std::size_t j) const {
  return geometry::distance(position(i), position(j));
}

double Topology::diameter() const {
  double best = 0.0;
  for (std::size_t i = 0; i < size(); ++i)
    for (std::size_t j = i + 1; j < size(); ++j)
      best = std::max(best, distance(i, j));
  return best;
}

double Topology::min_separation() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < size(); ++i)
    for (std::size_t j = i + 1; j < size(); ++j)
      best = std::min(best, distance(i, j));
  return best;
}

Topology make_grid(std::string name, std::size_t rows, std::size_t cols,
                   std::vector<double> targets, double cell) {
  if (rows * cols < 2)
    throw std::invalid_argument("make_grid: need at least two cells");
  if (cell <= 0.0) throw std::invalid_argument("make_grid: cell size <= 0");
  std::vector<Vec2> pos;
  pos.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      pos.push_back({(static_cast<double>(c) + 0.5) * cell,
                     (static_cast<double>(r) + 0.5) * cell});
    }
  }
  return Topology(std::move(name), std::move(pos), std::move(targets));
}

std::vector<double> uniform_targets(std::size_t n) {
  if (n == 0) throw std::invalid_argument("uniform_targets: n == 0");
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

}  // namespace mocos::geometry
