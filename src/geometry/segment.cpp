#include "src/geometry/segment.hpp"

#include <algorithm>
#include <cmath>

namespace mocos::geometry {

namespace {
// Segments shorter than this are treated as points: a tolerance rather than
// an exact-zero test, because parameterizing along a near-zero direction
// divides by len^2 and amplifies coordinate noise into garbage chords.
constexpr double kDegenerateLength = 1e-12;
}  // namespace

std::optional<ChordInterval> chord_interval_in_disk(const Segment& seg,
                                                    Vec2 c, double r) {
  if (r <= 0.0) return std::nullopt;
  const Vec2 d = seg.b - seg.a;
  const double len = length(d);
  if (len < kDegenerateLength) return std::nullopt;

  // Parameterize the line as a + t*d, t in [0,1]; solve |a + t*d - c| = r.
  const Vec2 f = seg.a - c;
  const double qa = length_sq(d);
  const double qb = 2.0 * dot(f, d);
  const double qc = length_sq(f) - r * r;
  const double disc = qb * qb - 4.0 * qa * qc;
  if (disc <= 0.0) return std::nullopt;  // line misses (or grazes) the disk

  const double sq = std::sqrt(disc);
  const double t0 = std::clamp((-qb - sq) / (2.0 * qa), 0.0, 1.0);
  const double t1 = std::clamp((-qb + sq) / (2.0 * qa), 0.0, 1.0);
  if (t1 <= t0) return std::nullopt;  // chord lies outside the segment
  return ChordInterval{t0 * len, t1 * len};
}

double chord_length_in_disk(const Segment& seg, Vec2 c, double r) {
  const auto interval = chord_interval_in_disk(seg, c, r);
  return interval ? interval->end - interval->begin : 0.0;
}

double distance_to_segment(const Segment& seg, Vec2 p) {
  const Vec2 d = seg.b - seg.a;
  const double len2 = length_sq(d);
  if (len2 < kDegenerateLength * kDegenerateLength)
    return distance(seg.a, p);
  const double t = std::clamp(dot(p - seg.a, d) / len2, 0.0, 1.0);
  return distance(seg.a + t * d, p);
}

}  // namespace mocos::geometry
