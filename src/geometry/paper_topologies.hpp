#pragma once

#include "src/geometry/topology.hpp"

namespace mocos::geometry {

/// The four simulation topologies of Fig. 1 (reconstructed — the figure
/// images are not part of the supplied text; Tables I/II pin Topology 3's
/// targets to (.4,.1,.1,.4)). Cells are unit squares, PoIs at cell centres.
///
/// Topology 1: 2x2 grid, uniform targets (.25 each).
/// Topology 2: 2x2 grid, skewed targets (.7,.1,.1,.1).
/// Topology 3: 1x4 line, symmetric edge-heavy targets (.4,.1,.1,.4).
/// Topology 4: 3x3 grid, mixed targets (.2,.1,.1,.1,.2,.1,.05,.05,.1).
Topology paper_topology(int index);

/// All four, in order.
std::vector<Topology> all_paper_topologies();

}  // namespace mocos::geometry
