#include "src/geometry/route_planner.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace mocos::geometry {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Segment Route::segment(std::size_t i) const {
  if (i + 1 >= waypoints.size())
    throw std::out_of_range("Route::segment");
  return Segment{waypoints[i], waypoints[i + 1]};
}

RoutePlanner::RoutePlanner(const Topology& topology,
                           std::vector<Polygon> obstacles, double clearance)
    : pois_(topology.positions()), obstacles_(std::move(obstacles)) {
  if (clearance <= 0.0)
    throw std::invalid_argument("RoutePlanner: clearance <= 0");
  for (const Polygon& obs : obstacles_) {
    for (Vec2 p : pois_) {
      if (obs.contains(p))
        throw std::invalid_argument(
            "RoutePlanner: a PoI lies inside an obstacle");
    }
  }

  nodes_ = pois_;
  for (const Polygon& obs : obstacles_) {
    for (Vec2 v : obs.inflated_vertices(clearance)) {
      // Skip corner nodes that land inside another obstacle.
      bool buried = false;
      for (const Polygon& other : obstacles_)
        if (other.contains(v)) buried = true;
      if (!buried) nodes_.push_back(v);
    }
  }

  const std::size_t n = nodes_.size();
  edge_.assign(n, std::vector<double>(n, kInf));
  for (std::size_t i = 0; i < n; ++i) {
    edge_[i][i] = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (line_of_sight(nodes_[i], nodes_[j])) {
        const double d = distance(nodes_[i], nodes_[j]);
        edge_[i][j] = d;
        edge_[j][i] = d;
      }
    }
  }

  const std::size_t m = pois_.size();
  routes_.resize(m);
  for (std::size_t a = 0; a < m; ++a) {
    routes_[a].reserve(m);
    for (std::size_t b = 0; b < m; ++b)
      routes_[a].push_back(shortest_route(a, b));
  }
}

bool RoutePlanner::line_of_sight(Vec2 a, Vec2 b) const {
  if (distance(a, b) < 1e-15) return true;
  const Segment seg{a, b};
  for (const Polygon& obs : obstacles_)
    if (obs.blocks(seg)) return false;
  return true;
}

Route RoutePlanner::shortest_route(std::size_t from, std::size_t to) const {
  const std::size_t n = nodes_.size();
  if (from >= pois_.size() || to >= pois_.size())
    throw std::out_of_range("RoutePlanner::shortest_route");
  if (from == to) return Route{{nodes_[from]}, 0.0};

  // Dijkstra over the visibility graph.
  std::vector<double> dist(n, kInf);
  std::vector<std::size_t> prev(n, n);
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[from] = 0.0;
  pq.emplace(0.0, from);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (std::size_t v = 0; v < n; ++v) {
      if (edge_[u][v] == kInf || v == u) continue;
      const double nd = d + edge_[u][v];
      if (nd < dist[v] - 1e-15) {
        dist[v] = nd;
        prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  if (dist[to] == kInf)
    throw std::runtime_error(
        "RoutePlanner: PoIs are separated by obstacles (no feasible route)");

  Route route;
  route.length = dist[to];
  std::vector<Vec2> rev;
  for (std::size_t u = to; u != from; u = prev[u]) {
    if (prev[u] == nodes_.size())
      throw std::logic_error("RoutePlanner: broken predecessor chain");
    rev.push_back(nodes_[u]);
  }
  rev.push_back(nodes_[from]);
  route.waypoints.assign(rev.rbegin(), rev.rend());
  return route;
}

const Route& RoutePlanner::route(std::size_t from, std::size_t to) const {
  if (from >= routes_.size() || to >= routes_.size())
    throw std::out_of_range("RoutePlanner::route");
  return routes_[from][to];
}

}  // namespace mocos::geometry
