#include "src/geometry/random_topology.hpp"

#include <stdexcept>

namespace mocos::geometry {

Topology random_topology(const RandomTopologyConfig& config, util::Rng& rng) {
  if (config.num_pois < 2)
    throw std::invalid_argument("random_topology: num_pois < 2");
  if (config.extent <= 0.0 || config.min_separation <= 0.0)
    throw std::invalid_argument("random_topology: non-positive geometry");
  if (config.min_weight <= 0.0)
    throw std::invalid_argument("random_topology: min_weight <= 0");

  std::vector<Vec2> pts;
  pts.reserve(config.num_pois);
  std::size_t attempts = 0;
  while (pts.size() < config.num_pois) {
    if (++attempts > config.max_attempts)
      throw std::runtime_error(
          "random_topology: could not place PoIs with the requested "
          "separation (extent too small?)");
    const Vec2 candidate{rng.uniform(0.0, config.extent),
                         rng.uniform(0.0, config.extent)};
    bool ok = true;
    for (const Vec2& p : pts)
      if (distance(p, candidate) < config.min_separation) ok = false;
    if (ok) pts.push_back(candidate);
  }

  std::vector<double> weights;
  weights.reserve(config.num_pois);
  double sum = 0.0;
  for (std::size_t i = 0; i < config.num_pois; ++i) {
    weights.push_back(config.min_weight + rng.uniform());
    sum += weights.back();
  }
  for (double& w : weights) w /= sum;
  return Topology("random", std::move(pts), std::move(weights));
}

}  // namespace mocos::geometry
