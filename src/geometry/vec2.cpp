#include "src/geometry/vec2.hpp"

#include <cmath>

namespace mocos::geometry {

double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

double length_sq(Vec2 a) { return dot(a, a); }

double length(Vec2 a) { return std::sqrt(length_sq(a)); }

double distance(Vec2 a, Vec2 b) { return length(a - b); }

}  // namespace mocos::geometry
