#include "src/geometry/paper_topologies.hpp"

#include <stdexcept>

namespace mocos::geometry {

Topology paper_topology(int index) {
  switch (index) {
    case 1:
      return make_grid("Topology 1", 2, 2, {0.25, 0.25, 0.25, 0.25});
    case 2:
      return make_grid("Topology 2", 2, 2, {0.70, 0.10, 0.10, 0.10});
    case 3:
      return make_grid("Topology 3", 1, 4, {0.40, 0.10, 0.10, 0.40});
    case 4:
      return make_grid("Topology 4", 3, 3,
                       {0.20, 0.10, 0.10, 0.10, 0.20, 0.10, 0.05, 0.05, 0.10});
    default:
      throw std::invalid_argument("paper_topology: index must be 1..4");
  }
}

std::vector<Topology> all_paper_topologies() {
  return {paper_topology(1), paper_topology(2), paper_topology(3),
          paper_topology(4)};
}

}  // namespace mocos::geometry
