#pragma once

#include <optional>

#include "src/geometry/vec2.hpp"

namespace mocos::geometry {

/// Directed straight-line segment from `a` to `b` — the travel route the
/// sensor takes between two PoIs (§VI: "the sensor uses the straight-line
/// path between i and j").
struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return distance(a, b); }
};

/// Length of the portion of `seg` lying strictly inside the disk of radius
/// `r` centred at `c`. This is the pass-by coverage geometry: while the
/// sensor's position is within distance r of PoI c, that PoI is covered, so
/// the covered travel time is chord_length / speed.
///
/// Degenerate segments (length 0) return 0 — pauses are accounted for
/// separately by the travel model.
double chord_length_in_disk(const Segment& seg, Vec2 c, double r);

/// The arc-length interval [begin, end] (measured from seg.a) of the portion
/// of `seg` inside the disk; nullopt when the segment misses (or merely
/// grazes) the disk. chord_length_in_disk == end - begin.
struct ChordInterval {
  double begin = 0.0;
  double end = 0.0;
};
std::optional<ChordInterval> chord_interval_in_disk(const Segment& seg,
                                                    Vec2 c, double r);

/// Shortest distance from point `p` to the segment.
double distance_to_segment(const Segment& seg, Vec2 p);

}  // namespace mocos::geometry
