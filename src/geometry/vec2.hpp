#pragma once

namespace mocos::geometry {

/// 2-D point/vector in the plane the PoIs live in.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend bool operator==(Vec2 a, Vec2 b) = default;
};

double dot(Vec2 a, Vec2 b);
double length(Vec2 a);
double distance(Vec2 a, Vec2 b);
/// Squared length, avoiding the sqrt when only comparisons are needed.
double length_sq(Vec2 a);

}  // namespace mocos::geometry
