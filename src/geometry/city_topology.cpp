#include "src/geometry/city_topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "src/util/rng.hpp"

namespace mocos::geometry {

Topology city_topology(const CityConfig& config) {
  if (config.count < 2)
    throw std::invalid_argument("city_topology: count < 2");
  if (config.spacing <= 0.0)
    throw std::invalid_argument("city_topology: non-positive spacing");
  const double jitter =
      std::clamp(config.jitter, 0.0, 0.35) * config.spacing;

  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(config.count))));
  util::Rng rng(config.seed);
  std::vector<Vec2> pts;
  pts.reserve(config.count);
  for (std::size_t k = 0; k < config.count; ++k) {
    const std::size_t row = k / side;
    const std::size_t col = k % side;
    pts.push_back(
        {(static_cast<double>(col) + 0.5) * config.spacing +
             rng.uniform(-jitter, jitter),
         (static_cast<double>(row) + 0.5) * config.spacing +
             rng.uniform(-jitter, jitter)});
  }

  std::vector<double> weights;
  weights.reserve(config.count);
  double sum = 0.0;
  for (std::size_t i = 0; i < config.count; ++i) {
    weights.push_back(0.2 + rng.uniform());
    sum += weights.back();
  }
  for (double& w : weights) w /= sum;
  return Topology("city" + std::to_string(config.count), std::move(pts),
                  std::move(weights));
}

std::vector<std::vector<std::size_t>> radius_neighbors(
    const Topology& topology, double radius) {
  if (!(radius > 0.0))
    throw std::invalid_argument("radius_neighbors: non-positive radius");
  const std::size_t n = topology.size();
  const auto& pts = topology.positions();

  // Spatial hash with radius-sized cells: any neighbour within `radius`
  // lives in the 3×3 cell patch around a PoI's own cell.
  auto cell_of = [&](const Vec2& p) {
    return std::pair<std::int64_t, std::int64_t>{
        static_cast<std::int64_t>(std::floor(p.x / radius)),
        static_cast<std::int64_t>(std::floor(p.y / radius))};
  };
  auto key_of = [](std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(cx) << 32) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  };
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> grid;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(pts[i]);
    grid[key_of(cx, cy)].push_back(i);
  }

  std::vector<std::vector<std::size_t>> neighbors(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(pts[i]);
    auto& list = neighbors[i];
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = grid.find(key_of(cx + dx, cy + dy));
        if (it == grid.end()) continue;
        for (std::size_t j : it->second)
          if (distance(pts[i], pts[j]) <= radius) list.push_back(j);
      }
    }
    std::sort(list.begin(), list.end());
  }
  return neighbors;
}

}  // namespace mocos::geometry
