#include "src/geometry/polygon.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mocos::geometry {

namespace {
constexpr double kEps = 1e-12;

bool on_segment(Vec2 a, Vec2 b, Vec2 p) {
  // p collinear with ab assumed; checks p within the bounding box.
  return std::min(a.x, b.x) - kEps <= p.x && p.x <= std::max(a.x, b.x) + kEps &&
         std::min(a.y, b.y) - kEps <= p.y && p.y <= std::max(a.y, b.y) + kEps;
}
}  // namespace

double orientation(Vec2 a, Vec2 b, Vec2 c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool segments_intersect(const Segment& a, const Segment& b) {
  const double d1 = orientation(a.a, a.b, b.a);
  const double d2 = orientation(a.a, a.b, b.b);
  const double d3 = orientation(b.a, b.b, a.a);
  const double d4 = orientation(b.a, b.b, a.b);

  // Proper crossing: strict sign changes on both segments.
  if (((d1 > kEps && d2 < -kEps) || (d1 < -kEps && d2 > kEps)) &&
      ((d3 > kEps && d4 < -kEps) || (d3 < -kEps && d4 > kEps)))
    return true;

  // Collinear overlap: any endpoint strictly interior to the other segment.
  auto strictly_inside = [](Vec2 p, const Segment& s) {
    if (std::abs(orientation(s.a, s.b, p)) > kEps) return false;
    if (!on_segment(s.a, s.b, p)) return false;
    return distance(p, s.a) > 1e-9 && distance(p, s.b) > 1e-9;
  };
  return strictly_inside(b.a, a) || strictly_inside(b.b, a) ||
         strictly_inside(a.a, b) || strictly_inside(a.b, b);
}

Polygon::Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() < 3)
    throw std::invalid_argument("Polygon: need at least 3 vertices");
  for (std::size_t i = 0; i < vertices_.size(); ++i)
    for (std::size_t j = i + 1; j < vertices_.size(); ++j)
      if (distance(vertices_[i], vertices_[j]) < 1e-12)
        throw std::invalid_argument("Polygon: duplicate vertices");
}

Polygon Polygon::rectangle(Vec2 min_corner, Vec2 max_corner) {
  if (min_corner.x >= max_corner.x || min_corner.y >= max_corner.y)
    throw std::invalid_argument("Polygon::rectangle: degenerate corners");
  return Polygon({min_corner,
                  {max_corner.x, min_corner.y},
                  max_corner,
                  {min_corner.x, max_corner.y}});
}

Vec2 Polygon::centroid() const {
  Vec2 c{0.0, 0.0};
  for (Vec2 v : vertices_) c = c + v;
  return c * (1.0 / static_cast<double>(vertices_.size()));
}

bool Polygon::contains(Vec2 p) const {
  // Ray casting toward +x, with boundary points reported as outside.
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Segment edge{vertices_[i], vertices_[(i + 1) % n]};
    if (std::abs(orientation(edge.a, edge.b, p)) <= kEps &&
        on_segment(edge.a, edge.b, p))
      return false;  // on the boundary
  }
  bool inside = false;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % n];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (!crosses) continue;
    const double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
    if (x_at > p.x) inside = !inside;
  }
  return inside;
}

bool Polygon::blocks(const Segment& seg) const {
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Segment edge{vertices_[i], vertices_[(i + 1) % n]};
    if (segments_intersect(seg, edge)) return true;
  }
  // Fully-inside segments (no edge crossing) and grazing chords through the
  // interior: test a few interior sample points.
  for (double t : {0.25, 0.5, 0.75}) {
    if (contains(seg.a + t * (seg.b - seg.a))) return true;
  }
  return contains(seg.a) || contains(seg.b);
}

std::vector<Vec2> Polygon::inflated_vertices(double margin) const {
  if (margin <= 0.0)
    throw std::invalid_argument("Polygon::inflated_vertices: margin <= 0");
  const Vec2 c = centroid();
  std::vector<Vec2> out;
  out.reserve(vertices_.size());
  for (Vec2 v : vertices_) {
    const Vec2 d = v - c;
    const double len = length(d);
    // Degenerate (vertex at centroid) cannot happen for valid polygons with
    // distinct vertices unless symmetric; guard anyway.
    out.push_back(len < 1e-12 ? v : v + d * (margin / len));
  }
  return out;
}

}  // namespace mocos::geometry
