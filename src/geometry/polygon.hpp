#pragma once

#include <vector>

#include "src/geometry/segment.hpp"
#include "src/geometry/vec2.hpp"

namespace mocos::geometry {

/// Simple (non-self-intersecting) polygon used as a travel obstacle.
/// Vertices in order (either winding); at least 3, pairwise distinct.
class Polygon {
 public:
  explicit Polygon(std::vector<Vec2> vertices);

  /// Axis-aligned rectangle convenience.
  static Polygon rectangle(Vec2 min_corner, Vec2 max_corner);

  const std::vector<Vec2>& vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }
  Vec2 centroid() const;

  /// Point strictly inside the polygon (boundary counts as outside).
  bool contains(Vec2 p) const;

  /// True when the open segment crosses the polygon's interior: it properly
  /// intersects an edge, or has an interior point inside the polygon. Used
  /// to reject visibility-graph edges.
  bool blocks(const Segment& seg) const;

  /// Vertices pushed outward from the centroid by `margin` — the nodes a
  /// route planner can safely navigate through without grazing the boundary.
  std::vector<Vec2> inflated_vertices(double margin) const;

 private:
  std::vector<Vec2> vertices_;
};

/// Orientation of the triplet (a, b, c): > 0 counter-clockwise,
/// < 0 clockwise, 0 collinear.
double orientation(Vec2 a, Vec2 b, Vec2 c);

/// Proper crossing test: the open segments intersect in exactly one interior
/// point. Shared endpoints and collinear overlaps are handled conservatively
/// (overlap counts as intersecting; a mere touch at endpoints does not).
bool segments_intersect(const Segment& a, const Segment& b);

}  // namespace mocos::geometry
