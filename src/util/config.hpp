#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.hpp"

namespace mocos::util {

/// Minimal key = value configuration format for the CLI tool:
///
///   # comment lines and blank lines are ignored
///   topology = grid:2x3
///   targets  = 0.4,0.2,0.1,0.1,0.1,0.1   # trailing comments stripped
///   obstacle = rect:1.5,1.5,2.5,2.5      # keys may repeat
///
/// Keys are case-sensitive; whitespace around keys and values is trimmed.
/// Repeated keys are preserved in order (see get_all).
class Config {
 public:
  /// Parses config text. Malformed lines throw std::invalid_argument with a
  /// "<source>:<line>: ..." prefix; `source` defaults to "<string>" and is
  /// set to the file path by parse_file.
  static Config parse_string(const std::string& text,
                             const std::string& source = "<string>");
  /// Throws util::StatusError (code kInvalidConfig, still a
  /// std::runtime_error) naming the path when the file cannot be read;
  /// malformed lines are reported as "<path>:<line>: ...".
  static Config parse_file(const std::string& path);

  bool has(const std::string& key) const;

  /// Last value wins for scalar lookups (ini-style override semantics).
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  /// Throws std::out_of_range when the key is absent.
  std::string require_string(const std::string& key) const;

  double get_double(const std::string& key, double fallback) const;
  /// get_double with a range gate on the result (fallback included): the
  /// value must be finite and > 0 (positive) / >= 0 (non-negative); NaN
  /// fails both. Throws std::invalid_argument naming the key — the
  /// validation path for weight-like optimizer keys.
  double get_positive_double(const std::string& key, double fallback) const;
  double get_non_negative_double(const std::string& key,
                                 double fallback) const;
  std::size_t get_size(const std::string& key, std::size_t fallback) const;
  /// Accepts true/false/1/0/yes/no (case-insensitive).
  bool get_bool(const std::string& key, bool fallback) const;

  /// All values of a repeated key, in file order.
  std::vector<std::string> get_all(const std::string& key) const;

  /// Distinct keys, in first-appearance order.
  std::vector<std::string> keys() const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Splits `text` on `sep`, trimming whitespace from each piece. Empty pieces
/// are kept (so "1,,2" has three fields) except a fully empty input gives {}.
std::vector<std::string> split(const std::string& text, char sep);

/// Strict double parser (whole token must parse). Throws
/// std::invalid_argument with the offending token in the message.
double parse_double(const std::string& token);

std::string trim(const std::string& s);

}  // namespace mocos::util
