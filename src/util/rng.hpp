#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace mocos::util {

/// Seeded pseudo-random number generator used everywhere in the library.
///
/// Wraps a 64-bit Mersenne Twister behind a small, intention-revealing API so
/// that experiment code never touches `<random>` distributions directly and
/// every stochastic component (optimizer noise, simulator transitions,
/// random initial matrices) is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), base_seed_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi; returns lo when lo == hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Standard normal sample.
  double gaussian();

  /// Normal sample with the given mean and standard deviation (sigma >= 0).
  double gaussian(double mean, double sigma);

  /// Samples an index from a discrete distribution given by `weights`
  /// (non-negative, not all zero). Used by the Markov simulator to pick the
  /// next PoI from a row of the transition matrix.
  std::size_t discrete(const std::vector<double>& weights);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derives an independent child generator; lets replicated experiments run
  /// with per-replica streams while staying reproducible from the root seed.
  ///
  /// Order-dependent: each call consumes from the engine, so the k-th split
  /// depends on how many draws preceded it. Serial code may rely on that;
  /// parallel fan-out must use the indexed `stream()` derivation instead.
  Rng split();

  /// Derives the `task_index`-th independent child stream by hash-mixing the
  /// construction seed with the index (SplitMix64 finalizer). Const — never
  /// consumes from the engine — so the derived stream depends only on
  /// (seed, task_index), not on scheduling or call order: the
  /// parallel-safe derivation every `runtime::parallel_for` site uses.
  Rng stream(std::uint64_t task_index) const;

  /// Draws one value from the engine and hash-mixes it into a fresh base
  /// seed for a family of indexed streams (`Rng(rng.stream_base())` then
  /// `.stream(i)` per task). Advancing exactly one draw per call keeps
  /// successive families distinct while staying deterministic for any
  /// worker count.
  std::uint64_t stream_base();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t base_seed_;
};

}  // namespace mocos::util
