#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mocos::util {

/// Minimal CSV writer so benches can optionally dump figure series for
/// external plotting alongside their printed output.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<double>& values);
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace mocos::util
