#pragma once

#include "src/util/status.hpp"

namespace mocos::util {

/// Cheap validators for the quantities the numerical pipeline passes between
/// layers. Each is a single O(size) scan; the `check_*` forms return a
/// structured Status naming the offending entry so recovery code and logs can
/// report *where* a computation went bad, not just that it did.
///
/// Only the scalar overloads live here — util is the bottom layer and must
/// not see linalg types. The Vector/Matrix overloads (same names, same
/// namespace) are in src/linalg/guard.hpp, which linalg-aware layers include
/// instead.

[[nodiscard]] bool all_finite(double v);

/// kNonFiniteValue naming `what`.
[[nodiscard]] Status check_finite(double v, const char* what);

}  // namespace mocos::util
