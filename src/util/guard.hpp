#pragma once

#include "src/linalg/matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::util {

/// Cheap validators for the quantities the numerical pipeline passes between
/// layers. Each is a single O(size) scan; the `check_*` forms return a
/// structured Status naming the offending entry so recovery code and logs can
/// report *where* a computation went bad, not just that it did.

[[nodiscard]] bool all_finite(double v);
[[nodiscard]] bool all_finite(const linalg::Vector& v);
[[nodiscard]] bool all_finite(const linalg::Matrix& m);

/// kNonFiniteValue naming `what` and the first bad index.
[[nodiscard]] Status check_finite(double v, const char* what);
[[nodiscard]] Status check_finite(const linalg::Vector& v, const char* what);
[[nodiscard]] Status check_finite(const linalg::Matrix& m, const char* what);

/// Row-stochasticity to within `tol`: finite entries in [-tol, 1+tol] with
/// every row summing to 1 ± tol. Returns kNonFiniteValue or kNotErgodic.
[[nodiscard]] Status check_row_stochastic(const linalg::Matrix& m,
                                          double tol = 1e-8);

/// Probability vector: finite, entries >= -tol, sums to 1 ± tol.
[[nodiscard]] Status check_probability_vector(const linalg::Vector& v,
                                              double tol = 1e-8);

/// Strictly positive entries (mean return times, stationary masses ahead of a
/// division). Returns kNotErgodic naming the first non-positive index.
[[nodiscard]] Status check_strictly_positive(const linalg::Vector& v,
                                             const char* what,
                                             double floor = 0.0);

}  // namespace mocos::util
