#include "src/util/status.hpp"

namespace mocos::util {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidConfig:
      return "invalid-config";
    case StatusCode::kSingularMatrix:
      return "singular-matrix";
    case StatusCode::kNotErgodic:
      return "not-ergodic";
    case StatusCode::kNonFiniteValue:
      return "non-finite-value";
    case StatusCode::kStepRejected:
      return "step-rejected";
    case StatusCode::kSizeMismatch:
      return "size-mismatch";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out = util::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

bool is_numerical_failure(StatusCode code) {
  switch (code) {
    case StatusCode::kSingularMatrix:
    case StatusCode::kNotErgodic:
    case StatusCode::kNonFiniteValue:
    case StatusCode::kStepRejected:
      return true;
    default:
      return false;
  }
}

}  // namespace mocos::util
