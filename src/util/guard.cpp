#include "src/util/guard.hpp"

#include <cmath>
#include <string>

namespace mocos::util {

namespace {

std::string fmt_entry(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "+inf" : "-inf";
  return std::to_string(v);
}

}  // namespace

bool all_finite(double v) { return std::isfinite(v); }

Status check_finite(double v, const char* what) {
  if (std::isfinite(v)) return Status::ok();
  return Status(StatusCode::kNonFiniteValue,
                std::string(what) + " is " + fmt_entry(v));
}

}  // namespace mocos::util
