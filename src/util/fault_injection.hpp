#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

/// Deterministic fault injection for the numerical-failure containment tests.
///
/// Instrumented sites in the library call `fault::fire(Site::...)` at the top
/// of the fragile operation; tests arm a site to make that call return true
/// on chosen invocations (the k-th factorization, every gradient after
/// iteration 10, a seeded 5% of line searches, ...). The instrumented code
/// then fails exactly the way the real failure mode would — try_factor
/// reports kSingularMatrix, the gradient comes back NaN, the line search
/// rejects the step — so the recovery ladder is exercised end to end.
///
/// Compiled in when MOCOS_FAULT_INJECTION is defined (the default CMake
/// configuration, so the test suite can use it). When the macro is absent
/// every hook collapses to `constexpr false` and the instrumented branches
/// are dead-stripped: zero overhead for production builds
/// (-DMOCOS_FAULT_INJECTION=OFF).
namespace mocos::util::fault {

enum class Site : std::size_t {
  kLuFactor = 0,   // LuDecomposition factorization reports singular
  kStationary,     // direct stationary solve fails (exercises power fallback)
  kGradient,       // cost gradient is poisoned with NaN
  kLineSearch,     // trisection search returns Δt* = 0 (step rejected)
  kIncrementalDenominator,  // Sherman–Morrison denominator reads as
                            // ill-conditioned (forces the full-solve
                            // fallback in ChainSolveCache)
  // Request-layer sites (mocos_serve): each must surface as one structured
  // response — never as process death.
  kServeDecodeFault,  // NDJSON request decoding fails (malformed-input path)
  kServeQueueFull,    // admission control reports a full queue (load shed)
  kServeStuckWorker,  // worker wedges past its deadline, ignoring the
                      // cooperative cancellation check (watchdog path)
  kSiteCount,      // sentinel
};

const char* to_string(Site site);

/// Inverse of to_string ("serve-queue-full" -> kServeQueueFull); nullopt for
/// unknown names. Used by the mocos_serve --fault flag, which arms sites by
/// their stable identifiers.
std::optional<Site> site_from_string(std::string_view name);

#ifdef MOCOS_FAULT_INJECTION

/// Arms `site` to fire on invocations [fire_at, fire_at + count) counted
/// from the moment of arming (0-based). Re-arming a site resets its counter.
void arm(Site site, std::uint64_t fire_at, std::uint64_t count = 1);

/// Arms `site` to fire on a deterministic, seed-reproducible subset of
/// invocations with the given probability (xorshift stream; two runs with
/// the same seed inject identical faults).
void arm_probabilistic(Site site, double probability, std::uint64_t seed);

void disarm(Site site);
void disarm_all();

/// Invocations of `site` observed since it was last armed (also counts while
/// disarmed, from process start).
std::uint64_t evaluations(Site site);
/// Invocations on which the site actually fired since last armed.
std::uint64_t fired(Site site);

/// The hook the instrumented library code calls. Returns true when the
/// current invocation should fail.
bool fire(Site site);

#else

inline void arm(Site, std::uint64_t, std::uint64_t = 1) {}
inline void arm_probabilistic(Site, double, std::uint64_t) {}
inline void disarm(Site) {}
inline void disarm_all() {}
inline std::uint64_t evaluations(Site) { return 0; }
inline std::uint64_t fired(Site) { return 0; }
constexpr bool fire(Site) { return false; }

#endif  // MOCOS_FAULT_INJECTION

/// RAII arming for tests: disarms everything on scope exit even when the
/// test assertion throws.
struct ScopedFault {
  ScopedFault(Site site, std::uint64_t fire_at, std::uint64_t count = 1) {
    arm(site, fire_at, count);
  }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
  ~ScopedFault() { disarm_all(); }
};

}  // namespace mocos::util::fault
