#pragma once

/// Clang Thread Safety Analysis attribute shim (DESIGN.md §13).
///
/// The macros expand to Clang's `capability`/`guarded_by`/... attributes
/// when the compiler understands them and to nothing everywhere else, so
/// the annotations are a portable part of every declaration: GCC builds
/// them as plain code, the `-Wthread-safety -Werror` CI job (CMake option
/// MOCOS_THREAD_SAFETY) turns them into compile-time lock-discipline
/// proofs.
///
/// Conventions (see src/util/mutex.hpp for the annotated primitives):
///
///  - every mutex-protected member is declared `T x_ MOCOS_GUARDED_BY(mu_);`
///  - private helpers called with a lock already held are named `*_locked`
///    and annotated `MOCOS_REQUIRES(mu_)`;
///  - public entry points that take the lock themselves are annotated
///    `MOCOS_EXCLUDES(mu_)` so self-deadlock is a build failure;
///  - `MOCOS_NO_THREAD_SAFETY_ANALYSIS` is a last resort and must carry a
///    comment explaining why the analysis cannot see the invariant.

#if defined(__clang__) && !defined(SWIG)
#define MOCOS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MOCOS_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define MOCOS_CAPABILITY(x) MOCOS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define MOCOS_SCOPED_CAPABILITY MOCOS_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read or written while holding `x`.
#define MOCOS_GUARDED_BY(x) MOCOS_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data may only be touched while holding `x`.
#define MOCOS_PT_GUARDED_BY(x) MOCOS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the named capabilities and holds them on return.
#define MOCOS_ACQUIRE(...) \
  MOCOS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the named capabilities (held on entry).
#define MOCOS_RELEASE(...) \
  MOCOS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Caller must hold the named capabilities across the call.
#define MOCOS_REQUIRES(...) \
  MOCOS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the named capabilities (self-deadlock guard).
#define MOCOS_EXCLUDES(...) MOCOS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability only when it returns `ret`.
#define MOCOS_TRY_ACQUIRE(ret, ...) \
  MOCOS_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Declares a runtime assertion that the capability is held.
#define MOCOS_ASSERT_CAPABILITY(x) \
  MOCOS_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define MOCOS_RETURN_CAPABILITY(x) MOCOS_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis; must carry a justification comment.
#define MOCOS_NO_THREAD_SAFETY_ANALYSIS \
  MOCOS_THREAD_ANNOTATION(no_thread_safety_analysis)
