#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mocos::util {

/// Fixed-width plain-text table used by the bench harnesses to print the
/// paper's tables and figure series in a diff-friendly format.
///
/// Usage:
///   Table t({"alpha:beta", "C1", "C2"});
///   t.add_row({"1:0", "0.400", "0.100"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 6);

  std::size_t rows() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by benches).
std::string fmt(double value, int precision = 6);

}  // namespace mocos::util
