#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mocos::util {

/// Online mean/variance accumulator (Welford). Used by the simulator and the
/// experiment harnesses to aggregate replicated measurements without storing
/// every sample when only moments are needed.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation percentile of a sample (p in [0,100]).
/// The input is copied and sorted; suitable for the modest sample sizes the
/// benches use (hundreds of runs).
double percentile(std::vector<double> samples, double p);

double mean(const std::vector<double>& samples);
double stddev(const std::vector<double>& samples);
double min_of(const std::vector<double>& samples);
double max_of(const std::vector<double>& samples);

/// Empirical CDF evaluated on `points` support values: returns, for each
/// requested abscissa, the fraction of samples <= that value. Used to print
/// the Fig. 2 CDFs of achieved cost.
std::vector<double> empirical_cdf(const std::vector<double>& samples,
                                  const std::vector<double>& points);

/// Builds `n` evenly spaced abscissas spanning [min(samples), max(samples)].
std::vector<double> cdf_support(const std::vector<double>& samples,
                                std::size_t n);

/// Percentile-bootstrap confidence interval for the mean of a sample.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;  // the sample mean

  bool contains(double value) const {
    return lower <= value && value <= upper;
  }
};

/// `confidence` in (0,1), e.g. 0.95; `resamples` bootstrap replicates drawn
/// with the given seed (deterministic). Needs at least 2 samples.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     double confidence = 0.95,
                                     std::size_t resamples = 2000,
                                     std::uint64_t seed = 1);

}  // namespace mocos::util
