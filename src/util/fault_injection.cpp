#include "src/util/fault_injection.hpp"

#ifdef MOCOS_FAULT_INJECTION
#include <atomic>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#endif

namespace mocos::util::fault {

const char* to_string(Site site) {
  switch (site) {
    case Site::kLuFactor:
      return "lu-factor";
    case Site::kStationary:
      return "stationary";
    case Site::kGradient:
      return "gradient";
    case Site::kLineSearch:
      return "line-search";
    case Site::kIncrementalDenominator:
      return "incremental-denominator";
    case Site::kServeDecodeFault:
      return "serve-decode";
    case Site::kServeQueueFull:
      return "serve-queue-full";
    case Site::kServeStuckWorker:
      return "serve-stuck-worker";
    case Site::kSiteCount:
      break;
  }
  return "unknown";
}

std::optional<Site> site_from_string(std::string_view name) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Site::kSiteCount);
       ++i) {
    const Site site = static_cast<Site>(i);
    if (name == to_string(site)) return site;
  }
  return std::nullopt;
}

#ifdef MOCOS_FAULT_INJECTION

namespace {

enum class Mode : std::uint8_t { kDisarmed, kWindow, kProbabilistic };

/// Per-site state, lock-free so instrumented hot paths stay cheap when
/// workers run concurrently. Arm/disarm publish the configuration fields
/// first and flip `mode` last (release); `fire` reads `mode` with acquire,
/// so a hit never observes a half-written configuration. The counters are
/// plain relaxed atomics — tests only read them after the parallel region.
struct SiteState {
  std::atomic<Mode> mode{Mode::kDisarmed};
  std::atomic<std::uint64_t> fire_at{0};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> probability{0.0};
  std::atomic<std::uint64_t> rng_state{0};
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> fired{0};
};

SiteState g_sites[static_cast<std::size_t>(Site::kSiteCount)];

SiteState& state(Site site) {
  return g_sites[static_cast<std::size_t>(site)];
}

std::uint64_t xorshift_next(std::uint64_t s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s;
}

// xorshift64*: tiny, deterministic, good enough for fault sampling.
double to_uniform(std::uint64_t s) {
  const std::uint64_t r = s * 0x2545F4914F6CDD1DULL;
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

void reset(SiteState& s) {
  // Take the site out of service before clearing its configuration so a
  // concurrent fire() never samples stale settings under a live mode.
  s.mode.store(Mode::kDisarmed, std::memory_order_release);
  s.fire_at.store(0, std::memory_order_relaxed);
  s.count.store(0, std::memory_order_relaxed);
  s.probability.store(0.0, std::memory_order_relaxed);
  s.rng_state.store(0, std::memory_order_relaxed);
  s.evaluations.store(0, std::memory_order_relaxed);
  s.fired.store(0, std::memory_order_relaxed);
}

}  // namespace

void arm(Site site, std::uint64_t fire_at, std::uint64_t count) {
  SiteState& s = state(site);
  reset(s);
  s.fire_at.store(fire_at, std::memory_order_relaxed);
  s.count.store(count, std::memory_order_relaxed);
  s.mode.store(Mode::kWindow, std::memory_order_release);
}

void arm_probabilistic(Site site, double probability, std::uint64_t seed) {
  SiteState& s = state(site);
  reset(s);
  s.probability.store(probability, std::memory_order_relaxed);
  s.rng_state.store(seed ? seed : 0x9E3779B97F4A7C15ULL,
                    std::memory_order_relaxed);
  s.mode.store(Mode::kProbabilistic, std::memory_order_release);
}

void disarm(Site site) { reset(state(site)); }

void disarm_all() {
  for (auto& s : g_sites) reset(s);
}

std::uint64_t evaluations(Site site) {
  return state(site).evaluations.load(std::memory_order_relaxed);
}

std::uint64_t fired(Site site) {
  return state(site).fired.load(std::memory_order_relaxed);
}

bool fire(Site site) {
  SiteState& s = state(site);
  const std::uint64_t n =
      s.evaluations.fetch_add(1, std::memory_order_relaxed);
  bool hit = false;
  switch (s.mode.load(std::memory_order_acquire)) {
    case Mode::kDisarmed:
      break;
    case Mode::kWindow:
      hit = n >= s.fire_at.load(std::memory_order_relaxed) &&
            n < s.fire_at.load(std::memory_order_relaxed) +
                    s.count.load(std::memory_order_relaxed);
      break;
    case Mode::kProbabilistic: {
      // Advance the shared xorshift stream with a CAS loop: every invocation
      // consumes exactly one state, so the injected-fault *count* stays
      // seed-reproducible even though which thread draws which state is
      // scheduling-dependent.
      std::uint64_t prev = s.rng_state.load(std::memory_order_relaxed);
      std::uint64_t next;
      do {
        next = xorshift_next(prev);
      } while (!s.rng_state.compare_exchange_weak(
          prev, next, std::memory_order_relaxed, std::memory_order_relaxed));
      hit = to_uniform(next) <
            s.probability.load(std::memory_order_relaxed);
      break;
    }
  }
  if (hit) {
    s.fired.fetch_add(1, std::memory_order_relaxed);
    // Rare by construction (a firing injected fault), so the string build is
    // off the hot path; the un-hit call stays two relaxed atomic ops.
    obs::count(std::string("fault.fired.") + to_string(site));
    if (obs::trace_active()) {
      obs::trace_instant("fault.fired", "fault",
                         obs::TraceArgs().str("site", to_string(site)));
    }
  }
  return hit;
}

#endif  // MOCOS_FAULT_INJECTION

}  // namespace mocos::util::fault
