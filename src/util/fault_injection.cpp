#include "src/util/fault_injection.hpp"

namespace mocos::util::fault {

const char* to_string(Site site) {
  switch (site) {
    case Site::kLuFactor:
      return "lu-factor";
    case Site::kStationary:
      return "stationary";
    case Site::kGradient:
      return "gradient";
    case Site::kLineSearch:
      return "line-search";
    case Site::kSiteCount:
      break;
  }
  return "unknown";
}

#ifdef MOCOS_FAULT_INJECTION

namespace {

enum class Mode { kDisarmed, kWindow, kProbabilistic };

struct SiteState {
  Mode mode = Mode::kDisarmed;
  std::uint64_t fire_at = 0;
  std::uint64_t count = 0;
  double probability = 0.0;
  std::uint64_t rng_state = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t fired = 0;
};

SiteState g_sites[static_cast<std::size_t>(Site::kSiteCount)];

SiteState& state(Site site) {
  return g_sites[static_cast<std::size_t>(site)];
}

// xorshift64*: tiny, deterministic, good enough for fault sampling.
double next_uniform(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  const std::uint64_t r = s * 0x2545F4914F6CDD1DULL;
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

void arm(Site site, std::uint64_t fire_at, std::uint64_t count) {
  SiteState& s = state(site);
  s = SiteState{};
  s.mode = Mode::kWindow;
  s.fire_at = fire_at;
  s.count = count;
}

void arm_probabilistic(Site site, double probability, std::uint64_t seed) {
  SiteState& s = state(site);
  s = SiteState{};
  s.mode = Mode::kProbabilistic;
  s.probability = probability;
  s.rng_state = seed ? seed : 0x9E3779B97F4A7C15ULL;
}

void disarm(Site site) { state(site) = SiteState{}; }

void disarm_all() {
  for (auto& s : g_sites) s = SiteState{};
}

std::uint64_t evaluations(Site site) { return state(site).evaluations; }

std::uint64_t fired(Site site) { return state(site).fired; }

bool fire(Site site) {
  SiteState& s = state(site);
  const std::uint64_t n = s.evaluations++;
  bool hit = false;
  switch (s.mode) {
    case Mode::kDisarmed:
      break;
    case Mode::kWindow:
      hit = n >= s.fire_at && n < s.fire_at + s.count;
      break;
    case Mode::kProbabilistic:
      hit = next_uniform(s.rng_state) < s.probability;
      break;
  }
  if (hit) ++s.fired;
  return hit;
}

#endif  // MOCOS_FAULT_INJECTION

}  // namespace mocos::util::fault
