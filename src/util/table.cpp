#include "src/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mocos::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

}  // namespace mocos::util
