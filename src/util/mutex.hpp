#pragma once

#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.hpp"

namespace mocos::util {

/// The project's annotated mutex (DESIGN.md §13). A thin wrapper over
/// std::mutex that Clang's thread safety analysis can see: libstdc++'s
/// std::mutex carries no capability attributes, so locking through it is
/// invisible to -Wthread-safety. Every mutex member in src/ must be a
/// util::Mutex — mocos_lint's lock-raw-mutex rule makes a bare std::mutex
/// outside this header a lint failure, and the annotations here make an
/// unlocked access to a MOCOS_GUARDED_BY member a build failure.
class MOCOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Prefer MutexLock; these exist for the rare hand-over-hand pattern and
  /// for MutexLock itself. mocos_lint's lock-raw-call rule keeps bare
  /// lock()/unlock() pairs out of the rest of the tree.
  void lock() MOCOS_ACQUIRE() { mu_.lock(); }
  void unlock() MOCOS_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a util::Mutex — the only way the tree takes a lock.
/// Scoped by design: there is deliberately no release() member, so a lock's
/// extent is always a brace scope the analysis (and a reader) can see.
class MOCOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MOCOS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MOCOS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with util::Mutex. wait() deliberately takes no
/// predicate: writing the loop at the call site —
///
///   util::MutexLock lock(mu_);
///   while (!condition_over_guarded_state()) cv_.wait(mu_);
///
/// — keeps the guarded reads in a context where the analysis can prove the
/// lock is held (a predicate lambda would be analyzed as lock-free code).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires. Spurious
  /// wakeups happen; always wait in a while loop over the condition.
  void wait(Mutex& mu) MOCOS_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the adoption so the MutexLock at the call site stays the
    // owner. The capability is held on entry and on exit, which is exactly
    // what MOCOS_REQUIRES states; the temporary release inside wait() is
    // internal to the condition-variable protocol.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mocos::util
