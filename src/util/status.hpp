#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace mocos::util {

/// Taxonomy of the numerical and configuration failures the library can
/// contain without crashing. The throwing entry points keep throwing; the
/// `Try*` variants (LuDecomposition::try_factor, try_stationary_distribution,
/// try_analyze_chain, ...) return one of these codes instead so callers — in
/// particular the descent recovery ladder — can branch on *what* failed.
enum class StatusCode {
  kOk = 0,
  kInvalidConfig,    // malformed config file / options that cannot be run
  kSingularMatrix,   // LU factorization broke down (pivot ~ 0)
  kNotErgodic,       // chain is reducible/periodic or π has non-positive mass
  kNonFiniteValue,   // NaN or ±inf where a finite number was required
  kStepRejected,     // a descent step produced no acceptable iterate
  kSizeMismatch,     // dimension disagreement between operands
  kInternal,         // invariant violation; indicates a library bug
  kDeadlineExceeded, // a request's deadline expired before the work finished
                     // (cooperative cancellation / serve watchdog); not a
                     // numerical failure — retrying with a larger budget is
                     // the fix, not the recovery ladder
};

/// Short stable identifier ("singular-matrix", "not-ergodic", ...).
const char* to_string(StatusCode code);

/// Success-or-structured-error result of a guarded operation. Cheap to move,
/// comparable against codes, and convertible into an exception at the API
/// boundary for callers that prefer throwing behavior.
///
/// [[nodiscard]] at class scope: every function returning a Status by value
/// produces a compiler warning (an error under MOCOS_WERROR) when the result
/// is ignored — a dropped Status is precisely the failure the recovery
/// ladder can never see.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "singular-matrix: pivot 3 below threshold (|u_33| = 1e-317)".
  std::string to_string() const;

  friend bool operator==(const Status& s, StatusCode c) {
    return s.code_ == c;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception carrying a Status across a throwing API boundary. Derives from
/// std::runtime_error so existing catch sites keep working; new code can
/// catch StatusError and dispatch on status().code() (the CLI maps
/// kInvalidConfig to exit 2 and numerical codes to exit 3).
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// True for the codes that describe a numerical breakdown (as opposed to a
/// configuration or programming error) — the ones the descent recovery
/// ladder is allowed to retry.
[[nodiscard]] bool is_numerical_failure(StatusCode code);

/// Either a value or a non-ok Status. value() throws StatusError when the
/// operation failed, so code that does not check ok() still fails loudly and
/// with the structured diagnostic rather than with NaN propagation.
/// [[nodiscard]] at class scope, as for Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.is_ok())
      throw std::logic_error("StatusOr: ok status without a value");
  }
  StatusOr(StatusCode code, std::string message)
      : StatusOr(Status(code, std::move(message))) {}

  bool ok() const { return status_.is_ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    check();
    return *value_;
  }
  T& value() & {
    check();
    return *value_;
  }
  T&& value() && {
    check();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void check() const {
    if (!ok()) throw StatusError(status_);
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace mocos::util
