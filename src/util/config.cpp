#include "src/util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mocos::util {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  if (trim(text).empty()) return out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(trim(text.substr(start)));
      break;
    }
    out.push_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

double parse_double(const std::string& token) {
  const std::string t = trim(token);
  if (t.empty()) throw std::invalid_argument("parse_double: empty token");
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_double: bad number '" + t + "'");
  }
  if (consumed != t.size())
    throw std::invalid_argument("parse_double: trailing junk in '" + t + "'");
  return value;
}

Config Config::parse_string(const std::string& text,
                            const std::string& source) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  // Malformed-line errors carry "<source>:<line>:" so a user can jump to the
  // offending line of the file parse_file handed us.
  const auto at = [&](const std::string& what) {
    return source + ":" + std::to_string(line_no) + ": " + what;
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument(
          at("missing '=' in \"" + stripped + "\""));
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty())
      throw std::invalid_argument(at("empty key"));
    cfg.entries_.emplace_back(key, value);
  }
  return cfg;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw StatusError(Status(StatusCode::kInvalidConfig,
                             "cannot read config file " + path));
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_string(buf.str(), path);
}

bool Config::has(const std::string& key) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& kv) { return kv.first == key; });
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  std::string out = fallback;
  for (const auto& [k, v] : entries_)
    if (k == key) out = v;
  return out;
}

std::string Config::require_string(const std::string& key) const {
  if (!has(key)) throw std::out_of_range("Config: missing key '" + key + "'");
  return get_string(key, "");
}

double Config::get_double(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  return parse_double(get_string(key, ""));
}

double Config::get_positive_double(const std::string& key,
                                   double fallback) const {
  const double v = get_double(key, fallback);
  // !(v > 0) also rejects NaN; the isfinite gate rejects "inf" tokens.
  if (!std::isfinite(v) || !(v > 0.0))
    throw std::invalid_argument("Config: '" + key +
                                "' must be a finite value > 0");
  return v;
}

double Config::get_non_negative_double(const std::string& key,
                                       double fallback) const {
  const double v = get_double(key, fallback);
  if (!std::isfinite(v) || !(v >= 0.0))
    throw std::invalid_argument("Config: '" + key +
                                "' must be a finite value >= 0");
  return v;
}

std::size_t Config::get_size(const std::string& key,
                             std::size_t fallback) const {
  if (!has(key)) return fallback;
  const double v = parse_double(get_string(key, ""));
  // Validate before converting: casting a NaN or out-of-range double to
  // size_t is undefined behavior (found by tools/fuzz/fuzz_config with
  // inputs like "1e300" and "nan"). !(v >= 0) also rejects NaN; 2^53 is
  // the largest double whose integer round-trip is exact.
  constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53
  if (!(v >= 0.0) || v > kMaxExactInteger || v != std::floor(v))
    throw std::invalid_argument("Config: '" + key +
                                "' must be a non-negative integer");
  return static_cast<std::size_t>(v);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  std::string v = get_string(key, "");
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("Config: '" + key + "' is not a boolean");
}

std::vector<std::string> Config::get_all(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_)
    if (k == key) out.push_back(v);
  return out;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_)
    if (std::find(out.begin(), out.end(), k) == out.end()) out.push_back(k);
  return out;
}

}  // namespace mocos::util
