#include "src/util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace mocos::util {

namespace {

std::string join(const std::vector<std::string>& cells) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) oss << ',';
    oss << cells[i];
  }
  return oss.str();
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  out_ << join(header) << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream oss;
    oss << v;
    cells.push_back(oss.str());
  }
  write_row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: column count mismatch");
  out_ << join(cells) << '\n';
}

}  // namespace mocos::util
