#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace mocos::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::mean: no samples");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max: no samples");
  return max_;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p range");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double pos = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean(const std::vector<double>& samples) {
  RunningStats s;
  for (double x : samples) s.add(x);
  return s.mean();
}

double stddev(const std::vector<double>& samples) {
  RunningStats s;
  for (double x : samples) s.add(x);
  return s.stddev();
}

double min_of(const std::vector<double>& samples) {
  RunningStats s;
  for (double x : samples) s.add(x);
  return s.min();
}

double max_of(const std::vector<double>& samples) {
  RunningStats s;
  for (double x : samples) s.add(x);
  return s.max();
}

std::vector<double> empirical_cdf(const std::vector<double>& samples,
                                  const std::vector<double>& points) {
  if (samples.empty()) throw std::invalid_argument("empirical_cdf: empty");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(points.size());
  for (double x : points) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    out.push_back(static_cast<double>(it - sorted.begin()) /
                  static_cast<double>(sorted.size()));
  }
  return out;
}

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     double confidence, std::size_t resamples,
                                     std::uint64_t seed) {
  if (samples.size() < 2)
    throw std::invalid_argument("bootstrap_mean_ci: need >= 2 samples");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("bootstrap_mean_ci: confidence in (0,1)");
  if (resamples < 10)
    throw std::invalid_argument("bootstrap_mean_ci: too few resamples");

  Rng rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t k = 0; k < samples.size(); ++k)
      sum += samples[rng.index(samples.size())];
    means.push_back(sum / static_cast<double>(samples.size()));
  }
  const double tail = (1.0 - confidence) / 2.0 * 100.0;
  ConfidenceInterval ci;
  ci.lower = percentile(means, tail);
  ci.upper = percentile(means, 100.0 - tail);
  ci.point = mean(samples);
  return ci;
}

std::vector<double> cdf_support(const std::vector<double>& samples,
                                std::size_t n) {
  if (samples.empty() || n < 2)
    throw std::invalid_argument("cdf_support: need samples and n >= 2");
  const double lo = min_of(samples);
  const double hi = max_of(samples);
  std::vector<double> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = lo + (hi - lo) * static_cast<double>(i) /
                      static_cast<double>(n - 1);
  }
  return pts;
}

}  // namespace mocos::util
