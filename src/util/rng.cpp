#include "src/util/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace mocos::util {

namespace {

// SplitMix64 finalizer: a full-avalanche 64-bit mix, so adjacent task
// indices yield statistically unrelated seeds.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::gaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::gaussian(double mean, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Rng::gaussian: sigma < 0");
  // Exact on purpose: sigma == 0 is the documented "deterministic draw"
  // sentinel; a tiny positive sigma is a legitimate narrow distribution.
  // mocos-lint: allow(float-eq)
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::discrete: empty");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::discrete: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::discrete: zero total");
  double x = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  // Floating-point edge: fall back to the last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return uniform() < p;
}

Rng Rng::split() {
  // Two draws decorrelate the child stream from the parent's next outputs.
  std::uint64_t a = engine_();
  std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

Rng Rng::stream(std::uint64_t task_index) const {
  return Rng(mix64(base_seed_ ^ mix64(task_index + 1)));
}

std::uint64_t Rng::stream_base() { return mix64(engine_()); }

}  // namespace mocos::util
