#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/optimizer.hpp"
#include "src/core/problem.hpp"
#include "src/markov/incremental.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/util/config.hpp"

namespace mocos::cli {

/// Builds a Problem from a parsed config. Recognized keys:
///
///   topology  = grid:RxC | points:x,y;x,y;... | city:N[:seed]   (required;
///               city: = seeded jittered-grid map for city-scale runs, with
///               its own random targets unless `targets` is set)
///   targets   = t1,t2,...                          (default: uniform)
///   cell      = <double>                           (grid/city cell size, def. 1)
///   speed, pause, radius                           (physics; defaults 1/1/.25)
///   support_radius = <double>  (when > 0: restrict transitions to PoI pairs
///               within this travel distance and build the coverage tensors
///               sparsely over that support — required to go past M ≈ 500,
///               where the dense O(M³) tensors stop fitting in memory)
///   alpha, beta, epsilon                           (objective weights)
///   energy_gamma, energy_target, entropy_weight    (§VII extensions)
///   event_rates = l1,l2,...   (per-PoI Poisson event rates λ_i; enables the
///               information-capture term when information_gamma > 0 and
///               feeds the event-capture term when capture_weight > 0)
///   information_gamma = <double>   (information-capture weight, default 1;
///               <= 0 disables that term even with event_rates set)
///   capture_weight, capture_duration   (event-capture objective: weight > 0
///               adds 1 − expected captured-event fraction for events that
///               persist `capture_duration` transitions; defaults 0 / 1.
///               Needs only (π, Z), so it composes with support_radius > 0)
///   lambda_skew = <double>    (rate profile λ_i ∝ (i+1)^-skew, normalized,
///               used by the capture term when event_rates is empty;
///               0 = uniform)
///   minimax_weight, smoothmax_beta   (smooth worst-PoI exposure objective:
///               weight > 0 adds the log-sum-exp smooth max of the per-PoI
///               mean exposures at temperature smoothmax_beta, default 8)
///   obstacle  = rect:minx,miny,maxx,maxy | poly:x,y;x,y;...   (repeatable;
///               switches to the obstacle-aware routed motion model)
///   clearance = <double>                           (route corner margin)
///
/// Throws std::invalid_argument / std::runtime_error with a message naming
/// the offending key on any malformed input.
core::Problem build_problem(const util::Config& config);

/// Produces the schedule a config asks for: either audits the matrix named
/// by `load_schedule` or optimizes one. Optimizer keys:
///
///   algorithm  = basic | adaptive | perturbed      (default perturbed)
///   iterations = <n>         seed = <n>            random_start = <bool>
///   step       = <double>    (basic algorithm's Δt)
///   starts     = <n>         (perturbed only: multi-start count, runs on
///                             `ctx`; the winner is bit-identical for any
///                             job count)
///   incremental = <bool>     (default true: probe evaluations run through
///                             the rank-one ChainSolveCache; false forces
///                             full O(M³) solves for A/B verification —
///                             also reachable via --no-incremental or the
///                             MOCOS_NO_INCREMENTAL environment variable)
///   sparse     = auto | on | off   (chain-solver selection: auto gates on
///                             size/density, on forces the sparse path, off
///                             forces dense; the --sparse flag wins over the
///                             key and MOCOS_NO_SPARSE wins over everything)
///   smoothmax_beta_final = <double>, smoothmax_anneal_stages = <n>
///                            (β annealing: with stages >= 2 the run splits
///                             into that many warm-started legs — iterations
///                             divided evenly — whose smooth-max temperature
///                             climbs geometrically from smoothmax_beta to
///                             smoothmax_beta_final; requires
///                             minimax_weight > 0 and starts = 1)
///
/// Shared by the single-run CLI and the batch runner.
core::OptimizationOutcome run_optimization(const util::Config& config,
                                           const core::Problem& problem,
                                           const runtime::ExecutionContext& ctx);

/// Per-request hooks mocos_serve threads into an optimization run; all
/// fields optional, and the default-constructed value reproduces the plain
/// run_optimization behavior bit for bit.
struct RunHooks {
  /// Polled once per descent iteration; true stops the run with
  /// StopReason::kCancelled (request deadline / drain).
  std::function<bool()> should_stop;
  /// Long-lived solver cache to run all probes through (warm cross-request
  /// reuse; caller guarantees exclusive access). Only honored for
  /// single-start runs.
  markov::ChainSolveCache* shared_cache = nullptr;
  /// Start matrix override (the previous solution of a same-topology
  /// session); ignored when its size does not match the problem or the
  /// config asks for multi-start / a loaded schedule.
  const markov::TransitionMatrix* warm_start = nullptr;
  /// Out-field: set to true iff `warm_start` was actually used as the start
  /// matrix (the decline paths above leave it untouched), so callers can
  /// report warm-start usage truthfully instead of guessing the conditions.
  bool* warm_start_applied = nullptr;
  /// Seed override applied when the config does not set `seed` (mocos_serve
  /// derives it from the request id so replays are scheduling-independent).
  std::optional<std::uint64_t> default_seed;
};

/// run_optimization with serve-layer hooks (deadline cancellation, warm
/// caches, warm starts, request-id-keyed seeds).
core::OptimizationOutcome run_optimization(const util::Config& config,
                                           const core::Problem& problem,
                                           const runtime::ExecutionContext& ctx,
                                           const RunHooks& hooks);

/// Runs the full CLI. Usage:
///
///   mocos_cli [--jobs N] [--summary FILE] [--no-incremental] [--sparse]
///             [--metrics FILE] [--trace FILE] [--profile FILE]
///             <config-file>
///   mocos_cli [--jobs N] [--summary FILE] [--no-incremental] [--sparse]
///             [--metrics FILE] [--trace FILE] [--profile FILE]
///             --batch <dir-or-list>
///
/// --profile accumulates exclusive/inclusive wall time per named phase
/// (chain solves, gradient assembly, line-search probes, sparse ladder
/// stages, cost terms) into a JSON side file; feed it to
/// tools/trace/trace2flame.py for collapsed stacks and a flamegraph.
///
/// Single mode parses the config file, optimizes, and prints the outcome
/// (plus an optional validation simulation when `simulate = <transitions>`
/// is set; with `replications = R` the validation runs R replicated
/// simulations — in parallel under --jobs — and reports mean/p25/p75).
///
/// Batch mode expands the --batch spec (a directory of *.conf files or a
/// list file with one config path per line) and runs every scenario through
/// one worker pool. Scenario failures are isolated: a bad config or a
/// numerical failure marks that scenario in the summary and the batch keeps
/// going. The machine-readable JSON summary goes to `out` (and to the
/// --summary file when given) and is byte-identical for any --jobs value.
///
/// Returns a process exit code, reporting problems as a one-line diagnostic
/// on `err`:
///   0  success (batch: every scenario succeeded)
///   1  unexpected runtime failure
///   2  usage or configuration error (unreadable/malformed config, bad keys,
///      mismatched schedule, ...)
///   3  numerical failure (singular factorization, non-ergodic chain,
///      non-finite values, exhausted descent recovery ladder)
///   4  batch completed but at least one scenario failed
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// Exit codes returned by run_cli, kept as named constants for tests and
/// wrapping scripts. mocos_serve reuses the same taxonomy as per-response
/// `code` values (a response is a scenario-scoped exit), extending it with
/// the two request-lifecycle outcomes a batch run cannot have: a deadline
/// that expired (5) and an admission-control shed (6).
inline constexpr int kExitSuccess = 0;
inline constexpr int kExitRuntimeError = 1;
inline constexpr int kExitBadConfig = 2;
inline constexpr int kExitNumericalFailure = 3;
inline constexpr int kExitBatchPartialFailure = 4;
inline constexpr int kExitDeadlineExceeded = 5;  // serve responses only
inline constexpr int kExitShed = 6;              // serve responses only

}  // namespace mocos::cli
