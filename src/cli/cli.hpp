#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/problem.hpp"
#include "src/util/config.hpp"

namespace mocos::cli {

/// Builds a Problem from a parsed config. Recognized keys:
///
///   topology  = grid:RxC | points:x,y;x,y;...     (required)
///   targets   = t1,t2,...                          (default: uniform)
///   cell      = <double>                           (grid cell size, def. 1)
///   speed, pause, radius                           (physics; defaults 1/1/.25)
///   alpha, beta, epsilon                           (objective weights)
///   energy_gamma, energy_target, entropy_weight    (§VII extensions)
///   obstacle  = rect:minx,miny,maxx,maxy | poly:x,y;x,y;...   (repeatable;
///               switches to the obstacle-aware routed motion model)
///   clearance = <double>                           (route corner margin)
///
/// Throws std::invalid_argument / std::runtime_error with a message naming
/// the offending key on any malformed input.
core::Problem build_problem(const util::Config& config);

/// Runs the full CLI: parse the config file named by args[0], optimize, and
/// print the outcome (plus an optional validation simulation when
/// `simulate = <transitions>` is set). Optimizer keys:
///
///   algorithm  = basic | adaptive | perturbed      (default perturbed)
///   iterations = <n>         seed = <n>            random_start = <bool>
///   step       = <double>    (basic algorithm's Δt)
///
/// Returns a process exit code, reporting problems as a one-line diagnostic
/// on `err`:
///   0  success
///   1  unexpected runtime failure
///   2  usage or configuration error (unreadable/malformed config, bad keys,
///      mismatched schedule, ...)
///   3  numerical failure (singular factorization, non-ergodic chain,
///      non-finite values, exhausted descent recovery ladder)
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// Exit codes returned by run_cli, kept as named constants for tests and
/// wrapping scripts.
inline constexpr int kExitSuccess = 0;
inline constexpr int kExitRuntimeError = 1;
inline constexpr int kExitBadConfig = 2;
inline constexpr int kExitNumericalFailure = 3;

}  // namespace mocos::cli
