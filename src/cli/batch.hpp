#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/runtime/execution_context.hpp"

namespace mocos::cli {

/// One scenario's result in a batch run. `exit_code` reuses run_cli's
/// taxonomy (0 success, 2 bad config, 3 numerical failure, 1 anything
/// else); failed scenarios carry a one-line diagnostic and zeroed metrics.
struct ScenarioOutcome {
  std::string path;
  int exit_code = 0;
  std::string error;
  std::string algorithm;
  double penalized_cost = 0.0;
  double report_cost = 0.0;
  double delta_c = 0.0;
  double e_bar = 0.0;
  std::size_t iterations = 0;
  std::string stop_reason;
  std::size_t recovery_events = 0;

  bool ok() const { return exit_code == 0; }
};

/// Expands a `--batch` spec into scenario config paths: a directory yields
/// its `*.conf` files sorted by name; any other path is read as a list file
/// (one config path per line; blank lines and `#` comments skipped).
/// Throws std::invalid_argument when the spec is unreadable or empty.
std::vector<std::string> collect_batch_configs(const std::string& spec);

/// Runs every config through one worker pool, one scenario per task, each
/// with a serial inner context (no nested fan-out). Failures are isolated
/// per scenario: a malformed config or an exhausted recovery ladder marks
/// that outcome and the rest of the batch proceeds. Outcomes are returned
/// in config order and — scenarios being seeded by their own configs — are
/// identical for any `ctx.jobs()`.
std::vector<ScenarioOutcome> run_batch(const std::vector<std::string>& configs,
                                       const runtime::ExecutionContext& ctx);

/// Writes the machine-readable batch summary as a JSON document with a
/// stable field order and no timing or job-count fields, so two runs of the
/// same batch produce byte-identical summaries regardless of `--jobs`.
void write_batch_summary(const std::vector<ScenarioOutcome>& outcomes,
                         std::ostream& out);

}  // namespace mocos::cli
