#include "src/cli/cli.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/cli/batch.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/phase_timer.hpp"
#include "src/obs/trace.hpp"
#include "src/core/pareto.hpp"
#include "src/core/serialization.hpp"
#include "src/geometry/city_topology.hpp"
#include "src/geometry/polygon.hpp"
#include "src/markov/entropy.hpp"
#include "src/markov/incremental.hpp"
#include "src/markov/sparse_mode.hpp"
#include "src/markov/spectral.hpp"
#include "src/sensing/routed_travel_model.hpp"
#include "src/sim/replication.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/status.hpp"
#include "src/util/table.hpp"

namespace mocos::cli {

namespace {

geometry::Topology parse_topology(const util::Config& config) {
  const std::string spec = config.require_string("topology");
  const double cell = config.get_double("cell", 1.0);

  auto parse_targets = [&](std::size_t n) {
    if (!config.has("targets")) return geometry::uniform_targets(n);
    const auto pieces = util::split(config.get_string("targets", ""), ',');
    if (pieces.size() != n)
      throw std::invalid_argument(
          "targets: expected " + std::to_string(n) + " values, got " +
          std::to_string(pieces.size()));
    std::vector<double> t;
    t.reserve(n);
    for (const auto& p : pieces) t.push_back(util::parse_double(p));
    return t;
  };

  if (spec.rfind("grid:", 0) == 0) {
    const std::string dims = spec.substr(5);
    const std::size_t x = dims.find('x');
    if (x == std::string::npos)
      throw std::invalid_argument("topology: grid spec must be grid:RxC");
    const auto rows = static_cast<std::size_t>(
        util::parse_double(dims.substr(0, x)));
    const auto cols = static_cast<std::size_t>(
        util::parse_double(dims.substr(x + 1)));
    return geometry::make_grid("grid:" + dims, rows, cols,
                               parse_targets(rows * cols), cell);
  }
  if (spec.rfind("city:", 0) == 0) {
    const auto parts = util::split(spec.substr(5), ':');
    if (parts.empty() || parts.size() > 2)
      throw std::invalid_argument("topology: city spec must be city:N[:seed]");
    geometry::CityConfig city;
    city.count = static_cast<std::size_t>(util::parse_double(parts[0]));
    city.spacing = cell;
    if (parts.size() == 2)
      city.seed = static_cast<std::uint64_t>(util::parse_double(parts[1]));
    geometry::Topology t = geometry::city_topology(city);
    // The city map carries its own seeded random targets; an explicit
    // `targets` key still wins.
    if (!config.has("targets")) return t;
    return geometry::Topology(t.name(), t.positions(),
                              parse_targets(t.size()));
  }
  if (spec.rfind("points:", 0) == 0) {
    std::vector<geometry::Vec2> pts;
    for (const auto& pair : util::split(spec.substr(7), ';')) {
      const auto xy = util::split(pair, ',');
      if (xy.size() != 2)
        throw std::invalid_argument("topology: point must be x,y");
      pts.push_back({util::parse_double(xy[0]), util::parse_double(xy[1])});
    }
    const std::size_t n = pts.size();
    return geometry::Topology("points", std::move(pts), parse_targets(n));
  }
  throw std::invalid_argument(
      "topology: must start with grid:, points: or city:");
}

std::vector<geometry::Polygon> parse_obstacles(const util::Config& config) {
  std::vector<geometry::Polygon> out;
  for (const std::string& spec : config.get_all("obstacle")) {
    if (spec.rfind("rect:", 0) == 0) {
      const auto nums = util::split(spec.substr(5), ',');
      if (nums.size() != 4)
        throw std::invalid_argument(
            "obstacle: rect needs minx,miny,maxx,maxy");
      out.push_back(geometry::Polygon::rectangle(
          {util::parse_double(nums[0]), util::parse_double(nums[1])},
          {util::parse_double(nums[2]), util::parse_double(nums[3])}));
    } else if (spec.rfind("poly:", 0) == 0) {
      std::vector<geometry::Vec2> verts;
      for (const auto& pair : util::split(spec.substr(5), ';')) {
        const auto xy = util::split(pair, ',');
        if (xy.size() != 2)
          throw std::invalid_argument("obstacle: poly vertex must be x,y");
        verts.push_back(
            {util::parse_double(xy[0]), util::parse_double(xy[1])});
      }
      out.push_back(geometry::Polygon(std::move(verts)));
    } else {
      throw std::invalid_argument("obstacle: must start with rect: or poly:");
    }
  }
  return out;
}

std::vector<double> parse_double_list(const util::Config& config,
                                      const std::string& key) {
  std::vector<double> out;
  if (!config.has(key)) return out;
  for (const auto& piece : util::split(config.get_string(key, ""), ','))
    out.push_back(util::parse_double(piece));
  return out;
}

core::Weights parse_weights(const util::Config& config) {
  core::Weights w;
  w.alpha = config.get_double("alpha", 1.0);
  w.beta = config.get_double("beta", 1.0);
  // Per-PoI overrides (comma lists matching the PoI count).
  w.alpha_per_poi = parse_double_list(config, "alpha_i");
  w.beta_per_poi = parse_double_list(config, "beta_i");
  w.epsilon = config.get_double("epsilon", 1e-4);
  w.energy_gamma = config.get_double("energy_gamma", 0.0);
  w.energy_target = config.get_double("energy_target", 0.0);
  w.entropy_weight = config.get_double("entropy_weight", 0.0);
  w.event_rates = parse_double_list(config, "event_rates");
  w.information_gamma = config.get_double("information_gamma", 1.0);
  w.capture_weight = config.get_non_negative_double("capture_weight", 0.0);
  w.capture_duration = config.get_positive_double("capture_duration", 1.0);
  w.lambda_skew = config.get_double("lambda_skew", 0.0);
  if (!std::isfinite(w.lambda_skew))
    throw std::invalid_argument("lambda_skew: must be finite");
  w.minimax_weight = config.get_non_negative_double("minimax_weight", 0.0);
  w.smoothmax_beta = config.get_positive_double("smoothmax_beta", 8.0);
  return w;
}

core::Algorithm parse_algorithm(const util::Config& config) {
  const std::string a = config.get_string("algorithm", "perturbed");
  if (a == "basic") return core::Algorithm::kBasic;
  if (a == "adaptive") return core::Algorithm::kAdaptive;
  if (a == "perturbed") return core::Algorithm::kPerturbed;
  throw std::invalid_argument(
      "algorithm: must be basic, adaptive or perturbed");
}

/// Flags recognized ahead of the positional config argument.
struct CliArgs {
  std::string config_path;  // single mode (exclusive with batch_spec)
  std::string batch_spec;   // batch mode: directory or list file
  std::string summary_path; // optional file for the batch JSON summary
  std::string metrics_path; // optional metrics JSON snapshot (--metrics)
  std::string trace_path;   // optional NDJSON trace (--trace / MOCOS_TRACE)
  std::string profile_path; // optional phase-profiler JSON (--profile)
  std::size_t jobs = 1;     // 0 = hardware concurrency
  bool no_incremental = false;  // force full chain solves (A/B verification)
  bool sparse = false;          // force the sparse chain solver (kOn)
};

CliArgs parse_args(const std::vector<std::string>& args) {
  CliArgs parsed;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string& {
      if (i + 1 >= args.size())
        throw std::invalid_argument(std::string(flag) + ": missing value");
      return args[++i];
    };
    if (a == "--jobs") {
      const std::string& v = value("--jobs");
      std::size_t pos = 0;
      unsigned long n = 0;
      try {
        n = std::stoul(v, &pos);
      } catch (const std::exception&) {
        throw std::invalid_argument("--jobs: not a number: " + v);
      }
      if (pos != v.size())
        throw std::invalid_argument("--jobs: not a number: " + v);
      parsed.jobs = static_cast<std::size_t>(n);
    } else if (a == "--batch") {
      parsed.batch_spec = value("--batch");
    } else if (a == "--summary") {
      parsed.summary_path = value("--summary");
    } else if (a == "--metrics") {
      parsed.metrics_path = value("--metrics");
    } else if (a == "--trace") {
      parsed.trace_path = value("--trace");
    } else if (a == "--profile") {
      parsed.profile_path = value("--profile");
    } else if (a == "--no-incremental") {
      parsed.no_incremental = true;
    } else if (a == "--sparse") {
      parsed.sparse = true;
    } else if (!a.empty() && a[0] == '-') {
      throw std::invalid_argument("unknown flag: " + a);
    } else if (parsed.config_path.empty()) {
      parsed.config_path = a;
    } else {
      throw std::invalid_argument("unexpected extra argument: " + a);
    }
  }
  if (parsed.config_path.empty() == parsed.batch_spec.empty())
    throw std::invalid_argument(
        "expected exactly one of <config-file> or --batch <dir-or-list>");
  return parsed;
}

}  // namespace

core::Problem build_problem(const util::Config& config) {
  geometry::Topology topology = parse_topology(config);
  const core::Weights weights = parse_weights(config);
  const double speed = config.get_double("speed", 1.0);
  const double pause = config.get_double("pause", 1.0);
  const double radius = config.get_double("radius", 0.25);
  const double support_radius = config.get_double("support_radius", 0.0);

  auto obstacles = parse_obstacles(config);
  if (obstacles.empty()) {
    core::Physics physics;
    physics.speed = speed;
    physics.pause = pause;
    physics.sensing_radius = radius;
    physics.support_radius = support_radius;
    return core::Problem(std::move(topology), physics, weights);
  }
  if (support_radius > 0.0)
    throw std::invalid_argument(
        "support_radius: not supported with obstacles (support restriction "
        "is only wired through the straight-line motion model)");
  const double clearance = config.get_double("clearance", 1e-3);
  return core::Problem(
      std::make_unique<sensing::RoutedTravelModel>(
          std::move(topology), std::move(obstacles), speed, pause, radius,
          clearance),
      weights);
}

core::OptimizationOutcome run_optimization(
    const util::Config& config, const core::Problem& problem,
    const runtime::ExecutionContext& ctx) {
  return run_optimization(config, problem, ctx, RunHooks{});
}

core::OptimizationOutcome run_optimization(
    const util::Config& config, const core::Problem& problem,
    const runtime::ExecutionContext& ctx, const RunHooks& hooks) {
  // Audit mode: evaluate a previously saved schedule instead of optimizing
  // a new one.
  const std::string load_path = config.get_string("load_schedule", "");
  if (!load_path.empty()) {
    markov::TransitionMatrix p = core::load_schedule(load_path);
    if (p.size() != problem.num_pois())
      throw std::invalid_argument(
          "load_schedule: schedule size does not match the topology");
    cost::Metrics metrics = problem.metrics_of(p);
    const double report = metrics.cost(problem.weights().alpha,
                                       problem.weights().beta);
    const double penalized = problem.make_cost().value(p);
    return core::OptimizationOutcome{core::Algorithm::kBasic,
                                     std::move(p),
                                     penalized,
                                     std::move(metrics),
                                     report,
                                     0,
                                     descent::Trace{},
                                     descent::StopReason::kMaxIterations,
                                     descent::RecoveryLog{},
                                     markov::ChainSolveCache::Stats{}};
  }
  core::OptimizerOptions opts;
  opts.algorithm = parse_algorithm(config);
  opts.max_iterations = config.get_size("iterations", 2000);
  opts.seed = config.get_size(
      "seed", hooks.default_seed
                  ? static_cast<std::size_t>(*hooks.default_seed)
                  : std::size_t{1});
  opts.random_start = config.get_bool("random_start", false);
  opts.constant_step = config.get_double("step", 1e-6);
  opts.starts = config.get_size("starts", 1);
  if (opts.starts == 0) throw std::invalid_argument("starts: must be >= 1");
  if (opts.starts > 1) opts.random_start = true;  // V2 multi-start protocol
  opts.keep_trace = false;
  opts.use_incremental = config.get_bool("incremental", true);
  opts.should_stop = hooks.should_stop;
  opts.shared_cache = hooks.shared_cache;
  // Stage-wise smooth-max β annealing: with smoothmax_anneal_stages = S >= 2
  // the run splits into S warm-started legs (iterations / S each) whose
  // temperature climbs geometrically from smoothmax_beta to
  // smoothmax_beta_final — soft, well-conditioned maxima early, near-hard
  // worst case late.
  const std::size_t anneal_stages =
      config.get_size("smoothmax_anneal_stages", 1);
  const double beta_final =
      config.get_non_negative_double("smoothmax_beta_final", 0.0);
  if (anneal_stages == 0)
    throw std::invalid_argument("smoothmax_anneal_stages: must be >= 1");
  if (anneal_stages > 1) {
    if (problem.weights().minimax_weight <= 0.0)
      throw std::invalid_argument(
          "smoothmax_anneal_stages: requires minimax_weight > 0");
    if (!(beta_final >= problem.weights().smoothmax_beta))
      throw std::invalid_argument(
          "smoothmax_anneal_stages: requires smoothmax_beta_final >= "
          "smoothmax_beta");
    if (opts.starts > 1)
      throw std::invalid_argument(
          "smoothmax_anneal_stages: not supported with starts > 1");
    opts.max_iterations =
        std::max<std::size_t>(1, opts.max_iterations / anneal_stages);
  }
  const core::CoverageOptimizer optimizer(problem, opts);
  // A warm start only applies to single-start runs of the right size; a
  // mismatch (topology changed under a reused cache_key) silently falls back
  // to the config's own start policy rather than failing the request.
  core::OptimizationOutcome outcome = [&] {
    if (hooks.warm_start != nullptr && opts.starts == 1 &&
        hooks.warm_start->size() == problem.num_pois()) {
      if (hooks.warm_start_applied != nullptr)
        *hooks.warm_start_applied = true;
      return optimizer.run(*hooks.warm_start);
    }
    return optimizer.run(ctx);
  }();
  for (std::size_t s = 1; s < anneal_stages; ++s) {
    const double beta0 = problem.weights().smoothmax_beta;
    const double t =
        static_cast<double>(s) / static_cast<double>(anneal_stages - 1);
    opts.smoothmax_beta_override = beta0 * std::pow(beta_final / beta0, t);
    // Decorrelate each stage's perturbation stream from the previous one
    // while keeping the whole schedule a pure function of the config seed.
    opts.seed += 1;
    const core::CoverageOptimizer stage(problem, opts);
    outcome = stage.run(outcome.p);
  }
  return outcome;
}

namespace {

int run_batch_mode(const CliArgs& cli, std::ostream& out, std::ostream& err) {
  const std::vector<std::string> configs =
      collect_batch_configs(cli.batch_spec);
  const runtime::ExecutionContext ctx(cli.jobs);
  const std::vector<ScenarioOutcome> outcomes = run_batch(configs, ctx);

  // Diagnostics in config order (deterministic for any job count).
  for (const ScenarioOutcome& o : outcomes) {
    if (!o.ok())
      err << "mocos: " << o.path << ": exit " << o.exit_code << ": "
          << o.error << '\n';
  }
  std::ostringstream summary;
  write_batch_summary(outcomes, summary);
  out << summary.str();
  if (!cli.summary_path.empty()) {
    std::ofstream file(cli.summary_path);
    if (!file)
      throw std::invalid_argument("--summary: cannot write " +
                                  cli.summary_path);
    file << summary.str();
  }
  for (const ScenarioOutcome& o : outcomes)
    if (!o.ok()) return kExitBatchPartialFailure;
  return kExitSuccess;
}

/// The CLI proper, after flag parsing and observability setup.
int run_cli_impl(const CliArgs& cli, std::ostream& out, std::ostream& err) {
  // Process-global so it also covers paths that build their own descent
  // configs (frontier sweeps, loaded-schedule audits). Deliberately assigned
  // (not only set when true) so consecutive in-process run_cli calls do not
  // leak the escape hatch into each other.
  markov::force_disable_incremental(cli.no_incremental);
  markov::force_sparse_mode(cli.sparse ? markov::SparseMode::kOn
                                       : markov::SparseMode::kAuto);
  try {
    if (!cli.batch_spec.empty()) return run_batch_mode(cli, out, err);

    const util::Config config = util::Config::parse_file(cli.config_path);
    // The `sparse` config key mirrors --sparse (which wins when given);
    // MOCOS_NO_SPARSE overrides both inside the gate itself.
    if (!cli.sparse) {
      const std::string sparse = config.get_string("sparse", "auto");
      if (sparse == "on")
        markov::force_sparse_mode(markov::SparseMode::kOn);
      else if (sparse == "off")
        markov::force_sparse_mode(markov::SparseMode::kOff);
      else if (sparse != "auto")
        throw std::invalid_argument("sparse: must be auto, on or off");
    }
    const core::Problem problem = build_problem(config);
    const runtime::ExecutionContext ctx(cli.jobs);

    // Frontier mode: sweep the exposure weight and print the achievable
    // (DeltaC, E-bar) trade-off curve instead of one schedule.
    if (config.get_string("mode", "optimize") == "frontier") {
      core::FrontierOptions fopts;
      fopts.grid_points = config.get_size("frontier_points", 7);
      fopts.beta_max = config.get_double("frontier_beta_max", 1.0);
      fopts.beta_min = config.get_double("frontier_beta_min", 1e-6);
      fopts.per_point.max_iterations = config.get_size("iterations", 800);
      fopts.per_point.seed = config.get_size("seed", 1);
      fopts.per_point.stall_limit = 300;
      fopts.per_point.keep_trace = false;
      const auto points = core::tradeoff_sweep(problem, fopts);
      const auto front = core::pareto_front(points);
      out << "trade-off frontier for " << problem.topology().name() << " ("
          << front.size() << " of " << points.size()
          << " sweep points efficient):\n";
      util::Table t({"beta", "DeltaC", "E-bar"});
      for (const auto& pt : front)
        t.add_row({util::fmt(pt.beta, 7), util::fmt(pt.delta_c, 6),
                   util::fmt(pt.e_bar, 3)});
      t.print(out);
      return 0;
    }

    const std::string load_path = config.get_string("load_schedule", "");
    if (!load_path.empty()) {
      out << "mocos: evaluating saved schedule " << load_path << " on "
          << problem.topology().name() << '\n' << '\n';
    } else {
      out << "mocos: optimizing " << problem.topology().name() << " ("
          << problem.num_pois() << " PoIs, algorithm "
          << core::to_string(parse_algorithm(config)) << ", "
          << config.get_size("iterations", 2000) << " iterations";
      const std::size_t starts = config.get_size("starts", 1);
      if (starts > 1) out << ", " << starts << " starts";
      out << ")\n\n";
    }
    core::OptimizationOutcome outcome = run_optimization(config, problem, ctx);
    if (outcome.stop_reason == descent::StopReason::kNumericalFailure) {
      err << "mocos: numerical failure: descent recovery ladder exhausted ("
          << outcome.recovery.summary() << ")\n";
      out << outcome.summary() << '\n';
      return kExitNumericalFailure;
    }
    out << outcome.summary() << '\n';
    // City-scale matrices would dump megabytes of text; keep the full print
    // for the paper-sized maps and point large runs at save_schedule.
    if (problem.num_pois() <= 64) {
      out << "transition matrix:\n"
          << outcome.p.matrix().to_string(4) << "\n";
    } else {
      out << "transition matrix: " << problem.num_pois() << "x"
          << problem.num_pois()
          << " (print suppressed; use save_schedule to export)\n";
    }

    const std::string save_path = config.get_string("save_schedule", "");
    if (!save_path.empty()) {
      core::save_schedule(save_path, outcome.p);
      out << "\nschedule saved to " << save_path << '\n';
    }

    if (config.get_bool("report_spectral", false)) {
      const auto chain = markov::analyze_chain(outcome.p);
      out << "\nspectral diagnostics:\n"
          << "  SLEM: " << util::fmt(markov::slem(outcome.p), 4) << '\n'
          << "  relaxation time: "
          << util::fmt(markov::relaxation_time(outcome.p), 2) << '\n'
          << "  mixing time (TV<=0.05): "
          << markov::mixing_time(outcome.p, 0.05) << " transitions\n"
          << "  Kemeny constant: "
          << util::fmt(markov::kemeny_constant(chain), 2) << '\n'
          << "  entropy rate: "
          << util::fmt(markov::entropy_rate(outcome.p), 3) << " / "
          << util::fmt(markov::max_entropy_rate(problem.num_pois()), 3)
          << " nats\n";
    }

    const std::size_t sim_steps = config.get_size("simulate", 0);
    const std::size_t replications = config.get_size("replications", 1);
    const std::uint64_t seed = config.get_size("seed", 1);
    if (sim_steps > 0 && replications > 1) {
      // Replicated validation: R independent simulations (fanned out under
      // --jobs) with the paper's mean / 25th / 75th percentile reporting.
      sim::SimulationConfig sim_cfg;
      sim_cfg.num_transitions = sim_steps;
      util::Rng rng(seed + 1);
      const sim::ReplicationSummary summary = sim::replicate(
          problem.model(), outcome.p, problem.targets(),
          problem.weights().alpha, problem.weights().beta, sim_cfg,
          replications, rng, ctx);
      out << "\nreplicated validation (" << replications << " x " << sim_steps
          << " transitions):\n";
      util::Table t({"metric", "mean", "p25", "p75", "min", "max"});
      auto row = [&](const char* name, const sim::ReplicatedMetric& m,
                     int digits) {
        t.add_row({name, util::fmt(m.mean, digits), util::fmt(m.p25, digits),
                   util::fmt(m.p75, digits), util::fmt(m.min, digits),
                   util::fmt(m.max, digits)});
      };
      row("delta_C", summary.delta_c, 6);
      row("E_bar", summary.e_bar, 3);
      row("cost (Eq.14)", summary.cost, 6);
      t.print(out);
    } else if (sim_steps > 0) {
      sim::SimulationConfig sim_cfg;
      sim_cfg.num_transitions = sim_steps;
      sim::MarkovCoverageSimulator simulator(problem.model(), sim_cfg);
      util::Rng rng(seed + 1);
      const auto res = simulator.run(outcome.p, rng);
      out << "\nvalidation simulation (" << sim_steps << " transitions):\n";
      util::Table t({"PoI", "target", "analytic share", "simulated share",
                     "mean exposure", "p95 exposure", "max exposure"});
      for (std::size_t i = 0; i < problem.num_pois(); ++i)
        t.add_row({std::to_string(i + 1),
                   util::fmt(problem.targets()[i], 3),
                   util::fmt(outcome.metrics.c_share[i], 3),
                   util::fmt(res.coverage_share[i], 3),
                   util::fmt(res.exposure_steps[i], 2),
                   util::fmt(res.exposure_steps_p95[i], 2),
                   util::fmt(res.exposure_steps_max[i], 2)});
      t.print(out);
    }
    return kExitSuccess;
  } catch (const util::StatusError& e) {
    // Structured failures map to distinct exit codes: configuration problems
    // are the caller's to fix (2), numerical breakdowns describe the
    // instance (3).
    err << "mocos: error: " << e.what() << '\n';
    if (util::is_numerical_failure(e.status().code()))
      return kExitNumericalFailure;
    if (e.status().code() == util::StatusCode::kInvalidConfig)
      return kExitBadConfig;
    return kExitRuntimeError;
  } catch (const std::invalid_argument& e) {
    err << "mocos: config error: " << e.what() << '\n';
    return kExitBadConfig;
  } catch (const std::out_of_range& e) {
    err << "mocos: config error: " << e.what() << '\n';
    return kExitBadConfig;
  } catch (const std::exception& e) {
    err << "mocos: error: " << e.what() << '\n';
    return kExitRuntimeError;
  }
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  CliArgs cli;
  try {
    cli = parse_args(args);
  } catch (const std::invalid_argument& e) {
    err << "mocos: " << e.what() << '\n'
        << "usage: mocos_cli [--jobs N] [--summary FILE] [--no-incremental]\n"
           "                 [--sparse] [--metrics FILE] [--trace FILE] "
           "[--profile FILE]\n"
           "                 (<config-file> | --batch <dir-or-list>)\n"
           "see src/cli/cli.hpp for the config format\n";
    return kExitBadConfig;
  }

  // --trace FILE wins over the MOCOS_TRACE environment variable. Traces and
  // metrics are side files only: stdout/stderr and the --summary document are
  // byte-identical with and without them.
  std::string trace_path = cli.trace_path;
  if (trace_path.empty()) {
    if (const char* env = std::getenv("MOCOS_TRACE")) {
      if (*env != '\0') trace_path = env;
    }
  }
  std::ofstream trace_file;
  std::unique_ptr<obs::TraceSink> sink;
  std::optional<obs::ScopedTraceInstall> trace_install;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) {
      err << "mocos: --trace: cannot write " << trace_path << '\n';
      return kExitBadConfig;
    }
    sink = std::make_unique<obs::TraceSink>(trace_file);
    trace_install.emplace(sink.get());
  }
  obs::MetricsRegistry registry;
  std::optional<obs::ScopedMetrics> metrics_install;
  if (!cli.metrics_path.empty()) metrics_install.emplace(&registry);

  // Like traces, the profile is a side file: phase counts are deterministic,
  // the nanosecond fields are wall-clock (DESIGN.md §15).
  obs::PhaseTimer profiler;
  std::optional<obs::ScopedProfileInstall> profile_install;
  if (!cli.profile_path.empty()) profile_install.emplace(&profiler);

  int code = kExitRuntimeError;
  {
    obs::ScopedSpan span("cli.run", "cli");
    code = run_cli_impl(cli, out, err);
  }
  if (sink != nullptr) sink->flush();

  if (!cli.profile_path.empty()) {
    std::ofstream profile_file(cli.profile_path);
    if (!profile_file) {
      err << "mocos: --profile: cannot write " << cli.profile_path << '\n';
      return code == kExitSuccess ? kExitBadConfig : code;
    }
    profiler.write_json(profile_file);
  }

  if (!cli.metrics_path.empty()) {
    std::ofstream metrics_file(cli.metrics_path);
    if (!metrics_file) {
      err << "mocos: --metrics: cannot write " << cli.metrics_path << '\n';
      return code == kExitSuccess ? kExitBadConfig : code;
    }
    registry.snapshot().write_json(metrics_file);
  }
  return code;
}

}  // namespace mocos::cli
