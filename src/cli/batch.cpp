#include "src/cli/batch.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "src/cli/cli.hpp"
#include "src/core/optimizer.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/status.hpp"

namespace mocos::cli {

namespace {

std::vector<std::string> configs_from_directory(
    const std::filesystem::path& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".conf")
      out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> configs_from_list(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("--batch: cannot read list file " + path);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(start, end - start + 1);
    if (line.empty() || line[0] == '#') continue;
    out.push_back(line);
  }
  return out;
}

/// Runs one scenario with the same optimizer-key handling as the single-run
/// CLI, converting every failure into the exit-code taxonomy instead of
/// letting it escape the batch.
ScenarioOutcome run_scenario(const std::string& path) {
  ScenarioOutcome outcome;
  outcome.path = path;
  try {
    const util::Config config = util::Config::parse_file(path);
    const core::Problem problem = build_problem(config);
    const core::OptimizationOutcome result =
        run_optimization(config, problem, /*ctx=*/{});
    outcome.algorithm = core::to_string(result.algorithm);
    outcome.penalized_cost = result.penalized_cost;
    outcome.report_cost = result.report_cost;
    outcome.delta_c = result.metrics.delta_c;
    outcome.e_bar = result.metrics.e_bar;
    outcome.iterations = result.iterations;
    outcome.stop_reason = descent::to_string(result.stop_reason);
    outcome.recovery_events = result.recovery.size();
    if (result.stop_reason == descent::StopReason::kNumericalFailure) {
      outcome.exit_code = kExitNumericalFailure;
      outcome.error = "descent recovery ladder exhausted (" +
                      result.recovery.summary() + ")";
    }
  } catch (const util::StatusError& e) {
    outcome.error = e.what();
    if (util::is_numerical_failure(e.status().code()))
      outcome.exit_code = kExitNumericalFailure;
    else if (e.status().code() == util::StatusCode::kInvalidConfig)
      outcome.exit_code = kExitBadConfig;
    else
      outcome.exit_code = kExitRuntimeError;
  } catch (const std::invalid_argument& e) {
    outcome.exit_code = kExitBadConfig;
    outcome.error = e.what();
  } catch (const std::out_of_range& e) {
    outcome.exit_code = kExitBadConfig;
    outcome.error = e.what();
  } catch (const std::exception& e) {
    outcome.exit_code = kExitRuntimeError;
    outcome.error = e.what();
  }
  return outcome;
}

void json_escape(const std::string& s, std::ostream& out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void json_number(double x, std::ostream& out) {
  // Shortest round-trip-exact decimal; locale-independent and identical
  // across runs, which the determinism contract needs.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  out << buf;
}

}  // namespace

std::vector<std::string> collect_batch_configs(const std::string& spec) {
  namespace fs = std::filesystem;
  std::vector<std::string> configs;
  if (fs::is_directory(spec))
    configs = configs_from_directory(spec);
  else if (fs::is_regular_file(spec))
    configs = configs_from_list(spec);
  else
    throw std::invalid_argument("--batch: no such directory or list file: " +
                                spec);
  if (configs.empty())
    throw std::invalid_argument("--batch: no scenario configs found in " +
                                spec);
  return configs;
}

std::vector<ScenarioOutcome> run_batch(const std::vector<std::string>& configs,
                                       const runtime::ExecutionContext& ctx) {
  std::vector<ScenarioOutcome> outcomes(configs.size());
  // One scenario per task; the inner context is serial so a scenario never
  // re-enters the pool it is running on (no nested-wait deadlock).
  runtime::parallel_for(ctx, configs.size(), [&](std::size_t i) {
    if (obs::trace_active()) {
      obs::ScopedSpan span("batch.scenario", "batch",
                           obs::TraceArgs().str("config", configs[i]));
      outcomes[i] = run_scenario(configs[i]);
    } else {
      outcomes[i] = run_scenario(configs[i]);
    }
  });
  // Counted after the barrier from the index-ordered outcomes, so the
  // counters are jobs-invariant like every other metric.
  if (obs::current_metrics() != nullptr) {
    obs::count("batch.scenarios", outcomes.size());
    std::uint64_t failures = 0;
    for (const ScenarioOutcome& o : outcomes)
      if (!o.ok()) ++failures;
    obs::count("batch.failures", failures);
  }
  return outcomes;
}

void write_batch_summary(const std::vector<ScenarioOutcome>& outcomes,
                         std::ostream& out) {
  std::size_t succeeded = 0;
  for (const auto& o : outcomes)
    if (o.ok()) ++succeeded;
  out << "{\n";
  out << "  \"scenarios\": " << outcomes.size() << ",\n";
  out << "  \"succeeded\": " << succeeded << ",\n";
  out << "  \"failed\": " << outcomes.size() - succeeded << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ScenarioOutcome& o = outcomes[i];
    out << "    {\"config\": \"";
    json_escape(o.path, out);
    out << "\", \"exit_code\": " << o.exit_code;
    if (o.ok()) {
      out << ", \"algorithm\": \"";
      json_escape(o.algorithm, out);
      out << "\", \"penalized_cost\": ";
      json_number(o.penalized_cost, out);
      out << ", \"report_cost\": ";
      json_number(o.report_cost, out);
      out << ", \"delta_c\": ";
      json_number(o.delta_c, out);
      out << ", \"e_bar\": ";
      json_number(o.e_bar, out);
      out << ", \"iterations\": " << o.iterations;
      out << ", \"stop_reason\": \"";
      json_escape(o.stop_reason, out);
      out << "\", \"recovery_events\": " << o.recovery_events;
    } else {
      out << ", \"error\": \"";
      json_escape(o.error, out);
      out << "\"";
    }
    out << "}" << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace mocos::cli
