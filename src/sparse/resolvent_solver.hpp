#pragma once

#include <cstddef>

#include "src/linalg/matrix.hpp"
#include "src/sparse/sparse_matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::sparse {

/// The resolvent-style system the Markov engine solves everywhere:
///
///   A = I − P + u cᵀ
///
/// with P sparse and the rank-one term applied implicitly (𝟙cᵀ is globally
/// dense, so materializing A would destroy sparsity; one extra dot product
/// per matvec keeps the operator O(nnz)). With u = 𝟙 and c = 𝟙/M this is
/// the incremental cache's fixed-c resolvent (I − P + 𝟙cᵀ); with u = c = 𝟙
/// it is the dense stationary system B = I − Pᵀ + ones in transposed form.
struct ResolventOperator {
  const SparseMatrix* p = nullptr;  // not owned; must outlive the operator
  linalg::Vector u;                 // rank-one column
  linalg::Vector c;                 // rank-one row

  [[nodiscard]] std::size_t size() const { return p == nullptr ? 0 : p->rows(); }

  /// y = A x = x − P x + u (cᵀ x).
  void apply(const linalg::Vector& x, linalg::Vector& y) const;
  /// y = Aᵀ x = x − Pᵀ x + c (uᵀ x).
  void apply_transpose(const linalg::Vector& x, linalg::Vector& y) const;

  /// diag(A)_i = 1 − p_ii + u_i c_i — the Jacobi preconditioner diagonal.
  [[nodiscard]] linalg::Vector diagonal() const;
};

/// Iteration/tolerance knobs for the Krylov solve. The defaults aim at the
/// incremental cache's ≤1e-10 parity contract: a 1e-13 relative residual
/// leaves the downstream π/Z/R derivations indistinguishable from a direct
/// solve on weakly-coupled chains.
struct ResolventSolveConfig {
  std::size_t max_iterations = 500;
  double tolerance = 1e-13;  // relative ‖b − A x‖₂ / ‖b‖₂
};

/// Convergence report for one Krylov solve, surfaced through Status messages
/// and the sparse-path metrics.
struct SolveDiagnostics {
  std::size_t iterations = 0;
  double residual = 0.0;  // final relative residual
  bool converged = false;
};

/// Jacobi-preconditioned BiCGSTAB on A x = b (or Aᵀ x = b with
/// `transpose`). Deterministic: a fixed sequence of matvecs, dots and
/// axpys — no pivot choices, no data-dependent reordering — so repeated
/// solves of the same system are bit-identical on any thread.
///
/// Status taxonomy: kSingularMatrix when the recurrence breaks down
/// (ρ or ω collapse — the resolvent is singular or nearly so),
/// kNonFiniteValue when the iteration produces NaN/inf, kNotErgodic when
/// max_iterations pass without reaching the tolerance (the caller's cue to
/// drop a rung on the recovery ladder). `diag`, when non-null, is filled in
/// on every path including failures.
[[nodiscard]] util::StatusOr<linalg::Vector> try_solve_resolvent(
    const ResolventOperator& a, const linalg::Vector& b,
    const ResolventSolveConfig& config = {}, SolveDiagnostics* diag = nullptr,
    bool transpose = false);

/// Power iteration for πᵀP = πᵀ on a sparse chain — the recovery rung under
/// the Krylov solver, mirroring markov::stationary_power_iteration but in
/// O(nnz) per sweep. Returns kNotErgodic when the fixed-point residual
/// ‖πP − π‖₁ does not reach `tol` within `max_iterations` sweeps.
[[nodiscard]] util::StatusOr<linalg::Vector> try_stationary_power_sparse(
    const SparseMatrix& p, std::size_t max_iterations = 20000,
    double tol = 1e-12, SolveDiagnostics* diag = nullptr);

}  // namespace mocos::sparse
