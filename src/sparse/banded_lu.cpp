#include "src/sparse/banded_lu.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace mocos::sparse {

namespace {
/// Elimination pivots of I − P shrink toward 0 as the trailing submatrix
/// approaches singularity (a nearly reducible chain); below this floor the
/// factorization is meaningless and the caller should fall back.
constexpr double kPivotFloor = 1e-12;
}  // namespace

util::StatusOr<BandedResolventLu> BandedResolventLu::try_factor(
    const SparseMatrix& p, const linalg::Vector& c, std::size_t bandwidth) {
  const std::size_t n = p.rows();
  if (n < 2 || p.rows() != p.cols() || c.size() != n)
    return util::Status(util::StatusCode::kSizeMismatch,
                        "BandedResolventLu: need square P (n >= 2) and "
                        "matching anchor row");
  BandedResolventLu lu;
  lu.n_ = n;
  lu.b_ = std::min(bandwidth, n - 1);
  const std::size_t b = lu.b_;
  lu.band_.assign((n - 1) * (2 * b + 1), 0.0);
  lu.last_row_.assign(n, 0.0);

  // Scatter B = I − P + e_{n−1}cᵀ into the band + dense last row.
  const auto& offsets = p.row_offsets();
  const auto& cols = p.col_indices();
  const auto& vals = p.values();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    lu.band(i, i) = 1.0;
    for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      const std::size_t j = cols[e];
      const std::size_t dist = i > j ? i - j : j - i;
      if (dist > b)
        return util::Status(
            util::StatusCode::kInvalidConfig,
            "BandedResolventLu: entry (" + std::to_string(i) + ", " +
                std::to_string(j) + ") outside bandwidth " +
                std::to_string(b));
      lu.band(i, j) -= vals[e];
    }
  }
  for (std::size_t j = 0; j < n; ++j)
    lu.last_row_[j] = (j + 1 == n ? 1.0 : 0.0) + c[j];
  for (std::size_t e = offsets[n - 1]; e < offsets[n]; ++e)
    lu.last_row_[cols[e]] -= vals[e];

  // In-place LU, natural order. Fill stays within the band (classic banded
  // property) plus the dense last row, which is eliminated against every
  // column but eliminates nothing itself.
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const double pivot = lu.band(k, k);
    if (!(std::abs(pivot) > kPivotFloor) || !std::isfinite(pivot))
      return util::Status(util::StatusCode::kSingularMatrix,
                          "BandedResolventLu: pivot " + std::to_string(pivot) +
                              " at column " + std::to_string(k));
    const std::size_t row_end = std::min(k + b, n - 2);
    const std::size_t col_end = std::min(k + b, n - 1);
    for (std::size_t i = k + 1; i <= row_end; ++i) {
      const double l = lu.band(i, k) / pivot;
      lu.band(i, k) = l;
      // mocos-lint: allow(float-eq)
      if (l == 0.0) continue;  // exact: structural zero below the pivot
      for (std::size_t j = k + 1; j <= col_end; ++j)
        lu.band(i, j) -= l * lu.band(k, j);
    }
    const double l_last = lu.last_row_[k] / pivot;
    lu.last_row_[k] = l_last;
    // mocos-lint: allow(float-eq)
    if (l_last != 0.0) {
      for (std::size_t j = k + 1; j <= col_end; ++j)
        lu.last_row_[j] -= l_last * lu.band(k, j);
    }
  }
  const double last_pivot = lu.last_row_[n - 1];
  if (!(std::abs(last_pivot) > kPivotFloor) || !std::isfinite(last_pivot))
    return util::Status(util::StatusCode::kSingularMatrix,
                        "BandedResolventLu: final pivot " +
                            std::to_string(last_pivot));
  return lu;
}

void BandedResolventLu::solve_inplace(linalg::Vector& rhs) const {
  const std::size_t n = n_;
  const std::size_t b = b_;
  // Forward substitution with unit-lower L (band rows + the dense last row).
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const double xk = rhs[k];
    // mocos-lint: allow(float-eq)
    if (xk != 0.0) {
      const std::size_t row_end = std::min(k + b, n - 2);
      for (std::size_t i = k + 1; i <= row_end; ++i)
        rhs[i] -= band(i, k) * xk;
      rhs[n - 1] -= last_row_[k] * xk;
    }
  }
  // Back substitution with U.
  rhs[n - 1] /= last_row_[n - 1];
  for (std::size_t k = n - 1; k-- > 0;) {
    double acc = rhs[k];
    const std::size_t col_end = std::min(k + b, n - 1);
    for (std::size_t j = k + 1; j <= col_end; ++j)
      acc -= band(k, j) * rhs[j];
    rhs[k] = acc / band(k, k);
  }
}

}  // namespace mocos::sparse
