#pragma once

#include <cstddef>

#include "src/linalg/matrix.hpp"
#include "src/sparse/sparse_matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::sparse {

/// Banded LU factorization of the anchored resolvent system
///
///   B = I − P + e_{n−1} cᵀ
///
/// for a bandwidth-ordered sparse P (rows 0..n−2 banded, last row dense —
/// the rank-one anchor e_{n−1}cᵀ adds c to the last row only, so it creates
/// no fill outside that row: nothing is eliminated after it). B is
/// nonsingular for every irreducible row-stochastic P with π_{n−1} > 0, and
/// the full resolvent G = (I − P + 𝟙cᵀ)⁻¹ follows from B⁻¹ by one
/// Sherman–Morrison correction (see partition::try_sparse_resolvent).
///
/// Pivoting: none — I − P is irreducibly weakly diagonally dominant, for
/// which elimination in natural order is stable (GTH-style); a vanishing
/// pivot is reported as kSingularMatrix instead of being permuted around,
/// and the caller drops to the iterative or dense rung.
///
/// Costs: O(n·b²) factor, O(n·b) per solve — against O(n³)/O(n²) dense.
class BandedResolventLu {
 public:
  /// Factors B for the given banded P and anchor row c. `bandwidth` must
  /// satisfy |i−j| <= bandwidth for every stored entry of P outside the
  /// last row (checked; violations return kInvalidConfig).
  [[nodiscard]] static util::StatusOr<BandedResolventLu> try_factor(
      const SparseMatrix& p, const linalg::Vector& c, std::size_t bandwidth);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t bandwidth() const { return b_; }

  /// Solves B x = rhs in place (forward + back substitution), O(n·b).
  void solve_inplace(linalg::Vector& rhs) const;

 private:
  BandedResolventLu() = default;

  [[nodiscard]] double& band(std::size_t i, std::size_t j) {
    return band_[i * (2 * b_ + 1) + (j + b_ - i)];
  }
  [[nodiscard]] double band(std::size_t i, std::size_t j) const {
    return band_[i * (2 * b_ + 1) + (j + b_ - i)];
  }

  std::size_t n_ = 0;
  std::size_t b_ = 0;
  std::vector<double> band_;     // rows 0..n−2, cols within [i−b, i+b]
  linalg::Vector last_row_;      // dense row n−1 of the LU factors
};

}  // namespace mocos::sparse
