#include "src/sparse/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace mocos::sparse {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> entries) {
  for (const Triplet& t : entries) {
    if (t.row >= rows || t.col >= cols)
      throw std::invalid_argument(
          "SparseMatrix::from_triplets: index (" + std::to_string(t.row) +
          ", " + std::to_string(t.col) + ") out of range");
    if (!std::isfinite(t.value))
      throw std::invalid_argument(
          "SparseMatrix::from_triplets: non-finite value");
  }
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_.assign(rows + 1, 0);
  m.col_indices_.reserve(entries.size());
  m.values_.reserve(entries.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    m.row_offsets_[r] = m.values_.size();
    while (i < entries.size() && entries[i].row == r) {
      const std::size_t c = entries[i].col;
      double v = 0.0;
      while (i < entries.size() && entries[i].row == r &&
             entries[i].col == c) {
        v += entries[i].value;
        ++i;
      }
      // Exact on purpose: dropping only literal zeros keeps the dense
      // round-trip exact; near-zeros are genuine structure.
      // mocos-lint: allow(float-eq)
      if (v != 0.0) {
        m.col_indices_.push_back(c);
        m.values_.push_back(v);
      }
    }
  }
  m.row_offsets_[rows] = m.values_.size();
  return m;
}

SparseMatrix SparseMatrix::from_dense(const linalg::Matrix& d,
                                      double drop_tol) {
  SparseMatrix m;
  m.rows_ = d.rows();
  m.cols_ = d.cols();
  m.row_offsets_.assign(m.rows_ + 1, 0);
  for (std::size_t i = 0; i < d.rows(); ++i) {
    m.row_offsets_[i] = m.values_.size();
    for (std::size_t j = 0; j < d.cols(); ++j) {
      const double v = d(i, j);
      if (!std::isfinite(v))
        throw std::invalid_argument("SparseMatrix::from_dense: non-finite");
      if (std::abs(v) > drop_tol) {
        m.col_indices_.push_back(j);
        m.values_.push_back(v);
      }
    }
  }
  m.row_offsets_[m.rows_] = m.values_.size();
  return m;
}

linalg::Matrix SparseMatrix::to_dense() const {
  linalg::Matrix d(rows_, cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t e = row_offsets_[i]; e < row_offsets_[i + 1]; ++e)
      d(i, col_indices_[e]) = values_[e];
  return d;
}

double SparseMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_)
    throw std::out_of_range("SparseMatrix::at");
  const auto begin = col_indices_.begin() +
                     static_cast<std::ptrdiff_t>(row_offsets_[row]);
  const auto end = col_indices_.begin() +
                   static_cast<std::ptrdiff_t>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

void SparseMatrix::matvec(const linalg::Vector& x, linalg::Vector& y) const {
  if (x.size() != cols_)
    throw std::invalid_argument("SparseMatrix::matvec: size mismatch");
  y.assign(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t e = row_offsets_[i]; e < row_offsets_[i + 1]; ++e)
      acc += values_[e] * x[col_indices_[e]];
    y[i] = acc;
  }
}

linalg::Vector SparseMatrix::matvec(const linalg::Vector& x) const {
  linalg::Vector y;
  matvec(x, y);
  return y;
}

void SparseMatrix::transpose_matvec(const linalg::Vector& x,
                                    linalg::Vector& y) const {
  if (x.size() != rows_)
    throw std::invalid_argument(
        "SparseMatrix::transpose_matvec: size mismatch");
  y.assign(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    // mocos-lint: allow(float-eq)
    if (xi == 0.0) continue;  // exact: skipping a zero scatter is lossless
    for (std::size_t e = row_offsets_[i]; e < row_offsets_[i + 1]; ++e)
      y[col_indices_[e]] += values_[e] * xi;
  }
}

linalg::Vector SparseMatrix::transpose_matvec(const linalg::Vector& x) const {
  linalg::Vector y;
  transpose_matvec(x, y);
  return y;
}

SparseMatrix SparseMatrix::transposed() const {
  std::vector<Triplet> entries;
  entries.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t e = row_offsets_[i]; e < row_offsets_[i + 1]; ++e)
      entries.push_back(Triplet{col_indices_[e], i, values_[e]});
  return from_triplets(cols_, rows_, std::move(entries));
}

}  // namespace mocos::sparse
