#pragma once

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace mocos::sparse {

/// One (row, col, value) coordinate entry used to assemble a SparseMatrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Compressed-sparse-row matrix for city-scale transition structure.
///
/// Invariants (established by every factory and relied on by the kernels):
///  - row_offsets() has rows()+1 entries, is non-decreasing, and
///    row_offsets()[rows()] == nnz();
///  - within each row, column indices are strictly increasing (sorted, no
///    duplicates — from_triplets sums duplicates during assembly);
///  - stored values are finite; exact zeros are dropped.
///
/// The dense `linalg::Matrix` stays the interchange format of the rest of
/// the library (TransitionMatrix is dense storage); this type exists for the
/// solver-side kernels where O(nnz) beats O(M²)/O(M³): matvec,
/// transpose-matvec, structure analysis (bandwidth orderings, block
/// partitions) and the sparse resolvent solvers.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from coordinate entries. Duplicate (row, col) pairs are summed;
  /// pairs whose sum is exactly zero are dropped (matching from_dense, so
  /// both factories establish the same invariant). Throws
  /// std::invalid_argument on out-of-range indices or non-finite values.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> entries);

  /// Compresses a dense matrix, dropping entries with |value| <= drop_tol
  /// (default: only exact zeros are dropped, so the round-trip through
  /// to_dense() is exact).
  static SparseMatrix from_dense(const linalg::Matrix& m,
                                 double drop_tol = 0.0);

  /// Dense round-trip; exact (every stored value is placed verbatim).
  [[nodiscard]] linalg::Matrix to_dense() const;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return rows_ == 0; }
  /// nnz / (rows*cols); 0 for an empty matrix.
  [[nodiscard]] double density() const;

  /// CSR storage access for tight loops.
  [[nodiscard]] const std::vector<std::size_t>& row_offsets() const {
    return row_offsets_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_indices() const {
    return col_indices_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Entry lookup by binary search within the row; 0.0 when not stored.
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// y = A x (sizes must match; y is overwritten).
  void matvec(const linalg::Vector& x, linalg::Vector& y) const;
  [[nodiscard]] linalg::Vector matvec(const linalg::Vector& x) const;

  /// y = Aᵀ x. Runs over the CSR rows scattering into y, so it is
  /// deterministic and needs no transposed copy.
  void transpose_matvec(const linalg::Vector& x, linalg::Vector& y) const;
  [[nodiscard]] linalg::Vector transpose_matvec(const linalg::Vector& x) const;

  /// Explicit transpose (CSR of Aᵀ), for kernels that iterate columns.
  [[nodiscard]] SparseMatrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // rows_+1
  std::vector<std::size_t> col_indices_;  // nnz
  std::vector<double> values_;            // nnz
};

}  // namespace mocos::sparse
