#include "src/sparse/resolvent_solver.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace mocos::sparse {

namespace {

double dot(const linalg::Vector& a, const linalg::Vector& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const linalg::Vector& a) { return std::sqrt(dot(a, a)); }

util::Status fail(util::StatusCode code, const std::string& what,
                  const SolveDiagnostics& d) {
  return util::Status(
      code, "sparse resolvent solve: " + what + " (iteration " +
                std::to_string(d.iterations) + ", relative residual " +
                std::to_string(d.residual) + ")");
}

}  // namespace

void ResolventOperator::apply(const linalg::Vector& x,
                              linalg::Vector& y) const {
  p->matvec(x, y);
  const double cx = dot(c, x);
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] - y[i] + u[i] * cx;
}

void ResolventOperator::apply_transpose(const linalg::Vector& x,
                                        linalg::Vector& y) const {
  p->transpose_matvec(x, y);
  const double ux = dot(u, x);
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] - y[i] + c[i] * ux;
}

linalg::Vector ResolventOperator::diagonal() const {
  const std::size_t n = size();
  linalg::Vector d(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) d[i] += u[i] * c[i] - p->at(i, i);
  return d;
}

util::StatusOr<linalg::Vector> try_solve_resolvent(
    const ResolventOperator& a, const linalg::Vector& b,
    const ResolventSolveConfig& config, SolveDiagnostics* diag,
    bool transpose) {
  const std::size_t n = a.size();
  SolveDiagnostics local;
  if (diag == nullptr) diag = &local;
  *diag = SolveDiagnostics{};
  if (a.p == nullptr || a.u.size() != n || a.c.size() != n ||
      b.size() != n || a.p->rows() != a.p->cols())
    return util::Status(util::StatusCode::kSizeMismatch,
                        "try_solve_resolvent: operator/rhs size mismatch");

  auto apply = [&](const linalg::Vector& x, linalg::Vector& y) {
    if (transpose)
      a.apply_transpose(x, y);
    else
      a.apply(x, y);
  };

  // Jacobi preconditioner M⁻¹ = diag(A)⁻¹ (same diagonal for Aᵀ). Entries
  // of the resolvent diagonal are 1 − p_ii + u_i c_i ≥ u_i c_i > 0 for
  // stochastic P and positive rank-one vectors, but guard anyway.
  linalg::Vector inv_diag = a.diagonal();
  for (double& d : inv_diag) {
    if (!(std::abs(d) > 1e-300))
      return util::Status(util::StatusCode::kSingularMatrix,
                          "try_solve_resolvent: zero diagonal entry");
    d = 1.0 / d;
  }

  const double bnorm = norm2(b);
  // mocos-lint: allow(float-eq)
  if (bnorm == 0.0) {
    diag->converged = true;
    return linalg::Vector(n, 0.0);  // exact: A·0 = 0 is the unique solution
  }

  // BiCGSTAB (van der Vorst) with right Jacobi preconditioning, x₀ = 0.
  linalg::Vector x(n, 0.0);
  linalg::Vector r = b;          // r₀ = b − A x₀ = b
  const linalg::Vector r0 = r;   // shadow residual
  linalg::Vector pvec(n, 0.0), v(n, 0.0), s(n), t(n), phat(n), shat(n);
  double rho_prev = 1.0, alpha = 1.0, omega = 1.0;

  for (std::size_t it = 1; it <= config.max_iterations; ++it) {
    diag->iterations = it;
    const double rho = dot(r0, r);
    if (!(std::abs(rho) > 1e-300))
      return fail(util::StatusCode::kSingularMatrix, "rho breakdown", *diag);
    if (it == 1) {
      pvec = r;
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i)
        pvec[i] = r[i] + beta * (pvec[i] - omega * v[i]);
    }
    for (std::size_t i = 0; i < n; ++i) phat[i] = inv_diag[i] * pvec[i];
    apply(phat, v);
    const double r0v = dot(r0, v);
    if (!(std::abs(r0v) > 1e-300))
      return fail(util::StatusCode::kSingularMatrix, "alpha breakdown",
                  *diag);
    alpha = rho / r0v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];

    double snorm = norm2(s);
    if (!std::isfinite(snorm))
      return fail(util::StatusCode::kNonFiniteValue, "non-finite iterate",
                  *diag);
    if (snorm / bnorm <= config.tolerance) {
      for (std::size_t i = 0; i < n; ++i) x[i] += alpha * phat[i];
      diag->residual = snorm / bnorm;
      diag->converged = true;
      return x;
    }

    for (std::size_t i = 0; i < n; ++i) shat[i] = inv_diag[i] * s[i];
    apply(shat, t);
    const double tt = dot(t, t);
    if (!(tt > 1e-300))
      return fail(util::StatusCode::kSingularMatrix, "omega breakdown",
                  *diag);
    omega = dot(t, s) / tt;
    if (!(std::abs(omega) > 1e-300))
      return fail(util::StatusCode::kSingularMatrix, "omega breakdown",
                  *diag);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    const double rnorm = norm2(r);
    if (!std::isfinite(rnorm))
      return fail(util::StatusCode::kNonFiniteValue, "non-finite residual",
                  *diag);
    diag->residual = rnorm / bnorm;
    if (diag->residual <= config.tolerance) {
      diag->converged = true;
      return x;
    }
    rho_prev = rho;
  }
  return fail(util::StatusCode::kNotErgodic,
              "did not converge within max_iterations", *diag);
}

util::StatusOr<linalg::Vector> try_stationary_power_sparse(
    const SparseMatrix& p, std::size_t max_iterations, double tol,
    SolveDiagnostics* diag) {
  SolveDiagnostics local;
  if (diag == nullptr) diag = &local;
  *diag = SolveDiagnostics{};
  const std::size_t n = p.rows();
  if (n == 0 || p.rows() != p.cols())
    return util::Status(util::StatusCode::kSizeMismatch,
                        "try_stationary_power_sparse: not square");
  linalg::Vector x(n, 1.0 / static_cast<double>(n));
  linalg::Vector next(n, 0.0);
  for (std::size_t it = 1; it <= max_iterations; ++it) {
    diag->iterations = it;
    p.transpose_matvec(x, next);  // nextᵀ = xᵀ P
    double sum = 0.0, change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      change += std::abs(next[i] - x[i]);
      sum += next[i];
    }
    if (!(sum > 0.0) || !std::isfinite(sum))
      return util::Status(util::StatusCode::kNotErgodic,
                          "sparse power iteration lost probability mass");
    for (std::size_t i = 0; i < n; ++i) x[i] = next[i] / sum;
    diag->residual = change;
    if (change < tol) {
      diag->converged = true;
      return x;
    }
  }
  return util::Status(
      util::StatusCode::kNotErgodic,
      "sparse power iteration did not reach a fixed point (residual " +
          std::to_string(diag->residual) + ")");
}

}  // namespace mocos::sparse
