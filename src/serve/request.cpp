#include "src/serve/request.hpp"

#include <cmath>
#include <map>

#include "src/serve/json.hpp"
#include "src/util/fault_injection.hpp"

namespace mocos::serve {

namespace {

util::Status decode_error(const std::string& what) {
  return util::Status(util::StatusCode::kInvalidConfig, "request: " + what);
}

util::StatusOr<std::uint64_t> as_count(const std::string& key,
                                       const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber)
    return decode_error("`" + key + "` must be a number");
  if (!(v.num >= 0.0) || v.num != std::floor(v.num) || v.num > 1e15)
    return decode_error("`" + key + "` must be a non-negative integer");
  return static_cast<std::uint64_t>(v.num);
}

}  // namespace

util::StatusOr<Request> parse_request(std::string_view line) {
  if (util::fault::fire(util::fault::Site::kServeDecodeFault))
    return decode_error("injected decode fault");
  util::StatusOr<std::map<std::string, JsonValue>> fields =
      parse_flat_object(line);
  if (!fields.ok()) return fields.status();

  Request request;
  for (const auto& [key, value] : *fields) {
    if (key == "id" || key == "config" || key == "cache_key") {
      if (value.kind != JsonValue::Kind::kString)
        return decode_error("`" + key + "` must be a string");
      if (key == "id") request.id = value.str;
      else if (key == "config") request.config_text = value.str;
      else request.cache_key = value.str;
    } else if (key == "deadline_ms") {
      util::StatusOr<std::uint64_t> n = as_count(key, value);
      if (!n.ok()) return n.status();
      request.deadline_ms = *n;
      request.has_deadline = true;
    } else if (key == "warm_start") {
      if (value.kind != JsonValue::Kind::kBool)
        return decode_error("`warm_start` must be a bool");
      request.warm_start = value.boolean;
    } else {
      return decode_error("unknown field `" + key + "`");
    }
  }
  if (request.id.empty()) return decode_error("`id` is required");
  if (request.config_text.empty())
    return decode_error("`config` is required");
  if (request.warm_start && request.cache_key.empty())
    return decode_error("`warm_start` requires a `cache_key`");
  return request;
}

void write_response(const Response& response, std::ostream& out) {
  out << "{\"seq\": " << response.seq << ", \"id\": ";
  write_json_string(response.id, out);
  out << ", \"code\": " << response.code << ", \"status\": ";
  write_json_string(response.status, out);
  if (!response.error.empty()) {
    out << ", \"error\": ";
    write_json_string(response.error, out);
  }
  if (response.has_result) {
    out << ", \"cost\": ";
    write_json_number(response.penalized_cost, out);
    out << ", \"report_cost\": ";
    write_json_number(response.report_cost, out);
    out << ", \"delta_c\": ";
    write_json_number(response.delta_c, out);
    out << ", \"e_bar\": ";
    write_json_number(response.e_bar, out);
    out << ", \"iterations\": " << response.iterations
        << ", \"stop_reason\": ";
    write_json_string(response.stop_reason, out);
    out << ", \"recovery_events\": " << response.recovery_events
        << ", \"warm_started\": "
        << (response.warm_started ? "true" : "false")
        << ", \"cache_full_solves\": " << response.chain.full_solves
        << ", \"cache_exact_hits\": " << response.chain.exact_hits
        << ", \"cache_row_updates\": "
        << response.chain.incremental_row_updates;
  }
  if (response.retry_after_ms)
    out << ", \"retry_after_ms\": " << *response.retry_after_ms;
  if (response.elapsed_ms) {
    out << ", \"elapsed_ms\": ";
    write_json_number(*response.elapsed_ms, out);
  }
  out << "}\n";
}

std::uint64_t seed_from_request_id(std::string_view id) {
  // FNV-1a 64-bit over the id bytes...
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // ...then the SplitMix64 finalizer, the same mixer Rng::stream uses, so
  // near-identical ids ("job-1", "job-2") land on unrelated seeds.
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  // Seed 0 is fine for util::Rng, but keep away from the CLI default 1 so a
  // request id never silently collides with hand-written configs.
  return h;
}

}  // namespace mocos::serve
