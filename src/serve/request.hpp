#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "src/markov/incremental.hpp"
#include "src/util/status.hpp"

namespace mocos::serve {

/// One decoded optimization request — an NDJSON line like
///
///   {"id": "job-17", "config": "topology = grid:3x3\niterations = 200",
///    "deadline_ms": 500, "cache_key": "grid3", "warm_start": true}
///
/// Fields:
///   id          (string, required)  caller's correlation id; also the seed
///                                   base when the config sets no `seed`, so
///                                   replays are scheduling-independent
///   config      (string, required)  mocos config text (the same key=value
///                                   language as *.conf files)
///   deadline_ms (number, optional)  per-request budget; overrides the
///                                   server default (0 = no deadline)
///   cache_key   (string, optional)  requests sharing a key run in arrival
///                                   order on one warm ChainSolveCache lane;
///                                   empty/absent = a cold cache per request
///   warm_start  (bool, optional)    start from the lane's previous solution
///                                   when sizes match (keyed lanes only)
struct Request {
  std::string id;
  std::string config_text;
  std::uint64_t deadline_ms = 0;  // 0 = use the server default
  bool has_deadline = false;      // true when the request named one itself
  std::string cache_key;
  bool warm_start = false;
};

/// Decodes one NDJSON line into a Request. Any malformed input — bad JSON,
/// missing/mistyped fields, unknown keys, the kServeDecodeFault injection
/// site — returns kInvalidConfig; the caller answers with a structured
/// error response instead of dying.
[[nodiscard]] util::StatusOr<Request> parse_request(std::string_view line);

/// What a request's lifecycle ended as. Exactly one response per request
/// line is the serve invariant; `code` reuses the CLI exit-code taxonomy
/// plus kExitDeadlineExceeded (5) and kExitShed (6).
struct Response {
  std::uint64_t seq = 0;  // arrival index of the request line (0-based)
  std::string id;         // echoed; empty when decoding never got that far
  int code = 0;
  std::string status;     // "ok" | "error" | "deadline-exceeded" | "shed"
  std::string error;      // non-empty iff code != 0

  // Success payload (code == 0, and best-so-far on deadline responses that
  // still carry a finite iterate).
  bool has_result = false;
  double penalized_cost = 0.0;
  double report_cost = 0.0;
  double delta_c = 0.0;
  double e_bar = 0.0;
  std::uint64_t iterations = 0;
  std::string stop_reason;
  std::uint64_t recovery_events = 0;
  markov::ChainSolveCache::Stats chain;
  bool warm_started = false;

  // Shed payload (code == kExitShed).
  std::optional<std::uint64_t> retry_after_ms;

  // Wall-clock request latency; only populated under --timings, which
  // explicitly trades away byte-reproducibility of the response log.
  std::optional<double> elapsed_ms;
};

/// Writes the response as one NDJSON line (newline included). Key order is
/// fixed and numbers use %.17g, so a replayed request log produces a
/// byte-identical response log at any worker count (absent --timings).
void write_response(const Response& response, std::ostream& out);

/// Deterministic seed from a request id (FNV-1a over the bytes, then a
/// SplitMix64 finalizer): the `seed` fallback that makes replays independent
/// of worker count and arrival timing.
[[nodiscard]] std::uint64_t seed_from_request_id(std::string_view id);

}  // namespace mocos::serve
