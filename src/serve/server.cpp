#include "src/serve/server.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <istream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sstream>

#include "src/cli/cli.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/problem.hpp"
#include "src/markov/incremental.hpp"
#include "src/obs/exposition.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/phase_timer.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/thread_pool.hpp"
#include "src/serve/queue.hpp"
#include "src/serve/request.hpp"
#include "src/serve/telemetry_http.hpp"
#include "src/util/config.hpp"
#include "src/util/fault_injection.hpp"
#include "src/util/mutex.hpp"
#include "src/util/status.hpp"
#include "src/util/thread_annotations.hpp"

namespace mocos::serve {

namespace {

std::atomic<bool> g_drain{false};

// The serve layer is the one place in src/ allowed to read a clock outside
// src/obs: deadlines and the watchdog are *about* wall time. Every read goes
// through these two helpers; nothing downstream of them flows into response
// payloads except deadline/timing fields, which are documented as outside
// the byte-reproducibility contract.
// mocos-lint: allow(det-time)
using Clock = std::chrono::steady_clock;

Clock::time_point now() {
  return Clock::now();  // mocos-lint: allow(det-time)
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(now() - start).count();
}

/// Bucket edges (milliseconds) for serve.request.latency. Sub-millisecond
/// decode/shed responses land in the underflow bucket; the top edge is far
/// past any sane deadline.
std::vector<double> latency_bounds_ms() {
  return {1.0,   2.5,   5.0,    10.0,   25.0,   50.0,  100.0,
          250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
}

/// One admitted request in flight. `responded` is the first-wins latch
/// between the worker and the watchdog: whoever flips it false->true owns
/// delivering the response and releasing the admission slot, so exactly one
/// response per request survives even when both race.
struct Pending {
  std::uint64_t seq = 0;
  Request request;
  std::uint64_t deadline_ms = 0;  // resolved against the server default
  std::atomic<bool> started{false};
  std::atomic<bool> responded{false};
  /// Set by the watchdog when it answers on the worker's behalf; the
  /// cooperative should_stop includes it, so an abandoned-but-alive worker
  /// stops at its next iteration boundary instead of finishing the run.
  std::atomic<bool> abandoned{false};
  Clock::time_point start_time;
};

class ServerImpl {
 public:
  ServerImpl(const ServeOptions& options, std::ostream& out)
      : options_(options),
        out_(out),
        gate_(options.queue_capacity),
        pool_(options.jobs) {}

  ServeReport run(std::istream& in) {
    // Profiler first: it is process-global, and workers start reporting
    // phases the moment the first request dispatches. The timer and its
    // install are members (declared before pool_) so a watchdog-abandoned
    // worker that outlives run() still records into live storage.
    if (!options_.profile_path.empty()) profile_install_.emplace(&profiler_);

    // The telemetry endpoint outlives the whole read/drain cycle so scrapes
    // during shutdown still answer; it is stopped explicitly below, before
    // the report goes out (and again, harmlessly, at destruction).
    if (options_.metrics_port >= 0) {
      TelemetryHooks hooks;
      hooks.metrics_text = [this] { return metrics_text(); };
      hooks.health_json = [this] { return health_json(); };
      telemetry_ = std::make_unique<TelemetryEndpoint>(std::move(hooks));
      const util::Status started = telemetry_->start(
          static_cast<std::uint16_t>(options_.metrics_port));
      if (!started.is_ok()) throw util::StatusError(started);
      if (!options_.metrics_port_file.empty()) {
        std::ofstream port_file(options_.metrics_port_file,
                                std::ios::out | std::ios::trunc);
        if (port_file) port_file << telemetry_->port() << "\n";
      }
    }

    std::thread watchdog([this] { watchdog_loop(); });
    std::string line;
    std::uint64_t seq = 0;
    while (!drain_requested()) {
      if (!std::getline(in, line)) break;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      wait_for_buffer_space();
      const std::uint64_t this_seq = seq++;
      accept(this_seq, line);
    }
    const bool drained_early = drain_requested();

    // Drain: everything admitted (or shed/refused) gets its response before
    // we tear anything down. Requests past their deadline are failed by the
    // cooperative check or, failing that, the watchdog — so this wait
    // terminates for every deadline-carrying request.
    {
      util::MutexLock lock(emit_mu_);
      while (next_emit_ != seq) emit_cv_.wait(emit_mu_);
    }
    watchdog_stop_.store(true, std::memory_order_relaxed);
    watchdog.join();

    std::uint64_t lanes_live = 0;
    std::uint64_t lanes_evicted = 0;
    {
      util::MutexLock lock(lanes_mu_);
      lanes_live = lanes_.size();
      lanes_evicted = lanes_evicted_;
    }
    ServeReport report;
    {
      util::MutexLock lock(emit_mu_);
      report = report_;
      report.requests = seq;
      report.peak_depth = gate_.peak();
      report.drained_early = drained_early;
      registry_.counter("serve.requests.total").add(seq);
      registry_.counter("serve.lanes.evicted").add(lanes_evicted);
      registry_.gauge("serve.lanes.live")
          .set(static_cast<double>(lanes_live));
      registry_.gauge("serve.queue.capacity")
          .set(static_cast<double>(gate_.capacity()));
      registry_.gauge("serve.queue.peak_depth")
          .set(static_cast<double>(gate_.peak()));
      registry_.gauge("serve.queue.depth")
          .set(static_cast<double>(gate_.depth()));
      write_metrics_locked();
    }
    if (telemetry_) telemetry_->stop();
    if (!options_.profile_path.empty()) {
      std::ofstream profile_file(options_.profile_path,
                                 std::ios::out | std::ios::trunc);
      // Profile IO must never take the server down, same as metrics IO.
      if (profile_file) profiler_.write_json(profile_file);
    }
    return report;
  }

 private:
  /// Requests sharing a cache_key form a lane: they run one at a time, in
  /// arrival order, against the lane's long-lived solver cache and previous
  /// solution. Serializing per key is what makes warm-cache state — and with
  /// it the response log — independent of worker count. Lanes are held by
  /// shared_ptr so an LRU eviction can drop the map entry while a pump is
  /// still draining the lane's queue; the warm state dies with the last ref.
  // Locking discipline (TSA cannot express it: a nested struct's fields
  // cannot name the outer class's lanes_mu_ in MOCOS_GUARDED_BY):
  //   - waiting / running / uses / last_use_tick are guarded by lanes_mu_.
  //   - cache / last_solution are NOT lock-protected: `running` guarantees
  //     at most one pump services a lane at a time, so only that pump's
  //     worker touches them (single-pump exclusivity).
  struct Lane {
    markov::ChainSolveCache cache;
    std::optional<markov::TransitionMatrix> last_solution;
    std::deque<std::shared_ptr<Pending>> waiting;
    bool running = false;
    std::uint64_t uses = 0;
    std::uint64_t last_use_tick = 0;  // dispatch order, for LRU eviction
  };

  void accept(std::uint64_t seq, const std::string& line) {
    util::StatusOr<Request> parsed = parse_request(line);
    if (!parsed.ok()) {
      Response r;
      r.seq = seq;
      r.code = cli::kExitBadConfig;
      r.status = "error";
      r.error = parsed.status().to_string();
      deliver(std::move(r), obs::MetricsSnapshot{});
      return;
    }
    if (!gate_.try_admit()) {
      Response r;
      r.seq = seq;
      r.id = parsed->id;
      r.code = cli::kExitShed;
      r.status = "shed";
      r.error = "queue full (capacity " + std::to_string(gate_.capacity()) +
                "); retry after the hinted backoff";
      r.retry_after_ms = gate_.retry_after_ms_hint();
      deliver(std::move(r), obs::MetricsSnapshot{});
      return;
    }
    auto pending = std::make_shared<Pending>();
    pending->seq = seq;
    pending->request = std::move(*parsed);
    pending->deadline_ms = pending->request.has_deadline
                               ? pending->request.deadline_ms
                               : options_.default_deadline_ms;
    {
      util::MutexLock lock(inflight_mu_);
      inflight_.emplace(seq, pending);
    }
    dispatch(std::move(pending));
  }

  void dispatch(std::shared_ptr<Pending> pending) {
    if (pending->request.cache_key.empty()) {
      // Cold request: its own evaluator, any worker, no ordering constraint
      // beyond the in-order reorder buffer at emission.
      pool_.submit([this, pending] { process(pending, nullptr); });
      return;
    }
    std::shared_ptr<Lane> lane;
    bool start_pump = false;
    {
      util::MutexLock lock(lanes_mu_);
      std::shared_ptr<Lane>& slot = lanes_[pending->request.cache_key];
      if (!slot) slot = std::make_shared<Lane>();
      slot->last_use_tick = ++lane_tick_;
      lane = slot;
      lane->waiting.push_back(std::move(pending));
      if (!lane->running) {
        lane->running = true;
        start_pump = true;
      }
      evict_lru_locked(lane);
    }
    if (start_pump)
      pool_.submit([this, lane] { pump_lane(lane); });
  }

  /// Bounds lanes_ (DESIGN.md §11.2: degradation never runs into unbounded
  /// memory): past max_lanes, the least-recently-dispatched lane loses its
  /// map entry, releasing its warm cache and last solution once any pump
  /// still draining it finishes. Runs on the reader thread under lanes_mu_,
  /// keyed only by dispatch ticks — which requests run warm vs cold is
  /// therefore a function of arrival order alone, for any worker count.
  void evict_lru_locked(const std::shared_ptr<Lane>& keep)
      MOCOS_REQUIRES(lanes_mu_) {
    if (options_.max_lanes == 0) return;
    while (lanes_.size() > options_.max_lanes) {
      auto victim = lanes_.end();
      for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
        if (it->second == keep) continue;
        if (victim == lanes_.end() ||
            it->second->last_use_tick < victim->second->last_use_tick)
          victim = it;
      }
      if (victim == lanes_.end()) return;  // only `keep` left
      lanes_.erase(victim);
      ++lanes_evicted_;
    }
  }

  void pump_lane(const std::shared_ptr<Lane>& lane) {
    for (;;) {
      std::shared_ptr<Pending> next;
      {
        util::MutexLock lock(lanes_mu_);
        if (lane->waiting.empty()) {
          lane->running = false;
          return;
        }
        next = std::move(lane->waiting.front());
        lane->waiting.pop_front();
      }
      process(next, lane.get());
    }
  }

  void process(const std::shared_ptr<Pending>& pending, Lane* lane) {
    pending->start_time = now();
    pending->started.store(true, std::memory_order_release);
    obs::MetricsRegistry request_metrics;
    Response response = execute(pending, lane, request_metrics);
    response.seq = pending->seq;
    response.id = pending->request.id;
    const double latency_ms = ms_since(pending->start_time);
    if (options_.timings) response.elapsed_ms = latency_ms;
    if (!pending->responded.exchange(true)) {
      erase_inflight(pending->seq);
      deliver(std::move(response), request_metrics.snapshot(), latency_ms);
      gate_.release();
    }
    // else: the watchdog already answered (and released the slot); this
    // worker's late result is dropped on the floor, per the first-wins rule.
  }

  /// The whole per-request failure-isolation story lives here: every way a
  /// request can go wrong — bad config text, numerical breakdown, deadline,
  /// injected wedge — converges to a filled-in Response, never an escaped
  /// exception (the pool would std::terminate).
  Response execute(const std::shared_ptr<Pending>& pending, Lane* lane,
                   obs::MetricsRegistry& request_metrics) {
    Response r;
    const Request& req = pending->request;
    obs::ScopedMetrics install(&request_metrics);
    // Request-scoped telemetry: every trace event emitted on this worker
    // until execute() returns carries "rid":<request id> (DESIGN.md §15) —
    // the optimization runs on this thread (ExecutionContext(1)), so the
    // thread-local scope covers the whole request. The phase scope roots the
    // profiler's stacks at serve.request.
    obs::ScopedTraceContext trace_ctx(req.id);
    obs::ScopedPhase phase("serve.request");
    std::optional<obs::ScopedSpan> span;
    if (obs::trace_active())
      span.emplace("serve.request", "serve",
                   obs::TraceArgs()
                       .str("id", req.id)
                       .num("seq", static_cast<double>(pending->seq)));
    obs::count("serve.requests.started");

    if (util::fault::fire(util::fault::Site::kServeStuckWorker) &&
        pending->deadline_ms > 0) {
      // Simulated wedge: ignore the cooperative check until the watchdog
      // abandons us (bounded by a hard cap so a misconfigured test cannot
      // hang the suite). The watchdog's response wins the exchange; this
      // one is discarded.
      obs::count("serve.faults.stuck_worker");
      const double cap_ms =
          static_cast<double>(pending->deadline_ms +
                              options_.watchdog_grace_ms) +
          5000.0;
      while (!pending->abandoned.load(std::memory_order_relaxed) &&
             !pending->responded.load(std::memory_order_relaxed) &&
             ms_since(pending->start_time) < cap_ms)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      r.code = cli::kExitDeadlineExceeded;
      r.status = "deadline-exceeded";
      r.error = "worker wedged past its deadline";
      return r;
    }

    try {
      const util::Config config =
          util::Config::parse_string(req.config_text, "request:" + req.id);
      const core::Problem problem = cli::build_problem(config);
      cli::RunHooks hooks;
      hooks.default_seed = seed_from_request_id(req.id);
      if (pending->deadline_ms > 0) {
        const auto p = pending;
        hooks.should_stop = [p] {
          return p->abandoned.load(std::memory_order_relaxed) ||
                 ms_since(p->start_time) >
                     static_cast<double>(p->deadline_ms);
        };
      }
      bool warm_applied = false;
      if (lane != nullptr) {
        if (config.get_bool("incremental", true))
          hooks.shared_cache = &lane->cache;
        if (req.warm_start && lane->last_solution &&
            lane->last_solution->size() == problem.num_pois()) {
          hooks.warm_start = &*lane->last_solution;
          // run_optimization still declines the warm start for multi-start
          // or load_schedule configs, so the response flag comes from its
          // out-field, not from the offer.
          hooks.warm_start_applied = &warm_applied;
        }
        if (lane->uses > 0) obs::count("serve.lane.reuses");
        ++lane->uses;
      }

      const runtime::ExecutionContext ctx(1);  // requests are the unit of
                                               // parallelism, not starts
      core::OptimizationOutcome outcome =
          cli::run_optimization(config, problem, ctx, hooks);
      r.warm_started = warm_applied;
      if (warm_applied) obs::count("serve.cache.warm_hits");

      r.has_result = true;
      r.penalized_cost = outcome.penalized_cost;
      r.report_cost = outcome.report_cost;
      r.delta_c = outcome.metrics.delta_c;
      r.e_bar = outcome.metrics.e_bar;
      r.iterations = outcome.iterations;
      r.stop_reason = descent::to_string(outcome.stop_reason);
      r.recovery_events = outcome.recovery.size();
      r.chain = outcome.chain_stats;
      if (outcome.stop_reason == descent::StopReason::kCancelled) {
        r.code = cli::kExitDeadlineExceeded;
        r.status = "deadline-exceeded";
        r.error = "deadline of " + std::to_string(pending->deadline_ms) +
                  " ms expired; result is the best iterate found in budget";
      } else if (outcome.stop_reason ==
                 descent::StopReason::kNumericalFailure) {
        r.code = cli::kExitNumericalFailure;
        r.status = "error";
        r.error = "descent recovery ladder exhausted (" +
                  outcome.recovery.summary() + ")";
      } else {
        r.code = cli::kExitSuccess;
        r.status = "ok";
      }
      if (lane != nullptr && r.has_result)
        lane->last_solution = std::move(outcome.p);
    } catch (const util::StatusError& e) {
      r.status = "error";
      r.error = e.what();
      if (util::is_numerical_failure(e.status().code()))
        r.code = cli::kExitNumericalFailure;
      else if (e.status().code() == util::StatusCode::kInvalidConfig)
        r.code = cli::kExitBadConfig;
      else
        r.code = cli::kExitRuntimeError;
    } catch (const std::invalid_argument& e) {
      r.code = cli::kExitBadConfig;
      r.status = "error";
      r.error = e.what();
    } catch (const std::out_of_range& e) {
      r.code = cli::kExitBadConfig;
      r.status = "error";
      r.error = e.what();
    } catch (const std::exception& e) {
      r.code = cli::kExitRuntimeError;
      r.status = "error";
      r.error = e.what();
    }
    return r;
  }

  void watchdog_loop() {
    while (!watchdog_stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.watchdog_poll_ms));
      std::vector<std::shared_ptr<Pending>> candidates;
      {
        util::MutexLock lock(inflight_mu_);
        for (const auto& [seq, p] : inflight_) {
          if (p->deadline_ms == 0) continue;
          if (!p->started.load(std::memory_order_acquire)) continue;
          if (p->responded.load(std::memory_order_relaxed)) continue;
          if (ms_since(p->start_time) >
              static_cast<double>(p->deadline_ms +
                                  options_.watchdog_grace_ms))
            candidates.push_back(p);
        }
      }
      for (const auto& p : candidates) {
        if (p->responded.exchange(true)) continue;  // worker beat us to it
        p->abandoned.store(true, std::memory_order_relaxed);
        Response r;
        r.seq = p->seq;
        r.id = p->request.id;
        r.code = cli::kExitDeadlineExceeded;
        r.status = "deadline-exceeded";
        r.error = "watchdog: worker missed the deadline of " +
                  std::to_string(p->deadline_ms) + " ms plus " +
                  std::to_string(options_.watchdog_grace_ms) +
                  " ms grace; request failed, server continues";
        obs::MetricsRegistry m;
        m.counter("serve.watchdog.fired").add(1);
        erase_inflight(p->seq);
        deliver(std::move(r), m.snapshot(), ms_since(p->start_time));
        gate_.release();
      }
    }
  }

  void erase_inflight(std::uint64_t seq) MOCOS_EXCLUDES(inflight_mu_) {
    util::MutexLock lock(inflight_mu_);
    inflight_.erase(seq);
  }

  /// Reorder buffer: responses complete in any order but are written in
  /// request-arrival order, which is both the determinism contract and the
  /// reason a replayed log is comparable byte for byte. Per-request metrics
  /// merge into the server registry at flush time — also arrival order, so
  /// snapshots are reproducible too. The one exception is
  /// serve.request.latency: its *values* are wall-clock (like --timings,
  /// documented outside the byte-reproducibility contract) even though its
  /// observation order is still arrival order.
  void deliver(Response response, obs::MetricsSnapshot metrics,
               std::optional<double> latency_ms = std::nullopt)
      MOCOS_EXCLUDES(emit_mu_) {
    util::MutexLock lock(emit_mu_);
    buffer_.emplace(response.seq, Buffered{std::move(response),
                                           std::move(metrics), latency_ms});
    while (!buffer_.empty() && buffer_.begin()->first == next_emit_) {
      Buffered& head = buffer_.begin()->second;
      registry_.merge(head.metrics);
      if (head.latency_ms)
        registry_.histogram("serve.request.latency", latency_bounds_ms())
            .observe(*head.latency_ms);
      tally_locked(head.response);
      if (options_.on_request_metrics)
        options_.on_request_metrics(head.response, head.metrics);
      write_response(head.response, out_);
      out_.flush();
      buffer_.erase(buffer_.begin());
      ++next_emit_;
      if (options_.metrics_every > 0 &&
          next_emit_ % options_.metrics_every == 0)
        write_metrics_locked();
    }
    emit_cv_.notify_all();
  }

  void tally_locked(const Response& r) MOCOS_REQUIRES(emit_mu_) {
    if (r.code == cli::kExitSuccess) {
      ++report_.ok;
      registry_.counter("serve.requests.ok").add(1);
    } else if (r.code == cli::kExitDeadlineExceeded) {
      ++report_.deadline_exceeded;
      registry_.counter("serve.requests.deadline_exceeded").add(1);
    } else if (r.code == cli::kExitShed) {
      ++report_.shed;
      registry_.counter("serve.requests.shed").add(1);
    } else {
      ++report_.errors;
      registry_.counter("serve.requests.error").add(1);
    }
  }

  /// Backpressure on the reader: the buffer holds completed-but-unflushed
  /// responses (a slow early request holds back later ones), and sheds and
  /// decode errors are produced at read speed — without this bound a
  /// flooding client could grow the buffer without limit.
  void wait_for_buffer_space() MOCOS_EXCLUDES(emit_mu_) {
    const std::size_t bound = 2 * options_.queue_capacity + 64;
    util::MutexLock lock(emit_mu_);
    while (buffer_.size() >= bound) emit_cv_.wait(emit_mu_);
  }

  /// GET /metrics body: the server registry rendered as Prometheus text.
  /// Runs on the endpoint thread; the only synchronization with the serve
  /// loop is the brief emit_mu_ hold for a consistent snapshot.
  std::string metrics_text() MOCOS_EXCLUDES(emit_mu_) {
    obs::MetricsSnapshot snap;
    {
      util::MutexLock lock(emit_mu_);
      snap = registry_.snapshot();
    }
    std::ostringstream body;
    obs::render_prometheus(snap, body);
    return body.str();
  }

  /// GET /healthz body. One lock at a time (never nested), each held only
  /// long enough to copy a few integers — the endpoint can be polled hard
  /// without perturbing request scheduling.
  std::string health_json()
      MOCOS_EXCLUDES(emit_mu_, lanes_mu_, inflight_mu_) {
    std::size_t lanes_live = 0;
    std::uint64_t lanes_evicted = 0;
    {
      util::MutexLock lock(lanes_mu_);
      lanes_live = lanes_.size();
      lanes_evicted = lanes_evicted_;
    }
    std::size_t inflight = 0;
    {
      util::MutexLock lock(inflight_mu_);
      inflight = inflight_.size();
    }
    std::uint64_t emitted = 0;
    std::size_t buffered = 0;
    {
      util::MutexLock lock(emit_mu_);
      emitted = next_emit_;
      buffered = buffer_.size();
    }
    const bool draining = drain_requested();
    std::ostringstream body;
    body << "{\"status\": \"" << (draining ? "draining" : "ok")
         << "\", \"draining\": " << (draining ? "true" : "false")
         << ", \"queue_depth\": " << gate_.depth()
         << ", \"queue_capacity\": " << gate_.capacity()
         << ", \"queue_peak_depth\": " << gate_.peak()
         << ", \"inflight\": " << inflight
         << ", \"lanes_live\": " << lanes_live
         << ", \"lanes_evicted\": " << lanes_evicted
         << ", \"responses_emitted\": " << emitted
         << ", \"responses_buffered\": " << buffered << "}\n";
    return body.str();
  }

  void write_metrics_locked() MOCOS_REQUIRES(emit_mu_) {
    if (options_.metrics_path.empty()) return;
    std::ofstream file(options_.metrics_path,
                       std::ios::out | std::ios::trunc);
    if (!file) return;  // metrics IO must never take the server down
    registry_.snapshot().write_json(file);
  }

  struct Buffered {
    Response response;
    obs::MetricsSnapshot metrics;
    std::optional<double> latency_ms;
  };

  const ServeOptions options_;
  std::ostream& out_;
  AdmissionGate gate_;

  util::Mutex lanes_mu_;
  std::map<std::string, std::shared_ptr<Lane>> lanes_
      MOCOS_GUARDED_BY(lanes_mu_);
  // Dispatch counter driving lane LRU.
  std::uint64_t lane_tick_ MOCOS_GUARDED_BY(lanes_mu_) = 0;
  // Folded into registry_ at drain.
  std::uint64_t lanes_evicted_ MOCOS_GUARDED_BY(lanes_mu_) = 0;

  util::Mutex inflight_mu_;
  std::map<std::uint64_t, std::shared_ptr<Pending>> inflight_
      MOCOS_GUARDED_BY(inflight_mu_);

  util::Mutex emit_mu_;
  util::CondVar emit_cv_;
  std::map<std::uint64_t, Buffered> buffer_ MOCOS_GUARDED_BY(emit_mu_);
  std::uint64_t next_emit_ MOCOS_GUARDED_BY(emit_mu_) = 0;
  ServeReport report_ MOCOS_GUARDED_BY(emit_mu_);
  // The registry is internally thread-safe, but merge *order* is the
  // replay-determinism contract, so all access stays under emit_mu_.
  obs::MetricsRegistry registry_ MOCOS_GUARDED_BY(emit_mu_);

  std::atomic<bool> watchdog_stop_{false};

  /// Phase profiler for --profile runs (record() is internally locked, so a
  /// late worker racing run()'s final write_json is safe — its phases just
  /// miss the file). Declared before pool_ so abandoned workers never
  /// outlive the storage they record into; the install member restores the
  /// previous global profiler only after the pool has joined.
  obs::PhaseTimer profiler_;
  std::optional<obs::ScopedProfileInstall> profile_install_;
  /// Telemetry endpoint (null when disabled). Its hooks read gate_/lanes_/
  /// inflight_/emit state, all declared before it; destruction order (after
  /// pool_, before that state) keeps the reads valid to the end.
  std::unique_ptr<TelemetryEndpoint> telemetry_;

  /// Last member on purpose: ~ThreadPool joins the workers, and a
  /// watchdog-abandoned worker can outlive run()'s response drain (run()
  /// waits for responses, not for tasks). Destroying the pool first means
  /// every late worker has exited before lanes_/inflight_/emit state — which
  /// it still touches — is torn down.
  runtime::ThreadPool pool_;
};

}  // namespace

void request_drain() { g_drain.store(true, std::memory_order_relaxed); }

bool drain_requested() { return g_drain.load(std::memory_order_relaxed); }

void reset_drain() { g_drain.store(false, std::memory_order_relaxed); }

ServeReport serve(std::istream& in, std::ostream& out,
                  const ServeOptions& options) {
  ServerImpl server(options, out);
  return server.run(in);
}

}  // namespace mocos::serve
