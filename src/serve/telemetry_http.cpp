#include "src/serve/telemetry_http.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace mocos::serve {

// Socket and timeout use in this file is the sanctioned exemption for the
// telemetry plane (DESIGN.md §15): the endpoint is read-only with respect to
// server state and nothing it does can reach the response stream, the
// metrics registry, or any other deterministic output. Each suppressed line
// below is that sanction made explicit and auditable.

namespace {

/// One HTTP/1.0 response, Connection: close.
void write_response(int fd, const char* status_line,
                    const char* content_type, const std::string& body) {
  std::string out;
  out.reserve(body.size() + 160);
  out += "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        // mocos-lint: allow(det-socket)
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to clean up but the fd
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

TelemetryEndpoint::TelemetryEndpoint(TelemetryHooks hooks)
    : hooks_(std::move(hooks)) {}

TelemetryEndpoint::~TelemetryEndpoint() { stop(); }

util::Status TelemetryEndpoint::start(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);  // mocos-lint: allow(det-socket)
  if (listen_fd_ < 0)
    return util::Status(util::StatusCode::kInvalidConfig,
                        "telemetry endpoint: socket() failed: " +
                            std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR,  // mocos-lint: allow(det-socket)
               &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local scrapes only
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),  // mocos-lint: allow(det-socket)
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {  // mocos-lint: allow(det-socket)
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status(util::StatusCode::kInvalidConfig,
                        "telemetry endpoint: cannot listen on 127.0.0.1:" +
                            std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_,  // mocos-lint: allow(det-socket)
                    reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { accept_loop(); });
  return util::Status::ok();
}

void TelemetryEndpoint::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    // Unblocks a pending accept(); the loop then observes stop_ and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);  // mocos-lint: allow(det-socket)
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryEndpoint::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // mocos-lint: allow(det-time, det-socket)
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);  // mocos-lint: allow(det-socket)
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void TelemetryEndpoint::handle_connection(int fd) {
  // Read the request head (bounded; scrape requests are one short line).
  // A client that trickles bytes is cut off by the poll timeout rather than
  // wedging the telemetry thread.
  std::string head;
  char buf[1024];
  while (head.size() < 4096 && head.find("\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    // mocos-lint: allow(det-time, det-socket)
    if (::poll(&pfd, 1, 500) <= 0) return;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);  // mocos-lint: allow(det-socket)
    if (n <= 0) return;
    head.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t eol = head.find("\r\n");
  std::string request_line =
      eol == std::string::npos ? head : head.substr(0, eol);
  if (request_line.rfind("GET ", 0) != 0) {
    write_response(fd, "405 Method Not Allowed", "text/plain",
                   "only GET is supported\n");
    return;
  }
  const std::size_t path_end = request_line.find(' ', 4);
  const std::string path = request_line.substr(
      4, path_end == std::string::npos ? std::string::npos : path_end - 4);
  if (path == "/metrics") {
    write_response(fd, "200 OK", "text/plain; version=0.0.4",
                   hooks_.metrics_text ? hooks_.metrics_text() : "");
  } else if (path == "/healthz") {
    write_response(fd, "200 OK", "application/json",
                   hooks_.health_json ? hooks_.health_json() : "{}");
  } else {
    write_response(fd, "404 Not Found", "text/plain",
                   "known paths: /metrics /healthz\n");
  }
}

}  // namespace mocos::serve
