#include "src/serve/serve_cli.hpp"

#include <exception>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "src/cli/cli.hpp"
#include "src/serve/server.hpp"
#include "src/util/fault_injection.hpp"

namespace mocos::serve {

namespace {

std::size_t parse_count(const std::string& flag, const std::string& text) {
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(flag + ": expected a number, got \"" + text +
                                "\"");
  }
  if (used != text.size())
    throw std::invalid_argument(flag + ": expected a number, got \"" + text +
                                "\"");
  return static_cast<std::size_t>(v);
}

/// `SITE:PROB:SEED`, e.g. "serve-decode:0.1:7". Site names are the stable
/// identifiers from util::fault::to_string, so the flag reaches library
/// sites (lu-factor, stationary, ...) as well as the serve-layer ones.
void arm_fault_spec(const std::string& spec) {
  const std::size_t first = spec.find(':');
  const std::size_t second =
      first == std::string::npos ? std::string::npos
                                 : spec.find(':', first + 1);
  if (first == std::string::npos || second == std::string::npos)
    throw std::invalid_argument("--fault: expected SITE:PROB:SEED, got \"" +
                                spec + "\"");
  const std::string site_name = spec.substr(0, first);
  const std::string prob_text = spec.substr(first + 1, second - first - 1);
  const std::string seed_text = spec.substr(second + 1);
  const auto site = util::fault::site_from_string(site_name);
  if (!site)
    throw std::invalid_argument("--fault: unknown site \"" + site_name +
                                "\"");
  double probability = 0.0;
  try {
    probability = std::stod(prob_text);
  } catch (const std::exception&) {
    throw std::invalid_argument("--fault: bad probability \"" + prob_text +
                                "\"");
  }
  if (probability < 0.0 || probability > 1.0)
    throw std::invalid_argument("--fault: probability must be in [0, 1]");
  const std::size_t seed = parse_count("--fault", seed_text);
  util::fault::arm_probabilistic(*site, probability,
                                 static_cast<std::uint64_t>(seed));
}

ServeOptions parse_options(const std::vector<std::string>& args) {
  ServeOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](const std::string& flag) -> const std::string& {
      if (i + 1 >= args.size())
        throw std::invalid_argument(flag + ": missing value");
      return args[++i];
    };
    if (arg == "--jobs") {
      options.jobs = parse_count(arg, value(arg));
    } else if (arg == "--queue-depth") {
      options.queue_capacity = parse_count(arg, value(arg));
      if (options.queue_capacity == 0)
        throw std::invalid_argument("--queue-depth: must be >= 1");
    } else if (arg == "--default-deadline-ms") {
      options.default_deadline_ms = parse_count(arg, value(arg));
    } else if (arg == "--max-lanes") {
      options.max_lanes = parse_count(arg, value(arg));
    } else if (arg == "--watchdog-grace-ms") {
      options.watchdog_grace_ms = parse_count(arg, value(arg));
    } else if (arg == "--metrics") {
      options.metrics_path = value(arg);
    } else if (arg == "--metrics-every") {
      options.metrics_every = parse_count(arg, value(arg));
    } else if (arg == "--metrics-port") {
      const std::size_t port = parse_count(arg, value(arg));
      if (port > 65535)
        throw std::invalid_argument("--metrics-port: must be <= 65535");
      options.metrics_port = static_cast<int>(port);
    } else if (arg == "--metrics-port-file") {
      options.metrics_port_file = value(arg);
    } else if (arg == "--profile") {
      options.profile_path = value(arg);
    } else if (arg == "--timings") {
      options.timings = true;
    } else if (arg == "--fault") {
      arm_fault_spec(value(arg));
    } else {
      throw std::invalid_argument("unknown flag \"" + arg + "\"");
    }
  }
  return options;
}

}  // namespace

int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err) {
  ServeOptions options;
  try {
    options = parse_options(args);
  } catch (const std::invalid_argument& e) {
    err << "mocos_serve: " << e.what() << '\n';
    return cli::kExitBadConfig;
  }
  try {
    const ServeReport report = serve(in, out, options);
    err << "mocos_serve: " << report.requests << " requests: " << report.ok
        << " ok, " << report.errors << " failed, "
        << report.deadline_exceeded << " deadline-exceeded, " << report.shed
        << " shed; peak queue depth " << report.peak_depth << "/"
        << options.queue_capacity
        << (report.drained_early ? "; drained on signal" : "") << '\n';
    const bool all_ok = report.ok == report.requests;
    return all_ok ? cli::kExitSuccess : cli::kExitBatchPartialFailure;
  } catch (const std::exception& e) {
    err << "mocos_serve: " << e.what() << '\n';
    return cli::kExitRuntimeError;
  }
}

}  // namespace mocos::serve
