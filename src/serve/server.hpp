#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace mocos::obs {
struct MetricsSnapshot;
}  // namespace mocos::obs

namespace mocos::serve {

struct Response;

struct ServeOptions {
  /// Worker threads (0 = hardware concurrency). Responses are emitted in
  /// request-arrival order for any value, and — absent --timings — are
  /// byte-identical for any value.
  std::size_t jobs = 0;
  /// Admission-control bound on requests admitted but not yet answered.
  /// A full gate sheds with a retry_after_ms hint instead of queueing, so
  /// server memory is bounded no matter how fast requests arrive.
  std::size_t queue_capacity = 16;
  /// Deadline for requests that do not carry their own deadline_ms
  /// (0 = none). Measured over a request's processing time.
  std::uint64_t default_deadline_ms = 0;
  /// Bound on distinct `cache_key` lanes kept warm (0 = unlimited). Beyond
  /// it the least-recently-dispatched lane is evicted — its solver cache and
  /// last solution are released, and a later request with that key starts a
  /// cold lane. Eviction decisions depend only on request arrival order, so
  /// which requests run warm is identical for any `--jobs` value.
  std::size_t max_lanes = 64;
  /// Watchdog: extra slack past a request's deadline before the watchdog
  /// answers on the worker's behalf (the cooperative cancellation should
  /// have fired long before).
  std::uint64_t watchdog_grace_ms = 200;
  std::uint64_t watchdog_poll_ms = 10;
  /// Adds wall-clock elapsed_ms to every response — explicitly trades away
  /// byte-reproducibility of the response log (bench/latency use).
  bool timings = false;
  /// Metrics snapshot file ("" = no metrics). Rewritten every
  /// `metrics_every` responses (0 = only at drain) and always at drain, so
  /// even a SIGTERM'd server leaves a complete final snapshot.
  std::string metrics_path;
  std::size_t metrics_every = 0;
  /// Live telemetry endpoint (DESIGN.md §15): when >= 0, a loopback HTTP
  /// listener serving GET /metrics (Prometheus text rendered from the server
  /// registry) and GET /healthz (queue/lane/inflight/drain state) runs on
  /// its own thread for the server's lifetime. 0 picks an ephemeral port
  /// (see metrics_port_file); -1 disables the endpoint. The endpoint only
  /// reads state, so the byte-identical replay contract is unaffected.
  int metrics_port = -1;
  /// When non-empty and the endpoint is enabled, the bound port is written
  /// here as one decimal line (how tests and scripts learn an ephemeral
  /// port).
  std::string metrics_port_file;
  /// Phase-profiler output file ("" = off): installs obs::PhaseTimer for the
  /// server's lifetime and writes its JSON (tools/trace/profile_schema.json)
  /// at drain. Phase *counts* are deterministic; the nanosecond fields are
  /// wall-clock and exempt like trace timestamps (DESIGN.md §15).
  std::string profile_path;
  /// Test hook: called once per response at flush time — under the emit lock,
  /// in arrival order — with the response and the per-request metrics delta
  /// that was just merged into the server registry. Must not call back into
  /// the server. Lets tests replay the merge independently (the
  /// metrics-merge correctness suite); "" production configs leave it unset.
  std::function<void(const Response&, const obs::MetricsSnapshot&)>
      on_request_metrics;
};

/// What a serve session did, summarized for the process exit path and for
/// in-process tests. Every request line ends in exactly one bucket.
struct ServeReport {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;             // structured failures (codes 1/2/3)
  std::uint64_t deadline_exceeded = 0;  // code 5
  std::uint64_t shed = 0;               // code 6
  std::size_t peak_depth = 0;           // admission-gate high-water mark
  bool drained_early = false;           // stopped reading on request_drain()
};

/// Asks the serve loop to drain: stop accepting new requests, let in-flight
/// ones finish (or deadline-fail), flush metrics, return. Async-signal-safe
/// (one relaxed atomic store) — the SIGTERM/SIGINT handler calls this.
void request_drain();
[[nodiscard]] bool drain_requested();
/// Clears a pending drain request (test isolation between in-process runs).
void reset_drain();

/// Runs the NDJSON request/response loop: one request per line on `in`, one
/// response per request on `out`, in arrival order. Never throws for
/// anything a request did — malformed lines, bad configs, numerical
/// failures, deadlines, and injected faults all come back as structured
/// responses. See DESIGN.md §11 for the request state machine.
ServeReport serve(std::istream& in, std::ostream& out,
                  const ServeOptions& options);

}  // namespace mocos::serve
