#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "src/util/status.hpp"

namespace mocos::serve {

/// Content providers for the telemetry endpoint. Both are called on the
/// endpoint's own thread, possibly while requests are in flight — they must
/// be safe to call concurrently with the serve loop (ServerImpl backs them
/// with short single-lock snapshots) and must not call back into the
/// endpoint.
struct TelemetryHooks {
  /// Body of GET /metrics (Prometheus text exposition, version 0.0.4).
  std::function<std::string()> metrics_text;
  /// Body of GET /healthz (JSON document, see DESIGN.md §15).
  std::function<std::string()> health_json;
};

/// Minimal line-oriented HTTP listener for GET /metrics and GET /healthz,
/// bound to 127.0.0.1 on its own thread. Deliberately outside the
/// deterministic request path: it only *reads* server state through the
/// hooks, writes nothing into the response stream or the registry, and its
/// wall-clock/socket use is explicitly sanctioned (DESIGN.md §15; the
/// det-time/det-socket lint suppressions in the .cpp are the audit trail).
///
/// Scope is intentionally small — HTTP/1.0, one request per connection,
/// Connection: close — because its clients are curl, Prometheus scrapers,
/// and the CI smoke step, not browsers.
class TelemetryEndpoint {
 public:
  explicit TelemetryEndpoint(TelemetryHooks hooks);
  ~TelemetryEndpoint();
  TelemetryEndpoint(const TelemetryEndpoint&) = delete;
  TelemetryEndpoint& operator=(const TelemetryEndpoint&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, see port()) and starts the
  /// accept thread. Fails with kInvalidConfig when the port cannot be bound.
  [[nodiscard]] util::Status start(std::uint16_t port);

  /// Stops accepting, closes the listener, joins the thread. Idempotent;
  /// also run by the destructor.
  void stop();

  /// The bound port (resolves the ephemeral-port case); 0 before start().
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void accept_loop();
  void handle_connection(int fd);

  TelemetryHooks hooks_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace mocos::serve
