#pragma once

#include <cstddef>
#include <cstdint>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace mocos::serve {

/// Admission control for the serve loop: a counting gate over the number of
/// requests admitted but not yet responded to. The reader thread calls
/// try_admit() per decoded request; a full gate means the request is shed
/// with a retry-after hint instead of queued — the queue of in-flight work
/// is bounded by construction, so server memory is too.
///
/// The gate is the authoritative count (ThreadPool::pending() is advisory):
/// admit and release bracket the whole request lifecycle, including time
/// spent waiting inside a cache-key lane.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t capacity);

  /// Claims a slot; false = shed (queue full, or the kServeQueueFull
  /// injection site fired). Never blocks.
  [[nodiscard]] bool try_admit() MOCOS_EXCLUDES(mu_);

  /// Returns the slot claimed by a successful try_admit(). Exactly once per
  /// admitted request, when its response is handed to the writer.
  void release() MOCOS_EXCLUDES(mu_);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t depth() const MOCOS_EXCLUDES(mu_);
  /// High-water mark of depth() over the gate's lifetime — the bounded-queue
  /// assertion in tests reads this (peak <= capacity always holds).
  [[nodiscard]] std::size_t peak() const MOCOS_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t shed_count() const MOCOS_EXCLUDES(mu_);

  /// Backoff hint for a shed response: proportional to how loaded the gate
  /// is, and a pure function of gate state — no clock — so shed responses
  /// stay byte-reproducible.
  [[nodiscard]] std::uint64_t retry_after_ms_hint() const MOCOS_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable util::Mutex mu_;
  std::size_t depth_ MOCOS_GUARDED_BY(mu_) = 0;
  std::size_t peak_ MOCOS_GUARDED_BY(mu_) = 0;
  std::uint64_t shed_ MOCOS_GUARDED_BY(mu_) = 0;
};

}  // namespace mocos::serve
