#include "src/serve/queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/fault_injection.hpp"
#include "src/util/mutex.hpp"

namespace mocos::serve {

AdmissionGate::AdmissionGate(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("AdmissionGate: capacity == 0");
}

bool AdmissionGate::try_admit() {
  util::MutexLock lock(mu_);
  if (depth_ >= capacity_ ||
      util::fault::fire(util::fault::Site::kServeQueueFull)) {
    ++shed_;
    return false;
  }
  ++depth_;
  peak_ = std::max(peak_, depth_);
  return true;
}

void AdmissionGate::release() {
  util::MutexLock lock(mu_);
  if (depth_ == 0)
    throw std::logic_error("AdmissionGate: release() without admit");
  --depth_;
}

std::size_t AdmissionGate::depth() const {
  util::MutexLock lock(mu_);
  return depth_;
}

std::size_t AdmissionGate::peak() const {
  util::MutexLock lock(mu_);
  return peak_;
}

std::uint64_t AdmissionGate::shed_count() const {
  util::MutexLock lock(mu_);
  return shed_;
}

std::uint64_t AdmissionGate::retry_after_ms_hint() const {
  util::MutexLock lock(mu_);
  // 25 ms per held slot: an empty gate says "come right back", a gate shed
  // at capacity C says "wait ~25·C ms" — enough signal for a client-side
  // exponential backoff to anchor on without the server keeping any clock.
  return 25 * static_cast<std::uint64_t>(depth_);
}

}  // namespace mocos::serve
