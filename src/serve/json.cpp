#include "src/serve/json.hpp"

#include <cctype>
#include <cstdio>
#include <string>

namespace mocos::serve {

namespace {

/// Hand-rolled recursive-descent scanner over the line. All errors funnel
/// through fail() so every malformed input produces a kInvalidConfig status
/// with the byte offset, which the serve loop turns into a structured
/// decode-error response.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  util::StatusOr<std::map<std::string, JsonValue>> parse_object() {
    skip_ws();
    if (!consume('{')) return fail("expected '{'");
    std::map<std::string, JsonValue> out;
    skip_ws();
    if (consume('}')) return finish(std::move(out));
    while (true) {
      skip_ws();
      std::string key;
      util::Status s = parse_string(key);
      if (!s.is_ok()) return s;
      if (out.count(key) != 0) return fail("duplicate key \"" + key + "\"");
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      s = parse_value(value);
      if (!s.is_ok()) return s;
      out.emplace(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return finish(std::move(out));
      return fail("expected ',' or '}'");
    }
  }

 private:
  util::StatusOr<std::map<std::string, JsonValue>> finish(
      std::map<std::string, JsonValue> out) {
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after object");
    return out;
  }

  util::Status parse_value(JsonValue& value) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      return parse_string(value.str);
    }
    if (c == '{' || c == '[')
      return fail("nested objects/arrays are not supported");
    if (match_word("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return util::Status::ok();
    }
    if (match_word("false")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return util::Status::ok();
    }
    if (match_word("null")) {
      value.kind = JsonValue::Kind::kNull;
      return util::Status::ok();
    }
    return parse_number(value);
  }

  util::Status parse_number(JsonValue& value) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    std::size_t used = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(token, &used);
    } catch (const std::exception&) {
      pos_ = start;
      return fail("malformed number \"" + token + "\"");
    }
    if (used != token.size()) {
      pos_ = start;
      return fail("malformed number \"" + token + "\"");
    }
    value.kind = JsonValue::Kind::kNumber;
    value.num = parsed;
    return util::Status::ok();
  }

  util::Status parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return util::Status::ok();
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':  out.push_back('"');  break;
        case '\\': out.push_back('\\'); break;
        case '/':  out.push_back('/');  break;
        case 'b':  out.push_back('\b'); break;
        case 'f':  out.push_back('\f'); break;
        case 'n':  out.push_back('\n'); break;
        case 'r':  out.push_back('\r'); break;
        case 't':  out.push_back('\t'); break;
        case 'u': {
          const util::Status s = parse_unicode_escape(out);
          if (!s.is_ok()) return s;
          break;
        }
        default:
          return fail(std::string("invalid escape \"\\") + esc + "\"");
      }
    }
    return fail("unterminated string");
  }

  /// \uXXXX for the Basic Multilingual Plane, encoded as UTF-8. Surrogate
  /// pairs are rejected — request ids and config text have no business
  /// containing astral-plane characters, and rejecting keeps the decoder's
  /// behavior easy to state.
  util::Status parse_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return fail("invalid hex digit in \\u escape");
    }
    if (code >= 0xD800 && code <= 0xDFFF)
      return fail("surrogate \\u escapes are not supported");
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return util::Status::ok();
  }

  bool match_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  util::Status fail(const std::string& what) const {
    return util::Status(util::StatusCode::kInvalidConfig,
                        "json: " + what + " at offset " +
                            std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

util::StatusOr<std::map<std::string, JsonValue>> parse_flat_object(
    std::string_view line) {
  return Scanner(line).parse_object();
}

void write_json_string(std::string_view s, std::ostream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':  out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n";  break;
      case '\t': out << "\\t";  break;
      case '\r': out << "\\r";  break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_json_number(double x, std::ostream& out) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  out << buf;
}

}  // namespace mocos::serve
