#pragma once

#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "src/util/status.hpp"

namespace mocos::serve {

/// One value of a flat NDJSON request object. Requests are deliberately
/// restricted to a single level of string/number/bool/null fields — nested
/// objects and arrays are a decode error, which keeps the parser small
/// enough to audit and the malformed-input surface enumerable.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;     // kString
  double num = 0.0;    // kNumber
  bool boolean = false;  // kBool
};

/// Parses one NDJSON line: a flat JSON object mapping string keys to
/// string/number/bool/null values. Duplicate keys, nesting, trailing
/// garbage, and invalid escapes all return kInvalidConfig with a message
/// naming the offset — the decode-fault path of the serve loop, never an
/// exception.
[[nodiscard]] util::StatusOr<std::map<std::string, JsonValue>>
parse_flat_object(std::string_view line);

/// Writes `s` as a JSON string literal (quotes included), escaping the
/// characters NDJSON cannot carry raw.
void write_json_string(std::string_view s, std::ostream& out);

/// Shortest round-trip-exact decimal (%.17g): locale-independent and
/// identical across runs, the same convention as the batch summary — the
/// byte-reproducibility contract for response logs depends on it.
void write_json_number(double x, std::ostream& out);

}  // namespace mocos::serve
