#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mocos::serve {

/// Runs the mocos_serve command line:
///
///   mocos_serve [--jobs N] [--queue-depth N] [--default-deadline-ms N]
///               [--watchdog-grace-ms N] [--metrics FILE]
///               [--metrics-every N] [--metrics-port N]
///               [--metrics-port-file FILE] [--profile FILE] [--timings]
///               [--fault SITE:PROB:SEED]...
///
/// Reads NDJSON requests from `in` (see src/serve/request.hpp for the
/// request language), writes one NDJSON response per request to `out` in
/// arrival order, and a final human-readable tally to `err`.
///
/// --metrics-port starts the live telemetry endpoint on 127.0.0.1:N
/// (GET /metrics and GET /healthz; N = 0 picks an ephemeral port, reported
/// via --metrics-port-file). --profile writes the phase
/// profiler's JSON at drain. See DESIGN.md §15.
///
/// --fault arms a request-layer fault-injection site probabilistically
/// (e.g. `--fault serve-queue-full:0.2:42`): the deterministic chaos knob
/// the robustness tests and the CI smoke run use. Repeatable.
///
/// Process exit codes: 0 = every request succeeded; 4 = the server ran
/// cleanly but at least one request failed, was shed, or missed its
/// deadline (mirrors the batch runner's partial-failure code); 2 = bad
/// usage; 1 = unexpected internal failure.
int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err);

}  // namespace mocos::serve
