#include "src/linalg/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mocos::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ones(std::size_t n) { return Matrix(n, n, 1.0); }

Matrix Matrix::diag(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::outer(const Vector& col, const Vector& row) {
  Matrix m(col.size(), row.size());
  for (std::size_t i = 0; i < col.size(); ++i)
    for (std::size_t j = 0; j < row.size(); ++j) m(i, j) = col[i] * row[j];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::operator()");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::operator()");
  return data_[r * cols_ + c];
}

Vector Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

Vector Matrix::diagonal() const {
  if (!is_square()) throw std::logic_error("Matrix::diagonal: not square");
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = data_[i * cols_ + i];
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = data_[r * cols_ + c];
  return t;
}

namespace {
void require_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument(std::string("Matrix: shape mismatch in ") + op);
}
}  // namespace

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require_same_shape(*this, rhs, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  require_same_shape(*this, rhs, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("Matrix: shape mismatch in product");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      // Exact on purpose: skipping exact zeros is a lossless sparsity
      // shortcut; skipping near-zeros would change the product.
      // mocos-lint: allow(float-eq)
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    oss << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      oss << std::setw(precision + 6) << data_[r * cols_ + c];
    }
    oss << (r + 1 == rows_ ? " ]" : "\n");
  }
  return oss.str();
}

Vector mul(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size())
    throw std::invalid_argument("mul(A,x): shape mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) y[i] += a(i, j) * x[j];
  return y;
}

Vector mul(const Vector& x, const Matrix& a) {
  if (a.rows() != x.size())
    throw std::invalid_argument("mul(x,A): shape mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    // Exact on purpose: lossless sparsity shortcut, as in operator* above.
    // mocos-lint: allow(float-eq)
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * a(i, j);
  }
  return y;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector vadd(Vector a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vadd: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  return a;
}

Vector vsub(Vector a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vsub: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] -= b[i];
  return a;
}

Vector vscale(Vector a, double s) {
  for (double& x : a) x *= s;
  return a;
}

double frobenius_dot(const Matrix& a, const Matrix& b) {
  require_same_shape(a, b, "frobenius_dot");
  double s = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (std::size_t i = 0; i < a.rows() * a.cols(); ++i) s += pa[i] * pb[i];
  return s;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows() * a.cols(); ++i)
    if (std::abs(a.data()[i] - b.data()[i]) > tol) return false;
  return true;
}

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > tol) return false;
  return true;
}

}  // namespace mocos::linalg
