#include "src/linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mocos::linalg {

namespace {

using Complex = std::complex<double>;
using CMatrix = std::vector<std::vector<Complex>>;

/// 2x2 unitary G with G [a; b] = [r; 0], r = hypot(|a|, |b|) real.
struct Givens {
  Complex g00, g01, g10, g11;
};

Givens make_givens(Complex a, Complex b) {
  const double r = std::sqrt(std::norm(a) + std::norm(b));
  // Exact on purpose: r >= max(|a|, |b|) / sqrt(2), so the divisions below
  // are well-scaled for every nonzero r, however small.
  // mocos-lint: allow(float-eq)
  if (r == 0.0) return {1.0, 0.0, 0.0, 1.0};
  return {std::conj(a) / r, std::conj(b) / r, -b / r, a / r};
}

/// Applies G to rows (p, q) of H (left multiplication).
void apply_left(CMatrix& h, const Givens& g, std::size_t p, std::size_t q,
                std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const Complex hp = h[p][j];
    const Complex hq = h[q][j];
    h[p][j] = g.g00 * hp + g.g01 * hq;
    h[q][j] = g.g10 * hp + g.g11 * hq;
  }
}

/// Applies G^H to columns (p, q) of H (right multiplication by the adjoint):
/// (H G^H)[i][p] = h_ip conj(g00) + h_iq conj(g01),
/// (H G^H)[i][q] = h_ip conj(g10) + h_iq conj(g11).
void apply_right_adjoint(CMatrix& h, const Givens& g, std::size_t p,
                         std::size_t q, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Complex hp = h[i][p];
    const Complex hq = h[i][q];
    h[i][p] = hp * std::conj(g.g00) + hq * std::conj(g.g01);
    h[i][q] = hp * std::conj(g.g10) + hq * std::conj(g.g11);
  }
}

/// Similarity reduction to upper Hessenberg form with Givens rotations.
void hessenberg(CMatrix& h, std::size_t n) {
  for (std::size_t j = 0; j + 2 < n; ++j) {
    for (std::size_t i = j + 2; i < n; ++i) {
      // Tolerance, not exact zero: a denormal entry would feed make_givens
      // a denormal radius and overflow the rotation; entries are O(1) here
      // (the caller pre-scales by the max magnitude), so anything below the
      // floor is already zero for every subsequent similarity transform.
      if (std::abs(h[i][j]) < 1e-300) continue;
      const Givens g = make_givens(h[j + 1][j], h[i][j]);
      apply_left(h, g, j + 1, i, n);
      apply_right_adjoint(h, g, j + 1, i, n);
    }
  }
}

/// Eigenvalue of the trailing 2x2 block closest to its (1,1) entry
/// (Wilkinson shift).
Complex wilkinson_shift(const CMatrix& h, std::size_t m) {
  const Complex a = h[m - 1][m - 1];
  const Complex b = h[m - 1][m];
  const Complex c = h[m][m - 1];
  const Complex d = h[m][m];
  const Complex tr_half = (a + d) / 2.0;
  const Complex disc = std::sqrt(tr_half * tr_half - (a * d - b * c));
  const Complex l1 = tr_half + disc;
  const Complex l2 = tr_half - disc;
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

}  // namespace

std::vector<std::complex<double>> eigenvalues(const Matrix& a, double tol,
                                              std::size_t max_sweeps) {
  if (!a.is_square()) throw std::invalid_argument("eigenvalues: not square");
  const std::size_t n = a.rows();
  if (n == 0) return {};
  if (n == 1) return {Complex(a(0, 0), 0.0)};

  CMatrix h(n, std::vector<Complex>(n));
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      h[i][j] = Complex(a(i, j), 0.0);
      scale = std::max(scale, std::abs(a(i, j)));
    }
  // Exact on purpose: only the all-zero matrix short-circuits; any nonzero
  // magnitude, however small, is a valid scaling factor.
  // mocos-lint: allow(float-eq)
  if (scale == 0.0) return std::vector<Complex>(n, Complex(0.0, 0.0));

  hessenberg(h, n);

  std::vector<Complex> out;
  out.reserve(n);
  std::size_t m = n - 1;  // active block is h[0..m][0..m]
  std::size_t sweeps = 0;
  std::size_t stalled = 0;  // sweeps since the last deflation

  while (true) {
    // Deflate converged trailing eigenvalues.
    while (m > 0 && std::abs(h[m][m - 1]) <=
                        tol * (std::abs(h[m - 1][m - 1]) +
                               std::abs(h[m][m]) + scale * 1e-300)) {
      out.push_back(h[m][m]);
      --m;
      stalled = 0;
    }
    if (m == 0) {
      out.push_back(h[0][0]);
      break;
    }
    if (++sweeps > max_sweeps)
      throw std::runtime_error("eigenvalues: QR iteration did not converge");
    ++stalled;

    // Also split at interior negligible subdiagonals (restrict the sweep to
    // the trailing irreducible block [lo..m]).
    std::size_t lo = m;
    while (lo > 0 && std::abs(h[lo][lo - 1]) >
                         tol * (std::abs(h[lo - 1][lo - 1]) +
                                std::abs(h[lo][lo]) + scale * 1e-300))
      --lo;

    // Exceptional shift: symmetric configurations (e.g. permutation
    // matrices) can stall the Wilkinson shift; a deliberately asymmetric
    // complex shift breaks the tie (cf. LAPACK's ad-hoc shifts).
    const Complex mu =
        (stalled % 12 == 0)
            ? h[m][m] + Complex(0.75 * std::abs(h[m][m - 1]),
                                0.4 * std::abs(h[m][m - 1]))
            : wilkinson_shift(h, m);
    for (std::size_t i = lo; i <= m; ++i) h[i][i] -= mu;

    // One shifted QR step on the active block. Left phase: Givens
    // rotations zero the subdiagonal top-down, producing
    // R = G_{m-1}...G_lo (H - muI), i.e. H - muI = QR with
    // Q = G_lo^H ... G_{m-1}^H.
    std::vector<Givens> rotations;
    rotations.reserve(m - lo);
    for (std::size_t i = lo; i < m; ++i) {
      const Givens g = make_givens(h[i][i], h[i + 1][i]);
      apply_left(h, g, i, i + 1, n);
      rotations.push_back(g);
    }
    // Right phase: H' = RQ + muI = R G_lo^H G_{lo+1}^H ... G_{m-1}^H +
    // muI - the adjoints applied in the same order the rotations were
    // created.
    for (std::size_t r = 0; r < rotations.size(); ++r)
      apply_right_adjoint(h, rotations[r], lo + r, lo + r + 1, n);
    for (std::size_t i = lo; i <= m; ++i) h[i][i] += mu;
  }

  std::sort(out.begin(), out.end(), [](Complex x, Complex y) {
    const double ax = std::abs(x), ay = std::abs(y);
    if (ax != ay) return ax > ay;
    return x.real() > y.real();
  });
  return out;
}

double eigenvalue_modulus(const Matrix& a, std::size_t k) {
  const auto eig = eigenvalues(a);
  if (k >= eig.size()) throw std::out_of_range("eigenvalue_modulus: k");
  return std::abs(eig[k]);
}

}  // namespace mocos::linalg
