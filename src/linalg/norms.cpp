#include "src/linalg/norms.hpp"

#include <cmath>

namespace mocos::linalg {

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double norm1(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += std::abs(x);
  return s;
}

double frobenius_norm(const Matrix& m) {
  return std::sqrt(frobenius_dot(m, m));
}

double max_abs(const Matrix& m) {
  double best = 0.0;
  const double* p = m.data();
  for (std::size_t i = 0; i < m.rows() * m.cols(); ++i)
    best = std::max(best, std::abs(p[i]));
  return best;
}

}  // namespace mocos::linalg
