#pragma once

#include <complex>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace mocos::linalg {

/// Full eigenvalue solver for small dense real matrices: complex Hessenberg
/// reduction (Givens similarity) followed by the single-shift QR iteration
/// with Wilkinson shifts in complex arithmetic — which converges for real
/// matrices with complex conjugate eigenvalue pairs, unlike real
/// single-shift QR.
///
/// Intended for the library's chain-sized matrices (M ≤ a few dozen): O(n³)
/// per iteration is irrelevant at this scale, and the complex formulation
/// keeps the implementation compact and testable. Used to validate the
/// power-based SLEM estimator in markov/spectral and to expose whole-chain
/// spectra to diagnostics.
///
/// Returns all n eigenvalues, sorted by descending modulus (ties broken by
/// descending real part). Throws std::runtime_error if the QR iteration
/// fails to converge (does not happen for diagonalizable inputs at these
/// sizes; the guard is a defect detector, not an expected path).
std::vector<std::complex<double>> eigenvalues(const Matrix& a,
                                              double tol = 1e-12,
                                              std::size_t max_sweeps = 4000);

/// Convenience: the k-th largest eigenvalue modulus (k=0 is the spectral
/// radius). Throws std::out_of_range for k >= n.
double eigenvalue_modulus(const Matrix& a, std::size_t k);

}  // namespace mocos::linalg
