#pragma once

#include "src/linalg/matrix.hpp"

namespace mocos::linalg {

/// Euclidean norm of a vector.
double norm2(const Vector& v);
/// Max-abs entry of a vector.
double norm_inf(const Vector& v);
/// Sum of |entries|.
double norm1(const Vector& v);

/// Frobenius norm of a matrix — used as the gradient magnitude |D_P U| in the
/// descent's convergence test.
double frobenius_norm(const Matrix& m);
/// Max-abs entry of a matrix.
double max_abs(const Matrix& m);

}  // namespace mocos::linalg
