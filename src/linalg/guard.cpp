#include "src/linalg/guard.hpp"

#include <cmath>
#include <string>

namespace mocos::util {

namespace {

std::string fmt_entry(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "+inf" : "-inf";
  return std::to_string(v);
}

}  // namespace

bool all_finite(const linalg::Vector& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

bool all_finite(const linalg::Matrix& m) {
  const double* p = m.data();
  const std::size_t n = m.rows() * m.cols();
  for (std::size_t i = 0; i < n; ++i)
    if (!std::isfinite(p[i])) return false;
  return true;
}

Status check_finite(const linalg::Vector& v, const char* what) {
  for (std::size_t i = 0; i < v.size(); ++i)
    if (!std::isfinite(v[i]))
      return Status(StatusCode::kNonFiniteValue,
                    std::string(what) + "[" + std::to_string(i) + "] is " +
                        fmt_entry(v[i]));
  return Status::ok();
}

Status check_finite(const linalg::Matrix& m, const char* what) {
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(m(i, j)))
        return Status(StatusCode::kNonFiniteValue,
                      std::string(what) + "(" + std::to_string(i) + "," +
                          std::to_string(j) + ") is " + fmt_entry(m(i, j)));
  return Status::ok();
}

Status check_row_stochastic(const linalg::Matrix& m, double tol) {
  if (!m.is_square())
    return Status(StatusCode::kSizeMismatch, "matrix not square");
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const double v = m(i, j);
      if (!std::isfinite(v))
        return Status(StatusCode::kNonFiniteValue,
                      "P(" + std::to_string(i) + "," + std::to_string(j) +
                          ") is " + fmt_entry(v));
      if (v < -tol || v > 1.0 + tol)
        return Status(StatusCode::kNotErgodic,
                      "P(" + std::to_string(i) + "," + std::to_string(j) +
                          ") = " + fmt_entry(v) + " outside [0,1]");
      sum += v;
    }
    if (std::abs(sum - 1.0) > tol)
      return Status(StatusCode::kNotErgodic,
                    "row " + std::to_string(i) + " sums to " + fmt_entry(sum));
  }
  return Status::ok();
}

Status check_probability_vector(const linalg::Vector& v, double tol) {
  double sum = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i]))
      return Status(StatusCode::kNonFiniteValue,
                    "pi[" + std::to_string(i) + "] is " + fmt_entry(v[i]));
    if (v[i] < -tol)
      return Status(StatusCode::kNotErgodic,
                    "pi[" + std::to_string(i) + "] = " + fmt_entry(v[i]) +
                        " is negative");
    sum += v[i];
  }
  if (std::abs(sum - 1.0) > tol)
    return Status(StatusCode::kNotErgodic, "pi sums to " + fmt_entry(sum));
  return Status::ok();
}

Status check_strictly_positive(const linalg::Vector& v, const char* what,
                               double floor) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i]))
      return Status(StatusCode::kNonFiniteValue,
                    std::string(what) + "[" + std::to_string(i) + "] is " +
                        fmt_entry(v[i]));
    if (v[i] <= floor)
      return Status(StatusCode::kNotErgodic,
                    std::string(what) + "[" + std::to_string(i) + "] = " +
                        fmt_entry(v[i]) + " is not strictly positive");
  }
  return Status::ok();
}

}  // namespace mocos::util
