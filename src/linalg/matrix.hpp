#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace mocos::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Small and value-semantic by design: the Markov chains in this library have
/// at most a few dozen states, so an owning `std::vector` store with bounds
/// checking in debug paths beats any sparse or expression-template machinery.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Builds from nested braces: Matrix{{1,2},{3,4}}. All rows must have the
  /// same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// All-ones square matrix (the paper's J).
  static Matrix ones(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diag(const Vector& d);
  /// Outer product column * row^T.
  static Matrix outer(const Vector& col, const Vector& row);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool is_square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Raw storage access for tight loops (row-major).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;
  Vector diagonal() const;
  Matrix transposed() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

  /// Matrix product; dimensions must agree.
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  std::string to_string(int precision = 6) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x
Vector mul(const Matrix& a, const Vector& x);
/// y = x^T A  (row vector times matrix, returned as a plain vector)
Vector mul(const Vector& x, const Matrix& a);

// Named vector arithmetic (free operators on std::vector would not be found
// by ADL outside this namespace, so the API is explicit instead).
double dot(const Vector& a, const Vector& b);
Vector vadd(Vector a, const Vector& b);
Vector vsub(Vector a, const Vector& b);
Vector vscale(Vector a, double s);

/// Frobenius inner product <A, B> = sum_ij A_ij B_ij — the inner product used
/// by the paper's dU/dt = <D_P U, Pdot>.
double frobenius_dot(const Matrix& a, const Matrix& b);

/// True when |A_ij - B_ij| <= tol for all entries (shapes must match).
bool approx_equal(const Matrix& a, const Matrix& b, double tol);
bool approx_equal(const Vector& a, const Vector& b, double tol);

}  // namespace mocos::linalg
