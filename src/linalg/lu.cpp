#include "src/linalg/lu.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace mocos::linalg {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  if (!lu_.is_square())
    throw std::invalid_argument("LuDecomposition: matrix not square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300)
      throw std::runtime_error("LuDecomposition: singular matrix");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      pivot_sign_ = -pivot_sign_;
    }
    const double diag = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / diag;
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LU::solve: size mismatch");
  // Apply permutation, then forward substitution with unit-lower L.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * y[j];
    y[i] = s;
  }
  // Back substitution with U.
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu_(i, j) * x[j];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  if (b.rows() != size())
    throw std::invalid_argument("LU::solve: row count mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector col = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(size()));
}

double LuDecomposition::determinant() const {
  double det = static_cast<double>(pivot_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

Matrix inverse(const Matrix& a) { return LuDecomposition(a).inverse(); }

double determinant(const Matrix& a) {
  return LuDecomposition(a).determinant();
}

}  // namespace mocos::linalg
