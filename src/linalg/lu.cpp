#include "src/linalg/lu.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/util/fault_injection.hpp"

namespace mocos::linalg {

namespace {
constexpr double kPivotThreshold = 1e-300;
}

util::Status LuDecomposition::factor() {
  if (!lu_.is_square())
    return util::Status(util::StatusCode::kSizeMismatch,
                        "LuDecomposition: matrix not square");
  const std::size_t n = lu_.rows();

  a_norm1_ = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    double col = 0.0;
    for (std::size_t r = 0; r < n; ++r) col += std::abs(lu_(r, c));
    a_norm1_ = std::max(a_norm1_, col);
  }

  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  const bool inject_singular = util::fault::fire(util::fault::Site::kLuFactor);

  diag_ = LuDiagnostics{};
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < kPivotThreshold || !std::isfinite(best) ||
        (inject_singular && k == n - 1)) {
      diag_.failed_column = k;
      diag_.min_pivot = best;
      return util::Status(
          util::StatusCode::kSingularMatrix,
          "LuDecomposition: singular at column " + std::to_string(k) +
              " (pivot " + std::to_string(best) + ")");
    }
    diag_.min_pivot = (k == 0) ? best : std::min(diag_.min_pivot, best);
    diag_.max_pivot = std::max(diag_.max_pivot, best);
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      pivot_sign_ = -pivot_sign_;
    }
    const double diag = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / diag;
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
  diag_.rcond_estimate =
      diag_.max_pivot > 0.0 ? diag_.min_pivot / diag_.max_pivot : 0.0;
  return util::Status::ok();
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  const util::Status status = factor();
  if (!status.is_ok()) {
    if (status == util::StatusCode::kSizeMismatch)
      throw std::invalid_argument(status.message());
    throw std::runtime_error("LuDecomposition: singular matrix");
  }
}

util::StatusOr<LuDecomposition> LuDecomposition::try_factor(Matrix a) {
  LuDecomposition lu;
  lu.lu_ = std::move(a);
  util::Status status = lu.factor();
  if (!status.is_ok()) return status;
  return lu;
}

double LuDecomposition::condition_number_1norm() const {
  const Matrix inv = inverse();
  double inv_norm1 = 0.0;
  for (std::size_t c = 0; c < inv.cols(); ++c) {
    double col = 0.0;
    for (std::size_t r = 0; r < inv.rows(); ++r) col += std::abs(inv(r, c));
    inv_norm1 = std::max(inv_norm1, col);
  }
  return a_norm1_ * inv_norm1;
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LU::solve: size mismatch");
  // Apply permutation, then forward substitution with unit-lower L.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * y[j];
    y[i] = s;
  }
  // Back substitution with U.
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu_(i, j) * x[j];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  if (b.rows() != size())
    throw std::invalid_argument("LU::solve: row count mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector col = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(size()));
}

double LuDecomposition::determinant() const {
  double det = static_cast<double>(pivot_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

Matrix inverse(const Matrix& a) { return LuDecomposition(a).inverse(); }

double determinant(const Matrix& a) {
  return LuDecomposition(a).determinant();
}

util::StatusOr<Vector> try_solve(const Matrix& a, const Vector& b) {
  if (b.size() != a.rows())
    return util::Status(util::StatusCode::kSizeMismatch,
                        "try_solve: size mismatch");
  util::StatusOr<LuDecomposition> lu = LuDecomposition::try_factor(a);
  if (!lu.ok()) return lu.status();
  return lu->solve(b);
}

util::StatusOr<Matrix> try_inverse(const Matrix& a) {
  util::StatusOr<LuDecomposition> lu = LuDecomposition::try_factor(a);
  if (!lu.ok()) return lu.status();
  return lu->inverse();
}

}  // namespace mocos::linalg
