#pragma once

#include "src/linalg/matrix.hpp"

namespace mocos::linalg {

/// LU decomposition with partial (row) pivoting: PA = LU.
///
/// This is the workhorse behind the fundamental-matrix inversion
/// Z = (I - P + W)^(-1) and all linear solves in the library. Factor once,
/// then solve against many right-hand sides (each column of the identity for
/// an explicit inverse).
class LuDecomposition {
 public:
  /// Factors `a` (must be square). Throws std::invalid_argument for
  /// non-square input and std::runtime_error if the matrix is singular to
  /// working precision.
  explicit LuDecomposition(Matrix a);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// Explicit inverse (solves against the identity).
  Matrix inverse() const;

  /// det(A), including the pivot sign.
  double determinant() const;

 private:
  Matrix lu_;                      // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int pivot_sign_ = 1;
};

/// One-shot helpers.
Vector solve(const Matrix& a, const Vector& b);
Matrix inverse(const Matrix& a);
double determinant(const Matrix& a);

}  // namespace mocos::linalg
