#pragma once

#include "src/linalg/matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::linalg {

/// Numerical health report of an LU factorization, filled in whether or not
/// the factorization succeeded. `rcond_estimate` is the cheap pivot-ratio
/// proxy min|u_kk| / max|u_kk| — an upper bound on 1/κ that costs nothing
/// extra; values near 0 flag a near-singular system even when every pivot
/// cleared the hard threshold.
struct LuDiagnostics {
  double min_pivot = 0.0;   // smallest |u_kk| encountered
  double max_pivot = 0.0;   // largest |u_kk| encountered
  double rcond_estimate = 0.0;
  /// Column where factorization broke down; npos when it completed.
  std::size_t failed_column = npos;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  bool completed() const { return failed_column == npos; }
};

/// LU decomposition with partial (row) pivoting: PA = LU.
///
/// This is the workhorse behind the fundamental-matrix inversion
/// Z = (I - P + W)^(-1) and all linear solves in the library. Factor once,
/// then solve against many right-hand sides (each column of the identity for
/// an explicit inverse).
class LuDecomposition {
 public:
  /// Factors `a` (must be square). Throws std::invalid_argument for
  /// non-square input and std::runtime_error if the matrix is singular to
  /// working precision.
  explicit LuDecomposition(Matrix a);

  /// Non-throwing factorization: returns kSizeMismatch for non-square input
  /// and kSingularMatrix (message carrying the failing column and pivot
  /// magnitude) when a pivot underflows, instead of throwing. The returned
  /// decomposition exposes diagnostics() either way a caller obtains it.
  [[nodiscard]] static util::StatusOr<LuDecomposition> try_factor(Matrix a);

  std::size_t size() const { return lu_.rows(); }

  /// Pivot magnitudes and the condition-number proxy observed while
  /// factoring.
  const LuDiagnostics& diagnostics() const { return diag_; }

  /// ||A||_1 · ||A^-1||_1, computed on demand (n triangular solves). The
  /// exact 1-norm condition number — use in tests and offline diagnostics,
  /// not per-iteration hot paths.
  [[nodiscard]] double condition_number_1norm() const;

  /// Solves A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Explicit inverse (solves against the identity).
  [[nodiscard]] Matrix inverse() const;

  /// det(A), including the pivot sign.
  [[nodiscard]] double determinant() const;

 private:
  LuDecomposition() = default;  // for try_factor

  /// Shared in-place factorization; fills diag_ and returns a non-ok status
  /// instead of throwing. `a_norm1` is ||A||_1 captured before the rewrite.
  util::Status factor();

  Matrix lu_;                      // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int pivot_sign_ = 1;
  double a_norm1_ = 0.0;  // ||A||_1 of the original matrix
  LuDiagnostics diag_;
};

/// One-shot helpers.
[[nodiscard]] Vector solve(const Matrix& a, const Vector& b);
[[nodiscard]] Matrix inverse(const Matrix& a);
[[nodiscard]] double determinant(const Matrix& a);

/// Non-throwing one-shot solve/inverse built on try_factor.
[[nodiscard]] util::StatusOr<Vector> try_solve(const Matrix& a,
                                               const Vector& b);
[[nodiscard]] util::StatusOr<Matrix> try_inverse(const Matrix& a);

}  // namespace mocos::linalg
