#pragma once

#include "src/linalg/matrix.hpp"
#include "src/util/guard.hpp"
#include "src/util/status.hpp"

// Vector/Matrix overloads of the util guard validators. They stay in
// namespace mocos::util so call sites spell util::check_finite(...)
// uniformly for scalars and containers, but they live in the linalg layer:
// util sits below linalg in the module DAG and must not include its headers
// (mocos_lint's layer-violation rule enforces this).

namespace mocos::util {

[[nodiscard]] bool all_finite(const linalg::Vector& v);
[[nodiscard]] bool all_finite(const linalg::Matrix& m);

/// kNonFiniteValue naming `what` and the first bad index.
[[nodiscard]] Status check_finite(const linalg::Vector& v, const char* what);
[[nodiscard]] Status check_finite(const linalg::Matrix& m, const char* what);

/// Row-stochasticity to within `tol`: finite entries in [-tol, 1+tol] with
/// every row summing to 1 ± tol. Returns kNonFiniteValue or kNotErgodic.
[[nodiscard]] Status check_row_stochastic(const linalg::Matrix& m,
                                          double tol = 1e-8);

/// Probability vector: finite, entries >= -tol, sums to 1 ± tol.
[[nodiscard]] Status check_probability_vector(const linalg::Vector& v,
                                              double tol = 1e-8);

/// Strictly positive entries (mean return times, stationary masses ahead of a
/// division). Returns kNotErgodic naming the first non-positive index.
[[nodiscard]] Status check_strictly_positive(const linalg::Vector& v,
                                             const char* what,
                                             double floor = 0.0);

}  // namespace mocos::util
