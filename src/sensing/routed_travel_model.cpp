#include "src/sensing/routed_travel_model.hpp"

#include <stdexcept>
#include <utility>

namespace mocos::sensing {

RoutedTravelModel::RoutedTravelModel(geometry::Topology topology,
                                     std::vector<geometry::Polygon> obstacles,
                                     double speed, double pause,
                                     double sensing_radius, double clearance)
    : topology_(std::move(topology)),
      speed_(speed),
      pause_(pause),
      radius_(sensing_radius),
      planner_(topology_, std::move(obstacles), clearance) {
  if (speed_ <= 0.0)
    throw std::invalid_argument("RoutedTravelModel: speed <= 0");
  if (pause_ <= 0.0)
    throw std::invalid_argument("RoutedTravelModel: pause <= 0");
  if (radius_ <= 0.0)
    throw std::invalid_argument("RoutedTravelModel: sensing radius <= 0");
  if (radius_ >= topology_.min_separation() / 2.0)
    throw std::invalid_argument(
        "RoutedTravelModel: sensing radius too large; PoIs must be disjoint");
}

double RoutedTravelModel::pause(std::size_t i) const {
  if (i >= num_pois()) throw std::out_of_range("RoutedTravelModel::pause");
  return pause_;
}

double RoutedTravelModel::travel_distance(std::size_t j, std::size_t k) const {
  if (j >= num_pois() || k >= num_pois())
    throw std::out_of_range("RoutedTravelModel::travel_distance");
  if (j == k) return 0.0;
  return planner_.route(j, k).length;
}

double RoutedTravelModel::travel_time(std::size_t j, std::size_t k) const {
  return travel_distance(j, k) / speed_;
}

double RoutedTravelModel::transition_duration(std::size_t j,
                                              std::size_t k) const {
  return travel_time(j, k) + pause(k);
}

double RoutedTravelModel::coverage_during(std::size_t j, std::size_t k,
                                          std::size_t i) const {
  if (i >= num_pois() || j >= num_pois() || k >= num_pois())
    throw std::out_of_range("RoutedTravelModel::coverage_during");
  if (j == k) return (i == j) ? pause_ : 0.0;
  if (i == k) return pause_;
  if (i == j) return 0.0;
  const geometry::Route& route = planner_.route(j, k);
  double chord = 0.0;
  for (std::size_t s = 0; s < route.num_segments(); ++s)
    chord += geometry::chord_length_in_disk(route.segment(s),
                                            topology_.position(i), radius_);
  return chord / speed_;
}

std::vector<geometry::Vec2> RoutedTravelModel::route_waypoints(
    std::size_t j, std::size_t k) const {
  if (j >= num_pois() || k >= num_pois())
    throw std::out_of_range("RoutedTravelModel::route_waypoints");
  if (j == k) return {topology_.position(j)};
  return planner_.route(j, k).waypoints;
}

std::vector<CoverageInterval> RoutedTravelModel::coverage_intervals(
    std::size_t j, std::size_t k, std::size_t i) const {
  if (i >= num_pois() || j >= num_pois() || k >= num_pois())
    throw std::out_of_range("RoutedTravelModel::coverage_intervals");
  if (j == k)
    return (i == j) ? std::vector<CoverageInterval>{{0.0, pause_}}
                    : std::vector<CoverageInterval>{};
  if (i == k) {
    const double t = travel_time(j, k);
    return {{t, t + pause_}};
  }
  if (i == j) return {};
  const geometry::Route& route = planner_.route(j, k);
  std::vector<CoverageInterval> out;
  double offset = 0.0;  // arc length already travelled
  for (std::size_t s = 0; s < route.num_segments(); ++s) {
    const geometry::Segment seg = route.segment(s);
    if (const auto chord = geometry::chord_interval_in_disk(
            seg, topology_.position(i), radius_)) {
      const double begin = (offset + chord->begin) / speed_;
      const double end = (offset + chord->end) / speed_;
      // Merge with the previous interval when the disk spans a waypoint.
      if (!out.empty() && begin <= out.back().end + 1e-12) {
        out.back().end = end;
      } else {
        out.push_back({begin, end});
      }
    }
    offset += seg.length();
  }
  return out;
}

}  // namespace mocos::sensing
