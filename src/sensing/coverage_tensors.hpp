#pragma once

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"
#include "src/sensing/motion_model.hpp"

namespace mocos::sensing {

/// One stored coverage value T_jk,i of a sparse coverage tensor: PoI i is
/// covered for `value` time units during the transition j -> k.
struct CoverageEntry {
  std::size_t j = 0;
  std::size_t k = 0;
  double value = 0.0;
};

/// Precomputed physical-time tensors of §III-A, built once per problem:
///
///   durations(j,k)   = T_jk    (travel j->k + pause at k; T_jj = P_j)
///   coverage[i](j,k) = T_jk,i  (time PoI i is covered during j->k)
///
/// Two storage modes:
///  - dense (the original): one n×n coverage matrix per PoI — O(M³) memory,
///    exact for every transition. The cost function and its gradient touch
///    these in O(M²) inner loops, so they are materialized rather than
///    recomputed from geometry on every optimizer iteration.
///  - sparse (city-scale): coverage restricted to a support adjacency (the
///    transitions a support-restricted chain can actually take), stored as
///    per-PoI entry lists — O(support · coverage) memory, which is what
///    makes M = 1024+ problems buildable at all. Durations and distances
///    stay dense (O(M²)).
class CoverageTensors {
 public:
  explicit CoverageTensors(const MotionModel& model);

  /// Sparse mode. `support[j]` lists the destinations k reachable from j
  /// (self included); coverage entries are computed only for those
  /// transitions. `coverage_reach` must upper-bound the distance from any
  /// point of a route at which a PoI can still be collecting coverage (the
  /// sensing radius for disc sensing) — it prunes the candidate PoIs per
  /// transition without dropping any true entry.
  CoverageTensors(const MotionModel& model,
                  const std::vector<std::vector<std::size_t>>& support,
                  double coverage_reach);

  std::size_t num_pois() const { return durations_.rows(); }
  const linalg::Matrix& durations() const { return durations_; }

  /// True when coverage is stored as sparse entry lists.
  bool sparse() const { return sparse_; }

  /// Dense per-PoI coverage matrix; requires !sparse() (throws
  /// std::logic_error otherwise — city-scale problems must use the entry
  /// lists, materializing O(M³) matrices is exactly what sparse mode avoids).
  const linalg::Matrix& coverage_of(std::size_t i) const;

  /// Sparse coverage entries of PoI i, sorted by (j, k); requires sparse().
  const std::vector<CoverageEntry>& coverage_entries(std::size_t i) const;

  /// The support adjacency the sparse tensors were built over (empty in
  /// dense mode).
  const std::vector<std::vector<std::size_t>>& support() const {
    return support_;
  }

  /// B^i_jk = T_jk,i - Φ_i T_jk — the coverage-deviation kernel of Eq. 4/12,
  /// precomputed per PoI for the given target allocation. Dense mode only
  /// (sparse consumers combine coverage_entries with durations() instead).
  std::vector<linalg::Matrix> deviation_kernels(
      const std::vector<double>& targets) const;

  /// Travel distances d_jk for the energy objective.
  const linalg::Matrix& distances() const { return distances_; }

 private:
  void build_dense_matrices(const MotionModel& model);

  linalg::Matrix durations_;
  std::vector<linalg::Matrix> coverage_;  // dense mode
  linalg::Matrix distances_;
  bool sparse_ = false;
  std::vector<std::vector<CoverageEntry>> entries_;      // sparse mode
  std::vector<std::vector<std::size_t>> support_;        // sparse mode
};

}  // namespace mocos::sensing
