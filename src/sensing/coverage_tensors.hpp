#pragma once

#include <vector>

#include "src/linalg/matrix.hpp"
#include "src/sensing/motion_model.hpp"

namespace mocos::sensing {

/// Precomputed physical-time tensors of §III-A, built once per problem:
///
///   durations(j,k)   = T_jk    (travel j->k + pause at k; T_jj = P_j)
///   coverage[i](j,k) = T_jk,i  (time PoI i is covered during j->k)
///
/// The cost function and its gradient touch these in O(M^2) inner loops, so
/// they are materialized as dense matrices rather than recomputed from
/// geometry on every optimizer iteration.
class CoverageTensors {
 public:
  explicit CoverageTensors(const MotionModel& model);

  std::size_t num_pois() const { return durations_.rows(); }
  const linalg::Matrix& durations() const { return durations_; }
  const linalg::Matrix& coverage_of(std::size_t i) const;

  /// B^i_jk = T_jk,i - Φ_i T_jk — the coverage-deviation kernel of Eq. 4/12,
  /// precomputed per PoI for the given target allocation.
  std::vector<linalg::Matrix> deviation_kernels(
      const std::vector<double>& targets) const;

  /// Travel distances d_jk for the energy objective.
  const linalg::Matrix& distances() const { return distances_; }

 private:
  linalg::Matrix durations_;
  std::vector<linalg::Matrix> coverage_;
  linalg::Matrix distances_;
};

}  // namespace mocos::sensing
