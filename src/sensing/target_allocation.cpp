#include "src/sensing/target_allocation.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace mocos::sensing {

TargetAllocation::TargetAllocation(std::vector<double> shares)
    : shares_(std::move(shares)) {
  if (shares_.empty())
    throw std::invalid_argument("TargetAllocation: empty");
  double sum = 0.0;
  for (double s : shares_) {
    if (s < 0.0) throw std::invalid_argument("TargetAllocation: negative");
    sum += s;
  }
  if (std::abs(sum - 1.0) > 1e-9)
    throw std::invalid_argument("TargetAllocation: shares must sum to 1");
  for (double& s : shares_) s /= sum;
}

TargetAllocation TargetAllocation::uniform(std::size_t n) {
  if (n == 0) throw std::invalid_argument("TargetAllocation::uniform: n==0");
  return TargetAllocation(
      std::vector<double>(n, 1.0 / static_cast<double>(n)));
}

TargetAllocation TargetAllocation::proportional(
    const std::vector<double>& weights) {
  if (weights.empty())
    throw std::invalid_argument("TargetAllocation::proportional: empty");
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("TargetAllocation::proportional: negative");
    sum += w;
  }
  if (sum <= 0.0)
    throw std::invalid_argument("TargetAllocation::proportional: zero sum");
  std::vector<double> shares;
  shares.reserve(weights.size());
  for (double w : weights) shares.push_back(w / sum);
  return TargetAllocation(std::move(shares));
}

double TargetAllocation::operator[](std::size_t i) const {
  if (i >= shares_.size()) throw std::out_of_range("TargetAllocation::[]");
  return shares_[i];
}

double TargetAllocation::l1_distance(const std::vector<double>& other) const {
  if (other.size() != shares_.size())
    throw std::invalid_argument("TargetAllocation::l1_distance: size");
  double d = 0.0;
  for (std::size_t i = 0; i < shares_.size(); ++i)
    d += std::abs(shares_[i] - other[i]);
  return d;
}

}  // namespace mocos::sensing
