#pragma once

#include <vector>

#include "src/geometry/segment.hpp"
#include "src/geometry/topology.hpp"
#include "src/sensing/motion_model.hpp"

namespace mocos::sensing {

/// Physical motion model of the sensor (§III): straight-line travel between
/// PoIs at constant speed, a fixed pause P_k upon arriving at PoI k, and a
/// sensing radius r within which a PoI is covered.
///
/// Invariants: speed > 0; pauses positive and one per PoI; r > 0 and smaller
/// than half the minimum PoI separation (the PoIs must be disjoint — no two
/// covered simultaneously while pausing).
class TravelModel final : public MotionModel {
 public:
  TravelModel(geometry::Topology topology, double speed,
              std::vector<double> pauses, double sensing_radius);

  /// Uniform-pause convenience.
  TravelModel(geometry::Topology topology, double speed, double pause,
              double sensing_radius);

  const geometry::Topology& topology() const override { return topology_; }
  double speed() const { return speed_; }
  double pause(std::size_t i) const override;
  double sensing_radius() const { return radius_; }

  /// Pure travel time from PoI j to PoI k (0 when j == k).
  double travel_time(std::size_t j, std::size_t k) const override;

  /// The paper's T_jk: travel time j->k plus the pause at k; T_jj = P_j.
  double transition_duration(std::size_t j, std::size_t k) const override;

  /// The paper's T_jk,i: time PoI i is covered during the transition j->k.
  /// Conventions from §III-A:
  ///   - T_jk,k = P_k (the pause at the destination);
  ///   - T_jk,j = 0 for k != j (coverage of the origin after departure is
  ///     not counted);
  ///   - T_jj,j = P_j, T_jj,i = 0 for i != j;
  ///   - for intermediate i: chord of the straight route inside i's sensing
  ///     disk, divided by the speed.
  double coverage_during(std::size_t j, std::size_t k,
                         std::size_t i) const override;

  /// Travel cost d_jk used by the energy objective (§VII): the straight-line
  /// distance (0 when j == k — staying costs no motion energy).
  double travel_distance(std::size_t j, std::size_t k) const override;

  std::vector<CoverageInterval> coverage_intervals(
      std::size_t j, std::size_t k, std::size_t i) const override;

  std::vector<geometry::Vec2> route_waypoints(std::size_t j,
                                              std::size_t k) const override;

 private:
  geometry::Topology topology_;
  double speed_;
  std::vector<double> pauses_;
  double radius_;
};

}  // namespace mocos::sensing
