#pragma once

#include <vector>

#include "src/geometry/route_planner.hpp"
#include "src/sensing/motion_model.hpp"

namespace mocos::sensing {

/// Obstacle-aware motion model: travel between PoIs follows the shortest
/// feasible polyline around polygonal obstacles (visibility graph +
/// Dijkstra), at constant speed; pass-by coverage accrues along every
/// segment of the route (chords through sensing disks), with the paper's
/// §III-A conventions (destination gets its pause only; the origin's own
/// disk does not count after departure).
class RoutedTravelModel final : public MotionModel {
 public:
  RoutedTravelModel(geometry::Topology topology,
                    std::vector<geometry::Polygon> obstacles, double speed,
                    double pause, double sensing_radius,
                    double clearance = 1e-3);

  const geometry::Topology& topology() const override { return topology_; }
  double speed() const { return speed_; }
  double sensing_radius() const { return radius_; }
  const geometry::RoutePlanner& planner() const { return planner_; }

  double pause(std::size_t i) const override;
  double travel_time(std::size_t j, std::size_t k) const override;
  double transition_duration(std::size_t j, std::size_t k) const override;
  double coverage_during(std::size_t j, std::size_t k,
                         std::size_t i) const override;
  double travel_distance(std::size_t j, std::size_t k) const override;
  std::vector<CoverageInterval> coverage_intervals(
      std::size_t j, std::size_t k, std::size_t i) const override;
  std::vector<geometry::Vec2> route_waypoints(std::size_t j,
                                              std::size_t k) const override;

 private:
  geometry::Topology topology_;
  double speed_;
  double pause_;
  double radius_;
  geometry::RoutePlanner planner_;
};

}  // namespace mocos::sensing
