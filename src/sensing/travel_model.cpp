#include "src/sensing/travel_model.hpp"

#include <stdexcept>
#include <utility>

namespace mocos::sensing {

TravelModel::TravelModel(geometry::Topology topology, double speed,
                         std::vector<double> pauses, double sensing_radius)
    : topology_(std::move(topology)),
      speed_(speed),
      pauses_(std::move(pauses)),
      radius_(sensing_radius) {
  if (speed_ <= 0.0) throw std::invalid_argument("TravelModel: speed <= 0");
  if (pauses_.size() != topology_.size())
    throw std::invalid_argument("TravelModel: pause count mismatch");
  for (double p : pauses_)
    if (p <= 0.0) throw std::invalid_argument("TravelModel: pause <= 0");
  if (radius_ <= 0.0)
    throw std::invalid_argument("TravelModel: sensing radius <= 0");
  if (radius_ >= topology_.min_separation() / 2.0)
    throw std::invalid_argument(
        "TravelModel: sensing radius too large; PoIs must be disjoint");
}

namespace {
std::vector<double> uniform_pauses(const geometry::Topology& t, double pause) {
  return std::vector<double>(t.size(), pause);
}
}  // namespace

TravelModel::TravelModel(geometry::Topology topology, double speed,
                         double pause, double sensing_radius)
    : TravelModel(
          // The pause vector must be built from `topology` before the move;
          // a helper keeps the evaluation order explicit.
          [&] {
            auto pauses = uniform_pauses(topology, pause);
            return TravelModel(std::move(topology), speed, std::move(pauses),
                               sensing_radius);
          }()) {}

double TravelModel::pause(std::size_t i) const {
  if (i >= pauses_.size()) throw std::out_of_range("TravelModel::pause");
  return pauses_[i];
}

double TravelModel::travel_time(std::size_t j, std::size_t k) const {
  return topology_.distance(j, k) / speed_;
}

double TravelModel::transition_duration(std::size_t j, std::size_t k) const {
  return travel_time(j, k) + pause(k);
}

double TravelModel::coverage_during(std::size_t j, std::size_t k,
                                    std::size_t i) const {
  if (i >= num_pois() || j >= num_pois() || k >= num_pois())
    throw std::out_of_range("TravelModel::coverage_during");
  if (j == k) return (i == j) ? pause(j) : 0.0;
  if (i == k) return pause(k);
  if (i == j) return 0.0;
  const geometry::Segment route{topology_.position(j), topology_.position(k)};
  return geometry::chord_length_in_disk(route, topology_.position(i),
                                        radius_) /
         speed_;
}

double TravelModel::travel_distance(std::size_t j, std::size_t k) const {
  if (j == k) return 0.0;
  return topology_.distance(j, k);
}

std::vector<geometry::Vec2> TravelModel::route_waypoints(
    std::size_t j, std::size_t k) const {
  if (j >= num_pois() || k >= num_pois())
    throw std::out_of_range("TravelModel::route_waypoints");
  if (j == k) return {topology_.position(j)};
  return {topology_.position(j), topology_.position(k)};
}

std::vector<CoverageInterval> TravelModel::coverage_intervals(
    std::size_t j, std::size_t k, std::size_t i) const {
  if (i >= num_pois() || j >= num_pois() || k >= num_pois())
    throw std::out_of_range("TravelModel::coverage_intervals");
  if (j == k)
    return (i == j) ? std::vector<CoverageInterval>{{0.0, pause(j)}}
                    : std::vector<CoverageInterval>{};
  if (i == k) {
    const double t = travel_time(j, k);
    return {{t, t + pause(k)}};
  }
  if (i == j) return {};
  const geometry::Segment route{topology_.position(j), topology_.position(k)};
  const auto chord =
      geometry::chord_interval_in_disk(route, topology_.position(i), radius_);
  if (!chord) return {};
  return {{chord->begin / speed_, chord->end / speed_}};
}

}  // namespace mocos::sensing
