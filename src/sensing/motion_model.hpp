#pragma once

#include <cstddef>
#include <vector>

#include "src/geometry/topology.hpp"

namespace mocos::sensing {

/// One contiguous interval during which a PoI is covered, in time relative
/// to the start of a transition. Used by the multi-sensor simulator, which
/// needs to know *when* coverage happens (to merge overlapping sensors), not
/// just how much.
struct CoverageInterval {
  double begin = 0.0;
  double end = 0.0;

  double length() const { return end - begin; }
};

/// Physical motion abstraction consumed by the coverage tensors, the
/// simulator and the tour baseline. §III requires travel "along a physically
/// feasible route"; the straight-line TravelModel is the paper's setting,
/// and RoutedTravelModel (visibility-graph shortest paths around polygonal
/// obstacles) generalizes it.
///
/// Implementations must satisfy the paper's coverage conventions:
///   coverage_during(j, k, k) = pause(k),
///   coverage_during(j, k, j) = 0 for k != j,
///   coverage_during(j, j, i) = pause(j) iff i == j else 0,
/// and coverage_during(j, k, i) <= transition_duration(j, k).
class MotionModel {
 public:
  virtual ~MotionModel() = default;

  virtual const geometry::Topology& topology() const = 0;
  std::size_t num_pois() const { return topology().size(); }

  /// Pause time at PoI i (> 0).
  virtual double pause(std::size_t i) const = 0;

  /// Pure travel time from PoI j to PoI k along the feasible route
  /// (0 when j == k).
  virtual double travel_time(std::size_t j, std::size_t k) const = 0;

  /// The paper's T_jk: travel time plus the pause at the destination;
  /// T_jj = P_j.
  virtual double transition_duration(std::size_t j, std::size_t k) const = 0;

  /// The paper's T_jk,i: time PoI i is covered during the transition j->k.
  virtual double coverage_during(std::size_t j, std::size_t k,
                                 std::size_t i) const = 0;

  /// Route length from j to k (energy objective); 0 when j == k.
  virtual double travel_distance(std::size_t j, std::size_t k) const = 0;

  /// When, within the transition j->k, PoI i is covered. Invariant: the
  /// interval lengths sum to coverage_during(j, k, i), every interval lies
  /// within [0, transition_duration(j, k)], and intervals are disjoint and
  /// sorted.
  virtual std::vector<CoverageInterval> coverage_intervals(
      std::size_t j, std::size_t k, std::size_t i) const = 0;

  /// The route polyline from PoI j to PoI k, both endpoints included
  /// (straight line by default; detours for obstacle-aware models). For
  /// j == k, a single point. Total polyline length equals
  /// travel_distance(j, k).
  virtual std::vector<geometry::Vec2> route_waypoints(std::size_t j,
                                                      std::size_t k) const = 0;
};

}  // namespace mocos::sensing
