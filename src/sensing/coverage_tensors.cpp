#include "src/sensing/coverage_tensors.hpp"

#include <stdexcept>

namespace mocos::sensing {

CoverageTensors::CoverageTensors(const MotionModel& model) {
  const std::size_t n = model.num_pois();
  durations_ = linalg::Matrix(n, n);
  distances_ = linalg::Matrix(n, n);
  coverage_.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      durations_(j, k) = model.transition_duration(j, k);
      distances_(j, k) = model.travel_distance(j, k);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Matrix cov(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        cov(j, k) = model.coverage_during(j, k, i);
    coverage_.push_back(std::move(cov));
  }
}

const linalg::Matrix& CoverageTensors::coverage_of(std::size_t i) const {
  if (i >= coverage_.size())
    throw std::out_of_range("CoverageTensors::coverage_of");
  return coverage_[i];
}

std::vector<linalg::Matrix> CoverageTensors::deviation_kernels(
    const std::vector<double>& targets) const {
  const std::size_t n = num_pois();
  if (targets.size() != n)
    throw std::invalid_argument("deviation_kernels: target size mismatch");
  std::vector<linalg::Matrix> kernels;
  kernels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Matrix b(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        b(j, k) = coverage_[i](j, k) - targets[i] * durations_(j, k);
    kernels.push_back(std::move(b));
  }
  return kernels;
}

}  // namespace mocos::sensing
