#include "src/sensing/coverage_tensors.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/geometry/city_topology.hpp"

namespace mocos::sensing {

void CoverageTensors::build_dense_matrices(const MotionModel& model) {
  const std::size_t n = model.num_pois();
  durations_ = linalg::Matrix(n, n);
  distances_ = linalg::Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      durations_(j, k) = model.transition_duration(j, k);
      distances_(j, k) = model.travel_distance(j, k);
    }
  }
}

CoverageTensors::CoverageTensors(const MotionModel& model) {
  const std::size_t n = model.num_pois();
  build_dense_matrices(model);
  coverage_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Matrix cov(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        cov(j, k) = model.coverage_during(j, k, i);
    coverage_.push_back(std::move(cov));
  }
}

CoverageTensors::CoverageTensors(
    const MotionModel& model,
    const std::vector<std::vector<std::size_t>>& support,
    double coverage_reach)
    : sparse_(true), support_(support) {
  const std::size_t n = model.num_pois();
  if (support_.size() != n)
    throw std::invalid_argument("CoverageTensors: support size mismatch");
  if (!(coverage_reach > 0.0))
    throw std::invalid_argument(
        "CoverageTensors: non-positive coverage reach");
  build_dense_matrices(model);
  entries_.resize(n);

  // A PoI covered during j -> k sits within `coverage_reach` of some route
  // point, hence within route_length + reach of j. One neighbour sweep at
  // the largest such radius gives sound per-source candidate lists, so the
  // O(M) scan of all PoIs per transition collapses to O(local density).
  double max_radius = coverage_reach;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t k : support_[j])
      max_radius = std::max(max_radius,
                            model.travel_distance(j, k) + coverage_reach);
  const std::vector<std::vector<std::size_t>> candidates =
      geometry::radius_neighbors(model.topology(), max_radius);

  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k : support_[j]) {
      if (k >= n)
        throw std::invalid_argument(
            "CoverageTensors: support index out of range");
      for (std::size_t i : candidates[j]) {
        const double v = model.coverage_during(j, k, i);
        // Exact on purpose: absent coverage is an exact 0 by the model
        // conventions; thresholding would drop real (small) coverage.
        // mocos-lint: allow(float-eq)
        if (v != 0.0) entries_[i].push_back({j, k, v});
      }
    }
  }
  // Ascending (j, k) per PoI: the support lists are sorted but the outer
  // iteration appends per source PoI, which already yields (j, k) order.
  for (auto& list : entries_) {
    std::sort(list.begin(), list.end(),
              [](const CoverageEntry& a, const CoverageEntry& b) {
                return a.j != b.j ? a.j < b.j : a.k < b.k;
              });
  }
}

const linalg::Matrix& CoverageTensors::coverage_of(std::size_t i) const {
  if (sparse_)
    throw std::logic_error(
        "CoverageTensors::coverage_of: dense per-PoI matrices are not "
        "materialized in sparse mode; use coverage_entries()");
  if (i >= coverage_.size())
    throw std::out_of_range("CoverageTensors::coverage_of");
  return coverage_[i];
}

const std::vector<CoverageEntry>& CoverageTensors::coverage_entries(
    std::size_t i) const {
  if (!sparse_)
    throw std::logic_error(
        "CoverageTensors::coverage_entries: only available in sparse mode");
  if (i >= entries_.size())
    throw std::out_of_range("CoverageTensors::coverage_entries");
  return entries_[i];
}

std::vector<linalg::Matrix> CoverageTensors::deviation_kernels(
    const std::vector<double>& targets) const {
  if (sparse_)
    throw std::logic_error(
        "CoverageTensors::deviation_kernels: O(M^3) kernels are not "
        "available in sparse mode");
  const std::size_t n = num_pois();
  if (targets.size() != n)
    throw std::invalid_argument("deviation_kernels: target size mismatch");
  std::vector<linalg::Matrix> kernels;
  kernels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Matrix b(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        b(j, k) = coverage_[i](j, k) - targets[i] * durations_(j, k);
    kernels.push_back(std::move(b));
  }
  return kernels;
}

}  // namespace mocos::sensing
