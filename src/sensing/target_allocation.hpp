#pragma once

#include <cstddef>
#include <vector>

namespace mocos::sensing {

/// Validated target allocation Φ of coverage-time shares among the PoIs
/// (§III). Provides the common constructions used by examples and benches.
class TargetAllocation {
 public:
  /// Validates: non-empty, entries >= 0, sum == 1 (within 1e-9; then
  /// renormalized exactly).
  explicit TargetAllocation(std::vector<double> shares);

  static TargetAllocation uniform(std::size_t n);

  /// Shares proportional to the given (non-negative, not all zero)
  /// importance weights.
  static TargetAllocation proportional(const std::vector<double>& weights);

  std::size_t size() const { return shares_.size(); }
  double operator[](std::size_t i) const;
  const std::vector<double>& shares() const { return shares_; }

  /// L1 distance to another allocation of the same size — a convenient
  /// scalar for reporting how far a measured coverage profile is from Φ.
  double l1_distance(const std::vector<double>& other) const;

 private:
  std::vector<double> shares_;
};

}  // namespace mocos::sensing
