#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace mocos::obs {

/// Key/value arguments attached to a trace event. Values are either numbers
/// (printed with the deterministic %.17g spelling) or strings; insertion
/// order is preserved in the emitted JSON.
class TraceArgs {
 public:
  TraceArgs() = default;

  TraceArgs& num(std::string_view key, double value) {
    items_.push_back({std::string(key), value, std::string(), true});
    return *this;
  }
  TraceArgs& str(std::string_view key, std::string_view value) {
    items_.push_back({std::string(key), 0.0, std::string(value), false});
    return *this;
  }

  struct Item {
    std::string key;
    double number;
    std::string text;
    bool is_number;
  };
  [[nodiscard]] const std::vector<Item>& items() const { return items_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  std::vector<Item> items_;
};

/// Newline-delimited JSON trace writer. Each event is one object:
///
///   {"ph":"B","name":...,"cat":...,"ts":<us>,"tid":<n>,"args":{...}}
///
/// `ph` is "B" (span begin), "E" (span end), or "i" (instant), following
/// the Chrome tracing phase letters so tools/trace/trace2chrome.py is a
/// thin re-wrapping. `ts` is microseconds since the sink was created,
/// read from the wall clock — traces are the ONE artifact exempt from the
/// determinism contract (DESIGN.md §10); timestamps never leak into
/// reports or metric values. `tid` is a small dense id assigned to each
/// thread on first use (registration order, which is scheduling-dependent
/// like the timestamps).
///
/// Writes are serialized by an internal mutex; events from one thread
/// appear in program order.
class TraceSink {
 public:
  /// Events are written to `out`, which must outlive the sink.
  explicit TraceSink(std::ostream& out);

  void begin(std::string_view name, std::string_view cat,
             const TraceArgs& args = {}) MOCOS_EXCLUDES(mu_);
  void end(std::string_view name, std::string_view cat) MOCOS_EXCLUDES(mu_);
  void instant(std::string_view name, std::string_view cat,
               const TraceArgs& args = {}) MOCOS_EXCLUDES(mu_);

  /// Flushes the underlying stream.
  void flush() MOCOS_EXCLUDES(mu_);

 private:
  void emit(char phase, std::string_view name, std::string_view cat,
            const TraceArgs& args) MOCOS_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t now_us() const;
  [[nodiscard]] int thread_id();

  util::Mutex mu_;
  /// The sink serializes all writes: the stream is touched only under mu_
  /// (the reference itself is bound in the constructor and never reseated).
  std::ostream& out_ MOCOS_GUARDED_BY(mu_);
  std::int64_t epoch_ns_ = 0;
  std::atomic<int> next_tid_{0};
};

/// Request id attached to every event the current thread emits, or "" when
/// no request scope is active. mocos_serve installs one around each request
/// execution (request decode through descent/markov/sparse all run on the
/// owning worker thread), so per-request timelines are extractable from one
/// NDJSON file by filtering on the "rid" field.
[[nodiscard]] const std::string& current_trace_context();

/// RAII request-scope for trace events: every span/instant emitted by this
/// thread while the scope is live carries `"rid":"<request_id>"`. Scopes
/// nest; the previous id is restored on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::string_view request_id);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  std::string previous_;
};

/// The process-global sink instrumented code writes to, or null when
/// tracing is off (the zero-cost disabled path — call sites check
/// `trace_active()` before building TraceArgs).
[[nodiscard]] TraceSink* current_trace();
[[nodiscard]] inline bool trace_active() { return current_trace() != nullptr; }

/// RAII installation of a process-global sink (the CLI installs one for
/// --trace / MOCOS_TRACE runs). Restores the previous sink on destruction.
class ScopedTraceInstall {
 public:
  explicit ScopedTraceInstall(TraceSink* sink);
  ~ScopedTraceInstall();
  ScopedTraceInstall(const ScopedTraceInstall&) = delete;
  ScopedTraceInstall& operator=(const ScopedTraceInstall&) = delete;

 private:
  TraceSink* previous_;
};

/// RAII span: emits "B" on construction and "E" on destruction when a sink
/// is installed, nothing otherwise.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, std::string_view cat,
             const TraceArgs& args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceSink* sink_;
  std::string name_;
  std::string cat_;
};

/// Instant-event helper; no-op when tracing is off. Call sites with
/// expensive args should guard on trace_active() first.
inline void trace_instant(std::string_view name, std::string_view cat,
                          const TraceArgs& args = {}) {
  if (TraceSink* sink = current_trace()) sink->instant(name, cat, args);
}

}  // namespace mocos::obs
