#include "src/obs/exposition.hpp"

#include <cstdio>
#include <ostream>

namespace mocos::obs {

namespace {

void number(double x, std::ostream& out) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  out << buf;
}

// Bucket-edge labels favor legibility over round-trip exactness; 12
// significant digits keep every edge the repo uses distinct.
void label_number(double x, std::ostream& out) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", x);
  out << buf;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "mocos_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void render_prometheus(const MetricsSnapshot& snapshot, std::ostream& out) {
  for (const MetricsSnapshot::CounterValue& c : snapshot.counters) {
    const std::string n = prometheus_name(c.name);
    out << "# TYPE " << n << " counter\n" << n << " " << c.value << "\n";
  }
  for (const MetricsSnapshot::GaugeValue& g : snapshot.gauges) {
    const std::string n = prometheus_name(g.name);
    out << "# TYPE " << n << " gauge\n" << n << " ";
    number(g.value, out);
    out << "\n";
  }
  for (const MetricsSnapshot::HistogramValue& h : snapshot.histograms) {
    const std::string n = prometheus_name(h.name);
    out << "# TYPE " << n << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cum += h.counts[b];
      out << n << "_bucket{le=\"";
      label_number(h.bounds[b], out);
      out << "\"} " << cum << "\n";
    }
    out << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << n << "_sum ";
    number(h.sum, out);
    out << "\n" << n << "_count " << h.count << "\n";
    out << "# TYPE " << n << "_quantile gauge\n";
    static constexpr struct {
      const char* label;
      double q;
    } kQuantiles[] = {{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};
    for (const auto& [label, q] : kQuantiles) {
      out << n << "_quantile{q=\"" << label << "\"} ";
      number(h.quantile(q), out);
      out << "\n";
    }
  }
}

}  // namespace mocos::obs
