#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace mocos::obs {

/// Accumulates wall time per named phase, keyed by the full phase *stack*
/// ("descent.run;line_search;chain_solve") so the output is already in
/// collapsed-stack form for tools/trace/trace2flame.py. Each record carries
/// exclusive time (self minus children) and inclusive time.
///
/// Determinism contract (DESIGN.md §15): phase *counts* are a function of
/// algorithm state only and are bit-identical for any --jobs value at a
/// fixed schedule of phases; the nanosecond fields are wall-clock readings
/// and — like trace timestamps — are exempt: they go only into the profile
/// side file named by --profile, never into reports, responses, or metric
/// values. All clock reads happen inside src/obs/ per the obs-only-clock
/// lint rule.
///
/// Thread-safe: phases record from any thread (the profiler is installed
/// process-globally, so serve workers and parallel_for tasks all report into
/// one timer); the per-thread phase stack is thread-local state, so sibling
/// threads never see each other's stacks.
class PhaseTimer {
 public:
  struct PhaseStats {
    std::uint64_t count = 0;
    std::uint64_t exclusive_ns = 0;
    std::uint64_t inclusive_ns = 0;
  };

  /// Folds one finished phase occurrence into the accumulator. `stack` is
  /// the ';'-joined phase path.
  void record(const std::string& stack, std::uint64_t exclusive_ns,
              std::uint64_t inclusive_ns) MOCOS_EXCLUDES(mu_);

  /// Stack-path -> stats, sorted by path (std::map order).
  [[nodiscard]] std::map<std::string, PhaseStats> stats() const
      MOCOS_EXCLUDES(mu_);

  /// Deterministically ordered JSON document:
  ///   {"version": 1, "phases": {"a;b": {"count": n, "exclusive_ns": n,
  ///    "inclusive_ns": n}, ...}}
  /// (tools/trace/profile_schema.json is the authoritative shape).
  void write_json(std::ostream& out) const MOCOS_EXCLUDES(mu_);

  /// Brendan-Gregg collapsed-stack lines ("a;b <exclusive_us>\n"), the
  /// direct input format for flamegraph tooling.
  void write_collapsed(std::ostream& out) const MOCOS_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::map<std::string, PhaseStats> stats_ MOCOS_GUARDED_BY(mu_);
};

/// The process-global profiler phases report into, or null when profiling
/// is off (the zero-cost disabled path: ScopedPhase checks one atomic load
/// and does nothing else).
[[nodiscard]] PhaseTimer* current_profiler();

/// RAII installation of a process-global profiler (the CLI and mocos_serve
/// install one for --profile runs). Restores the previous profiler on
/// destruction.
class ScopedProfileInstall {
 public:
  explicit ScopedProfileInstall(PhaseTimer* timer);
  ~ScopedProfileInstall();
  ScopedProfileInstall(const ScopedProfileInstall&) = delete;
  ScopedProfileInstall& operator=(const ScopedProfileInstall&) = delete;

 private:
  PhaseTimer* previous_;
};

/// RAII phase scope: pushes `name` onto the calling thread's phase stack and
/// on destruction records (exclusive, inclusive) time against the stack path
/// in the installed profiler. No-op (no clock read, no allocation) when no
/// profiler is installed at construction.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;        // null = disabled scope
  ScopedPhase* parent_;      // enclosing live scope on this thread
  std::size_t saved_len_;    // thread-local path length to restore
  std::uint64_t start_ns_;
  std::uint64_t child_ns_ = 0;  // inclusive time of direct children
};

}  // namespace mocos::obs
