#include "src/obs/phase_timer.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ostream>

#include "src/util/mutex.hpp"

namespace mocos::obs {

namespace {

std::atomic<PhaseTimer*> g_profiler{nullptr};

// Per-thread phase stack state. The path string is reused across scopes
// (truncated on scope exit), so steady-state phase entry does not allocate.
thread_local std::string t_phase_path;
thread_local ScopedPhase* t_open_scope = nullptr;

std::uint64_t phase_now_ns() {
  // Profiler timestamps are wall-clock by nature; like trace timestamps they
  // are exempt from the determinism contract (DESIGN.md §15) because they go
  // only into the --profile side file. src/obs/ is the one module sanctioned
  // to read clocks (obs-only-clock lint rule).
  using Clock = std::chrono::steady_clock;  // mocos-lint: allow(det-time)
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

void json_escape(const std::string& s, std::ostream& out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void PhaseTimer::record(const std::string& stack, std::uint64_t exclusive_ns,
                        std::uint64_t inclusive_ns) {
  util::MutexLock lock(mu_);
  PhaseStats& s = stats_[stack];
  s.count += 1;
  s.exclusive_ns += exclusive_ns;
  s.inclusive_ns += inclusive_ns;
}

std::map<std::string, PhaseTimer::PhaseStats> PhaseTimer::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void PhaseTimer::write_json(std::ostream& out) const {
  const std::map<std::string, PhaseStats> snap = stats();
  out << "{\n  \"version\": 1,\n  \"phases\": {";
  bool first = true;
  for (const auto& [stack, s] : snap) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(stack, out);
    out << "\": {\"count\": " << s.count
        << ", \"exclusive_ns\": " << s.exclusive_ns
        << ", \"inclusive_ns\": " << s.inclusive_ns << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void PhaseTimer::write_collapsed(std::ostream& out) const {
  for (const auto& [stack, s] : stats())
    out << stack << " " << s.exclusive_ns / 1000u << "\n";
}

PhaseTimer* current_profiler() {
  return g_profiler.load(std::memory_order_acquire);
}

ScopedProfileInstall::ScopedProfileInstall(PhaseTimer* timer)
    : previous_(g_profiler.load(std::memory_order_acquire)) {
  g_profiler.store(timer, std::memory_order_release);
}

ScopedProfileInstall::~ScopedProfileInstall() {
  g_profiler.store(previous_, std::memory_order_release);
}

ScopedPhase::ScopedPhase(std::string_view name)
    : timer_(current_profiler()),
      parent_(nullptr),
      saved_len_(0),
      start_ns_(0) {
  if (timer_ == nullptr) return;
  parent_ = t_open_scope;
  t_open_scope = this;
  saved_len_ = t_phase_path.size();
  if (!t_phase_path.empty()) t_phase_path += ';';
  t_phase_path += name;
  start_ns_ = phase_now_ns();
}

ScopedPhase::~ScopedPhase() {
  if (timer_ == nullptr) return;
  const std::uint64_t end = phase_now_ns();
  const std::uint64_t inclusive = end > start_ns_ ? end - start_ns_ : 0;
  const std::uint64_t exclusive =
      inclusive > child_ns_ ? inclusive - child_ns_ : 0;
  timer_->record(t_phase_path, exclusive, inclusive);
  if (parent_ != nullptr) parent_->child_ns_ += inclusive;
  t_phase_path.resize(saved_len_);
  t_open_scope = parent_;
}

}  // namespace mocos::obs
