#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace mocos::obs {

/// Monotone event counter. Increments are relaxed atomic adds: integer
/// addition commutes, so the final value is independent of which thread
/// performed which increment — the one metric kind that is deterministic
/// even without sharding.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value. Writes from parallel regions are only deterministic
/// through the per-task shards `runtime::parallel_for` installs (merge order
/// is task-index order); sequential code may set gauges directly.
class Gauge {
 public:
  void set(double v) {
    v_.store(v, std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if above the current value (or unset). The CAS
  /// loop makes concurrent raises keep the true maximum — the high-water-mark
  /// use (peak queue depth) that plain set() would lose under contention.
  /// Unset-ness is encoded in the value itself (v_ starts at -infinity, below
  /// every observable v), so the loop never consults the separate `set_`
  /// flag: a stale flag read cannot let a smaller value overwrite a larger
  /// one that another thread just CAS'd in.
  void set_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    set_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_value() const {
    return set_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  // -infinity (not 0) so set_max can treat "unset" as below any real value;
  // snapshots still gate on set_, so the sentinel is never reported.
  std::atomic<double> v_{-std::numeric_limits<double>::infinity()};
  std::atomic<bool> set_{false};
};

/// Fixed-bucket histogram: bucket b counts observations x with
/// bounds[b-1] <= x < bounds[b] (underflow bucket first, implicit +infinity
/// overflow bucket last); the edges are fixed at creation. Bucket counts
/// are integers (order-independent); the running
/// sum/min/max are deterministic under the sharding contract because each
/// shard observes sequentially and shards merge in index order.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) MOCOS_EXCLUDES(mu_);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const MOCOS_EXCLUDES(mu_);
  [[nodiscard]] double sum() const MOCOS_EXCLUDES(mu_);
  [[nodiscard]] double min() const MOCOS_EXCLUDES(mu_);
  [[nodiscard]] double max() const MOCOS_EXCLUDES(mu_);

  /// Merges another histogram's state in (bucket counts add, min/max widen).
  /// `counts` must match bounds().size() + 1.
  void fold(const std::vector<std::uint64_t>& other_counts,
            std::uint64_t other_count, double other_sum, double other_min,
            double other_max) MOCOS_EXCLUDES(mu_);

  /// Bucket-interpolated quantile estimate (see histogram_quantile).
  /// Deterministic: a pure function of bucket counts and min/max, which are
  /// themselves deterministic under the sharding contract.
  [[nodiscard]] double quantile(double q) const MOCOS_EXCLUDES(mu_);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  mutable util::Mutex mu_;
  std::uint64_t count_ MOCOS_GUARDED_BY(mu_) = 0;
  double sum_ MOCOS_GUARDED_BY(mu_) = 0.0;
  double min_ MOCOS_GUARDED_BY(mu_) = 0.0;
  double max_ MOCOS_GUARDED_BY(mu_) = 0.0;
};

/// Plain-data copy of a registry's state: sorted by name, mergeable, and
/// serializable. Contains no wall-clock fields by construction — the
/// determinism contract for metrics (DESIGN.md §10) is that every value is
/// a function of algorithm state only.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /// Bucket-interpolated quantile of this snapshot's distribution.
    [[nodiscard]] double quantile(double q) const;
  };

  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter by name, 0 when absent (test convenience).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Deterministic JSON document: keys sorted, numbers printed with the
  /// same shortest-round-trip format the batch summary uses, no timing
  /// fields. Byte-identical across runs and --jobs values.
  void write_json(std::ostream& out) const;
};

/// Thread-safe registry of named metrics.
///
/// Determinism contract: metric *values* derived from algorithm state must
/// be bit-identical for any `--jobs N`. Counters satisfy this anywhere
/// (commutative integer adds). Gauges and histogram sum/min/max rely on the
/// sharding protocol: `runtime::parallel_for` gives every task index its own
/// shard registry (serial and pooled paths alike, so the arithmetic
/// association is identical for any job count) and merges the shards into
/// the parent in index order after the barrier.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The returned references stay valid for the registry's lifetime: the
  /// maps are node-based and entries are never erased, so handing the metric
  /// out after the registry lock drops is safe.
  Counter& counter(std::string_view name) MOCOS_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) MOCOS_EXCLUDES(mu_);
  /// `bounds` fixes the bucket edges on first creation; later lookups of the
  /// same name ignore the argument (the registry keeps one set of edges per
  /// name so merges are well-defined).
  Histogram& histogram(std::string_view name, std::vector<double> bounds)
      MOCOS_EXCLUDES(mu_);

  [[nodiscard]] MetricsSnapshot snapshot() const MOCOS_EXCLUDES(mu_);

  /// Folds a snapshot in: counters/histogram buckets add, gauges overwrite,
  /// histogram min/max widen. Callers merge shards in task-index order; the
  /// merge itself is sequential, so the result is reproducible.
  void merge(const MetricsSnapshot& other) MOCOS_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      MOCOS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      MOCOS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      MOCOS_GUARDED_BY(mu_);
};

/// The registry instrumented code reports into: a thread-local pointer, null
/// when metrics collection is off (the zero-cost disabled path — every
/// instrumentation site first checks this). Installed by the CLI for
/// --metrics runs and by parallel_for's per-task shards.
[[nodiscard]] MetricsRegistry* current_metrics();

/// RAII installation of `registry` as the current thread's metrics sink;
/// restores the previous pointer on destruction (nesting = sharding).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* registry);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* previous_;
};

// --- Call-site helpers (all no-ops when no registry is installed) ---------

inline void count(std::string_view name, std::uint64_t n = 1) {
  if (MetricsRegistry* m = current_metrics()) m->counter(name).add(n);
}

inline void gauge_set(std::string_view name, double v) {
  if (MetricsRegistry* m = current_metrics()) m->gauge(name).set(v);
}

inline void gauge_set_max(std::string_view name, double v) {
  if (MetricsRegistry* m = current_metrics()) m->gauge(name).set_max(v);
}

inline void observe(std::string_view name, std::vector<double> bounds,
                    double v) {
  if (MetricsRegistry* m = current_metrics())
    m->histogram(name, std::move(bounds)).observe(v);
}

/// Logarithmic bucket edges 10^lo .. 10^hi (one bucket per decade), the
/// shared shape for step-size and gradient-norm histograms.
[[nodiscard]] std::vector<double> decade_bounds(int lo_exp, int hi_exp);

/// Bucket-interpolated quantile over a fixed-bucket histogram. The target
/// rank q*count is located in the cumulative bucket counts and the result
/// interpolated linearly inside that bucket; the underflow bucket's lower
/// edge and the overflow bucket's upper edge are the observed min/max, and
/// every interior edge is clamped to [min, max] so estimates never leave the
/// observed range. q <= 0 returns min, q >= 1 returns max, count == 0
/// returns 0. `counts` must have bounds.size() + 1 entries.
[[nodiscard]] double histogram_quantile(const std::vector<double>& bounds,
                                        const std::vector<std::uint64_t>& counts,
                                        std::uint64_t count, double min,
                                        double max, double q);

}  // namespace mocos::obs
