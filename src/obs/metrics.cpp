#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/util/mutex.hpp"

namespace mocos::obs {

namespace {

thread_local MetricsRegistry* t_current = nullptr;

void json_number(double x, std::ostream& out) {
  // Same deterministic, locale-independent spelling the batch summary uses.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  out << buf;
}

void json_escape(const std::string& s, std::ostream& out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be sorted");
}

void Histogram::observe(double x) {
  const std::size_t b = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  util::MutexLock lock(mu_);
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const {
  util::MutexLock lock(mu_);
  return count_;
}

double Histogram::sum() const {
  util::MutexLock lock(mu_);
  return sum_;
}

double Histogram::min() const {
  util::MutexLock lock(mu_);
  return min_;
}

double Histogram::max() const {
  util::MutexLock lock(mu_);
  return max_;
}

void Histogram::fold(const std::vector<std::uint64_t>& other_counts,
                     std::uint64_t other_count, double other_sum,
                     double other_min, double other_max) {
  if (other_counts.size() != buckets_.size())
    throw std::invalid_argument("Histogram::fold: bucket count mismatch");
  for (std::size_t b = 0; b < buckets_.size(); ++b)
    buckets_[b].fetch_add(other_counts[b], std::memory_order_relaxed);
  if (other_count == 0) return;
  util::MutexLock lock(mu_);
  if (count_ == 0) {
    min_ = other_min;
    max_ = other_max;
  } else {
    min_ = std::min(min_, other_min);
    max_ = std::max(max_, other_max);
  }
  count_ += other_count;
  sum_ += other_sum;
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& counts,
                          std::uint64_t count, double min, double max,
                          double q) {
  if (counts.size() != bounds.size() + 1)
    throw std::invalid_argument("histogram_quantile: bucket count mismatch");
  if (count == 0) return 0.0;
  const double rank = q * static_cast<double>(count);
  if (rank <= 0.0) return min;
  if (rank >= static_cast<double>(count)) return max;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double prev = static_cast<double>(cum);
    cum += counts[b];
    if (static_cast<double>(cum) < rank) continue;
    // Bucket edges, clamped to the observed range so interpolation cannot
    // produce a value no observation could have had (the underflow bucket
    // has no finite lower edge and the overflow bucket no upper edge).
    double lo = b == 0 ? min : bounds[b - 1];
    double hi = b == bounds.size() ? max : bounds[b];
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi <= lo || counts[b] == 0) return lo;
    const double frac = (rank - prev) / static_cast<double>(counts[b]);
    return lo + frac * (hi - lo);
  }
  return max;  // unreachable: cum == count >= rank by the time the loop ends
}

double Histogram::quantile(double q) const {
  std::vector<std::uint64_t> c = counts();
  std::uint64_t n;
  double lo, hi;
  {
    util::MutexLock lock(mu_);
    n = count_;
    lo = min_;
    hi = max_;
  }
  return histogram_quantile(bounds_, c, n, lo, hi, q);
}

double MetricsSnapshot::HistogramValue::quantile(double q) const {
  return histogram_quantile(bounds, counts, count, min, max, q);
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    json_escape(counters[i].name, out);
    out << "\": " << counters[i].value;
  }
  out << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    json_escape(gauges[i].name, out);
    out << "\": ";
    json_number(gauges[i].value, out);
  }
  out << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    json_escape(h.name, out);
    out << "\": {\"bounds\": [";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) out << ", ";
      json_number(h.bounds[j], out);
    }
    out << "], \"counts\": [";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j > 0) out << ", ";
      out << h.counts[j];
    }
    out << "], \"count\": " << h.count << ", \"sum\": ";
    json_number(h.sum, out);
    out << ", \"min\": ";
    json_number(h.min, out);
    out << ", \"max\": ";
    json_number(h.max, out);
    out << ", \"p50\": ";
    json_number(h.quantile(0.5), out);
    out << ", \"p90\": ";
    json_number(h.quantile(0.9), out);
    out << ", \"p99\": ";
    json_number(h.quantile(0.99), out);
    out << "}";
  }
  out << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  util::MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    if (g->has_value()) snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.name = name;
    v.bounds = h->bounds();
    v.counts = h->counts();
    v.count = h->count();
    v.sum = h->sum();
    v.min = h->min();
    v.max = h->max();
    snap.histograms.push_back(std::move(v));
  }
  return snap;  // std::map iteration is already name-sorted
}

void MetricsRegistry::merge(const MetricsSnapshot& other) {
  for (const MetricsSnapshot::CounterValue& c : other.counters)
    counter(c.name).add(c.value);
  for (const MetricsSnapshot::GaugeValue& g : other.gauges)
    gauge(g.name).set(g.value);
  for (const MetricsSnapshot::HistogramValue& hv : other.histograms) {
    Histogram& h = histogram(hv.name, hv.bounds);
    if (h.bounds() != hv.bounds)
      throw std::invalid_argument("MetricsRegistry::merge: bucket bounds of '" +
                                  hv.name + "' differ");
    h.fold(hv.counts, hv.count, hv.sum, hv.min, hv.max);
  }
}

MetricsRegistry* current_metrics() { return t_current; }

ScopedMetrics::ScopedMetrics(MetricsRegistry* registry)
    : previous_(t_current) {
  t_current = registry;
}

ScopedMetrics::~ScopedMetrics() { t_current = previous_; }

std::vector<double> decade_bounds(int lo_exp, int hi_exp) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(hi_exp - lo_exp + 1));
  for (int e = lo_exp; e <= hi_exp; ++e)
    out.push_back(std::pow(10.0, static_cast<double>(e)));
  return out;
}

}  // namespace mocos::obs
