#include "src/obs/trace.hpp"

#include <chrono>
#include <cstdio>

#include "src/util/mutex.hpp"

namespace mocos::obs {

namespace {

std::atomic<TraceSink*> g_trace{nullptr};

thread_local std::string t_trace_context;  // "" = no request scope

void json_escape(std::string_view s, std::ostream& out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

std::int64_t wall_ns() {
  // Trace timestamps are the one sanctioned wall-clock read (DESIGN.md §10):
  // they go only into trace files, never into reports or metric values.
  using Clock = std::chrono::steady_clock;  // mocos-lint: allow(det-time)
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceSink::TraceSink(std::ostream& out) : out_(out), epoch_ns_(wall_ns()) {}

std::uint64_t TraceSink::now_us() const {
  const std::int64_t delta = wall_ns() - epoch_ns_;
  return delta <= 0 ? 0 : static_cast<std::uint64_t>(delta) / 1000u;
}

int TraceSink::thread_id() {
  thread_local int tid = -1;
  thread_local const TraceSink* owner = nullptr;
  if (owner != this) {
    owner = this;
    tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  }
  return tid;
}

void TraceSink::begin(std::string_view name, std::string_view cat,
                      const TraceArgs& args) {
  emit('B', name, cat, args);
}

void TraceSink::end(std::string_view name, std::string_view cat) {
  emit('E', name, cat, {});
}

void TraceSink::instant(std::string_view name, std::string_view cat,
                        const TraceArgs& args) {
  emit('i', name, cat, args);
}

void TraceSink::flush() {
  util::MutexLock lock(mu_);
  out_.flush();
}

void TraceSink::emit(char phase, std::string_view name, std::string_view cat,
                     const TraceArgs& args) {
  const std::uint64_t ts = now_us();
  const int tid = thread_id();
  util::MutexLock lock(mu_);
  out_ << "{\"ph\":\"" << phase << "\",\"name\":\"";
  json_escape(name, out_);
  out_ << "\",\"cat\":\"";
  json_escape(cat, out_);
  out_ << "\",\"ts\":" << ts << ",\"tid\":" << tid;
  if (!t_trace_context.empty()) {
    out_ << ",\"rid\":\"";
    json_escape(t_trace_context, out_);
    out_ << "\"";
  }
  if (!args.empty()) {
    out_ << ",\"args\":{";
    bool first = true;
    for (const TraceArgs::Item& item : args.items()) {
      if (!first) out_ << ",";
      first = false;
      out_ << "\"";
      json_escape(item.key, out_);
      out_ << "\":";
      if (item.is_number) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", item.number);
        out_ << buf;
      } else {
        out_ << "\"";
        json_escape(item.text, out_);
        out_ << "\"";
      }
    }
    out_ << "}";
  }
  out_ << "}\n";
}

const std::string& current_trace_context() { return t_trace_context; }

ScopedTraceContext::ScopedTraceContext(std::string_view request_id)
    : previous_(std::move(t_trace_context)) {
  t_trace_context.assign(request_id);
}

ScopedTraceContext::~ScopedTraceContext() {
  t_trace_context = std::move(previous_);
}

TraceSink* current_trace() {
  return g_trace.load(std::memory_order_acquire);
}

ScopedTraceInstall::ScopedTraceInstall(TraceSink* sink)
    : previous_(g_trace.load(std::memory_order_acquire)) {
  g_trace.store(sink, std::memory_order_release);
}

ScopedTraceInstall::~ScopedTraceInstall() {
  g_trace.store(previous_, std::memory_order_release);
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view cat,
                       const TraceArgs& args)
    : sink_(current_trace()), name_(name), cat_(cat) {
  if (sink_ != nullptr) sink_->begin(name_, cat_, args);
}

ScopedSpan::~ScopedSpan() {
  if (sink_ != nullptr) sink_->end(name_, cat_);
}

}  // namespace mocos::obs
