#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "src/obs/metrics.hpp"

namespace mocos::obs {

/// Metric name -> Prometheus metric name: "mocos_" prefix, every character
/// outside [a-zA-Z0-9_:] mapped to '_' ("serve.request.latency" ->
/// "mocos_serve_request_latency").
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Renders a snapshot as Prometheus text exposition (version 0.0.4 style):
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` samples plus `_sum`/`_count`, and — on top of the
/// standard shape — p50/p90/p99 summary gauges derived from the buckets via
/// histogram_quantile, emitted as `<name>_quantile{q="0.5"}` etc. Output is
/// deterministic: snapshot order is name-sorted and numbers use the same
/// %.17g spelling as the JSON snapshot.
void render_prometheus(const MetricsSnapshot& snapshot, std::ostream& out);

}  // namespace mocos::obs
