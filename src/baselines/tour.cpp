#include "src/baselines/tour.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace mocos::baselines {

TourSchedule::TourSchedule(const sensing::MotionModel& model,
                           std::vector<std::size_t> sequence)
    : model_(model), sequence_(std::move(sequence)) {
  const std::size_t n = model_.num_pois();
  if (sequence_.empty()) throw std::invalid_argument("TourSchedule: empty");
  std::vector<char> seen(n, 0);
  for (std::size_t s : sequence_) {
    if (s >= n) throw std::invalid_argument("TourSchedule: index out of range");
    seen[s] = 1;
  }
  for (char c : seen)
    if (!c)
      throw std::invalid_argument(
          "TourSchedule: every PoI must appear in the cycle");
}

std::vector<double> TourSchedule::coverage_shares() const {
  const std::size_t n = model_.num_pois();
  const std::size_t len = sequence_.size();
  std::vector<double> cov(n, 0.0);
  double total = 0.0;
  for (std::size_t t = 0; t < len; ++t) {
    const std::size_t j = sequence_[t];
    const std::size_t k = sequence_[(t + 1) % len];
    total += model_.transition_duration(j, k);
    for (std::size_t i = 0; i < n; ++i)
      cov[i] += model_.coverage_during(j, k, i);
  }
  for (double& c : cov) c /= total;
  return cov;
}

std::vector<double> TourSchedule::mean_exposure_steps() const {
  const std::size_t n = model_.num_pois();
  const std::size_t len = sequence_.size();
  std::vector<double> total(n, 0.0);
  std::vector<std::size_t> count(n, 0);
  // Cyclic gaps between consecutive occurrences of each PoI; a gap of g
  // transitions corresponds to an exposure of g-1 (the interval opens one
  // step after departure, per the paper's convention). Gap 1 = the sensor
  // stayed; no exposure interval.
  std::vector<std::vector<std::size_t>> occurrences(n);
  for (std::size_t t = 0; t < len; ++t) occurrences[sequence_[t]].push_back(t);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& occ = occurrences[i];
    for (std::size_t a = 0; a < occ.size(); ++a) {
      const std::size_t next = occ[(a + 1) % occ.size()];
      const std::size_t gap =
          (next + len - occ[a]) % len == 0 ? len : (next + len - occ[a]) % len;
      if (gap >= 2) {
        total[i] += static_cast<double>(gap - 1);
        count[i] += 1;
      }
    }
  }
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = count[i] == 0 ? 0.0 : total[i] / static_cast<double>(count[i]);
  return out;
}

double TourSchedule::delta_c(const std::vector<double>& targets) const {
  const std::size_t n = model_.num_pois();
  if (targets.size() != n)
    throw std::invalid_argument("TourSchedule::delta_c: target size");
  const std::size_t len = sequence_.size();
  std::vector<double> cov(n, 0.0);
  double total = 0.0;
  for (std::size_t t = 0; t < len; ++t) {
    const std::size_t j = sequence_[t];
    const std::size_t k = sequence_[(t + 1) % len];
    total += model_.transition_duration(j, k);
    for (std::size_t i = 0; i < n; ++i)
      cov[i] += model_.coverage_during(j, k, i);
  }
  double dc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double g = (cov[i] - targets[i] * total) / static_cast<double>(len);
    dc += g * g;
  }
  return dc;
}

double TourSchedule::e_bar() const {
  double s = 0.0;
  for (double e : mean_exposure_steps()) s += e * e;
  return std::sqrt(s);
}

std::vector<std::size_t> weighted_tour(const std::vector<double>& targets,
                                       std::size_t frame) {
  const std::size_t n = targets.size();
  if (n < 2) throw std::invalid_argument("weighted_tour: need >= 2 targets");
  if (frame < n)
    throw std::invalid_argument("weighted_tour: frame shorter than PoI count");

  // Largest-remainder apportionment of `frame` slots.
  std::vector<std::size_t> counts(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = targets[i] * static_cast<double>(frame);
    counts[i] = static_cast<std::size_t>(exact);
    assigned += counts[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t k = 0; assigned < frame; ++k, ++assigned)
    counts[remainders[k % n].second] += 1;

  // Every PoI must appear at least once (finite exposure): steal from the
  // largest counts.
  for (std::size_t i = 0; i < n; ++i) {
    while (counts[i] == 0) {
      const std::size_t donor = static_cast<std::size_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
      if (counts[donor] <= 1)
        throw std::logic_error("weighted_tour: cannot cover all PoIs");
      counts[donor] -= 1;
      counts[i] += 1;
    }
  }

  // Spread occurrences evenly: PoI i's k-th appearance at phase (k+0.5)/c_i.
  std::vector<std::pair<double, std::size_t>> events;
  events.reserve(frame);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < counts[i]; ++k) {
      events.emplace_back((static_cast<double>(k) + 0.5) /
                              static_cast<double>(counts[i]),
                          i);
    }
  }
  std::sort(events.begin(), events.end());
  std::vector<std::size_t> seq;
  seq.reserve(frame);
  for (const auto& [phase, poi] : events) seq.push_back(poi);
  return seq;
}

std::vector<std::size_t> round_robin_tour(std::size_t num_pois) {
  if (num_pois < 2)
    throw std::invalid_argument("round_robin_tour: need >= 2 PoIs");
  std::vector<std::size_t> seq(num_pois);
  std::iota(seq.begin(), seq.end(), std::size_t{0});
  return seq;
}

}  // namespace mocos::baselines
