#pragma once

#include <vector>

#include "src/markov/transition_matrix.hpp"

namespace mocos::baselines {

/// Metropolis–Hastings chain construction (the MCMC approach of §II): builds
/// a transition matrix whose stationary distribution equals `target` using a
/// uniform proposal over all states and acceptance min(1, π_j/π_i):
///
///   p_ij = (1/M) min(1, π_j/π_i)            for j ≠ i,
///   p_ii = 1 − Σ_{j≠i} p_ij.
///
/// This pins only the *visit* distribution; it cannot trade off exposure
/// against coverage (the paper's core criticism) and ignores travel-time
/// weighting of the coverage shares.
markov::TransitionMatrix metropolis_chain(const std::vector<double>& target);

/// Same construction with a restricted proposal: only moves to the `k`
/// nearest neighbors (by the given distance matrix rows) are proposed,
/// modeling a locality-constrained patroller. Proposal stays symmetric
/// (mutual k-NN), so the acceptance rule is unchanged.
markov::TransitionMatrix metropolis_chain_knn(
    const std::vector<double>& target, const linalg::Matrix& distances,
    std::size_t k);

}  // namespace mocos::baselines
