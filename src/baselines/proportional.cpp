#include "src/baselines/proportional.hpp"

#include <cmath>
#include <stdexcept>

namespace mocos::baselines {

markov::TransitionMatrix proportional_chain(
    const std::vector<double>& weights) {
  if (weights.size() < 2)
    throw std::invalid_argument("proportional_chain: need >= 2 weights");
  double sum = 0.0;
  for (double w : weights) {
    if (w <= 0.0)
      throw std::invalid_argument("proportional_chain: weights must be > 0");
    sum += w;
  }
  if (std::abs(sum - 1.0) > 1e-9)
    throw std::invalid_argument("proportional_chain: weights must sum to 1");
  const std::size_t n = weights.size();
  linalg::Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) p(i, j) = weights[j] / sum;
  return markov::TransitionMatrix(std::move(p));
}

std::vector<double> weights_from_targets(const std::vector<double>& targets) {
  if (targets.empty())
    throw std::invalid_argument("weights_from_targets: empty");
  std::vector<double> w = targets;
  double sum = 0.0;
  for (double& x : w) {
    // SFQ cannot express a zero service rate without starving the client
    // forever; floor tiny targets.
    x = std::max(x, 1e-6);
    sum += x;
  }
  for (double& x : w) x /= sum;
  return w;
}

}  // namespace mocos::baselines
