#pragma once

#include <vector>

#include "src/markov/transition_matrix.hpp"

namespace mocos::baselines {

/// SFQ/lottery-style stateless scheduler (§I, §II): every decision is an
/// independent draw from fixed weights, irrespective of the current
/// location — i.e. p_ij = w_j for all i. This is the "coin toss with target
/// rates only" baseline: it cannot decouple the visit rate from fairness
/// (return times), which is exactly the coupling the paper's optimizer
/// breaks.
markov::TransitionMatrix proportional_chain(const std::vector<double>& weights);

/// Weight calibration helper: visit weights that would equal the target
/// coverage shares if all transitions took equal time (the implicit SFQ
/// assumption). With real geometry the achieved C̄_i then drifts from Φ —
/// the drift the baseline-comparison bench quantifies.
std::vector<double> weights_from_targets(const std::vector<double>& targets);

}  // namespace mocos::baselines
