#include "src/baselines/metropolis.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mocos::baselines {

namespace {
void validate_target(const std::vector<double>& target) {
  if (target.size() < 2)
    throw std::invalid_argument("metropolis: need at least two states");
  double sum = 0.0;
  for (double t : target) {
    if (t <= 0.0)
      throw std::invalid_argument(
          "metropolis: target masses must be strictly positive");
    sum += t;
  }
  if (std::abs(sum - 1.0) > 1e-9)
    throw std::invalid_argument("metropolis: target must sum to 1");
}
}  // namespace

markov::TransitionMatrix metropolis_chain(const std::vector<double>& target) {
  validate_target(target);
  const std::size_t n = target.size();
  linalg::Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double a = std::min(1.0, target[j] / target[i]);
      p(i, j) = a / static_cast<double>(n);
      off += p(i, j);
    }
    p(i, i) = 1.0 - off;
  }
  return markov::TransitionMatrix(std::move(p));
}

markov::TransitionMatrix metropolis_chain_knn(
    const std::vector<double>& target, const linalg::Matrix& distances,
    std::size_t k) {
  validate_target(target);
  const std::size_t n = target.size();
  if (distances.rows() != n || distances.cols() != n)
    throw std::invalid_argument("metropolis_knn: distance matrix size");
  if (k == 0 || k >= n)
    throw std::invalid_argument("metropolis_knn: k must be in [1, n-1]");

  // Directed k-NN sets, then symmetrized (i~j iff either is in the other's
  // k-NN) so the uniform-over-neighbors proposal stays symmetric enough for
  // the Metropolis ratio with degree correction.
  std::vector<std::vector<std::size_t>> nbrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> order;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) order.push_back(j);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return distances(i, a) < distances(i, b);
    });
    order.resize(k);
    nbrs[i] = std::move(order);
  }
  std::vector<std::vector<char>> adj(n, std::vector<char>(n, 0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j : nbrs[i]) adj[i][j] = adj[j][i] = 1;

  std::vector<std::size_t> degree(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    degree[i] = static_cast<std::size_t>(
        std::count(adj[i].begin(), adj[i].end(), char(1)));

  linalg::Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || !adj[i][j]) continue;
      // Metropolis–Hastings with proposal q_ij = 1/deg(i):
      // accept = min(1, (π_j q_ji)/(π_i q_ij)).
      const double qij = 1.0 / static_cast<double>(degree[i]);
      const double qji = 1.0 / static_cast<double>(degree[j]);
      const double a = std::min(1.0, (target[j] * qji) / (target[i] * qij));
      p(i, j) = qij * a;
      off += p(i, j);
    }
    p(i, i) = 1.0 - off;
  }
  return markov::TransitionMatrix(std::move(p));
}

}  // namespace mocos::baselines
