#pragma once

#include <cstddef>
#include <vector>

#include "src/sensing/motion_model.hpp"

namespace mocos::baselines {

/// Deterministic cyclic patrol baseline: the sensor repeats a fixed visit
/// sequence forever (the WFQ/stride-scheduling analogue for coverage —
/// perfectly predictable, zero entropy, no tunable trade-off).
class TourSchedule {
 public:
  /// `sequence` is one period of the cycle (indices into the model's PoIs);
  /// must contain every PoI at least once so all exposures are finite.
  TourSchedule(const sensing::MotionModel& model,
               std::vector<std::size_t> sequence);

  const std::vector<std::size_t>& sequence() const { return sequence_; }

  /// Exact long-run per-PoI coverage shares C̄_i of the cyclic schedule
  /// (coverage time per period / period duration), including pass-bys.
  std::vector<double> coverage_shares() const;

  /// Exact mean exposure per PoI in unit-transition counts (interval between
  /// consecutive visits, measured with the paper's convention).
  std::vector<double> mean_exposure_steps() const;

  /// ΔC of the cycle against targets, on the same per-transition scale as
  /// Eq. 12 (so it is directly comparable with the optimizer's metric).
  double delta_c(const std::vector<double>& targets) const;

  /// Ē of the cycle (Eq. 13 analogue).
  double e_bar() const;

 private:
  const sensing::MotionModel& model_;
  std::vector<std::size_t> sequence_;
};

/// Builds a frame of length `frame` where PoI i appears ~targets[i]*frame
/// times (largest-remainder apportionment), with appearances spread as
/// evenly as possible — the natural deterministic competitor to the paper's
/// stochastic schedule.
std::vector<std::size_t> weighted_tour(const std::vector<double>& targets,
                                       std::size_t frame);

/// Simple round-robin visiting each PoI once per period.
std::vector<std::size_t> round_robin_tour(std::size_t num_pois);

}  // namespace mocos::baselines
