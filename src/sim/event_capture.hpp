#pragma once

#include <vector>

#include "src/markov/transition_matrix.hpp"
#include "src/sensing/motion_model.hpp"
#include "src/util/rng.hpp"

namespace mocos::sim {

struct EventCaptureConfig {
  std::size_t num_transitions = 20000;
  std::size_t burn_in = 200;
  /// Events persist this long; an event is captured iff the sensor covers
  /// its PoI at some instant of [t, t + duration]. 0 = instantaneous events
  /// (captured iff covered exactly at t), whose capture probability equals
  /// the coverage share C̄_i — the quantity the InformationCaptureTerm
  /// optimizes.
  double event_duration = 0.0;
};

struct EventCaptureResult {
  double horizon = 0.0;
  std::vector<std::size_t> events;      // sampled events per PoI
  std::vector<std::size_t> captured;    // captured events per PoI
  std::vector<double> capture_fraction; // captured / events (0 when none)

  /// Rate-weighted total capture per unit time: Σ_i λ_i · capture_i —
  /// the simulated analogue of the analytic capture rate J.
  double capture_rate(const std::vector<double>& rates) const;
};

/// Simulates the sensor's schedule, then Poisson events at PoI i with rate
/// `rates[i]` per unit time, and checks each event against the sensor's
/// exact coverage intervals (§III's "amount of information captured").
class EventCaptureSimulator {
 public:
  explicit EventCaptureSimulator(EventCaptureConfig config = {});

  [[nodiscard]] EventCaptureResult run(const sensing::MotionModel& model,
                         const markov::TransitionMatrix& p,
                         const std::vector<double>& rates,
                         util::Rng& rng) const;

 private:
  EventCaptureConfig config_;
};

}  // namespace mocos::sim
