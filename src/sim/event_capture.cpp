#include "src/sim/event_capture.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mocos::sim {

double EventCaptureResult::capture_rate(
    const std::vector<double>& rates) const {
  if (rates.size() != capture_fraction.size())
    throw std::invalid_argument("capture_rate: rate count mismatch");
  double j = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i)
    j += rates[i] * capture_fraction[i];
  return j;
}

EventCaptureSimulator::EventCaptureSimulator(EventCaptureConfig config)
    : config_(config) {
  if (config_.num_transitions == 0)
    throw std::invalid_argument("EventCaptureSimulator: num_transitions == 0");
  if (config_.event_duration < 0.0)
    throw std::invalid_argument("EventCaptureSimulator: negative duration");
}

EventCaptureResult EventCaptureSimulator::run(
    const sensing::MotionModel& model, const markov::TransitionMatrix& p,
    const std::vector<double>& rates, util::Rng& rng) const {
  const std::size_t n = model.num_pois();
  if (p.size() != n)
    throw std::invalid_argument("EventCaptureSimulator: matrix size");
  if (rates.size() != n)
    throw std::invalid_argument("EventCaptureSimulator: rate count");
  for (double r : rates)
    if (r < 0.0)
      throw std::invalid_argument("EventCaptureSimulator: negative rate");

  // 1. Roll out the schedule, collecting absolute coverage intervals.
  std::vector<std::vector<sensing::CoverageInterval>> covered(n);
  std::size_t at = 0;
  double clock = 0.0;
  double measure_from = 0.0;
  for (std::size_t step = 0;
       step < config_.burn_in + config_.num_transitions; ++step) {
    const std::size_t next = rng.discrete(p.row(at));
    if (step == config_.burn_in) measure_from = clock;
    for (std::size_t i = 0; i < n; ++i)
      for (const auto& iv : model.coverage_intervals(at, next, i))
        covered[i].push_back({clock + iv.begin, clock + iv.end});
    clock += model.transition_duration(at, next);
    at = next;
  }
  const double horizon = clock;

  EventCaptureResult out;
  out.horizon = horizon - measure_from;
  out.events.assign(n, 0);
  out.captured.assign(n, 0);
  out.capture_fraction.assign(n, 0.0);

  // 2. Per PoI: sort+merge the intervals, sample Poisson event times, and
  //    test each event window against the merged coverage.
  for (std::size_t i = 0; i < n; ++i) {
    auto& raw = covered[i];
    std::sort(raw.begin(), raw.end(),
              [](const auto& a, const auto& b) { return a.begin < b.begin; });
    std::vector<sensing::CoverageInterval> merged;
    for (const auto& iv : raw) {
      if (!merged.empty() && iv.begin <= merged.back().end + 1e-12) {
        merged.back().end = std::max(merged.back().end, iv.end);
      } else {
        merged.push_back(iv);
      }
    }

    // Exact on purpose: rate == 0 means "no event stream at this PoI" by
    // config contract; a tiny positive rate must still be simulated.
    // mocos-lint: allow(float-eq)
    if (rates[i] == 0.0) continue;
    // Poisson event count over the measurement window, times uniform.
    const double expected = rates[i] * out.horizon;
    if (expected > 1e7)
      throw std::invalid_argument("EventCaptureSimulator: rate too large");
    std::size_t count = 0;
    if (expected < 30.0) {
      // Knuth's product method (exact; exp(-mean) stays representable).
      const double l = std::exp(-expected);
      double prod = rng.uniform();
      while (prod > l) {
        ++count;
        prod *= rng.uniform();
      }
    } else {
      // Normal approximation N(mean, mean) — relative error O(1/sqrt(mean)).
      const double sample =
          rng.gaussian(expected, std::sqrt(expected));
      count = sample <= 0.0 ? 0 : static_cast<std::size_t>(sample + 0.5);
    }
    out.events[i] = count;

    for (std::size_t e = 0; e < count; ++e) {
      const double t = rng.uniform(measure_from, horizon);
      const double t_end = t + config_.event_duration;
      // Captured iff some merged interval intersects [t, t_end].
      const auto it = std::upper_bound(
          merged.begin(), merged.end(), t_end,
          [](double value, const auto& iv) { return value < iv.begin; });
      bool hit = false;
      if (it != merged.begin()) hit = std::prev(it)->end >= t;
      if (hit) out.captured[i] += 1;
    }
    if (count > 0)
      out.capture_fraction[i] =
          static_cast<double>(out.captured[i]) / static_cast<double>(count);
  }
  return out;
}

}  // namespace mocos::sim
