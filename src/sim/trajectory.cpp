#include "src/sim/trajectory.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace mocos::sim {

Trajectory::Trajectory(std::vector<TimedPoint> points)
    : points_(std::move(points)) {
  if (points_.empty())
    throw std::invalid_argument("Trajectory: no points");
  for (std::size_t i = 1; i < points_.size(); ++i)
    if (points_[i].t < points_[i - 1].t)
      throw std::invalid_argument("Trajectory: timestamps must not decrease");
}

geometry::Vec2 Trajectory::position_at(double t) const {
  if (t <= points_.front().t) return points_.front().pos;
  if (t >= points_.back().t) return points_.back().pos;
  // Binary search for the segment containing t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double value, const TimedPoint& p) { return value < p.t; });
  const TimedPoint& b = *it;
  const TimedPoint& a = *std::prev(it);
  if (b.t == a.t) return b.pos;
  const double w = (t - a.t) / (b.t - a.t);
  return a.pos + w * (b.pos - a.pos);
}

double Trajectory::length() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i)
    total += geometry::distance(points_[i - 1].pos, points_[i].pos);
  return total;
}

void Trajectory::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Trajectory: cannot write " + path);
  out << "t,x,y\n";
  for (const TimedPoint& p : points_)
    out << p.t << ',' << p.pos.x << ',' << p.pos.y << '\n';
  if (!out) throw std::runtime_error("Trajectory: write failed " + path);
}

Trajectory record_trajectory(const sensing::MotionModel& model,
                             const markov::TransitionMatrix& p,
                             std::size_t num_transitions, util::Rng& rng,
                             std::size_t start_poi) {
  if (p.size() != model.num_pois())
    throw std::invalid_argument("record_trajectory: matrix size");
  if (start_poi >= model.num_pois())
    throw std::invalid_argument("record_trajectory: start_poi");
  if (num_transitions == 0)
    throw std::invalid_argument("record_trajectory: num_transitions == 0");

  std::vector<TimedPoint> pts;
  std::size_t at = start_poi;
  double clock = 0.0;
  pts.push_back({clock, model.topology().position(at)});

  for (std::size_t step = 0; step < num_transitions; ++step) {
    const std::size_t next = rng.discrete(p.row(at));
    if (next != at) {
      // Travel along the route; waypoints land at arc-length / speed.
      const auto route = model.route_waypoints(at, next);
      const double total_len = model.travel_distance(at, next);
      const double travel = model.travel_time(at, next);
      double walked = 0.0;
      for (std::size_t w = 1; w < route.size(); ++w) {
        walked += geometry::distance(route[w - 1], route[w]);
        pts.push_back(
            {clock + travel * (total_len > 0.0 ? walked / total_len : 1.0),
             route[w]});
      }
      clock += travel;
    }
    // Pause at the destination (also covers the stay transition).
    clock += model.pause(next);
    pts.push_back({clock, model.topology().position(next)});
    at = next;
  }
  return Trajectory(std::move(pts));
}

}  // namespace mocos::sim
