#include "src/sim/exposure_tracker.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/stats.hpp"

namespace mocos::sim {

ExposureTracker::ExposureTracker(std::size_t num_pois, bool keep_samples)
    : pois_(num_pois), keep_samples_(keep_samples) {
  if (num_pois == 0)
    throw std::invalid_argument("ExposureTracker: num_pois == 0");
}

void ExposureTracker::on_departure(std::size_t poi, double now) {
  if (poi >= pois_.size())
    throw std::out_of_range("ExposureTracker::on_departure");
  PerPoi& s = pois_[poi];
  // A departure while already exposed can't happen for the departing PoI
  // itself; being defensive keeps double bookkeeping errors loud.
  if (s.open) throw std::logic_error("ExposureTracker: interval already open");
  s.open = true;
  s.opened_at = now;
}

void ExposureTracker::on_arrival(std::size_t poi, double now) {
  if (poi >= pois_.size())
    throw std::out_of_range("ExposureTracker::on_arrival");
  PerPoi& s = pois_[poi];
  if (!s.open) return;  // chain started away from this PoI; nothing to close
  if (now < s.opened_at)
    throw std::logic_error("ExposureTracker: time went backwards");
  const double interval = now - s.opened_at;
  s.total += interval;
  s.longest = std::max(s.longest, interval);
  s.count += 1;
  s.open = false;
  if (keep_samples_) s.samples.push_back(interval);
}

std::size_t ExposureTracker::interval_count(std::size_t poi) const {
  if (poi >= pois_.size())
    throw std::out_of_range("ExposureTracker::interval_count");
  return pois_[poi].count;
}

double ExposureTracker::mean_exposure(std::size_t poi) const {
  if (poi >= pois_.size())
    throw std::out_of_range("ExposureTracker::mean_exposure");
  const PerPoi& s = pois_[poi];
  return s.count == 0 ? 0.0 : s.total / static_cast<double>(s.count);
}

double ExposureTracker::exposure_percentile(std::size_t poi,
                                            double percentile) const {
  if (poi >= pois_.size())
    throw std::out_of_range("ExposureTracker::exposure_percentile");
  if (!keep_samples_)
    throw std::logic_error(
        "ExposureTracker: percentiles require keep_samples");
  const PerPoi& s = pois_[poi];
  if (s.samples.empty()) return 0.0;
  return util::percentile(s.samples, percentile);
}

double ExposureTracker::max_exposure(std::size_t poi) const {
  if (poi >= pois_.size())
    throw std::out_of_range("ExposureTracker::max_exposure");
  return pois_[poi].longest;
}

std::vector<double> ExposureTracker::mean_exposures() const {
  std::vector<double> out;
  out.reserve(pois_.size());
  for (std::size_t i = 0; i < pois_.size(); ++i)
    out.push_back(mean_exposure(i));
  return out;
}

}  // namespace mocos::sim
