#include "src/sim/replication.hpp"

#include <stdexcept>

#include "src/util/stats.hpp"

namespace mocos::sim {

ReplicatedMetric summarize(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("summarize: empty");
  ReplicatedMetric m;
  m.mean = util::mean(samples);
  m.p25 = util::percentile(samples, 25.0);
  m.p75 = util::percentile(samples, 75.0);
  m.min = util::min_of(samples);
  m.max = util::max_of(samples);
  if (samples.size() >= 2) {
    const auto ci = util::bootstrap_mean_ci(samples, 0.95, 1000, 17);
    m.ci95_low = ci.lower;
    m.ci95_high = ci.upper;
  } else {
    m.ci95_low = m.ci95_high = m.mean;
  }
  return m;
}

ReplicationSummary replicate(const sensing::MotionModel& model,
                             const markov::TransitionMatrix& p,
                             const std::vector<double>& targets, double alpha,
                             double beta, const SimulationConfig& config,
                             std::size_t replications, util::Rng& rng,
                             const runtime::ExecutionContext& ctx) {
  if (replications == 0)
    throw std::invalid_argument("replicate: replications == 0");
  const std::size_t n = model.num_pois();
  const MarkovCoverageSimulator simulator(model, config);

  // Index-addressed slots + indexed RNG streams: replica r's result depends
  // only on (rng state at entry, r), never on worker scheduling, so the
  // summary is bit-identical for any job count.
  const util::Rng streams(rng.stream_base());
  std::vector<double> dcs(replications), ebars(replications),
      costs(replications);
  std::vector<std::vector<double>> shares(n), exposures(n);
  for (std::size_t i = 0; i < n; ++i) {
    shares[i].resize(replications);
    exposures[i].resize(replications);
  }
  runtime::parallel_for(ctx, replications, [&](std::size_t r) {
    util::Rng child = streams.stream(r);
    const SimulationResult res = simulator.run(p, child);
    dcs[r] = res.delta_c(targets);
    ebars[r] = res.e_bar();
    costs[r] = res.cost(alpha, beta, targets);
    for (std::size_t i = 0; i < n; ++i) {
      shares[i][r] = res.coverage_share[i];
      exposures[i][r] = res.exposure_steps[i];
    }
  });

  ReplicationSummary out;
  out.replications = replications;
  out.delta_c = summarize(dcs);
  out.e_bar = summarize(ebars);
  out.cost = summarize(costs);
  out.coverage_share.reserve(n);
  out.exposure_steps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.coverage_share.push_back(summarize(shares[i]));
    out.exposure_steps.push_back(summarize(exposures[i]));
  }
  return out;
}

}  // namespace mocos::sim
