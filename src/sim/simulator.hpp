#pragma once

#include <vector>

#include "src/markov/transition_matrix.hpp"
#include "src/sensing/motion_model.hpp"
#include "src/util/rng.hpp"

namespace mocos::sim {

struct SimulationConfig {
  /// Markov transitions to simulate (measurement window).
  std::size_t num_transitions = 200000;
  /// Transitions discarded before measurement starts, letting the chain mix.
  std::size_t burn_in = 1000;
  /// Starting PoI; defaults to 0.
  std::size_t start_poi = 0;
  /// Retain the full exposure-interval samples so p95/max staleness can be
  /// reported (slightly more memory; the paper only needs means).
  bool track_exposure_percentiles = true;
};

/// Raw measurements of one simulated schedule, mirroring §III-A's
/// definitions.
struct SimulationResult {
  double total_time = 0.0;                 // T(N), physical units
  std::size_t transitions = 0;             // N
  std::vector<double> coverage_time;       // C_i(N), physical units
  std::vector<double> coverage_share;      // C_i(N)/T(N)  → C̄_i
  std::vector<double> visit_fraction;      // fraction of steps at each PoI
  /// ⟨E_i(N)⟩ in the unit-transition convention the analysis uses (each
  /// transition counts 1); comparable with the analytic Ē_i of Eq. 3.
  std::vector<double> exposure_steps;
  /// ⟨E_i(N)⟩ in wall-clock physical time (transitions have their real
  /// durations) — the convention the paper says makes the match inexact.
  std::vector<double> exposure_time;
  /// Tail staleness per PoI, unit-transition convention (empty unless
  /// track_exposure_percentiles): 95th percentile and worst interval.
  std::vector<double> exposure_steps_p95;
  std::vector<double> exposure_steps_max;

  /// Simulated ΔC (Eq. 12 analog): Σ_i g_i².
  double delta_c(const std::vector<double>& targets) const;
  /// Simulated Ē (Eq. 13 analog) from the unit-transition exposures.
  double e_bar() const;
  /// Simulated Eq.-14 cost.
  double cost(double alpha, double beta,
              const std::vector<double>& targets) const;
};

/// Discrete-event simulation of the sensor driven by the Markov chain: at
/// each step the next PoI is drawn from the current row of P; the transition
/// takes its physical duration T_jk; PoIs passed en route accrue pass-by
/// coverage T_jk,i (§III-A conventions).
class MarkovCoverageSimulator {
 public:
  MarkovCoverageSimulator(const sensing::MotionModel& model,
                          SimulationConfig config = {});

  [[nodiscard]] SimulationResult run(const markov::TransitionMatrix& p,
                       util::Rng& rng) const;

 private:
  const sensing::MotionModel& model_;
  SimulationConfig config_;
};

}  // namespace mocos::sim
