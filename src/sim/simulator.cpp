#include "src/sim/simulator.hpp"

#include <cmath>
#include <stdexcept>

#include "src/sim/exposure_tracker.hpp"

namespace mocos::sim {

double SimulationResult::delta_c(const std::vector<double>& targets) const {
  if (targets.size() != coverage_time.size())
    throw std::invalid_argument("SimulationResult::delta_c: target size");
  double dc = 0.0;
  for (std::size_t i = 0; i < coverage_time.size(); ++i) {
    const double g = (coverage_time[i] - targets[i] * total_time) /
                     static_cast<double>(transitions);
    dc += g * g;
  }
  return dc;
}

double SimulationResult::e_bar() const {
  double s = 0.0;
  for (double e : exposure_steps) s += e * e;
  return std::sqrt(s);
}

double SimulationResult::cost(double alpha, double beta,
                              const std::vector<double>& targets) const {
  const double e = e_bar();
  return 0.5 * alpha * delta_c(targets) + 0.5 * beta * e * e;
}

MarkovCoverageSimulator::MarkovCoverageSimulator(
    const sensing::MotionModel& model, SimulationConfig config)
    : model_(model), config_(config) {
  if (config_.num_transitions == 0)
    throw std::invalid_argument("Simulator: num_transitions == 0");
  if (config_.start_poi >= model_.num_pois())
    throw std::invalid_argument("Simulator: start_poi out of range");
}

SimulationResult MarkovCoverageSimulator::run(
    const markov::TransitionMatrix& p, util::Rng& rng) const {
  const std::size_t n = model_.num_pois();
  if (p.size() != n)
    throw std::invalid_argument("Simulator: matrix size != num PoIs");

  SimulationResult out;
  out.coverage_time.assign(n, 0.0);
  out.coverage_share.assign(n, 0.0);
  out.visit_fraction.assign(n, 0.0);

  // time = transition count / physical units respectively
  ExposureTracker steps_tracker(n, config_.track_exposure_percentiles);
  ExposureTracker clock_tracker(n);

  std::size_t current = config_.start_poi;
  double clock = 0.0;

  // Burn-in: advance the chain without measuring.
  for (std::size_t t = 0; t < config_.burn_in; ++t)
    current = rng.discrete(p.row(current));

  for (std::size_t step = 0; step < config_.num_transitions; ++step) {
    const std::size_t next = rng.discrete(p.row(current));
    const double duration = model_.transition_duration(current, next);
    const double step_count = static_cast<double>(step);

    if (next != current) {
      // Unit-transition convention (§III-A): the exposure segment for the
      // origin i is measured from the PoI the sensor reaches *after leaving
      // i* — i.e. it opens at the arrival step n+1, so a completed segment
      // equals the first-passage step count R_ji exactly.
      steps_tracker.on_departure(current, step_count + 1.0);
      // Wall-clock convention: physical exposure starts at departure.
      clock_tracker.on_departure(current, clock);
    }

    // Coverage accrual for every PoI during this transition (pass-bys and
    // the pause at the destination).
    for (std::size_t i = 0; i < n; ++i)
      out.coverage_time[i] += model_.coverage_during(current, next, i);

    if (next != current) {
      // Arrival closes the destination's exposure interval. In the
      // unit-transition convention the arrival lands at step+1, making the
      // measured interval exactly the first-passage step count. In wall
      // clock, the sensor reaches the destination at the end of the travel
      // leg (the pause happens after arrival, already within range).
      steps_tracker.on_arrival(next, step_count + 1.0);
      clock_tracker.on_arrival(next,
                               clock + model_.travel_time(current, next));
    }
    clock += duration;
    out.total_time += duration;
    out.visit_fraction[next] += 1.0;
    current = next;
  }

  out.transitions = config_.num_transitions;
  for (std::size_t i = 0; i < n; ++i) {
    out.coverage_share[i] = out.coverage_time[i] / out.total_time;
    out.visit_fraction[i] /= static_cast<double>(config_.num_transitions);
  }
  out.exposure_steps = steps_tracker.mean_exposures();
  out.exposure_time = clock_tracker.mean_exposures();
  if (config_.track_exposure_percentiles) {
    out.exposure_steps_p95.resize(n);
    out.exposure_steps_max.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.exposure_steps_p95[i] = steps_tracker.exposure_percentile(i, 95.0);
      out.exposure_steps_max[i] = steps_tracker.max_exposure(i);
    }
  }
  return out;
}

}  // namespace mocos::sim
