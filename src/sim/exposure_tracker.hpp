#pragma once

#include <cstddef>
#include <vector>

namespace mocos::sim {

/// Collects the continuous out-of-range intervals of every PoI during a
/// simulated schedule, in one chosen time unit (transitions or physical
/// time), and reports the arithmetic mean interval ⟨E_i(N)⟩ of §III-A.
///
/// Per the paper's convention, an interval for PoI i opens when the sensor
/// leaves i (transitions to some j ≠ i) and closes at the next *arrival* at
/// i — pass-bys do not count as return visits.
class ExposureTracker {
 public:
  /// `keep_samples` retains every interval so percentiles/maxima can be
  /// reported (the paper uses only means; worst-case staleness is what a
  /// deployment SLA actually cares about).
  explicit ExposureTracker(std::size_t num_pois, bool keep_samples = false);

  /// The sensor departs PoI i at time `now`.
  void on_departure(std::size_t poi, double now);

  /// The sensor arrives at PoI i at time `now`, closing any open interval.
  void on_arrival(std::size_t poi, double now);

  /// Number of completed intervals for PoI i.
  std::size_t interval_count(std::size_t poi) const;

  /// Mean completed-interval length for PoI i; 0 when none completed.
  double mean_exposure(std::size_t poi) const;

  std::vector<double> mean_exposures() const;

  /// Percentile of the completed intervals (requires keep_samples; throws
  /// std::logic_error otherwise; 0 when no intervals completed).
  double exposure_percentile(std::size_t poi, double percentile) const;

  /// Largest completed interval (0 when none; works without keep_samples).
  double max_exposure(std::size_t poi) const;

 private:
  struct PerPoi {
    bool open = false;
    double opened_at = 0.0;
    double total = 0.0;
    double longest = 0.0;
    std::size_t count = 0;
    std::vector<double> samples;
  };
  std::vector<PerPoi> pois_;
  bool keep_samples_;
};

}  // namespace mocos::sim
