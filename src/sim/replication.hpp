#pragma once

#include <vector>

#include "src/runtime/execution_context.hpp"
#include "src/sim/simulator.hpp"

namespace mocos::sim {

/// Summary of one scalar metric over replicated simulations — mean plus the
/// 25th/75th percentiles the paper uses as error bars (§VI-D).
struct ReplicatedMetric {
  double mean = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// 95% percentile-bootstrap CI for the mean (equal to the mean when only
  /// one replication was run).
  double ci95_low = 0.0;
  double ci95_high = 0.0;
};

struct ReplicationSummary {
  ReplicatedMetric delta_c;            // simulated Eq. 12
  ReplicatedMetric e_bar;              // simulated Eq. 13
  ReplicatedMetric cost;               // simulated Eq. 14
  std::vector<ReplicatedMetric> coverage_share;  // per-PoI C̄_i
  std::vector<ReplicatedMetric> exposure_steps;  // per-PoI Ē_i
  std::size_t replications = 0;
};

ReplicatedMetric summarize(const std::vector<double>& samples);

/// Runs `replications` independent simulations of the schedule driven by `p`
/// and summarizes the paper's metrics against `targets` with Eq.-14 weights
/// (alpha, beta).
///
/// Replicas run on `ctx` (serial by default). Per-replica RNGs are indexed
/// streams derived from one draw of `rng`, so the summary is bit-identical
/// for any `ctx.jobs()`, and successive calls with the same `rng` still
/// produce fresh replicas.
[[nodiscard]] ReplicationSummary replicate(const sensing::MotionModel& model,
                             const markov::TransitionMatrix& p,
                             const std::vector<double>& targets, double alpha,
                             double beta, const SimulationConfig& config,
                             std::size_t replications, util::Rng& rng,
                             const runtime::ExecutionContext& ctx = {});

}  // namespace mocos::sim
