#pragma once

#include <string>
#include <vector>

#include "src/markov/transition_matrix.hpp"
#include "src/sensing/motion_model.hpp"
#include "src/util/rng.hpp"

namespace mocos::sim {

/// A timestamped sensor position. Between consecutive points the sensor
/// moves in a straight line at constant speed (or holds position during
/// pauses), so the trajectory is exact under linear interpolation.
struct TimedPoint {
  double t = 0.0;
  geometry::Vec2 pos;
};

/// A continuous sensor trajectory: piecewise-linear position over time, for
/// visualization, ground-truth playback, and integration testing of the
/// motion models.
class Trajectory {
 public:
  /// Points must have non-decreasing timestamps and at least one entry.
  explicit Trajectory(std::vector<TimedPoint> points);

  const std::vector<TimedPoint>& points() const { return points_; }
  double start_time() const { return points_.front().t; }
  double end_time() const { return points_.back().t; }

  /// Position at time t (clamped to [start, end]).
  geometry::Vec2 position_at(double t) const;

  /// Total path length travelled.
  double length() const;

  /// Writes t,x,y rows to a CSV file (throws std::runtime_error on I/O
  /// failure).
  void write_csv(const std::string& path) const;

 private:
  std::vector<TimedPoint> points_;
};

/// Rolls out `num_transitions` Markov transitions of the schedule `p` on the
/// motion model and records the exact continuous trajectory: departure,
/// every route waypoint at its arc-length time, arrival, and end-of-pause.
Trajectory record_trajectory(const sensing::MotionModel& model,
                             const markov::TransitionMatrix& p,
                             std::size_t num_transitions, util::Rng& rng,
                             std::size_t start_poi = 0);

}  // namespace mocos::sim
