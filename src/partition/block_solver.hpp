#pragma once

#include <cstddef>

#include "src/linalg/matrix.hpp"
#include "src/markov/fundamental.hpp"
#include "src/partition/spatial_partition.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/sparse/sparse_matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::partition {

/// Tuning knobs for the sparse chain analysis (block stationary solve +
/// sparse resolvent ladder). Defaults satisfy the acceptance contract:
/// π/R agreement with the dense pipeline to <= 1e-8 on weakly-coupled maps.
struct SparseAnalysisConfig {
  PartitionConfig partition;
  /// Aggregation/disaggregation convergence gate on ‖πP − π‖∞.
  double ad_tolerance = 1e-12;
  /// A/D sweeps before giving up (kNotErgodic → dense fallback).
  std::size_t max_ad_sweeps = 200;
  /// The two independent stationary estimates (resolvent column sums vs
  /// block A/D) must agree to this ∞-norm gap or the whole sparse analysis
  /// is rejected in favor of the dense pipeline.
  double pi_agreement_tol = 1e-8;
  /// The banded direct rung only runs when the RCM bandwidth b satisfies
  /// b <= n * bandwidth_cap_fraction; beyond that O(n·b²) loses to the
  /// iterative rung.
  double bandwidth_cap_fraction = 1.0 / 3.0;
};

/// Diagnostics of one sparse analysis, filled in best-effort even on
/// failure (tests and the metrics exporter read these).
struct SparseSolveStats {
  std::size_t blocks = 0;        // partition size used for A/D
  std::size_t bandwidth = 0;     // RCM bandwidth of the pattern
  std::size_t ad_sweeps = 0;     // A/D sweeps executed
  double ad_residual = 0.0;      // final ‖πP − π‖∞ of the A/D iterate
  double off_block_mass = 0.0;   // max_off_block_row_mass of the partition
  double pi_gap = 0.0;           // ‖π_G − π_AD‖∞ cross-check gap
  bool used_banded = false;      // direct banded-LU rung produced G
  bool used_bicgstab = false;    // iterative rung produced G
  bool used_power_crosscheck = false;  // A/D failed; power iteration stood in
};

/// Koury–McAllister–Stewart iterative aggregation/disaggregation for the
/// stationary distribution of a block-partitioned sparse chain. Each sweep
/// solves the K×K coupling chain exactly, then refreshes every block's
/// conditional distribution through its prefactored (I − P_kkᵀ) system;
/// block solves fan out over `ctx` (bit-identical for any --jobs). Converges
/// fast exactly when the partition cuts only weak coupling. Failure modes:
///  - kInvalidConfig: fewer than two blocks (nothing to aggregate);
///  - kSingularMatrix: a decoupled block made I − P_kk singular;
///  - kNotErgodic: no convergence within max_ad_sweeps, or mass went
///    negative/non-finite. Callers fall back to the dense pipeline.
[[nodiscard]] util::StatusOr<linalg::Vector> try_block_stationary(
    const sparse::SparseMatrix& p, const Blocks& blocks,
    const SparseAnalysisConfig& config = {},
    const runtime::ExecutionContext& ctx = {},
    SparseSolveStats* stats = nullptr);

/// Sparse resolvent G = (I − P + 𝟙cᵀ)⁻¹ via the ladder:
///  1. RCM reordering + banded LU of the anchored system B = I − P + e_{n−1}cᵀ
///     followed by one Sherman–Morrison correction (skipped when the
///     bandwidth exceeds the cap, demoted on factorization failure);
///  2. per-column BiCGSTAB with Jacobi preconditioning on the full
///     rank-one-corrected operator.
/// Columns fan out over `ctx` into index-addressed slots (bit-identical for
/// any --jobs). A non-ok status means both rungs failed and the caller
/// should run the dense factorization.
[[nodiscard]] util::StatusOr<linalg::Matrix> try_sparse_resolvent(
    const sparse::SparseMatrix& p, const linalg::Vector& c,
    const SparseAnalysisConfig& config = {},
    const runtime::ExecutionContext& ctx = {},
    SparseSolveStats* stats = nullptr);

/// Sparsity-aware replacement for markov::try_analyze_chain: computes G
/// through try_sparse_resolvent, π independently through the block A/D solve
/// (sparse power iteration as its recovery rung), cross-checks the two
/// estimates to config.pi_agreement_tol, and derives W/Z/R from the
/// resolvent exactly as the incremental cache does. Any failure — including
/// a cross-check disagreement — returns a Status so the caller can fall
/// back to the dense pipeline.
[[nodiscard]] util::StatusOr<markov::ChainAnalysis> try_sparse_analyze_chain(
    const markov::TransitionMatrix& p, const SparseAnalysisConfig& config = {},
    const runtime::ExecutionContext& ctx = {},
    SparseSolveStats* stats = nullptr);

}  // namespace mocos::partition
