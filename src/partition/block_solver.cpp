#include "src/partition/block_solver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/linalg/lu.hpp"
#include "src/markov/passage_times.hpp"
#include "src/obs/phase_timer.hpp"
#include "src/sparse/banded_lu.hpp"
#include "src/sparse/resolvent_solver.hpp"
#include "src/linalg/guard.hpp"

namespace mocos::partition {

namespace {

/// Sherman–Morrison denominators below this are treated as a failed direct
/// rung (the anchored system sits too close to the 𝟙cᵀ null direction).
constexpr double kAnchorDenominatorFloor = 1e-8;

double inf_norm_diff(const linalg::Vector& a, const linalg::Vector& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

}  // namespace

util::StatusOr<linalg::Vector> try_block_stationary(
    const sparse::SparseMatrix& p, const Blocks& blocks,
    const SparseAnalysisConfig& config, const runtime::ExecutionContext& ctx,
    SparseSolveStats* stats) {
  SparseSolveStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const std::size_t n = p.rows();
  if (n < 2 || p.rows() != p.cols() || blocks.size() != n)
    return util::Status(util::StatusCode::kSizeMismatch,
                        "try_block_stationary: P/partition size mismatch");
  const std::size_t num_blocks = blocks.count();
  stats->blocks = num_blocks;
  stats->off_block_mass = max_off_block_row_mass(p, blocks);
  if (num_blocks < 2)
    return util::Status(util::StatusCode::kInvalidConfig,
                        "try_block_stationary: partition has a single block, "
                        "nothing to aggregate");

  const auto& offsets = p.row_offsets();
  const auto& cols = p.col_indices();
  const auto& vals = p.values();

  // Prefactor every block's (I − P_kkᵀ) once; the factors are reused by all
  // sweeps. Blocks fan out over the context into index-addressed slots.
  std::vector<std::optional<linalg::LuDecomposition>> block_lu(num_blocks);
  std::vector<util::Status> factor_status(num_blocks, util::Status::ok());
  // Block-local index of each PoI, so row scatter is O(nnz).
  std::vector<std::size_t> local_of(n, 0);
  for (std::size_t k = 0; k < num_blocks; ++k)
    for (std::size_t s = 0; s < blocks.members[k].size(); ++s)
      local_of[blocks.members[k][s]] = s;
  runtime::parallel_for(ctx, num_blocks, [&](std::size_t k) {
    const auto& members = blocks.members[k];
    const std::size_t m = members.size();
    linalg::Matrix system(m, m, 0.0);
    for (std::size_t s = 0; s < m; ++s) system(s, s) = 1.0;
    for (std::size_t s = 0; s < m; ++s) {
      const std::size_t i = members[s];
      for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
        const std::size_t j = cols[e];
        if (blocks.block_of[j] != k) continue;
        // (I − P_kkᵀ) in block-local indices: entry (local j, local i).
        system(local_of[j], s) -= vals[e];
      }
    }
    util::StatusOr<linalg::LuDecomposition> lu =
        linalg::LuDecomposition::try_factor(std::move(system));
    if (lu.ok())
      block_lu[k] = std::move(*lu);
    else
      factor_status[k] = lu.status();
  });
  for (std::size_t k = 0; k < num_blocks; ++k) {
    if (!factor_status[k].is_ok())
      return util::Status(
          util::StatusCode::kSingularMatrix,
          "try_block_stationary: block " + std::to_string(k) +
              " system is singular (decoupled block?): " +
              factor_status[k].message());
  }

  linalg::Vector pi(n, 1.0 / static_cast<double>(n));
  linalg::Vector y(n, 0.0);  // yᵀ = πᵀP, recomputed each sweep
  for (std::size_t sweep = 1; sweep <= config.max_ad_sweeps; ++sweep) {
    stats->ad_sweeps = sweep;

    // --- Aggregation: solve the K×K coupling chain exactly. -------------
    linalg::Vector xi(num_blocks, 0.0);
    for (std::size_t i = 0; i < n; ++i) xi[blocks.block_of[i]] += pi[i];
    for (std::size_t k = 0; k < num_blocks; ++k) {
      if (!(xi[k] > 0.0) || !std::isfinite(xi[k]))
        return util::Status(util::StatusCode::kNotErgodic,
                            "try_block_stationary: block " +
                                std::to_string(k) +
                                " lost all probability mass during A/D");
    }
    linalg::Matrix coupling(num_blocks, num_blocks, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double u = pi[i] / xi[blocks.block_of[i]];
      const std::size_t k = blocks.block_of[i];
      for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e)
        coupling(k, blocks.block_of[cols[e]]) += u * vals[e];
    }
    // Solve the K×K coupling chain through the dense system
    // (I − Cᵀ + 𝟙𝟙ᵀ) ξ = 𝟙 directly — calling back into the markov
    // stationary dispatch here could re-enter the sparse path on the
    // aggregate chain and recurse.
    linalg::Matrix agg_system(num_blocks, num_blocks);
    for (std::size_t k = 0; k < num_blocks; ++k)
      for (std::size_t l = 0; l < num_blocks; ++l)
        agg_system(k, l) = (k == l ? 1.0 : 0.0) - coupling(l, k) + 1.0;
    util::StatusOr<linalg::Vector> xi_next = linalg::try_solve(
        agg_system, linalg::Vector(num_blocks, 1.0));
    if (!xi_next.ok()) return xi_next.status();
    double xi_sum = 0.0;
    for (std::size_t k = 0; k < num_blocks; ++k) {
      if (!((*xi_next)[k] > 0.0) || !std::isfinite((*xi_next)[k]))
        return util::Status(util::StatusCode::kNotErgodic,
                            "try_block_stationary: coupling chain gave "
                            "non-positive mass to block " + std::to_string(k));
      xi_sum += (*xi_next)[k];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = blocks.block_of[i];
      pi[i] *= (*xi_next)[k] / (xi_sum * xi[k]);
    }

    // --- Disaggregation: block Gauss–Seidel-style refresh. ---------------
    // π_j = Σ_{i∈B_k} π_i p_ij + b_k(j) for j ∈ B_k, with the off-block
    // inflow b_k(j) = (πᵀP)_j − Σ_{i∈B_k} π_i p_ij frozen at the aggregated
    // iterate; each block then solves its prefactored (I − P_kkᵀ) system.
    p.transpose_matvec(pi, y);
    linalg::Vector next(n, 0.0);
    runtime::parallel_for(ctx, num_blocks, [&](std::size_t k) {
      const auto& members = blocks.members[k];
      const std::size_t m = members.size();
      linalg::Vector rhs(m);
      for (std::size_t s = 0; s < m; ++s) rhs[s] = y[members[s]];
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t i = members[s];
        for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
          const std::size_t j = cols[e];
          if (blocks.block_of[j] != k) continue;
          rhs[local_of[j]] -= pi[i] * vals[e];
        }
      }
      const linalg::Vector x = block_lu[k]->solve(rhs);
      for (std::size_t s = 0; s < m; ++s) next[members[s]] = x[s];
    });
    double mass = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Round-off can push tiny components of a weakly-visited PoI below
      // zero; clamp before renormalizing (the residual gate still decides).
      if (next[i] < 0.0) next[i] = 0.0;
      mass += next[i];
    }
    if (!(mass > 0.0) || !std::isfinite(mass))
      return util::Status(util::StatusCode::kNotErgodic,
                          "try_block_stationary: disaggregation produced "
                          "non-positive total mass");
    for (std::size_t i = 0; i < n; ++i) pi[i] = next[i] / mass;

    p.transpose_matvec(pi, y);
    stats->ad_residual = inf_norm_diff(y, pi);
    if (stats->ad_residual <= config.ad_tolerance) {
      util::Status finite = util::check_finite(pi, "block stationary");
      if (!finite.is_ok()) return finite;
      return pi;
    }
  }
  return util::Status(
      util::StatusCode::kNotErgodic,
      "try_block_stationary: no convergence after " +
          std::to_string(config.max_ad_sweeps) + " sweeps (residual " +
          std::to_string(stats->ad_residual) + ", off-block mass " +
          std::to_string(stats->off_block_mass) + ")");
}

util::StatusOr<linalg::Matrix> try_sparse_resolvent(
    const sparse::SparseMatrix& p, const linalg::Vector& c,
    const SparseAnalysisConfig& config, const runtime::ExecutionContext& ctx,
    SparseSolveStats* stats) {
  SparseSolveStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const std::size_t n = p.rows();
  if (n < 2 || p.rows() != p.cols() || c.size() != n)
    return util::Status(util::StatusCode::kSizeMismatch,
                        "try_sparse_resolvent: need square P (n >= 2) and a "
                        "matching reference vector");

  // --- Rung 1: RCM + anchored banded LU + Sherman–Morrison. --------------
  const std::vector<std::size_t> perm = bandwidth_ordering(p);
  const std::size_t bandwidth = pattern_bandwidth(p, perm);
  stats->bandwidth = bandwidth;
  const auto cap = static_cast<std::size_t>(
      config.bandwidth_cap_fraction * static_cast<double>(n));
  if (bandwidth <= cap) {
    std::vector<std::size_t> inv(n, 0);
    for (std::size_t a = 0; a < n; ++a) inv[perm[a]] = a;
    std::vector<sparse::Triplet> entries;
    entries.reserve(p.nnz());
    const auto& offsets = p.row_offsets();
    const auto& cols = p.col_indices();
    const auto& vals = p.values();
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e)
        entries.push_back({inv[i], inv[cols[e]], vals[e]});
    const sparse::SparseMatrix permuted =
        sparse::SparseMatrix::from_triplets(n, n, entries);
    linalg::Vector c_perm(n);
    for (std::size_t a = 0; a < n; ++a) c_perm[a] = c[perm[a]];

    util::StatusOr<sparse::BandedResolventLu> lu =
        sparse::BandedResolventLu::try_factor(permuted, c_perm, bandwidth);
    if (lu.ok()) {
      // G = B⁻¹ − w(cᵀB⁻¹·)/denom with w = B⁻¹(𝟙 − e_{n−1}) and
      // denom = 1 + cᵀw; per column j, G e_j = g − w(cᵀg)/denom.
      linalg::Vector w(n, 1.0);
      w[n - 1] = 0.0;
      lu->solve_inplace(w);
      double denom = 1.0;
      for (std::size_t i = 0; i < n; ++i) denom += c_perm[i] * w[i];
      if (std::isfinite(denom) && std::abs(denom) > kAnchorDenominatorFloor) {
        linalg::Matrix g_perm(n, n, 0.0);
        runtime::parallel_for(ctx, n, [&](std::size_t j) {
          linalg::Vector col(n, 0.0);
          col[j] = 1.0;
          lu->solve_inplace(col);
          double cg = 0.0;
          for (std::size_t i = 0; i < n; ++i) cg += c_perm[i] * col[i];
          const double scale = cg / denom;
          for (std::size_t i = 0; i < n; ++i)
            g_perm(i, j) = col[i] - scale * w[i];
        });
        util::Status finite = util::check_finite(g_perm, "banded resolvent");
        if (finite.is_ok()) {
          linalg::Matrix g(n, n);
          for (std::size_t a = 0; a < n; ++a)
            for (std::size_t b = 0; b < n; ++b)
              g(perm[a], perm[b]) = g_perm(a, b);
          stats->used_banded = true;
          return g;
        }
      }
    }
    // Factorization or correction failed: demote to the iterative rung.
  }

  // --- Rung 2: per-column BiCGSTAB on the full rank-one operator. --------
  sparse::ResolventOperator op{&p, linalg::Vector(n, 1.0), c};
  linalg::Matrix g(n, n, 0.0);
  std::vector<util::Status> column_status(n, util::Status::ok());
  runtime::parallel_for(ctx, n, [&](std::size_t j) {
    linalg::Vector e(n, 0.0);
    e[j] = 1.0;
    // G e_j solves (I − P + 𝟙cᵀ) x = e_j.
    util::StatusOr<linalg::Vector> x = sparse::try_solve_resolvent(op, e);
    if (!x.ok()) {
      column_status[j] = x.status();
      return;
    }
    for (std::size_t i = 0; i < n; ++i) g(i, j) = (*x)[i];
  });
  for (std::size_t j = 0; j < n; ++j)
    if (!column_status[j].is_ok()) return column_status[j];
  util::Status finite = util::check_finite(g, "iterative resolvent");
  if (!finite.is_ok()) return finite;
  stats->used_bicgstab = true;
  return g;
}

util::StatusOr<markov::ChainAnalysis> try_sparse_analyze_chain(
    const markov::TransitionMatrix& p, const SparseAnalysisConfig& config,
    const runtime::ExecutionContext& ctx, SparseSolveStats* stats) {
  SparseSolveStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = SparseSolveStats{};
  const std::size_t n = p.size();
  const sparse::SparseMatrix sp = sparse::SparseMatrix::from_dense(p.matrix());
  const double c_value = 1.0 / static_cast<double>(n);
  const linalg::Vector c(n, c_value);

  // Independent stationary estimate: block A/D first, sparse power
  // iteration as its recovery rung. Either way the estimate comes from a
  // different algorithm than the resolvent, so the agreement gate below is
  // a genuine cross-check, not a tautology.
  const Blocks blocks = structural_blocks(sp, config.partition);
  util::StatusOr<linalg::Vector> pi_check = [&] {
    obs::ScopedPhase phase("sparse.block_pi");
    util::StatusOr<linalg::Vector> est =
        try_block_stationary(sp, blocks, config, ctx, stats);
    if (!est.ok()) {
      est = sparse::try_stationary_power_sparse(sp);
      if (est.ok()) stats->used_power_crosscheck = true;
    }
    return est;
  }();
  if (!pi_check.ok()) return pi_check.status();

  util::StatusOr<linalg::Matrix> g = [&] {
    obs::ScopedPhase phase("sparse.resolvent");
    return try_sparse_resolvent(sp, c, config, ctx, stats);
  }();
  if (!g.ok()) return g.status();

  // πᵀ = cᵀG — identical derivation to the incremental cache so the two
  // sparse consumers stay bit-compatible.
  linalg::Vector pi(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) pi[j] += (*g)(i, j);
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    pi[j] *= c_value;
    sum += pi[j];
  }
  util::Status finite = util::check_finite(pi, "sparse pi");
  if (!finite.is_ok()) return finite;
  util::Status positive = util::check_strictly_positive(pi, "sparse pi");
  if (!positive.is_ok()) return positive;
  for (std::size_t j = 0; j < n; ++j) pi[j] /= sum;

  stats->pi_gap = inf_norm_diff(pi, *pi_check);
  if (stats->pi_gap > config.pi_agreement_tol)
    return util::Status(
        util::StatusCode::kNotErgodic,
        "try_sparse_analyze_chain: resolvent and block stationary "
        "estimates disagree (gap " +
            std::to_string(stats->pi_gap) + " > " +
            std::to_string(config.pi_agreement_tol) + ")");

  // A# = G − 𝟙(πᵀG), Z = A# + W, R from (Z, π) — Eqs. 6–8.
  const linalg::Vector pi_g = linalg::mul(pi, *g);
  linalg::Matrix z(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      z(i, j) = (*g)(i, j) - pi_g[j] + pi[j];
  util::StatusOr<linalg::Matrix> r = [&] {
    obs::ScopedPhase phase("sparse.passage_times");
    return markov::try_first_passage_times(z, pi);
  }();
  if (!r.ok()) return r.status();
  linalg::Matrix w = markov::stationary_rows(pi);
  return markov::ChainAnalysis{p, std::move(pi), std::move(w), std::move(z),
                               std::move(*r)};
}

}  // namespace mocos::partition
