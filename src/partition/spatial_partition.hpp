#pragma once

#include <cstddef>
#include <vector>

#include "src/geometry/vec2.hpp"
#include "src/sparse/sparse_matrix.hpp"

namespace mocos::partition {

/// Knobs for the block decomposition of a large chain.
struct PartitionConfig {
  /// KD bisection / structural packing stops splitting below this size.
  std::size_t target_block_size = 64;
  /// Transition probabilities >= this couple two PoIs "strongly"; the
  /// structural partitioner keeps strongly-coupled PoIs in one block, and
  /// max_off_block_row_mass() against this cutoff is the weak-coupling
  /// diagnostic the A/D gate reports.
  double coupling_cutoff = 0.05;
};

/// A disjoint cover of the PoI index set. Blocks are ordered, and members
/// within a block are sorted ascending — both deterministic functions of the
/// input, never of scheduling.
struct Blocks {
  std::vector<std::vector<std::size_t>> members;
  std::vector<std::size_t> block_of;  // PoI index -> block index

  [[nodiscard]] std::size_t count() const { return members.size(); }
  [[nodiscard]] std::size_t size() const { return block_of.size(); }

  /// Concatenated members in block order — the block-diagonal permutation
  /// (new index -> original index).
  [[nodiscard]] std::vector<std::size_t> permutation() const;
};

/// Spatial partitioner: recursive KD bisection of the PoI coordinates
/// (median split along the wider axis, ties broken by index) until every
/// leaf holds at most target_block_size PoIs. Deterministic.
[[nodiscard]] Blocks spatial_blocks(const std::vector<geometry::Vec2>& positions,
                                    const PartitionConfig& config = {});

/// Structure-only partitioner for chains without coordinates: groups PoIs
/// into the connected components of the strong-coupling graph
/// (max(p_ij, p_ji) >= coupling_cutoff), then splits oversized components
/// into contiguous runs of their BFS order. Deterministic (index-ordered
/// BFS).
[[nodiscard]] Blocks structural_blocks(const sparse::SparseMatrix& p,
                                       const PartitionConfig& config = {});

/// Largest off-block probability mass of any row: max_i Σ_{j ∉ blk(i)} p_ij.
/// 0 for a fully decoupled chain; near 1 when the partition cuts through
/// strong coupling (the A/D iteration's convergence degrades accordingly).
[[nodiscard]] double max_off_block_row_mass(const sparse::SparseMatrix& p,
                                            const Blocks& blocks);

/// Reverse Cuthill–McKee ordering of the symmetrized pattern of P: a
/// bandwidth-reducing permutation (new index -> original index) that makes
/// geometric chains nearly banded for the direct sparse resolvent rung.
/// Components are traversed in index order; within the BFS, neighbors are
/// visited sorted by (degree, index) — fully deterministic.
[[nodiscard]] std::vector<std::size_t> bandwidth_ordering(
    const sparse::SparseMatrix& p);

/// Bandwidth of P under a permutation: max |σ⁻¹(i) − σ⁻¹(j)| over stored
/// entries (σ maps new -> original index).
[[nodiscard]] std::size_t pattern_bandwidth(
    const sparse::SparseMatrix& p, const std::vector<std::size_t>& perm);

}  // namespace mocos::partition
