#include "src/partition/spatial_partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mocos::partition {

namespace {

Blocks finish_blocks(std::size_t n,
                     std::vector<std::vector<std::size_t>> members) {
  Blocks b;
  b.members = std::move(members);
  b.block_of.assign(n, 0);
  for (std::size_t k = 0; k < b.members.size(); ++k) {
    std::sort(b.members[k].begin(), b.members[k].end());
    for (std::size_t i : b.members[k]) b.block_of[i] = k;
  }
  return b;
}

void bisect(const std::vector<geometry::Vec2>& positions,
            std::vector<std::size_t> indices, std::size_t target,
            std::vector<std::vector<std::size_t>>& out) {
  if (indices.size() <= target) {
    out.push_back(std::move(indices));
    return;
  }
  double min_x = positions[indices[0]].x, max_x = min_x;
  double min_y = positions[indices[0]].y, max_y = min_y;
  for (std::size_t i : indices) {
    min_x = std::min(min_x, positions[i].x);
    max_x = std::max(max_x, positions[i].x);
    min_y = std::min(min_y, positions[i].y);
    max_y = std::max(max_y, positions[i].y);
  }
  const bool split_x = (max_x - min_x) >= (max_y - min_y);
  std::sort(indices.begin(), indices.end(),
            [&](std::size_t a, std::size_t b) {
              const double ca = split_x ? positions[a].x : positions[a].y;
              const double cb = split_x ? positions[b].x : positions[b].y;
              return ca != cb ? ca < cb : a < b;  // mocos-lint: allow(float-eq)
            });
  const std::size_t half = indices.size() / 2;
  std::vector<std::size_t> lo(indices.begin(),
                              indices.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<std::size_t> hi(indices.begin() + static_cast<std::ptrdiff_t>(half),
                              indices.end());
  bisect(positions, std::move(lo), target, out);
  bisect(positions, std::move(hi), target, out);
}

}  // namespace

std::vector<std::size_t> Blocks::permutation() const {
  std::vector<std::size_t> perm;
  perm.reserve(size());
  for (const auto& block : members)
    perm.insert(perm.end(), block.begin(), block.end());
  return perm;
}

Blocks spatial_blocks(const std::vector<geometry::Vec2>& positions,
                      const PartitionConfig& config) {
  const std::size_t n = positions.size();
  if (n == 0) throw std::invalid_argument("spatial_blocks: no positions");
  const std::size_t target = std::max<std::size_t>(config.target_block_size, 1);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  std::vector<std::vector<std::size_t>> members;
  bisect(positions, std::move(all), target, members);
  return finish_blocks(n, std::move(members));
}

Blocks structural_blocks(const sparse::SparseMatrix& p,
                         const PartitionConfig& config) {
  const std::size_t n = p.rows();
  if (n == 0 || p.rows() != p.cols())
    throw std::invalid_argument("structural_blocks: P must be square");
  const std::size_t target = std::max<std::size_t>(config.target_block_size, 1);

  // Symmetrized strong-coupling adjacency: max(p_ij, p_ji) >= cutoff.
  std::vector<std::vector<std::size_t>> strong(n);
  const auto& offsets = p.row_offsets();
  const auto& cols = p.col_indices();
  const auto& vals = p.values();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      const std::size_t j = cols[e];
      if (j == i || vals[e] < config.coupling_cutoff) continue;
      strong[i].push_back(j);
      strong[j].push_back(i);
    }
  }
  for (auto& adj : strong) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }

  // Index-ordered BFS over components; oversized components are cut into
  // contiguous runs of their BFS order (BFS keeps strongly-coupled PoIs
  // adjacent, so the cuts land on the weakest seams available).
  std::vector<bool> seen(n, false);
  std::vector<std::vector<std::size_t>> members;
  std::vector<std::size_t> queue;
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    queue.clear();
    queue.push_back(start);
    seen[start] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (std::size_t j : strong[queue[head]]) {
        if (!seen[j]) {
          seen[j] = true;
          queue.push_back(j);
        }
      }
    }
    for (std::size_t pos = 0; pos < queue.size(); pos += target) {
      const std::size_t end = std::min(pos + target, queue.size());
      members.emplace_back(queue.begin() + static_cast<std::ptrdiff_t>(pos),
                           queue.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  return finish_blocks(n, std::move(members));
}

double max_off_block_row_mass(const sparse::SparseMatrix& p,
                              const Blocks& blocks) {
  const std::size_t n = p.rows();
  if (blocks.block_of.size() != n)
    throw std::invalid_argument("max_off_block_row_mass: size mismatch");
  const auto& offsets = p.row_offsets();
  const auto& cols = p.col_indices();
  const auto& vals = p.values();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e)
      if (blocks.block_of[cols[e]] != blocks.block_of[i]) off += vals[e];
    worst = std::max(worst, off);
  }
  return worst;
}

std::vector<std::size_t> bandwidth_ordering(const sparse::SparseMatrix& p) {
  const std::size_t n = p.rows();
  if (p.rows() != p.cols())
    throw std::invalid_argument("bandwidth_ordering: P must be square");
  std::vector<std::vector<std::size_t>> adj(n);
  const auto& offsets = p.row_offsets();
  const auto& cols = p.col_indices();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      const std::size_t j = cols[e];
      if (j == i) continue;
      adj[i].push_back(j);
      adj[j].push_back(i);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  auto degree = [&](std::size_t v) { return adj[v].size(); };

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  // Per component: start from the minimum-degree vertex (lowest index on
  // ties), BFS with neighbors sorted by (degree, index), then reverse the
  // whole concatenation at the end (the "R" in RCM).
  for (;;) {
    std::size_t start = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (seen[v] && v != start) continue;
      if (!seen[v] && (start == n || degree(v) < degree(start)))
        start = v;
    }
    if (start == n) break;
    seen[start] = true;
    const std::size_t component_begin = order.size();
    order.push_back(start);
    for (std::size_t head = component_begin; head < order.size(); ++head) {
      std::vector<std::size_t> next;
      for (std::size_t j : adj[order[head]])
        if (!seen[j]) next.push_back(j);
      std::sort(next.begin(), next.end(),
                [&](std::size_t a, std::size_t b) {
                  return degree(a) != degree(b) ? degree(a) < degree(b)
                                                : a < b;
                });
      for (std::size_t j : next) {
        seen[j] = true;
        order.push_back(j);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::size_t pattern_bandwidth(const sparse::SparseMatrix& p,
                              const std::vector<std::size_t>& perm) {
  const std::size_t n = p.rows();
  if (perm.size() != n)
    throw std::invalid_argument("pattern_bandwidth: permutation size");
  std::vector<std::size_t> inv(n, 0);
  for (std::size_t k = 0; k < n; ++k) inv[perm[k]] = k;
  const auto& offsets = p.row_offsets();
  const auto& cols = p.col_indices();
  std::size_t b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      const std::size_t a = inv[i];
      const std::size_t c = inv[cols[e]];
      b = std::max(b, a > c ? a - c : c - a);
    }
  }
  return b;
}

}  // namespace mocos::partition
