#pragma once

#include "src/core/optimizer.hpp"
#include "src/multi/sensor_team.hpp"
#include "src/runtime/execution_context.hpp"

namespace mocos::multi {

struct TeamOptimizerOptions {
  std::size_t num_sensors = 2;
  /// Best-response sweeps over the team (>= 1). Round 0 optimizes every
  /// sensor against the full target allocation; later rounds re-optimize
  /// each sensor against the *residual* demand left uncovered by the rest
  /// of the team, which diversifies the chains.
  std::size_t rounds = 2;
  /// Per-sensor single-chain optimizer settings (algorithm, iterations, …).
  core::OptimizerOptions per_sensor;
  /// Floor for residual targets so no PoI is ever dropped entirely.
  double residual_floor = 0.02;
};

/// Heuristic multi-sensor extension of the paper's optimizer: simultaneous
/// (Jacobi) best response on the coverage residual. Each round computes
/// every sensor's reweighted targets
///
///   Φ_i^(k) ∝ max(Φ_i · (1 − c_i^(−k)), floor · Φ_i),
///
/// against the *previous* round's chains — c_i^(−k) is the combined coverage
/// of the other sensors — then re-optimizes all sensors against their
/// residuals. The simultaneous update makes every per-sensor optimization
/// within a round independent, so rounds fan out on `ctx` and the resulting
/// team is bit-identical for any job count.
[[nodiscard]] SensorTeam optimize_team(const core::Problem& problem,
                         const TeamOptimizerOptions& options,
                         const runtime::ExecutionContext& ctx = {});

}  // namespace mocos::multi
