#pragma once

#include "src/core/optimizer.hpp"
#include "src/multi/sensor_team.hpp"

namespace mocos::multi {

struct TeamOptimizerOptions {
  std::size_t num_sensors = 2;
  /// Best-response sweeps over the team (>= 1). Round 0 optimizes every
  /// sensor against the full target allocation; later rounds re-optimize
  /// each sensor against the *residual* demand left uncovered by the rest
  /// of the team, which diversifies the chains.
  std::size_t rounds = 2;
  /// Per-sensor single-chain optimizer settings (algorithm, iterations, …).
  core::OptimizerOptions per_sensor;
  /// Floor for residual targets so no PoI is ever dropped entirely.
  double residual_floor = 0.02;
};

/// Heuristic multi-sensor extension of the paper's optimizer: sequential
/// best response on the coverage residual. Each sensor's chain is produced
/// by the single-sensor stochastic steepest descent with reweighted targets
///
///   Φ_i^(k) ∝ max(Φ_i · (1 − c_i^(−k)), floor · Φ_i),
///
/// where c_i^(−k) is the combined coverage of the other sensors.
SensorTeam optimize_team(const core::Problem& problem,
                         const TeamOptimizerOptions& options);

}  // namespace mocos::multi
