#pragma once

#include <vector>

#include "src/markov/transition_matrix.hpp"
#include "src/sensing/motion_model.hpp"

namespace mocos::multi {

/// A team of K sensors patrolling the same PoIs, each driven by its own
/// Markov chain (moving independently of the others). The single-sensor
/// framework is the paper's; the team layer composes it: with independent
/// stationary sensors, the long-run fraction of time PoI i is covered by at
/// least one sensor is
///
///   c_i^team = 1 − Π_k (1 − c_i^(k)),
///
/// where c_i^(k) is sensor k's coverage share (Eq. 2).
class SensorTeam {
 public:
  SensorTeam(const sensing::MotionModel& model,
             std::vector<markov::TransitionMatrix> chains);

  const sensing::MotionModel& model() const { return model_; }
  std::size_t num_sensors() const { return chains_.size(); }
  std::size_t num_pois() const { return model_.num_pois(); }
  const markov::TransitionMatrix& chain(std::size_t k) const;
  const std::vector<markov::TransitionMatrix>& chains() const {
    return chains_;
  }

  /// Per-sensor analytic coverage shares C̄_i (Eq. 2).
  std::vector<double> sensor_coverage(std::size_t k) const;

  /// Combined coverage under the independence approximation.
  std::vector<double> combined_coverage() const;

 private:
  const sensing::MotionModel& model_;
  std::vector<markov::TransitionMatrix> chains_;
};

}  // namespace mocos::multi
