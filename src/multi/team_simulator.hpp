#pragma once

#include <vector>

#include "src/multi/sensor_team.hpp"
#include "src/util/rng.hpp"

namespace mocos::multi {

struct TeamSimulationConfig {
  /// Transitions simulated per sensor.
  std::size_t transitions_per_sensor = 20000;
  /// Per-sensor transitions discarded before measurement.
  std::size_t burn_in = 200;
};

/// Wall-clock team metrics: coverage counts time when *at least one* sensor
/// is within range of the PoI (pauses and pass-bys, from the models' exact
/// coverage intervals); exposures are the uncovered gaps.
struct TeamSimulationResult {
  double horizon = 0.0;                    // measured wall-clock span
  std::vector<double> covered_fraction;    // per PoI
  std::vector<double> mean_gap;            // mean uncovered-interval length
  std::vector<double> max_gap;             // worst uncovered interval
  std::vector<std::size_t> gap_count;      // completed gaps per PoI

  /// Largest max_gap across PoIs — the team's worst-case staleness.
  double worst_gap() const;
};

/// Simulates all sensors concurrently (independent chains, real transition
/// durations) and merges their coverage intervals per PoI.
class TeamSimulator {
 public:
  explicit TeamSimulator(TeamSimulationConfig config = {});

  TeamSimulationResult run(const SensorTeam& team, util::Rng& rng) const;

 private:
  TeamSimulationConfig config_;
};

}  // namespace mocos::multi
