#include "src/multi/sensor_team.hpp"

#include <stdexcept>
#include <utility>

#include "src/cost/metrics.hpp"
#include "src/sensing/coverage_tensors.hpp"

namespace mocos::multi {

SensorTeam::SensorTeam(const sensing::MotionModel& model,
                       std::vector<markov::TransitionMatrix> chains)
    : model_(model), chains_(std::move(chains)) {
  if (chains_.empty())
    throw std::invalid_argument("SensorTeam: need at least one sensor");
  for (const auto& p : chains_)
    if (p.size() != model_.num_pois())
      throw std::invalid_argument("SensorTeam: chain size != num PoIs");
}

const markov::TransitionMatrix& SensorTeam::chain(std::size_t k) const {
  if (k >= chains_.size()) throw std::out_of_range("SensorTeam::chain");
  return chains_[k];
}

std::vector<double> SensorTeam::sensor_coverage(std::size_t k) const {
  const sensing::CoverageTensors tensors(model_);
  return cost::coverage_shares(markov::analyze_chain(chain(k)), tensors);
}

std::vector<double> SensorTeam::combined_coverage() const {
  const sensing::CoverageTensors tensors(model_);
  std::vector<double> not_covered(num_pois(), 1.0);
  for (const auto& p : chains_) {
    const auto c =
        cost::coverage_shares(markov::analyze_chain(p), tensors);
    for (std::size_t i = 0; i < num_pois(); ++i)
      not_covered[i] *= 1.0 - c[i];
  }
  std::vector<double> out(num_pois());
  for (std::size_t i = 0; i < num_pois(); ++i) out[i] = 1.0 - not_covered[i];
  return out;
}

}  // namespace mocos::multi
