#include "src/multi/team_optimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/cost/metrics.hpp"
#include "src/sensing/travel_model.hpp"

namespace mocos::multi {

namespace {

/// Combined coverage of all team chains except `skip`.
std::vector<double> coverage_of_others(
    const core::Problem& problem,
    const std::vector<markov::TransitionMatrix>& chains, std::size_t skip) {
  const std::size_t n = problem.num_pois();
  std::vector<double> not_covered(n, 1.0);
  for (std::size_t k = 0; k < chains.size(); ++k) {
    if (k == skip) continue;
    const auto c = cost::coverage_shares(markov::analyze_chain(chains[k]),
                                         problem.tensors());
    for (std::size_t i = 0; i < n; ++i) not_covered[i] *= 1.0 - c[i];
  }
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = 1.0 - not_covered[i];
  return out;
}

core::Problem residual_problem(const core::Problem& base,
                               const std::vector<double>& residual_targets) {
  // Rebuild a problem identical to `base` but with re-weighted targets.
  // Only the straight-line physics path is rebuilt here; for custom motion
  // models the caller keeps the original targets (handled by optimize_team).
  geometry::Topology topo(base.topology().name() + "/residual",
                          base.topology().positions(), residual_targets);
  return core::Problem(std::move(topo), base.physics(), base.weights());
}

}  // namespace

SensorTeam optimize_team(const core::Problem& problem,
                         const TeamOptimizerOptions& options) {
  if (options.num_sensors == 0)
    throw std::invalid_argument("optimize_team: num_sensors == 0");
  if (options.rounds == 0)
    throw std::invalid_argument("optimize_team: rounds == 0");
  if (options.residual_floor <= 0.0 || options.residual_floor > 1.0)
    throw std::invalid_argument("optimize_team: residual_floor out of (0,1]");
  // Residual rounds rebuild the problem with reweighted targets, which is
  // only possible when the motion physics can be reconstructed — i.e. the
  // straight-line model. (Round-0 optimization would work for any model.)
  if (options.rounds > 1 &&
      dynamic_cast<const sensing::TravelModel*>(&problem.model()) == nullptr)
    throw std::invalid_argument(
        "optimize_team: residual rounds require the straight-line "
        "TravelModel; use rounds = 1 with custom motion models");

  // Round 0: every sensor solves the base problem (different seeds).
  std::vector<markov::TransitionMatrix> chains;
  chains.reserve(options.num_sensors);
  for (std::size_t k = 0; k < options.num_sensors; ++k) {
    core::OptimizerOptions opts = options.per_sensor;
    opts.seed = options.per_sensor.seed + 101 * (k + 1);
    opts.random_start = k > 0;  // diversify later sensors' starting points
    chains.push_back(core::CoverageOptimizer(problem, opts).run().p);
  }

  // Best-response rounds on the coverage residual.
  for (std::size_t round = 1; round < options.rounds; ++round) {
    for (std::size_t k = 0; k < options.num_sensors; ++k) {
      const auto others = coverage_of_others(problem, chains, k);
      std::vector<double> residual(problem.num_pois());
      double sum = 0.0;
      for (std::size_t i = 0; i < problem.num_pois(); ++i) {
        const double phi = problem.targets()[i];
        residual[i] = std::max(phi * (1.0 - others[i]),
                               options.residual_floor * phi);
        sum += residual[i];
      }
      for (double& r : residual) r /= sum;

      const core::Problem sub = residual_problem(problem, residual);
      core::OptimizerOptions opts = options.per_sensor;
      opts.seed = options.per_sensor.seed + 997 * round + 101 * (k + 1);
      chains[k] = core::CoverageOptimizer(sub, opts).run().p;
    }
  }
  return SensorTeam(problem.model(), std::move(chains));
}

}  // namespace mocos::multi
