#include "src/multi/team_optimizer.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/cost/metrics.hpp"
#include "src/sensing/travel_model.hpp"

namespace mocos::multi {

namespace {

/// Combined coverage of all team chains except `skip`, from the per-chain
/// shares precomputed for the round.
std::vector<double> coverage_of_others(
    const std::vector<std::vector<double>>& shares, std::size_t n,
    std::size_t skip) {
  std::vector<double> not_covered(n, 1.0);
  for (std::size_t k = 0; k < shares.size(); ++k) {
    if (k == skip) continue;
    for (std::size_t i = 0; i < n; ++i) not_covered[i] *= 1.0 - shares[k][i];
  }
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = 1.0 - not_covered[i];
  return out;
}

core::Problem residual_problem(const core::Problem& base,
                               const std::vector<double>& residual_targets) {
  // Rebuild a problem identical to `base` but with re-weighted targets.
  // Only the straight-line physics path is rebuilt here; for custom motion
  // models the caller keeps the original targets (handled by optimize_team).
  geometry::Topology topo(base.topology().name() + "/residual",
                          base.topology().positions(), residual_targets);
  return core::Problem(std::move(topo), base.physics(), base.weights());
}

}  // namespace

SensorTeam optimize_team(const core::Problem& problem,
                         const TeamOptimizerOptions& options,
                         const runtime::ExecutionContext& ctx) {
  if (options.num_sensors == 0)
    throw std::invalid_argument("optimize_team: num_sensors == 0");
  if (options.rounds == 0)
    throw std::invalid_argument("optimize_team: rounds == 0");
  if (options.residual_floor <= 0.0 || options.residual_floor > 1.0)
    throw std::invalid_argument("optimize_team: residual_floor out of (0,1]");
  // Residual rounds rebuild the problem with reweighted targets, which is
  // only possible when the motion physics can be reconstructed — i.e. the
  // straight-line model. (Round-0 optimization would work for any model.)
  if (options.rounds > 1 &&
      dynamic_cast<const sensing::TravelModel*>(&problem.model()) == nullptr)
    throw std::invalid_argument(
        "optimize_team: residual rounds require the straight-line "
        "TravelModel; use rounds = 1 with custom motion models");

  const std::size_t n = problem.num_pois();
  const std::size_t sensors = options.num_sensors;

  // Round 0: every sensor solves the base problem (different seeds); the
  // per-sensor runs are independent and fan out on `ctx`. Seeds are a pure
  // function of the sensor index, so the chains don't depend on scheduling.
  std::vector<std::optional<markov::TransitionMatrix>> slots(sensors);
  runtime::parallel_for(ctx, sensors, [&](std::size_t k) {
    core::OptimizerOptions opts = options.per_sensor;
    opts.seed = options.per_sensor.seed + 101 * (k + 1);
    opts.random_start = k > 0;  // diversify later sensors' starting points
    slots[k] = core::CoverageOptimizer(problem, opts).run().p;
  });
  std::vector<markov::TransitionMatrix> chains;
  chains.reserve(sensors);
  for (auto& slot : slots) chains.push_back(std::move(*slot));

  // Simultaneous (Jacobi) best-response rounds on the coverage residual:
  // all residuals are computed against the previous round's chains up
  // front, then every sensor re-optimizes independently in parallel.
  for (std::size_t round = 1; round < options.rounds; ++round) {
    std::vector<std::vector<double>> shares(sensors);
    runtime::parallel_for(ctx, sensors, [&](std::size_t k) {
      shares[k] = cost::coverage_shares(markov::analyze_chain(chains[k]),
                                        problem.tensors());
    });
    std::vector<std::vector<double>> residuals(sensors);
    for (std::size_t k = 0; k < sensors; ++k) {
      const auto others = coverage_of_others(shares, n, k);
      std::vector<double> residual(n);
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double phi = problem.targets()[i];
        residual[i] = std::max(phi * (1.0 - others[i]),
                               options.residual_floor * phi);
        sum += residual[i];
      }
      for (double& r : residual) r /= sum;
      residuals[k] = std::move(residual);
    }
    runtime::parallel_for(ctx, sensors, [&](std::size_t k) {
      const core::Problem sub = residual_problem(problem, residuals[k]);
      core::OptimizerOptions opts = options.per_sensor;
      opts.seed = options.per_sensor.seed + 997 * round + 101 * (k + 1);
      chains[k] = core::CoverageOptimizer(sub, opts).run().p;
    });
  }
  return SensorTeam(problem.model(), std::move(chains));
}

}  // namespace mocos::multi
