#include "src/multi/team_simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mocos::multi {

double TeamSimulationResult::worst_gap() const {
  double worst = 0.0;
  for (double g : max_gap) worst = std::max(worst, g);
  return worst;
}

TeamSimulator::TeamSimulator(TeamSimulationConfig config) : config_(config) {
  if (config_.transitions_per_sensor == 0)
    throw std::invalid_argument("TeamSimulator: transitions_per_sensor == 0");
}

TeamSimulationResult TeamSimulator::run(const SensorTeam& team,
                                        util::Rng& rng) const {
  const sensing::MotionModel& model = team.model();
  const std::size_t n = model.num_pois();
  const std::size_t sensors = team.num_sensors();

  // Per-PoI absolute-time coverage intervals from every sensor.
  std::vector<std::vector<sensing::CoverageInterval>> covered(n);
  double horizon = std::numeric_limits<double>::infinity();
  double measure_from = 0.0;

  for (std::size_t k = 0; k < sensors; ++k) {
    util::Rng sensor_rng = rng.split();
    std::size_t at = k % n;  // stagger starting PoIs across the team
    double clock = 0.0;
    double sensor_measure_from = 0.0;
    for (std::size_t step = 0;
         step < config_.burn_in + config_.transitions_per_sensor; ++step) {
      const std::size_t next = sensor_rng.discrete(team.chain(k).row(at));
      if (step == config_.burn_in) sensor_measure_from = clock;
      for (std::size_t i = 0; i < n; ++i) {
        for (const auto& interval : model.coverage_intervals(at, next, i)) {
          covered[i].push_back(
              {clock + interval.begin, clock + interval.end});
        }
      }
      clock += model.transition_duration(at, next);
      at = next;
    }
    horizon = std::min(horizon, clock);
    measure_from = std::max(measure_from, sensor_measure_from);
  }

  TeamSimulationResult out;
  out.horizon = horizon - measure_from;
  out.covered_fraction.assign(n, 0.0);
  out.mean_gap.assign(n, 0.0);
  out.max_gap.assign(n, 0.0);
  out.gap_count.assign(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    auto& intervals = covered[i];
    std::sort(intervals.begin(), intervals.end(),
              [](const auto& a, const auto& b) { return a.begin < b.begin; });
    // Sweep: merge into the measurement window, accumulating covered time
    // and uncovered gaps.
    double cursor = measure_from;  // end of covered time so far
    double covered_time = 0.0;
    double gap_total = 0.0;
    for (const auto& iv : intervals) {
      const double begin = std::clamp(iv.begin, measure_from, horizon);
      const double end = std::clamp(iv.end, measure_from, horizon);
      if (end <= begin) continue;
      if (begin > cursor) {
        const double gap = begin - cursor;
        gap_total += gap;
        out.max_gap[i] = std::max(out.max_gap[i], gap);
        out.gap_count[i] += 1;
        covered_time += end - begin;
        cursor = end;
      } else if (end > cursor) {
        covered_time += end - cursor;
        cursor = end;
      }
    }
    if (cursor < horizon) {
      const double gap = horizon - cursor;
      gap_total += gap;
      out.max_gap[i] = std::max(out.max_gap[i], gap);
      out.gap_count[i] += 1;
    }
    out.covered_fraction[i] = covered_time / out.horizon;
    out.mean_gap[i] = out.gap_count[i] == 0
                          ? 0.0
                          : gap_total / static_cast<double>(out.gap_count[i]);
  }
  return out;
}

}  // namespace mocos::multi
