#include "src/markov/passage_times.hpp"

#include <stdexcept>

#include "src/linalg/lu.hpp"
#include "src/linalg/guard.hpp"

namespace mocos::markov {

linalg::Matrix first_passage_times(const linalg::Matrix& z,
                                   const linalg::Vector& pi) {
  const std::size_t n = z.rows();
  if (pi.size() != n)
    throw std::invalid_argument("first_passage_times: size mismatch");
  linalg::Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double delta = (i == j) ? 1.0 : 0.0;
      r(i, j) = (delta - z(i, j) + z(j, j)) / pi[j];
    }
  }
  return r;
}

util::StatusOr<linalg::Matrix> try_first_passage_times(
    const linalg::Matrix& z, const linalg::Vector& pi) {
  if (pi.size() != z.rows() || !z.is_square())
    return util::Status(util::StatusCode::kSizeMismatch,
                        "try_first_passage_times: size mismatch");
  util::Status positive = util::check_strictly_positive(pi, "pi");
  if (!positive.is_ok()) return positive;
  linalg::Matrix r = first_passage_times(z, pi);
  util::Status finite = util::check_finite(r, "R");
  if (!finite.is_ok()) return finite;
  return r;
}

linalg::Matrix first_passage_times_by_solve(const linalg::Matrix& p) {
  const std::size_t n = p.rows();
  linalg::Matrix r(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    // Unknowns: m_i = E[steps to reach j from i], for all i (including i=j,
    // interpreted as the mean return time). System:
    //   m_i = 1 + sum_{k != j} p_ik m_k.
    linalg::Matrix a(n, n);
    linalg::Vector rhs(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        double v = (i == k) ? 1.0 : 0.0;
        if (k != j) v -= p(i, k);
        a(i, k) = v;
      }
    }
    // Note: column j of the unknown couples only through the i=j row, and the
    // matrix above already encodes that (the p_ij terms vanish for k == j).
    const linalg::Vector m = linalg::solve(a, rhs);
    for (std::size_t i = 0; i < n; ++i) r(i, j) = m[i];
  }
  return r;
}

}  // namespace mocos::markov
