#include "src/markov/entropy.hpp"

#include <cmath>
#include <stdexcept>

#include "src/markov/stationary.hpp"

namespace mocos::markov {

double entropy_rate(const linalg::Matrix& p, const linalg::Vector& pi) {
  if (p.rows() != pi.size())
    throw std::invalid_argument("entropy_rate: size mismatch");
  double h = 0.0;
  for (std::size_t i = 0; i < p.rows(); ++i) {
    for (std::size_t j = 0; j < p.cols(); ++j) {
      const double q = p(i, j);
      if (q > 0.0) h -= pi[i] * q * std::log(q);
    }
  }
  return h;
}

double entropy_rate(const TransitionMatrix& p) {
  return entropy_rate(p.matrix(), stationary_distribution(p));
}

double max_entropy_rate(std::size_t n_states) {
  if (n_states == 0) throw std::invalid_argument("max_entropy_rate: n == 0");
  return std::log(static_cast<double>(n_states));
}

}  // namespace mocos::markov
