#include "src/markov/fundamental.hpp"

#include <utility>

#include "src/linalg/lu.hpp"
#include "src/markov/passage_times.hpp"
#include "src/markov/sparse_mode.hpp"
#include "src/markov/stationary.hpp"
#include "src/obs/metrics.hpp"
#include "src/partition/block_solver.hpp"
#include "src/linalg/guard.hpp"

namespace mocos::markov {

namespace {

linalg::Matrix fundamental_system(const linalg::Matrix& p,
                                  const linalg::Vector& pi) {
  const std::size_t n = p.rows();
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m(i, j) = (i == j ? 1.0 : 0.0) - p(i, j) + pi[j];
  return m;
}

}  // namespace

linalg::Matrix stationary_rows(const linalg::Vector& pi) {
  return linalg::Matrix::outer(linalg::Vector(pi.size(), 1.0), pi);
}

linalg::Matrix fundamental_matrix(const linalg::Matrix& p,
                                  const linalg::Vector& pi) {
  return linalg::inverse(fundamental_system(p, pi));
}

util::StatusOr<linalg::Matrix> try_fundamental_matrix(
    const linalg::Matrix& p, const linalg::Vector& pi) {
  if (pi.size() != p.rows() || !p.is_square())
    return util::Status(util::StatusCode::kSizeMismatch,
                        "try_fundamental_matrix: size mismatch");
  util::StatusOr<linalg::LuDecomposition> lu =
      linalg::LuDecomposition::try_factor(fundamental_system(p, pi));
  if (!lu.ok()) return lu.status();
  linalg::Matrix z = lu->inverse();
  util::Status finite = util::check_finite(z, "Z");
  if (!finite.is_ok()) return finite;
  return z;
}

ChainAnalysis analyze_chain(const TransitionMatrix& p) {
  linalg::Vector pi = stationary_distribution(p);
  linalg::Matrix w = stationary_rows(pi);
  linalg::Matrix z = fundamental_matrix(p.matrix(), pi);
  linalg::Matrix r = first_passage_times(z, pi);
  return ChainAnalysis{p, std::move(pi), std::move(w), std::move(z),
                       std::move(r)};
}

util::StatusOr<ChainAnalysis> try_analyze_chain(const TransitionMatrix& p,
                                                StationarySolver solver) {
  util::Status input = util::check_row_stochastic(p.matrix());
  if (!input.is_ok()) return input;

  // Sparsity-aware path (CSR resolvent + block decomposition). Only the
  // primary solver selection dispatches here — a caller already demoted to
  // the power-iteration rung is recovering from a failure and should get
  // the plain dense pipeline. Any sparse failure falls through to dense, so
  // this dispatch never introduces a new failure mode.
  if (solver == StationarySolver::kDirect && sparse_path_enabled(p.matrix())) {
    partition::SparseSolveStats sparse_stats;
    util::StatusOr<ChainAnalysis> sparse_result =
        partition::try_sparse_analyze_chain(p, {}, {}, &sparse_stats);
    if (sparse_result.ok()) {
      obs::count("markov.sparse.solves");
      obs::gauge_set("markov.sparse.bandwidth",
                     static_cast<double>(sparse_stats.bandwidth));
      obs::gauge_set("markov.sparse.blocks",
                     static_cast<double>(sparse_stats.blocks));
      obs::gauge_set("markov.sparse.ad_sweeps",
                     static_cast<double>(sparse_stats.ad_sweeps));
      obs::gauge_set("markov.sparse.pi_gap", sparse_stats.pi_gap);
      return sparse_result;
    }
    obs::count("markov.sparse.fallbacks");
  }

  util::StatusOr<linalg::Vector> pi = try_stationary_distribution(p, solver);
  if (!pi.ok()) return pi.status();

  util::StatusOr<linalg::Matrix> z =
      try_fundamental_matrix(p.matrix(), *pi);
  if (!z.ok()) return z.status();

  util::StatusOr<linalg::Matrix> r = try_first_passage_times(*z, *pi);
  if (!r.ok()) return r.status();

  linalg::Matrix w = stationary_rows(*pi);
  return ChainAnalysis{p, std::move(*pi), std::move(w), std::move(*z),
                       std::move(*r)};
}

}  // namespace mocos::markov
