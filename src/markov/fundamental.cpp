#include "src/markov/fundamental.hpp"

#include "src/linalg/lu.hpp"
#include "src/markov/passage_times.hpp"
#include "src/markov/stationary.hpp"

namespace mocos::markov {

linalg::Matrix stationary_rows(const linalg::Vector& pi) {
  return linalg::Matrix::outer(linalg::Vector(pi.size(), 1.0), pi);
}

linalg::Matrix fundamental_matrix(const linalg::Matrix& p,
                                  const linalg::Vector& pi) {
  const std::size_t n = p.rows();
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m(i, j) = (i == j ? 1.0 : 0.0) - p(i, j) + pi[j];
  return linalg::inverse(m);
}

ChainAnalysis analyze_chain(const TransitionMatrix& p) {
  linalg::Vector pi = stationary_distribution(p);
  linalg::Matrix w = stationary_rows(pi);
  linalg::Matrix z = fundamental_matrix(p.matrix(), pi);
  linalg::Matrix z2 = z * z;
  linalg::Matrix r = first_passage_times(z, pi);
  return ChainAnalysis{p,           std::move(pi), std::move(w),
                       std::move(z), std::move(z2), std::move(r)};
}

}  // namespace mocos::markov
