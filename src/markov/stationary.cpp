#include "src/markov/stationary.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "src/linalg/lu.hpp"
#include "src/linalg/norms.hpp"
#include "src/markov/sparse_mode.hpp"
#include "src/partition/block_solver.hpp"
#include "src/sparse/sparse_matrix.hpp"
#include "src/util/fault_injection.hpp"
#include "src/linalg/guard.hpp"

namespace mocos::markov {

namespace {

/// Normalizes a candidate π in place and validates it: finite, no mass below
/// -tol, unit sum. Returns the offending condition otherwise.
util::Status finish_distribution(linalg::Vector& pi, double negative_tol) {
  util::Status finite = util::check_finite(pi, "pi");
  if (!finite.is_ok()) return finite;
  double sum = 0.0;
  for (double x : pi) {
    if (x < -negative_tol)
      return util::Status(
          util::StatusCode::kNotErgodic,
          "stationary solve produced negative mass " + std::to_string(x) +
              " (chain not ergodic?)");
    sum += x;
  }
  if (!(sum > 0.0) || !std::isfinite(sum))
    return util::Status(util::StatusCode::kNotErgodic,
                        "stationary solve produced zero total mass");
  for (double& x : pi) x = std::max(x, 0.0) / sum;
  return util::Status::ok();
}

util::StatusOr<linalg::Vector> try_direct(const TransitionMatrix& p) {
  if (util::fault::fire(util::fault::Site::kStationary))
    return util::Status(util::StatusCode::kSingularMatrix,
                        "stationary solve failed (fault injection)");
  const std::size_t n = p.size();
  // B = I - P^T + ones; B pi = 1.
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      b(i, j) = (i == j ? 1.0 : 0.0) - p(j, i) + 1.0;
  util::StatusOr<linalg::LuDecomposition> lu =
      linalg::LuDecomposition::try_factor(std::move(b));
  if (!lu.ok()) return lu.status();
  linalg::Vector pi = lu->solve(linalg::Vector(n, 1.0));
  const util::Status status = finish_distribution(pi, 1e-9);
  if (!status.is_ok()) return status;
  return pi;
}

util::StatusOr<linalg::Vector> try_power(const TransitionMatrix& p) {
  linalg::Vector pi = stationary_power_iteration(p);
  util::Status status = finish_distribution(pi, 0.0);
  if (!status.is_ok()) return status;
  // Power iteration always returns *something*; insist it is actually a
  // fixed point so periodic/reducible chains are reported, not mis-solved.
  const linalg::Vector next = linalg::mul(pi, p.matrix());
  const double residual = linalg::norm1(linalg::vsub(next, pi));
  if (!(residual < 1e-8))
    return util::Status(
        util::StatusCode::kNotErgodic,
        "power iteration did not converge to a fixed point (residual " +
            std::to_string(residual) + ")");
  return pi;
}

}  // namespace

linalg::Vector stationary_distribution(const TransitionMatrix& p) {
  const std::size_t n = p.size();
  // B = I - P^T + ones; B pi = 1.
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      b(i, j) = (i == j ? 1.0 : 0.0) - p(j, i) + 1.0;
  linalg::Vector rhs(n, 1.0);
  linalg::Vector pi = linalg::solve(b, rhs);
  // Guard + exact renormalization against round-off.
  double sum = 0.0;
  for (double x : pi) {
    if (!(x > -1e-9))
      throw std::runtime_error(
          "stationary_distribution: negative mass (chain not ergodic?)");
    sum += x;
  }
  for (double& x : pi) x = std::max(x, 0.0) / sum;
  return pi;
}

linalg::Vector stationary_power_iteration(const TransitionMatrix& p,
                                          std::size_t max_iters, double tol) {
  const std::size_t n = p.size();
  linalg::Vector x(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < max_iters; ++it) {
    linalg::Vector next = linalg::mul(x, p.matrix());
    const double change = linalg::norm1(linalg::vsub(next, x));
    x = std::move(next);
    if (change < tol) break;
  }
  double sum = 0.0;
  for (double v : x) sum += v;
  for (double& v : x) v /= sum;
  return x;
}

util::StatusOr<linalg::Vector> try_stationary_distribution(
    const TransitionMatrix& p, StationarySolver solver) {
  // Sparse-eligible chains go through the block aggregation/disaggregation
  // solver first; any failure (single block, decoupled blocks, slow A/D
  // convergence) silently falls through to the dense system. The power
  // rung is a recovery path and never dispatches sparse.
  if (solver == StationarySolver::kDirect && sparse_path_enabled(p.matrix())) {
    const sparse::SparseMatrix sp =
        sparse::SparseMatrix::from_dense(p.matrix());
    const partition::Blocks blocks = partition::structural_blocks(sp, {});
    util::StatusOr<linalg::Vector> pi =
        partition::try_block_stationary(sp, blocks);
    if (pi.ok()) return pi;
  }
  return solver == StationarySolver::kDirect ? try_direct(p) : try_power(p);
}

}  // namespace mocos::markov
