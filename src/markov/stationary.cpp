#include "src/markov/stationary.hpp"

#include <cmath>
#include <stdexcept>

#include "src/linalg/lu.hpp"
#include "src/linalg/norms.hpp"

namespace mocos::markov {

linalg::Vector stationary_distribution(const TransitionMatrix& p) {
  const std::size_t n = p.size();
  // B = I - P^T + ones; B pi = 1.
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      b(i, j) = (i == j ? 1.0 : 0.0) - p(j, i) + 1.0;
  linalg::Vector rhs(n, 1.0);
  linalg::Vector pi = linalg::solve(b, rhs);
  // Guard + exact renormalization against round-off.
  double sum = 0.0;
  for (double x : pi) {
    if (!(x > -1e-9))
      throw std::runtime_error(
          "stationary_distribution: negative mass (chain not ergodic?)");
    sum += x;
  }
  for (double& x : pi) x = std::max(x, 0.0) / sum;
  return pi;
}

linalg::Vector stationary_power_iteration(const TransitionMatrix& p,
                                          std::size_t max_iters, double tol) {
  const std::size_t n = p.size();
  linalg::Vector x(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < max_iters; ++it) {
    linalg::Vector next = linalg::mul(x, p.matrix());
    const double change = linalg::norm1(linalg::vsub(next, x));
    x = std::move(next);
    if (change < tol) break;
  }
  double sum = 0.0;
  for (double v : x) sum += v;
  for (double& v : x) v /= sum;
  return x;
}

}  // namespace mocos::markov
