#include "src/markov/group_inverse.hpp"

#include <utility>

#include "src/markov/fundamental.hpp"

namespace mocos::markov {

linalg::Matrix group_inverse(const linalg::Matrix& p,
                             const linalg::Vector& pi) {
  return fundamental_matrix(p, pi) - stationary_rows(pi);
}

util::StatusOr<linalg::Matrix> try_group_inverse(const linalg::Matrix& p,
                                                 const linalg::Vector& pi) {
  util::StatusOr<linalg::Matrix> z = try_fundamental_matrix(p, pi);
  if (!z.ok()) return z.status();
  return std::move(*z) - stationary_rows(pi);
}

bool satisfies_group_inverse_axioms(const linalg::Matrix& a,
                                    const linalg::Matrix& g, double tol) {
  if (!a.is_square() || a.rows() != g.rows() || a.cols() != g.cols())
    return false;
  const linalg::Matrix ag = a * g;
  const linalg::Matrix ga = g * a;
  return linalg::approx_equal(ag * a, a, tol) &&
         linalg::approx_equal(ga * g, g, tol) &&
         linalg::approx_equal(ag, ga, tol);
}

}  // namespace mocos::markov
