#include "src/markov/sensitivity.hpp"

#include <stdexcept>

namespace mocos::markov {

linalg::Vector stationary_directional_derivative(const ChainAnalysis& chain,
                                                 const linalg::Matrix& pdot) {
  // dπ = π Ṗ Z   (π as a row vector).
  const linalg::Vector pi_pdot = linalg::mul(chain.pi, pdot);
  return linalg::mul(pi_pdot, chain.z);
}

linalg::Matrix fundamental_directional_derivative(const ChainAnalysis& chain,
                                                  const linalg::Matrix& pdot) {
  // dZ = Z Ṗ Z - W Ṗ Z². Since W = 𝟙πᵀ, the correction is rank one:
  // W Ṗ Z² = 𝟙 (πᵀ Ṗ Z Z), so three row-vector products replace the cached
  // Z² (which would cost an O(M³) product per chain analysis to maintain).
  const linalg::Vector pi_pdot_z2 =
      linalg::mul(linalg::mul(linalg::mul(chain.pi, pdot), chain.z), chain.z);
  return chain.z * pdot * chain.z -
         linalg::Matrix::outer(linalg::Vector(chain.pi.size(), 1.0),
                               pi_pdot_z2);
}

linalg::Matrix chain_rule_gradient(const ChainAnalysis& chain,
                                   const linalg::Vector& du_dpi,
                                   const linalg::Matrix& du_dz,
                                   const linalg::Matrix& du_dp) {
  const std::size_t n = chain.p.size();
  if (du_dpi.size() != n || du_dz.rows() != n || du_dz.cols() != n ||
      du_dp.rows() != n || du_dp.cols() != n)
    throw std::invalid_argument("chain_rule_gradient: size mismatch");

  // π-channel: [grad]_kl += π_k * Σ_i z_li ∂U/∂π_i = π_k * (Z du_dpi)_l.
  const linalg::Vector z_dupi = linalg::mul(chain.z, du_dpi);

  // Z-channel, term 1: Σ_ij ∂U/∂z_ij z_ik z_lj = (Zᵀ G Zᵀ)_kl with G=du_dz.
  const linalg::Matrix zt = chain.z.transposed();
  const linalg::Matrix term_zz = zt * du_dz * zt;

  // Z-channel, term 2: -π_k Σ_ij ∂U/∂z_ij (Z²)_lj = -π_k (G (Z²)ᵀ summed
  // over i)_l; define s_l = Σ_ij G_ij (Z²)_lj = Σ_j (Σ_i G_ij) (Z²)_lj.
  // Z² appears only in this vector product, so compute s = Z (Z g) with two
  // matvecs instead of materializing Z².
  linalg::Vector col_sum_g(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) col_sum_g[j] += du_dz(i, j);
  const linalg::Vector s =
      linalg::mul(chain.z, linalg::mul(chain.z, col_sum_g));

  linalg::Matrix grad(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t l = 0; l < n; ++l) {
      grad(k, l) = chain.pi[k] * z_dupi[l] + term_zz(k, l) -
                   chain.pi[k] * s[l] + du_dp(k, l);
    }
  }
  return grad;
}

}  // namespace mocos::markov
