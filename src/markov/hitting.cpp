#include "src/markov/hitting.hpp"

#include <stdexcept>

#include "src/linalg/lu.hpp"

namespace mocos::markov {

namespace {

/// Solves (I - Q) x = rhs where Q is P restricted to states != excluded.
/// `rhs` is indexed over the restricted states in original order.
linalg::Vector solve_restricted(const TransitionMatrix& p,
                                std::size_t excluded,
                                const linalg::Vector& rhs) {
  const std::size_t n = p.size();
  const std::size_t m = n - 1;
  linalg::Matrix a(m, m);
  std::size_t row = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == excluded) continue;
    std::size_t col = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == excluded) continue;
      a(row, col) = (i == j ? 1.0 : 0.0) - p(i, j);
      ++col;
    }
    ++row;
  }
  return linalg::solve(a, rhs);
}

/// Expands a restricted vector (states != excluded) to full size, placing
/// `value_at_excluded` at the excluded index.
linalg::Vector expand(const linalg::Vector& restricted, std::size_t excluded,
                      double value_at_excluded) {
  linalg::Vector full(restricted.size() + 1, 0.0);
  std::size_t r = 0;
  for (std::size_t i = 0; i < full.size(); ++i)
    full[i] = (i == excluded) ? value_at_excluded : restricted[r++];
  return full;
}

}  // namespace

linalg::Vector hit_before(const TransitionMatrix& p, std::size_t target,
                          std::size_t competitor) {
  const std::size_t n = p.size();
  if (target >= n || competitor >= n)
    throw std::out_of_range("hit_before: state index");
  if (target == competitor)
    throw std::invalid_argument("hit_before: target == competitor");

  // h_i = Σ_j p_ij h_j for i ∉ {target, competitor}; boundary h_t=1, h_c=0.
  const std::size_t m = n - 2;
  std::vector<std::size_t> free_states;
  for (std::size_t i = 0; i < n; ++i)
    if (i != target && i != competitor) free_states.push_back(i);

  linalg::Matrix a(m, m);
  linalg::Vector rhs(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t i = free_states[r];
    rhs[r] = p(i, target);
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t j = free_states[c];
      a(r, c) = (i == j ? 1.0 : 0.0) - p(i, j);
    }
  }
  const linalg::Vector h_free = m == 0 ? linalg::Vector{} : linalg::solve(a, rhs);

  linalg::Vector h(n, 0.0);
  h[target] = 1.0;
  h[competitor] = 0.0;
  for (std::size_t r = 0; r < m; ++r) h[free_states[r]] = h_free[r];
  return h;
}

linalg::Vector expected_visits_before(const TransitionMatrix& p,
                                      std::size_t transient,
                                      std::size_t absorbing) {
  const std::size_t n = p.size();
  if (transient >= n || absorbing >= n)
    throw std::out_of_range("expected_visits_before: state index");
  if (transient == absorbing)
    throw std::invalid_argument("expected_visits_before: same state");

  // v = (I - Q)^{-1} e_transient over states != absorbing.
  linalg::Vector rhs(n - 1, 0.0);
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == absorbing) continue;
    if (i == transient) rhs[r] = 1.0;
    ++r;
  }
  const linalg::Vector v = solve_restricted(p, absorbing, rhs);
  return expand(v, absorbing, 0.0);
}

linalg::Vector passage_time_variance(const TransitionMatrix& p,
                                     std::size_t target) {
  const std::size_t n = p.size();
  if (target >= n) throw std::out_of_range("passage_time_variance: target");

  // First moments over non-target states: (I - Q) m = 1.
  const linalg::Vector m_res =
      solve_restricted(p, target, linalg::Vector(n - 1, 1.0));
  const linalg::Vector m = expand(m_res, target, 0.0);

  // Second moments: s_i = 1 + 2 (Q m)_i + (Q s)_i  =>  (I-Q) s = 1 + 2 Q m.
  linalg::Vector rhs(n - 1, 0.0);
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == target) continue;
    double qm = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != target) qm += p(i, j) * m[j];
    rhs[r] = 1.0 + 2.0 * qm;
    ++r;
  }
  const linalg::Vector s_res = solve_restricted(p, target, rhs);
  const linalg::Vector s = expand(s_res, target, 0.0);

  linalg::Vector var(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == target) continue;
    var[i] = s[i] - m[i] * m[i];
  }
  // Return-time moments for the target itself: condition on the first step.
  double m_ret = 1.0, s_ret = 0.0;
  double pm = 0.0, ps = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    pm += p(target, j) * m[j];
    ps += p(target, j) * s[j];
  }
  m_ret = 1.0 + pm;
  s_ret = 1.0 + 2.0 * pm + ps;
  var[target] = s_ret - m_ret * m_ret;
  return var;
}

}  // namespace mocos::markov
