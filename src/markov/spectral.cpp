#include "src/markov/spectral.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/linalg/eigen.hpp"
#include "src/linalg/norms.hpp"
#include "src/markov/stationary.hpp"

namespace mocos::markov {

double slem(const linalg::Matrix& p, const linalg::Vector& pi) {
  const std::size_t n = p.rows();
  if (pi.size() != n) throw std::invalid_argument("slem: size mismatch");
  // Deflate the Perron component: B = P - W has the same spectrum as P
  // except the eigenvalue 1 is replaced by 0.
  linalg::Matrix b = p - stationary_rows(pi);

  // Repeated squaring with per-step normalization:
  //   rho(B) = lim ||B^k||^(1/k);  k = 2^7 makes the polynomial factor in
  //   the Frobenius bound negligible (x^(1/128) ~= 1).
  // Tolerance, not exact zero: 1/norm overflows to inf for denormal norms,
  // and a chain whose deflated matrix is that small is numerically nilpotent.
  constexpr double kNormFloor = 1e-300;
  double norm = linalg::frobenius_norm(b);
  if (norm < kNormFloor) return 0.0;
  b *= 1.0 / norm;
  double log_scale = std::log(norm);
  double prev_log_scale = 0.0;
  std::size_t k = 1;
  for (int step = 0; step < 7; ++step) {
    b = b * b;
    prev_log_scale = log_scale;
    k *= 2;
    const double m = linalg::frobenius_norm(b);
    if (m < kNormFloor) return 0.0;  // nilpotent deflation: spectrum is {0}
    b *= 1.0 / m;
    log_scale = 2.0 * log_scale + std::log(m);
  }
  // For large k, ||B^k||_F ~= c * rho^k. The ratio of the last two dyadic
  // norms cancels the constant: log||B^k|| - log||B^(k/2)|| = (k/2) log rho.
  return std::exp((log_scale - prev_log_scale) / static_cast<double>(k / 2));
}

double slem(const TransitionMatrix& p) {
  return slem(p.matrix(), stationary_distribution(p));
}

double slem_exact(const TransitionMatrix& p) {
  const auto eig = chain_spectrum(p);
  return eig.size() < 2 ? 0.0 : std::abs(eig[1]);
}

std::vector<std::complex<double>> chain_spectrum(const TransitionMatrix& p) {
  return linalg::eigenvalues(p.matrix());
}

double relaxation_time(const TransitionMatrix& p) {
  const double lambda = slem(p);
  if (lambda >= 1.0) return std::numeric_limits<double>::infinity();
  return 1.0 / (1.0 - lambda);
}

std::size_t mixing_time(const TransitionMatrix& p, double eps,
                        std::size_t max_steps) {
  if (eps <= 0.0 || eps >= 1.0)
    throw std::invalid_argument("mixing_time: eps must be in (0,1)");
  const std::size_t n = p.size();
  const linalg::Vector pi = stationary_distribution(p);
  linalg::Matrix power = p.matrix();
  for (std::size_t t = 1; t <= max_steps; ++t) {
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double tv = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        tv += std::abs(power(i, j) - pi[j]);
      worst = std::max(worst, 0.5 * tv);
    }
    if (worst <= eps) return t;
    power = power * p.matrix();
  }
  throw std::runtime_error("mixing_time: did not mix within max_steps");
}

double kemeny_constant(const ChainAnalysis& chain) {
  // K = Σ_{j≠i} π_j R_ij = trace(Z) - 1 (start-independent); the -1 removes
  // the diagonal contribution π_i R_ii = 1 folded into trace(Z).
  double trace = 0.0;
  for (std::size_t i = 0; i < chain.z.rows(); ++i) trace += chain.z(i, i);
  return trace - 1.0;
}

double kemeny_constant_from_row(const ChainAnalysis& chain, std::size_t row) {
  const std::size_t n = chain.p.size();
  if (row >= n) throw std::out_of_range("kemeny_constant_from_row");
  double k = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == row) continue;
    k += chain.pi[j] * chain.r(row, j);
  }
  return k;
}

}  // namespace mocos::markov
