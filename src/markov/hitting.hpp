#pragma once

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"
#include "src/markov/transition_matrix.hpp"

namespace mocos::markov {

/// Hitting analytics beyond the first-passage means of Eq. 8 — the questions
/// a patrol planner actually asks ("if the sensor is at the depot, will it
/// check the gate before the vault?", "how often does it pass the gate per
/// visit to the vault?").

/// P(chain started at each state hits `target` before `competitor`).
/// target != competitor; the entries for the two special states are 1 and 0.
linalg::Vector hit_before(const TransitionMatrix& p, std::size_t target,
                          std::size_t competitor);

/// Expected number of visits to `transient` before the first arrival at
/// `absorbing`, per start state (the visit at time 0 counts when the chain
/// starts at `transient`). transient != absorbing.
linalg::Vector expected_visits_before(const TransitionMatrix& p,
                                      std::size_t transient,
                                      std::size_t absorbing);

/// Variance of the first-passage time to `target` from each start state
/// (complements the mean R_ij of Eq. 8; large variance means wildly
/// inconsistent revisit behaviour even when the mean looks fine).
linalg::Vector passage_time_variance(const TransitionMatrix& p,
                                     std::size_t target);

}  // namespace mocos::markov
