#pragma once

#include "src/markov/transition_matrix.hpp"

namespace mocos::markov {

/// Time-reversal utilities. The reversed chain P* with
/// p*_ij = π_j p_ji / π_i describes the schedule watched backwards; a chain
/// equal to its reversal is *reversible* (detailed balance), which for a
/// patrol means an observer cannot tell recorded footage played forwards
/// from backwards — a structural property relevant to the §VII
/// unpredictability discussion (reversible schedules leak less directional
/// information).
TransitionMatrix reversed_chain(const TransitionMatrix& p);

/// Detailed balance check: π_i p_ij == π_j p_ji for all pairs (within tol).
bool is_reversible(const TransitionMatrix& p, double tol = 1e-10);

}  // namespace mocos::markov
