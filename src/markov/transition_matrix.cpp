#include "src/markov/transition_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mocos::markov {

TransitionMatrix::TransitionMatrix(linalg::Matrix m, double tol)
    : m_(std::move(m)) {
  if (!m_.is_square() || m_.rows() < 2)
    throw std::invalid_argument("TransitionMatrix: need square, size >= 2");
  for (std::size_t i = 0; i < m_.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < m_.cols(); ++j) {
      double v = m_(i, j);
      if (v < -tol || v > 1.0 + tol)
        throw std::invalid_argument("TransitionMatrix: entry out of [0,1]");
      v = std::clamp(v, 0.0, 1.0);
      m_(i, j) = v;
      sum += v;
    }
    if (std::abs(sum - 1.0) > tol)
      throw std::invalid_argument("TransitionMatrix: row does not sum to 1");
    for (std::size_t j = 0; j < m_.cols(); ++j) m_(i, j) /= sum;
  }
}

TransitionMatrix TransitionMatrix::uniform(std::size_t n) {
  if (n < 2) throw std::invalid_argument("TransitionMatrix::uniform: n < 2");
  return TransitionMatrix(
      linalg::Matrix(n, n, 1.0 / static_cast<double>(n)));
}

TransitionMatrix TransitionMatrix::random(std::size_t n, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("TransitionMatrix::random: n < 2");
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double rem = 1.0;
    for (std::size_t j = 0; j + 1 < n; ++j) {
      const double v = rng.uniform() * rem / static_cast<double>(n);
      m(i, j) = v;
      rem -= v;
    }
    m(i, n - 1) = rem;
  }
  return TransitionMatrix(std::move(m));
}

double TransitionMatrix::min_entry() const {
  double best = 1.0;
  for (std::size_t i = 0; i < m_.rows(); ++i)
    for (std::size_t j = 0; j < m_.cols(); ++j)
      best = std::min(best, m_(i, j));
  return best;
}

}  // namespace mocos::markov
