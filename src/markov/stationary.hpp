#pragma once

#include "src/linalg/matrix.hpp"
#include "src/markov/transition_matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::markov {

/// Stationary distribution π of an ergodic chain: the unique probability
/// vector with π P = π.
///
/// Solved exactly via the nonsingular system (I - Pᵀ + 𝟙𝟙ᵀ) π = 𝟙, which has
/// π as its unique solution for ergodic P.
[[nodiscard]] linalg::Vector stationary_distribution(const TransitionMatrix& p);

/// Power-iteration fallback/cross-check: repeatedly applies x ← x P until the
/// L1 change drops below `tol` or `max_iters` is hit. Used in tests to verify
/// the direct solver and by the descent recovery ladder when the direct
/// solve fails.
[[nodiscard]] linalg::Vector stationary_power_iteration(
    const TransitionMatrix& p, std::size_t max_iters = 100000,
    double tol = 1e-13);

/// Which solver try_stationary_distribution should use. The descent recovery
/// ladder demotes itself from kDirect to kPowerIteration after a singular
/// direct solve.
enum class StationarySolver { kDirect, kPowerIteration };

/// Non-throwing stationary solve. Failure modes:
///  - kSingularMatrix: the direct system could not be factored;
///  - kNotErgodic: the solution has negative mass (reducible chain), or the
///    power iteration converged to something that is not a fixed point of P
///    (periodic chain);
///  - kNonFiniteValue: NaN/inf leaked into the solve.
/// The returned vector is validated (finite, non-negative, sums to 1) before
/// being handed back.
[[nodiscard]] util::StatusOr<linalg::Vector> try_stationary_distribution(
    const TransitionMatrix& p,
    StationarySolver solver = StationarySolver::kDirect);

}  // namespace mocos::markov
