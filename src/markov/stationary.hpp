#pragma once

#include "src/linalg/matrix.hpp"
#include "src/markov/transition_matrix.hpp"

namespace mocos::markov {

/// Stationary distribution π of an ergodic chain: the unique probability
/// vector with π P = π.
///
/// Solved exactly via the nonsingular system (I - Pᵀ + 𝟙𝟙ᵀ) π = 𝟙, which has
/// π as its unique solution for ergodic P.
linalg::Vector stationary_distribution(const TransitionMatrix& p);

/// Power-iteration fallback/cross-check: repeatedly applies x ← x P until the
/// L1 change drops below `tol` or `max_iters` is hit. Used in tests to verify
/// the direct solver.
linalg::Vector stationary_power_iteration(const TransitionMatrix& p,
                                          std::size_t max_iters = 100000,
                                          double tol = 1e-13);

}  // namespace mocos::markov
