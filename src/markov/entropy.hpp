#pragma once

#include "src/linalg/matrix.hpp"
#include "src/markov/transition_matrix.hpp"

namespace mocos::markov {

/// Entropy rate of a stationary Markov chain (§VII, Koralov & Sinai):
///   H = -Σ_i π_i Σ_j p_ij ln p_ij.
/// Terms with p_ij = 0 contribute 0 (the x ln x → 0 limit).
double entropy_rate(const linalg::Matrix& p, const linalg::Vector& pi);

/// Convenience overload computing π internally.
double entropy_rate(const TransitionMatrix& p);

/// Upper bound ln(M) — the entropy of the uniform chain on M states; handy
/// for normalizing entropy reports in the benches.
double max_entropy_rate(std::size_t n_states);

}  // namespace mocos::markov
