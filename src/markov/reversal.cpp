#include "src/markov/reversal.hpp"

#include <cmath>

#include "src/markov/stationary.hpp"

namespace mocos::markov {

TransitionMatrix reversed_chain(const TransitionMatrix& p) {
  const std::size_t n = p.size();
  const linalg::Vector pi = stationary_distribution(p);
  linalg::Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      r(i, j) = pi[j] * p(j, i) / pi[i];
  return TransitionMatrix(std::move(r));
}

bool is_reversible(const TransitionMatrix& p, double tol) {
  const linalg::Vector pi = stationary_distribution(p);
  for (std::size_t i = 0; i < p.size(); ++i)
    for (std::size_t j = i + 1; j < p.size(); ++j)
      if (std::abs(pi[i] * p(i, j) - pi[j] * p(j, i)) > tol) return false;
  return true;
}

}  // namespace mocos::markov
