#pragma once

#include "src/linalg/matrix.hpp"
#include "src/util/rng.hpp"

namespace mocos::markov {

/// Row-stochastic transition matrix of the scheduling Markov chain
/// (the paper's P = {p_ij}; §III-A).
///
/// Invariants validated at construction:
///  - square, size >= 2;
///  - entries in [-tol, 1+tol], clamped into [0,1];
///  - each row sums to 1 within tol, then exactly renormalized.
class TransitionMatrix {
 public:
  explicit TransitionMatrix(linalg::Matrix m, double tol = 1e-8);

  /// The paper's V1 initial condition: p_ij = 1/M for all i,j.
  static TransitionMatrix uniform(std::size_t n);

  /// The paper's V2 random initial condition: within each row, entry j < M-1
  /// gets rand * rem / M where rem is the probability still unassigned, and
  /// the last column absorbs the remainder.
  static TransitionMatrix random(std::size_t n, util::Rng& rng);

  std::size_t size() const { return m_.rows(); }
  double operator()(std::size_t i, std::size_t j) const { return m_(i, j); }
  const linalg::Matrix& matrix() const { return m_; }
  linalg::Vector row(std::size_t i) const { return m_.row(i); }

  /// Smallest entry — the barrier terms keep this strictly positive.
  double min_entry() const;

 private:
  linalg::Matrix m_;
};

}  // namespace mocos::markov
