#pragma once

#include "src/markov/transition_matrix.hpp"

namespace mocos::markov {

/// Structural checks on the chain's transition graph (edges where
/// p_ij > tol). The paper assumes ergodicity throughout (§III-A); the barrier
/// terms of U_ε keep every p_ij strictly inside (0,1), which makes the chain
/// irreducible and aperiodic — these predicates let tests and users verify
/// that directly.
bool is_irreducible(const TransitionMatrix& p, double tol = 0.0);

/// Aperiodicity via the gcd of directed cycle lengths through state 0 of the
/// (irreducible) transition graph; standard BFS-label algorithm.
bool is_aperiodic(const TransitionMatrix& p, double tol = 0.0);

/// Irreducible and aperiodic.
bool is_ergodic(const TransitionMatrix& p, double tol = 0.0);

}  // namespace mocos::markov
