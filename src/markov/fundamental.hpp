#pragma once

#include "src/linalg/matrix.hpp"
#include "src/markov/stationary.hpp"
#include "src/markov/transition_matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::markov {

/// Kemeny–Snell fundamental matrix Z = (I - P + W)^(-1), where W = 𝟙πᵀ
/// (every row equals the stationary distribution). The paper uses Z (via the
/// group inverse A# = Z - W, Eq. 7) to express first passage times (Eq. 8)
/// and the chain sensitivities (§IV, following Schweitzer).
[[nodiscard]] linalg::Matrix fundamental_matrix(const linalg::Matrix& p,
                                                const linalg::Vector& pi);

/// Non-throwing variant: kSingularMatrix (with the LU pivot diagnostics in
/// the message) when I - P + W cannot be inverted, kNonFiniteValue when the
/// inverse contains NaN/inf.
[[nodiscard]] util::StatusOr<linalg::Matrix> try_fundamental_matrix(
    const linalg::Matrix& p, const linalg::Vector& pi);

/// W = 𝟙πᵀ.
[[nodiscard]] linalg::Matrix stationary_rows(const linalg::Vector& pi);

/// One-stop analysis of an ergodic chain: everything the cost function and
/// its gradient need, computed once per optimizer iteration.
struct ChainAnalysis {
  TransitionMatrix p;
  linalg::Vector pi;   // stationary distribution
  linalg::Matrix w;    // 1 pi^T
  linalg::Matrix z;    // fundamental matrix
  linalg::Matrix r;    // expected first passage times R_ij (Eq. 8)
};

[[nodiscard]] ChainAnalysis analyze_chain(const TransitionMatrix& p);

/// Non-throwing chain analysis — the entry point the descent recovery ladder
/// uses. Runs the selected stationary solver, then the fundamental-matrix
/// inversion and passage times, validating each stage; the first failure is
/// returned as a structured Status instead of an exception or NaN-laden
/// result.
[[nodiscard]] util::StatusOr<ChainAnalysis> try_analyze_chain(
    const TransitionMatrix& p,
    StationarySolver solver = StationarySolver::kDirect);

}  // namespace mocos::markov
