#pragma once

#include <cstddef>
#include <optional>

#include "src/linalg/lu.hpp"
#include "src/linalg/matrix.hpp"
#include "src/markov/fundamental.hpp"
#include "src/markov/transition_matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::markov {

/// Tuning knobs for ChainSolveCache. The defaults keep the incremental path
/// indistinguishable from full solves (agreement to ~1e-10 over hundreds of
/// consecutive row updates) while still amortizing almost every probe.
struct IncrementalConfig {
  /// Master switch; when false every update is a full O(M³) re-solve (the
  /// MOCOS_NO_INCREMENTAL A/B verification mode).
  bool enabled = true;
  /// A Sherman–Morrison update whose denominator |1 - bᵀG e_i| falls below
  /// this floor is rejected (near-singular perturbed system) and answered
  /// with a full re-factorization instead.
  double min_denominator = 1e-8;
  /// Full re-factorization after this many consecutive row updates, bounding
  /// the O(ε·κ) round-off drift the rank-one updates accumulate.
  std::size_t refactor_period = 64;
  /// After every incremental refresh the stationary residual ‖πP − π‖∞ is
  /// checked against this tolerance; a violation forces a full rebuild (and
  /// counts in Stats::residual_fallbacks).
  double residual_tolerance = 1e-9;
};

/// Incremental Markov-chain solver cache (rank-one updates).
///
/// Coordinate-wise steepest descent perturbs one row of P per probe, so each
/// probe's chain analysis is an exact rank-one update of the previous one.
/// The cache maintains the resolvent
///
///   G = (I − P + 𝟙cᵀ)⁻¹,   c = 𝟙/M  (fixed, independent of P),
///
/// which is nonsingular for every irreducible row-stochastic P and from which
/// all of Eqs. 5–8 follow in O(M²):
///
///   πᵀ = cᵀG          (stationary distribution, Eq. 5)
///   A# = G − 𝟙(πᵀG)   (group inverse of A = I − P, Eq. 7)
///   Z  = A# + 𝟙πᵀ     (Kemeny–Snell fundamental matrix, Eq. 6)
///   R  from (Z, π)    (first passage times, Eq. 8)
///
/// Replacing row i of P by r adds −e_i bᵀ (b = r − p_i, bᵀ𝟙 = 0) to the
/// resolvent system, so Sherman–Morrison refreshes G in O(M²):
///
///   G' = G + (G e_i)(bᵀG) / (1 − bᵀG e_i).
///
/// When the denominator is ill-conditioned (|1 − bᵀG e_i| below
/// IncrementalConfig::min_denominator), or drift/residual guards trip, the
/// cache falls back to a full guarded re-factorization through the same
/// `Try*` layer the descent recovery ladder uses — the caller only ever sees
/// a Status.
class ChainSolveCache {
 public:
  explicit ChainSolveCache(IncrementalConfig config = {});

  /// Full O(M³) (re)build of the cache state from scratch. Any failure
  /// (non-ergodic chain, singular resolvent, non-finite values) invalidates
  /// the cache; has_state() turns false and the status explains why.
  [[nodiscard]] util::Status reset(const TransitionMatrix& p);

  /// Replaces row i of the cached P by `new_row` (a probability vector of
  /// matching size) via Sherman–Morrison; O(M²) on the happy path, full
  /// rebuild on guard trips. Requires has_state().
  [[nodiscard]] util::Status update_row(std::size_t i,
                                        const linalg::Vector& new_row);

  /// Brings the cache to `p` by diffing rows against the cached matrix and
  /// applying a rank-one update per changed row. Falls back to reset() when
  /// the cache is empty, the size changed, too many rows changed to beat a
  /// re-factorization, or any per-row guard trips. This is the entry point
  /// the descent drivers call for every probe.
  [[nodiscard]] util::Status update(const TransitionMatrix& p);

  /// True when the cache holds a valid analysis (last reset/update was ok).
  [[nodiscard]] bool has_state() const { return analysis_.has_value(); }

  /// The cached analysis; requires has_state().
  [[nodiscard]] const ChainAnalysis& analysis() const { return *analysis_; }

  /// Group inverse A# = Z − W (Eq. 7), maintained alongside the analysis;
  /// requires has_state().
  [[nodiscard]] const linalg::Matrix& a_sharp() const { return a_sharp_; }

  /// LU factors of the resolvent system from the most recent full *dense*
  /// factorization (empty when the full-solve A/B path is active or when the
  /// last rebuild went through the sparse resolvent ladder, which produces
  /// G without dense LU factors).
  [[nodiscard]] const std::optional<linalg::LuDecomposition>& lu() const {
    return lu_;
  }

  /// Counters for tests, benches, and the CLI recovery log.
  struct Stats {
    std::size_t full_solves = 0;            // reset() completions
    std::size_t sparse_full_solves = 0;     // subset of full_solves whose G
                                            // came from the sparse ladder
    std::size_t exact_hits = 0;             // update() with zero changed rows
                                            // (re-probe of the cached iterate)
    std::size_t incremental_row_updates = 0;
    std::size_t denominator_fallbacks = 0;  // |denom| < min_denominator
    std::size_t drift_refactors = 0;        // refactor_period exceeded
    std::size_t residual_fallbacks = 0;     // ‖πP − π‖∞ check failed

    /// Accumulates another cache's counters (an optimization run can span
    /// several caches — e.g. the stochastic phase and its quench polish).
    void add(const Stats& other) {
      full_solves += other.full_solves;
      sparse_full_solves += other.sparse_full_solves;
      exact_hits += other.exact_hits;
      incremental_row_updates += other.incremental_row_updates;
      denominator_fallbacks += other.denominator_fallbacks;
      drift_refactors += other.drift_refactors;
      residual_fallbacks += other.residual_fallbacks;
    }

    /// Counters accumulated since `baseline` (a snapshot of the same cache
    /// taken earlier). Lets a descent run report only its own work when it
    /// rides a long-lived shared cache (mocos_serve warm reuse) whose
    /// counters span many requests.
    [[nodiscard]] Stats delta_since(const Stats& baseline) const {
      Stats d;
      d.full_solves = full_solves - baseline.full_solves;
      d.sparse_full_solves = sparse_full_solves - baseline.sparse_full_solves;
      d.exact_hits = exact_hits - baseline.exact_hits;
      d.incremental_row_updates =
          incremental_row_updates - baseline.incremental_row_updates;
      d.denominator_fallbacks =
          denominator_fallbacks - baseline.denominator_fallbacks;
      d.drift_refactors = drift_refactors - baseline.drift_refactors;
      d.residual_fallbacks = residual_fallbacks - baseline.residual_fallbacks;
      return d;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] const IncrementalConfig& config() const { return config_; }

  /// True when rank-one updates are in use: config().enabled and not
  /// globally disabled via MOCOS_NO_INCREMENTAL / --no-incremental.
  [[nodiscard]] bool incremental_active() const;

 private:
  /// Derives π, W, Z, A#, R from g_ and installs the analysis for `p`.
  [[nodiscard]] util::Status derive_from_resolvent(const TransitionMatrix& p);

  /// The Sherman–Morrison core: refreshes g_ for row i := new_row. Returns
  /// kSingularMatrix when the denominator guard (or the injected
  /// kIncrementalDenominator fault) trips; the caller then does a full
  /// rebuild.
  [[nodiscard]] util::Status apply_row_update(std::size_t i,
                                              const linalg::Vector& new_row);

  /// ‖πP − π‖∞ of the cached analysis.
  [[nodiscard]] double stationary_residual() const;

  IncrementalConfig config_;
  linalg::Matrix p_mat_;    // cached transition matrix entries
  linalg::Matrix g_;        // resolvent (empty on the full-solve A/B path)
  linalg::Matrix a_sharp_;  // group inverse A#
  std::optional<linalg::LuDecomposition> lu_;
  std::optional<ChainAnalysis> analysis_;
  std::size_t updates_since_refactor_ = 0;
  Stats stats_;
};

/// Process-wide escape hatch: true when the MOCOS_NO_INCREMENTAL environment
/// variable is set (to anything but "0"/"false"/"off"/"") or
/// force_disable_incremental(true) was called (the CLI --no-incremental
/// flag / `incremental = false` config key). Caches constructed while this
/// holds run every update as a full solve, giving a bit-level A/B reference.
[[nodiscard]] bool incremental_globally_disabled();
void force_disable_incremental(bool disabled);

}  // namespace mocos::markov
