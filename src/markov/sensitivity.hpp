#pragma once

#include "src/linalg/matrix.hpp"
#include "src/markov/fundamental.hpp"

namespace mocos::markov {

/// Schweitzer (1968) perturbation formulas for an ergodic chain, as used in
/// the paper's §IV. For a direction Ṗ in transition-matrix space:
///
///   dπ/dt = π Ṗ Z              (component-wise dπ_i = Σ_{k,j} π_k z_ji Ṗ_kj)
///   dZ/dt = Z Ṗ Z - W Ṗ Z²
///
/// These directional forms are used by tests to validate the adjoint
/// (gradient) combination in cost/gradient.cpp against finite differences.
linalg::Vector stationary_directional_derivative(const ChainAnalysis& chain,
                                                 const linalg::Matrix& pdot);

linalg::Matrix fundamental_directional_derivative(const ChainAnalysis& chain,
                                                  const linalg::Matrix& pdot);

/// Adjoint (reverse-mode) combination, Eq. 10 of the paper: given the partial
/// derivatives of a scalar U with respect to π, Z and P (holding the others
/// fixed), returns the full gradient matrix
///
///   [D_P U]_kl = Σ_i π_k z_li ∂U/∂π_i
///              + Σ_ij ∂U/∂z_ij [ z_ik z_lj - π_k (Z²)_lj ]
///              + ∂U/∂p_kl .
linalg::Matrix chain_rule_gradient(const ChainAnalysis& chain,
                                   const linalg::Vector& du_dpi,
                                   const linalg::Matrix& du_dz,
                                   const linalg::Matrix& du_dp);

}  // namespace mocos::markov
