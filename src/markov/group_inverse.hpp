#pragma once

#include "src/linalg/matrix.hpp"
#include "src/markov/transition_matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::markov {

/// Group generalized inverse A# of A = I - P for an ergodic chain
/// (Meyer 1975, the paper's §III-B). Computed as A# = Z - W, which satisfies
/// the defining axioms A A# A = A, A# A A# = A#, A A# = A# A, and the paper's
/// Eqs. (5) and (7): W = I - A A#, Z = I + P A#.
[[nodiscard]] linalg::Matrix group_inverse(const linalg::Matrix& p,
                                           const linalg::Vector& pi);

/// Non-throwing variant built on try_fundamental_matrix: returns the
/// structured kSingularMatrix / kNonFiniteValue status of the underlying
/// inversion instead of throwing.
[[nodiscard]] util::StatusOr<linalg::Matrix> try_group_inverse(
    const linalg::Matrix& p, const linalg::Vector& pi);

/// Checks the three group-inverse axioms to tolerance `tol`. Exposed so the
/// property-test suite (and any user validating a hand-built chain) can
/// verify a candidate inverse.
[[nodiscard]] bool satisfies_group_inverse_axioms(const linalg::Matrix& a,
                                                  const linalg::Matrix& g,
                                                  double tol);

}  // namespace mocos::markov
