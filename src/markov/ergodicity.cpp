#include "src/markov/ergodicity.hpp"

#include <numeric>
#include <queue>
#include <vector>

namespace mocos::markov {

namespace {

std::vector<std::vector<std::size_t>> adjacency(const TransitionMatrix& p,
                                                double tol, bool reversed) {
  const std::size_t n = p.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (p(i, j) > tol) adj[reversed ? j : i].push_back(reversed ? i : j);
  return adj;
}

bool all_reachable_from_zero(const std::vector<std::vector<std::size_t>>& adj) {
  std::vector<char> seen(adj.size(), 0);
  std::queue<std::size_t> q;
  q.push(0);
  seen[0] = 1;
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (std::size_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        q.push(v);
      }
    }
  }
  for (char s : seen)
    if (!s) return false;
  return true;
}

}  // namespace

bool is_irreducible(const TransitionMatrix& p, double tol) {
  // Strong connectivity <=> every state reachable from 0 in both the forward
  // and the reversed graph.
  return all_reachable_from_zero(adjacency(p, tol, /*reversed=*/false)) &&
         all_reachable_from_zero(adjacency(p, tol, /*reversed=*/true));
}

bool is_aperiodic(const TransitionMatrix& p, double tol) {
  // BFS-label method: the period divides |level(u) + 1 - level(v)| for every
  // edge u->v; the chain is aperiodic iff the gcd over all edges is 1.
  const auto adj = adjacency(p, tol, false);
  const std::size_t n = p.size();
  std::vector<long> level(n, -1);
  std::queue<std::size_t> q;
  q.push(0);
  level[0] = 0;
  long g = 0;
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (std::size_t v : adj[u]) {
      if (level[v] < 0) {
        level[v] = level[u] + 1;
        q.push(v);
      } else {
        g = std::gcd(g, std::abs(level[u] + 1 - level[v]));
      }
    }
  }
  for (long lv : level)
    if (lv < 0) return false;  // not even reachable; treat as non-ergodic
  return g == 1;
}

bool is_ergodic(const TransitionMatrix& p, double tol) {
  return is_irreducible(p, tol) && is_aperiodic(p, tol);
}

}  // namespace mocos::markov
