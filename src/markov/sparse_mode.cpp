#include "src/markov/sparse_mode.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace mocos::markov {

namespace {
std::atomic<int> g_forced{-1};  // -1 = unset (kAuto), else SparseMode value
}  // namespace

void force_sparse_mode(SparseMode mode) {
  g_forced.store(static_cast<int>(mode), std::memory_order_relaxed);
}

SparseMode sparse_mode() {
  const int v = g_forced.load(std::memory_order_relaxed);
  return v < 0 ? SparseMode::kAuto : static_cast<SparseMode>(v);
}

bool sparse_globally_disabled() {
  const char* env = std::getenv("MOCOS_NO_SPARSE");
  if (env == nullptr) return false;
  const std::string v(env);
  return !(v.empty() || v == "0" || v == "false" || v == "off");
}

bool sparse_path_enabled(const linalg::Matrix& p) {
  if (sparse_globally_disabled()) return false;
  const std::size_t n = p.rows();
  switch (sparse_mode()) {
    case SparseMode::kOff:
      return false;
    case SparseMode::kOn:
      return n >= kSparseForcedMinSize;
    case SparseMode::kAuto:
      break;
  }
  if (n < kSparseAutoMinSize) return false;
  std::size_t nonzeros = 0;
  const double* data = p.data();
  const std::size_t total = n * p.cols();
  for (std::size_t i = 0; i < total; ++i)
    // mocos-lint: allow(float-eq) — structural zeros are stored exactly
    if (data[i] != 0.0) ++nonzeros;
  return static_cast<double>(nonzeros) <=
         kSparseAutoMaxDensity * static_cast<double>(total);
}

}  // namespace mocos::markov
