#pragma once

#include "src/linalg/matrix.hpp"
#include "src/util/status.hpp"

namespace mocos::markov {

/// Expected first passage times R_ij = E[steps to first reach j from i],
/// with R_ii the mean return time 1/π_i.
///
/// Computed from the fundamental matrix (Eq. 8):
///   R_ij = (δ_ij - z_ij + z_jj) / π_j.
/// (The paper prints /π_i, but D = diag(1/π) RIGHT-multiplies in Eq. 6, so
/// the divisor is the destination's stationary mass — this also is the only
/// reading under which R_ii = 1/π_i.)
[[nodiscard]] linalg::Matrix first_passage_times(const linalg::Matrix& z,
                                                 const linalg::Vector& pi);

/// Non-throwing variant: validates π is strictly positive before dividing
/// (kNotErgodic otherwise) and that the resulting times are finite
/// (kNonFiniteValue), instead of silently producing ±inf rows.
[[nodiscard]] util::StatusOr<linalg::Matrix> try_first_passage_times(
    const linalg::Matrix& z, const linalg::Vector& pi);

/// Independent cross-check used by tests: solves, for each destination j,
/// the linear one-step system  R_ij = 1 + Σ_{k≠j} p_ik R_kj  (i ≠ j) and
/// R_jj = 1 + Σ_{k≠j} p_jk R_kj.
[[nodiscard]] linalg::Matrix first_passage_times_by_solve(
    const linalg::Matrix& p);

}  // namespace mocos::markov
