#pragma once

#include <cstddef>

#include "src/linalg/matrix.hpp"

namespace mocos::markov {

/// Selection policy for the sparse chain-analysis path (CSR resolvent +
/// block decomposition, src/sparse/ + src/partition/).
enum class SparseMode {
  kAuto,  // size/density heuristic decides per chain (the default)
  kOn,    // force the sparse path wherever it is defined (M >= 8)
  kOff,   // dense pipeline only
};

/// Process-wide override set by the CLI (--sparse / `sparse = ...` config
/// key). kAuto until forced.
void force_sparse_mode(SparseMode mode);
[[nodiscard]] SparseMode sparse_mode();

/// True when the MOCOS_NO_SPARSE environment variable is set (to anything
/// but "0"/"false"/"off"/"") — the A/B escape hatch mirroring
/// MOCOS_NO_INCREMENTAL: it wins over any forced mode, so a bit-level dense
/// reference run never needs a rebuild or flag plumbing.
[[nodiscard]] bool sparse_globally_disabled();

/// The gate every sparsity-aware entry point consults: should chain `p` go
/// through the sparse analysis?
///  - MOCOS_NO_SPARSE set → never;
///  - forced kOff → never; forced kOn → whenever M >= 8;
///  - kAuto → M >= 192 and density(P) <= 0.25: below that size the dense
///    O(M³) pipeline is already microseconds and the sparse machinery is
///    pure overhead (and existing small-map flows stay byte-identical).
[[nodiscard]] bool sparse_path_enabled(const linalg::Matrix& p);

/// The kAuto thresholds, exposed for tests and the docs.
inline constexpr std::size_t kSparseAutoMinSize = 192;
inline constexpr double kSparseAutoMaxDensity = 0.25;
inline constexpr std::size_t kSparseForcedMinSize = 8;

}  // namespace mocos::markov
