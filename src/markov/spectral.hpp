#pragma once

#include <complex>
#include <vector>

#include "src/markov/fundamental.hpp"
#include "src/markov/transition_matrix.hpp"

namespace mocos::markov {

/// Spectral diagnostics of the scheduling chain. The speed at which the
/// sensor's location distribution forgets its start — the mixing time —
/// bounds how fast the realized coverage shares converge to the analytic
/// C̄_i, and therefore how long a simulation (or a real deployment) must run
/// before the optimizer's predictions hold.

/// Second-largest eigenvalue modulus (SLEM) of an ergodic transition matrix:
/// the spectral radius of P − W (P with its Perron component deflated).
/// Computed by repeated squaring with Frobenius-norm ratios, which converges
/// for complex conjugate pairs as well as real eigenvalues.
double slem(const TransitionMatrix& p);
double slem(const linalg::Matrix& p, const linalg::Vector& pi);

/// Exact SLEM from the full spectrum (QR eigen-solver); slem() above is a
/// cheaper repeated-squaring estimate of the same quantity.
double slem_exact(const TransitionMatrix& p);

/// The chain's full spectrum, sorted by descending modulus; for an ergodic
/// chain the leading eigenvalue is 1 and all others lie strictly inside the
/// unit disk. Complex pairs indicate rotational (cyclic) structure in the
/// schedule.
std::vector<std::complex<double>> chain_spectrum(const TransitionMatrix& p);

/// Relaxation time 1/(1 − SLEM); +infinity if SLEM is (numerically) 1.
double relaxation_time(const TransitionMatrix& p);

/// First step t at which the worst-start total-variation distance
/// max_i ||e_i P^t − π||_TV drops below `eps`. Exact (iterates the matrix),
/// so intended for the small chains this library optimizes.
std::size_t mixing_time(const TransitionMatrix& p, double eps = 0.25,
                        std::size_t max_steps = 100000);

/// Kemeny's constant K = Σ_j π_j R_ij — famously independent of the start
/// state i: the expected steps to reach a π-random destination. Computed as
/// trace(Z) via the fundamental matrix (K = trace(Z) - ... see docs in the
/// implementation); a one-number summary of how "navigable" the schedule is.
double kemeny_constant(const ChainAnalysis& chain);

/// Cross-check variant computed from the passage-time matrix directly
/// (Σ_j π_j R_ij for the given start row). Used by tests to verify the
/// start-independence property.
double kemeny_constant_from_row(const ChainAnalysis& chain, std::size_t row);

}  // namespace mocos::markov
