#include "src/markov/incremental.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/markov/passage_times.hpp"
#include "src/markov/sparse_mode.hpp"
#include "src/markov/stationary.hpp"
#include "src/obs/phase_timer.hpp"
#include "src/obs/trace.hpp"
#include "src/partition/block_solver.hpp"
#include "src/sparse/sparse_matrix.hpp"
#include "src/util/fault_injection.hpp"
#include "src/linalg/guard.hpp"

namespace mocos::markov {

namespace {

std::atomic<bool> g_force_disable{false};

/// Break-even for multi-row updates: one Sherman–Morrison row costs ~3M²
/// flops against ~M³/3 + M·M² for factor + explicit inverse, so beyond
/// roughly a third of the rows a full re-factorization wins. Descent steps
/// that move every row therefore rebuild; line-search re-evaluations of an
/// already-analyzed iterate cost nothing.
constexpr double kRebuildRowFraction = 1.0 / 3.0;

/// Resolvent system I − P + 𝟙cᵀ with the fixed reference vector c = 𝟙/M.
/// Unlike I − P + W this does not depend on π, so a row change of P is a
/// genuine rank-one perturbation of a constant-offset system.
linalg::Matrix resolvent_system(const linalg::Matrix& p) {
  const std::size_t n = p.rows();
  const double c = 1.0 / static_cast<double>(n);
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m(i, j) = (i == j ? 1.0 : 0.0) - p(i, j) + c;
  return m;
}

/// Trace note for the rare rank-one-update bailouts (guard trips, drift
/// refactors). Counters for the same events ride on Stats and are exported
/// once per descent run via record_cache_metrics.
void note_fallback(const char* kind) {
  if (obs::trace_active()) {
    obs::trace_instant("chain_cache.fallback", "markov",
                       obs::TraceArgs().str("kind", kind));
  }
}

}  // namespace

bool incremental_globally_disabled() {
  if (g_force_disable.load(std::memory_order_relaxed)) return true;
  const char* env = std::getenv("MOCOS_NO_INCREMENTAL");
  if (env == nullptr) return false;
  const std::string v(env);
  return !(v.empty() || v == "0" || v == "false" || v == "off");
}

void force_disable_incremental(bool disabled) {
  g_force_disable.store(disabled, std::memory_order_relaxed);
}

ChainSolveCache::ChainSolveCache(IncrementalConfig config) : config_(config) {}

bool ChainSolveCache::incremental_active() const {
  return config_.enabled && !incremental_globally_disabled();
}

util::Status ChainSolveCache::reset(const TransitionMatrix& p) {
  obs::ScopedPhase phase("chain.full_solve");
  analysis_.reset();
  lu_.reset();
  g_ = linalg::Matrix();
  updates_since_refactor_ = 0;
  p_mat_ = p.matrix();

  util::Status input = util::check_row_stochastic(p_mat_);
  if (!input.is_ok()) return input;

  if (!incremental_active()) {
    // A/B escape hatch: the exact full pipeline the descent ladder has
    // always used, byte for byte.
    util::StatusOr<ChainAnalysis> chain = try_analyze_chain(p);
    if (!chain.ok()) return chain.status();
    a_sharp_ = chain->z - chain->w;  // Eq. 7
    analysis_ = std::move(*chain);
    ++stats_.full_solves;
    return util::Status::ok();
  }

  bool sparse_built = false;
  if (sparse_path_enabled(p_mat_)) {
    // Sparse rebuild: the resolvent ladder produces the same G the dense
    // factorization would (agreement bounded by conditioning, well inside
    // the 1e-10 parity contract); the Sherman–Morrison row updates then
    // operate on it exactly as on a dense-built G. Failure falls through to
    // the dense factorization — never a new failure mode.
    const sparse::SparseMatrix sp = sparse::SparseMatrix::from_dense(p_mat_);
    const std::size_t n = p_mat_.rows();
    const linalg::Vector c(n, 1.0 / static_cast<double>(n));
    util::StatusOr<linalg::Matrix> sparse_g =
        partition::try_sparse_resolvent(sp, c);
    if (sparse_g.ok() && util::all_finite(*sparse_g)) {
      g_ = std::move(*sparse_g);
      sparse_built = true;
      ++stats_.sparse_full_solves;
    } else {
      note_fallback("sparse-reset");
    }
  }
  if (!sparse_built) {
    util::StatusOr<linalg::LuDecomposition> lu =
        linalg::LuDecomposition::try_factor(resolvent_system(p_mat_));
    if (!lu.ok()) return lu.status();
    g_ = lu->inverse();
    util::Status finite = util::check_finite(g_, "resolvent G");
    if (!finite.is_ok()) {
      g_ = linalg::Matrix();
      return finite;
    }
    lu_ = std::move(*lu);
  }

  util::Status derived = derive_from_resolvent(p);
  if (!derived.is_ok()) {
    analysis_.reset();
    lu_.reset();
    g_ = linalg::Matrix();
    return derived;
  }
  ++stats_.full_solves;
  return util::Status::ok();
}

util::Status ChainSolveCache::derive_from_resolvent(
    const TransitionMatrix& p) {
  const std::size_t n = g_.rows();
  const double c = 1.0 / static_cast<double>(n);

  // πᵀ = cᵀG: the (scaled) column sums of the resolvent.
  linalg::Vector pi(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) pi[j] += g_(i, j);
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    pi[j] *= c;
    sum += pi[j];
  }
  util::Status finite = util::check_finite(pi, "incremental pi");
  if (!finite.is_ok()) return finite;
  util::Status positive =
      util::check_strictly_positive(pi, "incremental pi");
  if (!positive.is_ok()) return positive;
  // G𝟙 = 𝟙 exactly, so the mass cᵀG𝟙 is 1 up to round-off; renormalize.
  for (std::size_t j = 0; j < n; ++j) pi[j] /= sum;

  // A# = G − 𝟙(πᵀG) (Eq. 7), then Z = A# + W (Eq. 6 rearranged).
  const linalg::Vector pi_g = linalg::mul(pi, g_);
  a_sharp_ = linalg::Matrix(n, n);
  linalg::Matrix z(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a_sharp_(i, j) = g_(i, j) - pi_g[j];
      z(i, j) = a_sharp_(i, j) + pi[j];
    }
  }

  util::StatusOr<linalg::Matrix> r = try_first_passage_times(z, pi);
  if (!r.ok()) return r.status();

  linalg::Matrix w = stationary_rows(pi);
  analysis_.emplace(ChainAnalysis{p, std::move(pi), std::move(w),
                                  std::move(z), std::move(*r)});
  return util::Status::ok();
}

double ChainSolveCache::stationary_residual() const {
  const std::size_t n = p_mat_.rows();
  const linalg::Vector& pi = analysis_->pi;
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double acc = -pi[j];
    for (std::size_t i = 0; i < n; ++i) acc += pi[i] * p_mat_(i, j);
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

util::Status ChainSolveCache::apply_row_update(std::size_t i,
                                               const linalg::Vector& new_row) {
  obs::ScopedPhase phase("chain.row_update");
  const std::size_t n = g_.rows();
  // P' = P + e_i bᵀ perturbs the resolvent system by −e_i bᵀ, so
  // G' = G + (G e_i)(bᵀG) / (1 − bᵀG e_i).
  linalg::Vector b(n);
  double denom = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    b[j] = new_row[j] - p_mat_(i, j);
    denom -= b[j] * g_(j, i);
  }
  if (util::fault::fire(util::fault::Site::kIncrementalDenominator) ||
      std::abs(denom) < config_.min_denominator || !std::isfinite(denom)) {
    return util::Status(
        util::StatusCode::kSingularMatrix,
        "incremental row update: denominator |1 - b^T G e_i| = " +
            std::to_string(std::abs(denom)) + " below " +
            std::to_string(config_.min_denominator) +
            " (row " + std::to_string(i) + ")");
  }
  linalg::Vector u(n);  // G e_i
  for (std::size_t r = 0; r < n; ++r) u[r] = g_(r, i);
  const linalg::Vector vt = linalg::mul(b, g_);  // bᵀG
  const double inv = 1.0 / denom;
  for (std::size_t r = 0; r < n; ++r) {
    const double scale = u[r] * inv;
    for (std::size_t j = 0; j < n; ++j) g_(r, j) += scale * vt[j];
  }
  for (std::size_t j = 0; j < n; ++j) p_mat_(i, j) = new_row[j];
  return util::Status::ok();
}

util::Status ChainSolveCache::update_row(std::size_t i,
                                         const linalg::Vector& new_row) {
  if (!has_state())
    return util::Status(util::StatusCode::kInternal,
                        "ChainSolveCache::update_row before reset()");
  const std::size_t n = p_mat_.rows();
  if (i >= n || new_row.size() != n)
    return util::Status(util::StatusCode::kSizeMismatch,
                        "ChainSolveCache::update_row: row index or length "
                        "does not match the cached chain");
  util::Status row_ok = util::check_probability_vector(new_row);
  if (!row_ok.is_ok()) return row_ok;

  auto rebuild_with_row = [&]() -> util::Status {
    linalg::Matrix m = p_mat_;
    for (std::size_t j = 0; j < n; ++j) m(i, j) = new_row[j];
    return reset(TransitionMatrix(std::move(m)));
  };

  if (!incremental_active() || g_.empty()) return rebuild_with_row();
  if (updates_since_refactor_ >= config_.refactor_period) {
    ++stats_.drift_refactors;
    note_fallback("drift-refactor");
    return rebuild_with_row();
  }

  util::Status applied = apply_row_update(i, new_row);
  if (!applied.is_ok()) {
    ++stats_.denominator_fallbacks;
    note_fallback("denominator");
    return rebuild_with_row();
  }
  ++stats_.incremental_row_updates;
  ++updates_since_refactor_;

  util::Status derived = derive_from_resolvent(TransitionMatrix(p_mat_));
  if (!derived.is_ok() || stationary_residual() > config_.residual_tolerance) {
    // Accumulated round-off (or a nearly reducible perturbed chain) broke an
    // invariant; the re-factorization restores it from scratch.
    ++stats_.residual_fallbacks;
    note_fallback("residual");
    return reset(TransitionMatrix(p_mat_));
  }
  return util::Status::ok();
}

util::Status ChainSolveCache::update(const TransitionMatrix& p) {
  if (!has_state() || !incremental_active() || p.size() != p_mat_.rows())
    return reset(p);

  const std::size_t n = p.size();
  std::vector<std::size_t> changed;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (p(i, j) != p_mat_(i, j)) {
        changed.push_back(i);
        break;
      }
    }
  }
  if (changed.empty()) {
    // Same iterate as the cached one (a line search landing on an
    // already-probed point): the analysis is current.
    ++stats_.exact_hits;
    return util::Status::ok();
  }
  if (static_cast<double>(changed.size()) >
          kRebuildRowFraction * static_cast<double>(n) ||
      updates_since_refactor_ + changed.size() > config_.refactor_period) {
    if (updates_since_refactor_ + changed.size() > config_.refactor_period) {
      ++stats_.drift_refactors;
      note_fallback("drift-refactor");
    }
    return reset(p);
  }

  for (std::size_t i : changed) {
    util::Status applied = apply_row_update(i, p.row(i));
    if (!applied.is_ok()) {
      ++stats_.denominator_fallbacks;
      note_fallback("denominator");
      return reset(p);
    }
    ++stats_.incremental_row_updates;
    ++updates_since_refactor_;
  }

  util::Status derived = derive_from_resolvent(p);
  if (!derived.is_ok() || stationary_residual() > config_.residual_tolerance) {
    ++stats_.residual_fallbacks;
    note_fallback("residual");
    return reset(p);
  }
  return util::Status::ok();
}

}  // namespace mocos::markov
