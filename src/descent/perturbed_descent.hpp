#pragma once

#include "src/descent/steepest_descent.hpp"
#include "src/util/rng.hpp"

namespace mocos::descent {

/// Configuration of the stochastically perturbed algorithm (variant V4).
struct PerturbedConfig {
  /// Inner deterministic machinery (line-search parameters, margins, ...).
  DescentConfig base;
  /// Standard deviation of the mean-zero Gaussian noise added entrywise to
  /// [D_P U] before projection. Scaled relative to the gradient's RMS entry
  /// magnitude when `relative_noise` is true.
  double noise_sigma = 2.0;
  bool relative_noise = true;
  /// Cool the noise on the same logarithmic schedule as the acceptance
  /// temperature: σ_t = σ0 · log(2)/log(t+2). Strong early perturbations
  /// jump out of local optima; late iterations refine the best basin.
  bool decay_noise = true;
  /// The paper's annealing constant k: acceptance probability for a
  /// worsening move is exp(−Δ_U / T(count)) with temperature
  /// T(count) = k / log(count + 2). (The paper prints "k × log(count)", but
  /// with its own description — acceptance decreasing over time — and its
  /// Hajek citation, the logarithmic *cooling* schedule k/log(count) is the
  /// consistent reading.) Δ_U is the cost worsening normalized by the best
  /// cost found so far.
  double annealing_k = 10000.0;
  std::size_t max_iterations = 4000;
  /// Stop early when the best cost has not improved (relatively) for this
  /// many iterations; 0 disables.
  std::size_t stall_limit = 0;
  double stall_relative_improvement = 1e-6;
  /// After the stochastic phase, quench: run the deterministic line-search
  /// descent from the best iterate until it hits a critical point. The
  /// stochastic phase finds the right basin; the quench gives the paper's
  /// "extremely close to the global optimum" final precision.
  std::size_t polish_iterations = 400;
  bool keep_trace = true;
};

struct PerturbedResult {
  markov::TransitionMatrix best_p;  // best iterate seen
  double best_cost = 0.0;
  markov::TransitionMatrix final_p;  // last accepted iterate
  double final_cost = 0.0;
  std::size_t iterations = 0;
  std::size_t accepted_worsening = 0;  // annealing "jumps" taken
  std::size_t random_steps = 0;        // Δt* = 0 escapes via random Δt
  Trace trace;
  /// Why the stochastic phase ended: kMaxIterations, kStallLimit, or
  /// kNumericalFailure when the recovery ladder ran out of retries (the
  /// best-seen iterate is still returned).
  StopReason reason = StopReason::kMaxIterations;
  /// Rescue events taken by the recovery ladder (empty on clean runs).
  RecoveryLog recovery;
  /// Solver-cache counters summed over the stochastic phase's evaluator and
  /// the quench polish's (each phase runs its own cache).
  markov::ChainSolveCache::Stats chain_stats;
};

/// The paper's stochastically perturbed steepest descent (V2+V3+V4):
/// per iteration, perturb [D_P U] with Gaussian noise, project, line-search;
/// if the search yields Δt* = 0 take a random feasible step instead; accept
/// improving moves always and worsening moves with the annealed probability.
/// The best-seen iterate is tracked and returned.
class PerturbedDescent {
 public:
  PerturbedDescent(const cost::CompositeCost& cost, PerturbedConfig config);

  [[nodiscard]] PerturbedResult run(const markov::TransitionMatrix& start,
                      util::Rng& rng) const;

  const PerturbedConfig& config() const { return config_; }

 private:
  const cost::CompositeCost& cost_;
  PerturbedConfig config_;
};

}  // namespace mocos::descent
