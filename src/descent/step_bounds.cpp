#include "src/descent/step_bounds.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mocos::descent {

double max_feasible_step(const linalg::Matrix& p, const linalg::Matrix& v,
                         double margin) {
  if (p.rows() != v.rows() || p.cols() != v.cols())
    throw std::invalid_argument("max_feasible_step: shape mismatch");
  if (margin < 0.0 || margin >= 0.5)
    throw std::invalid_argument("max_feasible_step: margin outside [0, 0.5)");
  const double lo = margin;
  const double hi = 1.0 - margin;
  double bound = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < p.rows(); ++i) {
    for (std::size_t j = 0; j < p.cols(); ++j) {
      const double x = p(i, j);
      const double d = v(i, j);
      if (d > 0.0) {
        bound = std::min(bound, (hi - x) / d);
      } else if (d < 0.0) {
        bound = std::min(bound, (lo - x) / d);
      }
    }
  }
  return std::max(bound, 0.0);
}

}  // namespace mocos::descent
