#include "src/descent/perturbed_descent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/cost/gradient.hpp"
#include "src/cost/projection.hpp"
#include "src/descent/cached_cost.hpp"
#include "src/descent/step_bounds.hpp"
#include "src/linalg/norms.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/linalg/guard.hpp"

namespace mocos::descent {

PerturbedDescent::PerturbedDescent(const cost::CompositeCost& cost,
                                   PerturbedConfig config)
    : cost_(cost), config_(config) {
  if (config_.noise_sigma < 0.0)
    throw std::invalid_argument("PerturbedDescent: noise_sigma < 0");
  if (config_.annealing_k <= 0.0)
    throw std::invalid_argument("PerturbedDescent: annealing_k <= 0");
  if (config_.max_iterations == 0)
    throw std::invalid_argument("PerturbedDescent: max_iterations == 0");
}

PerturbedResult PerturbedDescent::run(const markov::TransitionMatrix& start,
                                      util::Rng& rng) const {
  markov::TransitionMatrix p = start;
  // One incremental solver cache for the whole stochastic run (gradient,
  // line-search probes, and acceptance evaluations) — the run's own, or the
  // caller's long-lived one (mocos_serve warm reuse across requests).
  CachedCostEvaluator evaluator =
      config_.base.shared_cache != nullptr
          ? CachedCostEvaluator(cost_, *config_.base.shared_cache)
          : CachedCostEvaluator(cost_, config_.base.incremental);
  double current = evaluator.cost_at(p);
  if (std::isinf(current))
    throw std::invalid_argument("PerturbedDescent: infeasible start matrix");

  PerturbedResult result{p, current, p, current, 0, 0, 0, Trace{},
                         StopReason::kMaxIterations, RecoveryLog{},
                         markov::ChainSolveCache::Stats{}};
  obs::count("descent.perturbed.runs");
  obs::ScopedSpan run_span("descent.perturbed_run", "descent");
  double margin = config_.base.probability_margin;
  markov::StationarySolver solver = markov::StationarySolver::kDirect;
  std::size_t consecutive_failures = 0;
  std::size_t since_improvement = 0;
  double initial_rms = 0.0;  // anchor for the relative-noise floor

  // The stochastic driver's recovery ladder: the current iterate is always
  // the last accepted (finite-cost) one, so "rollback" means discarding the
  // failed evaluation; the escalation widens the interior margin to pull the
  // chain off the simplex boundary. Returns false on budget exhaustion.
  auto recover = [&](std::size_t it, const util::Status& cause) -> bool {
    ++consecutive_failures;
    if (consecutive_failures > config_.base.recovery_retry_budget) {
      result.recovery.record(it, RecoveryAction::kAbandoned, cause.code(),
                             "retry budget exhausted: " + cause.message());
      result.reason = StopReason::kNumericalFailure;
      return false;
    }
    result.recovery.record(it, RecoveryAction::kRollback, cause.code(),
                           cause.message());
    if (consecutive_failures >= 2 &&
        margin < config_.base.recovery_margin_cap) {
      margin = std::min(std::max(margin, 1e-12) *
                            config_.base.recovery_margin_growth,
                        config_.base.recovery_margin_cap);
      p = reproject_interior(p, margin);
      const double refreshed = evaluator.cost_at(p);
      if (std::isfinite(refreshed)) current = refreshed;
      result.recovery.record(it, RecoveryAction::kMarginWidened, cause.code(),
                             "margin " + std::to_string(margin));
    }
    return true;
  };

  for (std::size_t it = 0; it < config_.max_iterations; ++it) {
    // Cooperative cancellation (request deadlines, server drain); the
    // best-seen iterate is still returned, so a deadline-cut run degrades
    // to "the best schedule found in the time allowed".
    if (config_.base.should_stop && config_.base.should_stop()) {
      result.reason = StopReason::kCancelled;
      break;
    }
    util::StatusOr<const markov::ChainAnalysis*> chain =
        evaluator.analyze(p, solver);
    if (!chain.ok() && solver == markov::StationarySolver::kDirect &&
        util::is_numerical_failure(chain.status().code())) {
      solver = markov::StationarySolver::kPowerIteration;
      result.recovery.record(it, RecoveryAction::kPowerIterationFallback,
                             chain.status().code(), chain.status().message());
      chain = evaluator.analyze(p, solver);
    }
    if (!chain.ok()) {
      ++result.iterations;
      if (!recover(it, chain.status())) break;
      continue;
    }
    linalg::Matrix grad = cost::cost_gradient(cost_, **chain);
    const util::Status grad_ok = util::check_finite(grad, "gradient");
    if (!grad_ok.is_ok()) {
      ++result.iterations;
      if (!recover(it, grad_ok)) break;
      continue;
    }

    // V4: mean-zero Gaussian perturbation of [D_P U].
    if (config_.noise_sigma > 0.0) {
      double sigma = config_.noise_sigma;
      if (config_.relative_noise) {
        const double rms =
            linalg::frobenius_norm(grad) /
            std::sqrt(static_cast<double>(grad.rows() * grad.cols()));
        if (it == 0) initial_rms = rms;
        // Floor at a fraction of the initial gradient scale: near critical
        // points the gradient (and with it a purely relative noise) would
        // collapse exactly when escaping a local optimum needs the noise
        // most.
        sigma *= std::max({rms, 0.1 * initial_rms, 1e-12});
      }
      if (config_.decay_noise)
        sigma *= std::log(2.0) / std::log(static_cast<double>(it) + 2.0);
      for (std::size_t i = 0; i < grad.rows(); ++i)
        for (std::size_t j = 0; j < grad.cols(); ++j)
          grad(i, j) += rng.gaussian(0.0, sigma);
    }
    const linalg::Matrix direction =
        cost::project_row_sum_zero(grad) * (-1.0);
    const double grad_norm = linalg::frobenius_norm(direction);
    const double max_step = max_feasible_step(p.matrix(), direction, margin);

    auto phi = [&](double t) {
      return evaluator.cost_at(apply_step(p, direction, t, margin));
    };
    const LineSearchResult ls =
        trisection_search(phi, current, max_step, config_.base.line_search);

    double step = ls.step;
    // Exact on purpose (both sites below): 0.0 is the line search's "no
    // acceptable step" sentinel, assigned literally, never computed.
    // mocos-lint: allow(float-eq)
    if (step == 0.0 && max_step > 0.0) {
      // Line search is stuck (Δt* = 0): take a random feasible step, the
      // paper's escape move.
      step = rng.uniform(0.0, max_step);
      ++result.random_steps;
      obs::count("descent.random_steps");
    }
    // mocos-lint: allow(float-eq)
    if (step == 0.0) {
      ++result.iterations;
      continue;  // direction pinned against the boundary; resample noise
    }

    const markov::TransitionMatrix candidate =
        apply_step(p, direction, step, margin);
    const double cand_cost = evaluator.cost_at(candidate);

    bool accept = cand_cost < current;
    if (!accept && std::isfinite(cand_cost)) {
      // Normalized worsening; temperature cools as k / log(count + 2).
      const double denom = std::max(std::abs(result.best_cost), 1e-300);
      const double delta_u = (cand_cost - current) / denom;
      const double temperature =
          config_.annealing_k /
          std::log(static_cast<double>(it) + 2.0);
      accept = rng.bernoulli(std::exp(-delta_u / temperature));
      if (accept) {
        ++result.accepted_worsening;
        obs::count("descent.worsening_accepted");
      }
    }

    ++result.iterations;
    consecutive_failures = 0;  // the evaluation itself succeeded
    if (accept) {
      p = candidate;
      current = cand_cost;
      if (current < result.best_cost) {
        const double gain = (result.best_cost - current) /
                            std::max(std::abs(result.best_cost), 1e-300);
        result.best_cost = current;
        result.best_p = p;
        since_improvement =
            (gain > config_.stall_relative_improvement) ? 0
                                                        : since_improvement + 1;
      } else {
        ++since_improvement;
      }
    } else {
      ++since_improvement;
    }

    if (config_.keep_trace)
      result.trace.record(
          {result.iterations, current, step, grad_norm, accept});

    if (obs::current_metrics() != nullptr) {
      obs::count("descent.iterations");
      obs::count("descent.line_search.probes", ls.evaluations);
      obs::count(accept ? "descent.steps.accepted"
                        : "descent.steps.rejected");
      obs::observe("descent.gradient_norm", obs::decade_bounds(-12, 3),
                   grad_norm);
      obs::observe("descent.step_size", obs::decade_bounds(-12, 0), step);
    }
    if (obs::trace_active()) {
      obs::TraceArgs args;
      args.num("iteration", static_cast<double>(result.iterations))
          .num("u", current)
          .num("step", step)
          .num("grad_norm", grad_norm)
          .num("probes", static_cast<double>(ls.evaluations))
          .num("accepted", accept ? 1.0 : 0.0);
      for (const auto& [term, value] : cost_.breakdown(**chain))
        args.num("term." + term, value);
      obs::trace_instant("descent.iteration", "descent", args);
    }

    if (config_.stall_limit > 0 && since_improvement >= config_.stall_limit) {
      result.reason = StopReason::kStallLimit;
      break;
    }
  }

  // The quench polish reports its own cache metrics inside run(); only the
  // stochastic phase's evaluator is recorded here, so counters never double.
  result.chain_stats = evaluator.run_stats();
  record_cache_metrics(result.chain_stats);

  // A cancelled run skips the quench: the deadline already expired, and the
  // polish would burn an unbounded extra slice of it.
  if (config_.polish_iterations > 0 &&
      result.reason != StopReason::kCancelled) {
    DescentConfig quench = config_.base;
    quench.step_policy = StepPolicy::kLineSearch;
    quench.max_iterations = config_.polish_iterations;
    quench.keep_trace = false;
    const DescentResult polished =
        SteepestDescent(cost_, quench).run(result.best_p);
    result.chain_stats.add(polished.chain_stats);
    if (polished.cost < result.best_cost &&
        std::isfinite(polished.cost)) {
      result.best_cost = polished.cost;
      result.best_p = polished.p;
    }
  }
  obs::gauge_set("descent.final_cost", result.best_cost);

  result.final_p = p;
  result.final_cost = current;
  return result;
}

}  // namespace mocos::descent
