#pragma once

#include "src/cost/composite_cost.hpp"
#include "src/descent/trace.hpp"
#include "src/markov/transition_matrix.hpp"
#include "src/util/rng.hpp"

namespace mocos::descent {

/// Gradient-free simulated annealing over transition matrices — the control
/// arm for the paper's central design decision. V4 combines *gradient*
/// directions with annealed acceptance; this baseline keeps the annealing
/// but replaces the gradient with random row-sum-zero proposals. Comparing
/// the two isolates what the closed-form [D_P U] (Eq. 10) buys.
struct AnnealingConfig {
  std::size_t max_iterations = 4000;
  /// Proposal scale: entries move by roughly this magnitude per step
  /// (cooled over time on the same log schedule as the temperature).
  double proposal_scale = 0.1;
  /// Temperature schedule T(t) = k / log(t + 2), as in V4 — but with a far
  /// smaller default k: without gradient guidance the proposals are mostly
  /// uphill, and V4's near-always-accept temperature would turn the search
  /// into a diverging random walk. k ~ 0.5 gives a genuine Metropolis
  /// criterion on the normalized cost deltas.
  double annealing_k = 0.5;
  double probability_margin = 1e-12;
};

struct AnnealingResult {
  markov::TransitionMatrix best_p;
  double best_cost = 0.0;
  std::size_t iterations = 0;
  std::size_t accepted = 0;
};

[[nodiscard]] AnnealingResult anneal_schedule(const cost::CompositeCost& cost,
                                const markov::TransitionMatrix& start,
                                const AnnealingConfig& config, util::Rng& rng);

}  // namespace mocos::descent
