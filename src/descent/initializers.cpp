#include "src/descent/initializers.hpp"

#include <stdexcept>

#include "src/markov/ergodicity.hpp"

namespace mocos::descent {

markov::TransitionMatrix uniform_start(std::size_t n) {
  return markov::TransitionMatrix::uniform(n);
}

markov::TransitionMatrix random_start(std::size_t n, util::Rng& rng) {
  constexpr int kMaxTries = 64;
  for (int t = 0; t < kMaxTries; ++t) {
    markov::TransitionMatrix p = markov::TransitionMatrix::random(n, rng);
    if (p.min_entry() > 0.0 && markov::is_ergodic(p)) return p;
  }
  throw std::runtime_error("random_start: could not sample an ergodic chain");
}

markov::TransitionMatrix blended_start(std::size_t n, double w,
                                       util::Rng& rng) {
  if (w < 0.0 || w > 1.0)
    throw std::invalid_argument("blended_start: w outside [0,1]");
  const markov::TransitionMatrix r = random_start(n, rng);
  linalg::Matrix m(n, n);
  const double u = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m(i, j) = (1.0 - w) * u + w * r(i, j);
  return markov::TransitionMatrix(std::move(m));
}

}  // namespace mocos::descent
