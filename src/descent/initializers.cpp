#include "src/descent/initializers.hpp"

#include <stdexcept>

#include "src/markov/ergodicity.hpp"

namespace mocos::descent {

markov::TransitionMatrix uniform_start(std::size_t n) {
  return markov::TransitionMatrix::uniform(n);
}

markov::TransitionMatrix support_uniform_start(
    const std::vector<std::vector<std::size_t>>& support) {
  const std::size_t n = support.size();
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    bool has_self = false;
    for (std::size_t j : support[i]) {
      if (j >= n)
        throw std::invalid_argument(
            "support_uniform_start: support index out of range");
      if (j == i) has_self = true;
    }
    if (!has_self)
      throw std::invalid_argument(
          "support_uniform_start: row support must include the self loop");
    const double u = 1.0 / static_cast<double>(support[i].size());
    for (std::size_t j : support[i]) m(i, j) = u;
  }
  return markov::TransitionMatrix(std::move(m));
}

markov::TransitionMatrix random_start(std::size_t n, util::Rng& rng) {
  constexpr int kMaxTries = 64;
  for (int t = 0; t < kMaxTries; ++t) {
    markov::TransitionMatrix p = markov::TransitionMatrix::random(n, rng);
    if (p.min_entry() > 0.0 && markov::is_ergodic(p)) return p;
  }
  throw std::runtime_error("random_start: could not sample an ergodic chain");
}

markov::TransitionMatrix blended_start(std::size_t n, double w,
                                       util::Rng& rng) {
  if (w < 0.0 || w > 1.0)
    throw std::invalid_argument("blended_start: w outside [0,1]");
  const markov::TransitionMatrix r = random_start(n, rng);
  linalg::Matrix m(n, n);
  const double u = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m(i, j) = (1.0 - w) * u + w * r(i, j);
  return markov::TransitionMatrix(std::move(m));
}

}  // namespace mocos::descent
