#pragma once

#include <optional>

#include "src/cost/composite_cost.hpp"
#include "src/markov/incremental.hpp"
#include "src/markov/stationary.hpp"
#include "src/util/status.hpp"

namespace mocos::descent {

/// Cost/analysis evaluator backed by a ChainSolveCache, shared by the
/// deterministic and perturbed descent drivers. Every probe — gradient
/// evaluations, line-search φ(t) samples, candidate acceptance checks — goes
/// through one cache, so consecutive probes that differ in a few rows (or
/// none, as when an accepted step re-analyzes the line search's final probe)
/// are refreshed by rank-one updates instead of full re-factorizations.
///
/// With incremental solves disabled (config, --no-incremental, or the
/// MOCOS_NO_INCREMENTAL environment variable) the cache degenerates to the
/// original full-solve pipeline, giving an A/B reference path.
class CachedCostEvaluator {
 public:
  CachedCostEvaluator(const cost::CompositeCost& cost,
                      markov::IncrementalConfig config);

  /// Rides an externally owned cache instead of a private one — the
  /// mocos_serve warm-reuse path, where consecutive same-topology requests
  /// probe matrices that are rank-one deltas of each other. The caller
  /// guarantees exclusive access to `shared` for this evaluator's lifetime.
  CachedCostEvaluator(const cost::CompositeCost& cost,
                      markov::ChainSolveCache& shared);

  /// safe_cost through the cache: U_ε(p), or +infinity when the chain
  /// analysis or cost evaluation fails (non-ergodic probe, singular system),
  /// so searches treat such points as infeasible.
  [[nodiscard]] double cost_at(const markov::TransitionMatrix& p);

  /// Guarded chain analysis for gradient evaluations. The direct solver runs
  /// through the cache; the power-iteration rung of the recovery ladder
  /// bypasses it (the cache's resolvent route *is* a direct solve). The
  /// pointer stays valid until the next call on this evaluator.
  [[nodiscard]] util::StatusOr<const markov::ChainAnalysis*> analyze(
      const markov::TransitionMatrix& p,
      markov::StationarySolver solver = markov::StationarySolver::kDirect);

  [[nodiscard]] const markov::ChainSolveCache& cache() const {
    return *cache_;
  }

  /// Counters accumulated by *this evaluator's* probes: on a private cache
  /// that is everything, on a shared cache the delta since construction —
  /// either way the number a single descent run should report.
  [[nodiscard]] markov::ChainSolveCache::Stats run_stats() const {
    return cache_->stats().delta_since(initial_stats_);
  }

 private:
  const cost::CompositeCost& cost_;
  std::optional<markov::ChainSolveCache> owned_;
  markov::ChainSolveCache* cache_;  // &*owned_ or the shared cache
  markov::ChainSolveCache::Stats initial_stats_;
  std::optional<markov::ChainAnalysis> fallback_;  // power-iteration results
};

/// Adds a finished cache's counters to the current metrics registry
/// (chain_cache.full_solves, .row_updates, ...); no-op when metrics are off.
/// Called once per evaluator at the end of a descent run — counters are
/// commutative, so this is jobs-invariant wherever the run executed.
void record_cache_metrics(const markov::ChainSolveCache::Stats& stats);

}  // namespace mocos::descent
