#pragma once

#include <optional>

#include "src/cost/composite_cost.hpp"
#include "src/markov/incremental.hpp"
#include "src/markov/stationary.hpp"
#include "src/util/status.hpp"

namespace mocos::descent {

/// Cost/analysis evaluator backed by a ChainSolveCache, shared by the
/// deterministic and perturbed descent drivers. Every probe — gradient
/// evaluations, line-search φ(t) samples, candidate acceptance checks — goes
/// through one cache, so consecutive probes that differ in a few rows (or
/// none, as when an accepted step re-analyzes the line search's final probe)
/// are refreshed by rank-one updates instead of full re-factorizations.
///
/// With incremental solves disabled (config, --no-incremental, or the
/// MOCOS_NO_INCREMENTAL environment variable) the cache degenerates to the
/// original full-solve pipeline, giving an A/B reference path.
class CachedCostEvaluator {
 public:
  CachedCostEvaluator(const cost::CompositeCost& cost,
                      markov::IncrementalConfig config);

  /// safe_cost through the cache: U_ε(p), or +infinity when the chain
  /// analysis or cost evaluation fails (non-ergodic probe, singular system),
  /// so searches treat such points as infeasible.
  [[nodiscard]] double cost_at(const markov::TransitionMatrix& p);

  /// Guarded chain analysis for gradient evaluations. The direct solver runs
  /// through the cache; the power-iteration rung of the recovery ladder
  /// bypasses it (the cache's resolvent route *is* a direct solve). The
  /// pointer stays valid until the next call on this evaluator.
  [[nodiscard]] util::StatusOr<const markov::ChainAnalysis*> analyze(
      const markov::TransitionMatrix& p,
      markov::StationarySolver solver = markov::StationarySolver::kDirect);

  [[nodiscard]] const markov::ChainSolveCache& cache() const {
    return cache_;
  }

 private:
  const cost::CompositeCost& cost_;
  markov::ChainSolveCache cache_;
  std::optional<markov::ChainAnalysis> fallback_;  // power-iteration results
};

/// Adds a finished cache's counters to the current metrics registry
/// (chain_cache.full_solves, .row_updates, ...); no-op when metrics are off.
/// Called once per evaluator at the end of a descent run — counters are
/// commutative, so this is jobs-invariant wherever the run executed.
void record_cache_metrics(const markov::ChainSolveCache::Stats& stats);

}  // namespace mocos::descent
