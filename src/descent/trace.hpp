#pragma once

#include <string>
#include <vector>

namespace mocos::descent {

/// One optimizer iteration, as recorded for the paper's per-iteration figures
/// (Figs. 3–5, 8).
struct IterationRecord {
  std::size_t iteration = 0;
  double cost = 0.0;        // U_ε after the iteration's update
  double step = 0.0;        // Δt actually taken
  double gradient_norm = 0.0;
  bool accepted = true;     // false for rejected annealing proposals
};

/// Full optimization trace with helpers for the figure benches.
class Trace {
 public:
  void record(IterationRecord rec) { records_.push_back(rec); }
  const std::vector<IterationRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Cost series (one value per iteration).
  std::vector<double> cost_series() const;

  /// Subsamples ~`max_points` evenly spaced records (always keeping the
  /// first and last) so benches can print long runs compactly.
  std::vector<IterationRecord> subsample(std::size_t max_points) const;

 private:
  std::vector<IterationRecord> records_;
};

}  // namespace mocos::descent
