#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/util/status.hpp"

namespace mocos::descent {

/// One rung of the descent recovery ladder, taken in response to a failed or
/// non-finite cost/gradient evaluation.
enum class RecoveryAction {
  kRollback,                // restored the last good iterate
  kStepBackoff,             // shrank the trial step (exponential backoff)
  kMarginWidened,           // re-projected into the interior, larger margin
  kPowerIterationFallback,  // direct stationary solve -> power iteration
  kAbandoned,               // retry budget exhausted; run stops with
                            // StopReason::kNumericalFailure
};

const char* to_string(RecoveryAction action);

/// A recovery event: what rung fired, at which iteration, and the structured
/// cause that triggered it.
struct RecoveryEvent {
  std::size_t iteration = 0;
  RecoveryAction action = RecoveryAction::kRollback;
  util::StatusCode cause = util::StatusCode::kOk;
  std::string detail;
};

/// Append-only log of recovery events, attached to DescentResult /
/// PerturbedResult so experiments over randomized topologies can count how
/// often instances needed rescue (and which rung saved them).
class RecoveryLog {
 public:
  /// Appends the event; the single choke point every ladder rung passes
  /// through, so it doubles as the observability hook (a
  /// descent.recovery.<action> counter and a trace instant when enabled).
  void record(std::size_t iteration, RecoveryAction action,
              util::StatusCode cause, std::string detail);

  const std::vector<RecoveryEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Number of events with the given action.
  std::size_t count(RecoveryAction action) const;

  /// "rollback x3, step-backoff x3, power-iteration-fallback x1".
  std::string summary() const;

 private:
  std::vector<RecoveryEvent> events_;
};

}  // namespace mocos::descent
