#include "src/descent/line_search.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/fault_injection.hpp"

namespace mocos::descent {

LineSearchResult trisection_search(const std::function<double(double)>& phi,
                                   double phi_at_zero, double max_step,
                                   const LineSearchConfig& config) {
  if (!(max_step >= 0.0))
    throw std::invalid_argument("trisection_search: max_step < 0");
  LineSearchResult result;
  result.step = 0.0;
  result.value = phi_at_zero;
  // Injected rejection: report "no descent along this direction" so tests
  // can drive the Δt* = 0 handling (critical-point stop, random escape).
  if (util::fault::fire(util::fault::Site::kLineSearch)) return result;
  // Exact on purpose: max_feasible_step returns exactly 0.0 when pinned
  // against the boundary; a tiny positive interval is still searchable.
  // mocos-lint: allow(float-eq)
  if (max_step == 0.0) return result;

  double lo = 0.0;
  double hi = max_step;
  const double width0 = hi - lo;

  double best_step = 0.0;
  double best_value = phi_at_zero;
  auto consider = [&](double step, double value) {
    if (value < best_value) {
      best_value = value;
      best_step = step;
    }
  };

  // Seed with the endpoint; infinite values (barrier) simply never win.
  consider(hi, phi(hi));
  ++result.evaluations;

  while (result.evaluations + 2 <= config.max_evaluations) {
    const double width = hi - lo;
    if (width <= config.relative_tolerance * width0 +
                     config.absolute_tolerance)
      break;
    const double m1 = lo + width / 3.0;
    const double m2 = lo + 2.0 * width / 3.0;
    const double f1 = phi(m1);
    const double f2 = phi(m2);
    result.evaluations += 2;
    consider(m1, f1);
    consider(m2, f2);
    // Conservative trisection: drop only the worse outer third.
    if (f1 < f2) {
      hi = m2;
    } else {
      lo = m1;
    }
  }

  const double margin =
      config.improvement_margin +
      config.relative_improvement_margin * std::abs(phi_at_zero);
  if (best_value < phi_at_zero - margin) {
    result.step = best_step;
    result.value = best_value;
  }
  return result;
}

}  // namespace mocos::descent
