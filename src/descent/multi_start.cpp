#include "src/descent/multi_start.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/descent/initializers.hpp"

namespace mocos::descent {

std::size_t MultiStartResult::failed_starts() const {
  std::size_t n = 0;
  for (StopReason r : reasons)
    if (r == StopReason::kNumericalFailure) ++n;
  return n;
}

MultiStartResult multi_start_perturbed(const cost::CompositeCost& cost,
                                       std::size_t num_pois,
                                       const MultiStartConfig& config,
                                       util::Rng& rng,
                                       const runtime::ExecutionContext& ctx) {
  if (config.starts == 0)
    throw std::invalid_argument("multi_start_perturbed: starts == 0");
  if (num_pois == 0)
    throw std::invalid_argument("multi_start_perturbed: num_pois == 0");

  const PerturbedDescent driver(cost, config.perturbed);
  const util::Rng streams(rng.stream_base());

  std::vector<std::optional<PerturbedResult>> results(config.starts);
  runtime::parallel_for(ctx, config.starts, [&](std::size_t k) {
    util::Rng task_rng = streams.stream(k);
    const markov::TransitionMatrix start =
        config.random_start ? random_start(num_pois, task_rng)
                            : uniform_start(num_pois);
    results[k] = driver.run(start, task_rng);
  });

  // Sequential reduction with lowest-index tie-breaking: the winner is a
  // pure function of the per-start results, not of completion order.
  std::vector<double> costs;
  std::vector<StopReason> reasons;
  std::vector<RecoveryLog> recovery;
  costs.reserve(config.starts);
  reasons.reserve(config.starts);
  recovery.reserve(config.starts);
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < config.starts; ++k) {
    const PerturbedResult& r = *results[k];
    const double c = std::isfinite(r.best_cost)
                         ? r.best_cost
                         : std::numeric_limits<double>::infinity();
    costs.push_back(r.best_cost);
    reasons.push_back(r.reason);
    recovery.push_back(r.recovery);
    if (c < best_cost) {
      best_cost = c;
      best = k;
    }
  }
  return MultiStartResult{std::move(*results[best]), best, std::move(costs),
                          std::move(reasons), std::move(recovery)};
}

}  // namespace mocos::descent
