#include "src/descent/trace.hpp"

#include <algorithm>
#include <cmath>

namespace mocos::descent {

std::vector<double> Trace::cost_series() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.cost);
  return out;
}

std::vector<IterationRecord> Trace::subsample(std::size_t max_points) const {
  if (max_points == 0 || records_.empty()) return {};
  if (records_.size() <= max_points) return records_;
  std::vector<IterationRecord> out;
  out.reserve(max_points);
  const double stride = static_cast<double>(records_.size() - 1) /
                        static_cast<double>(max_points - 1);
  std::size_t last = records_.size();  // sentinel: nothing emitted yet
  const auto last_index =
      static_cast<long long>(records_.size()) - 1;  // size checked above
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto idx = static_cast<std::size_t>(
        std::min(std::llround(static_cast<double>(i) * stride), last_index));
    if (idx != last) {
      out.push_back(records_[idx]);
      last = idx;
    }
  }
  return out;
}

}  // namespace mocos::descent
