#pragma once

#include <functional>
#include <optional>

#include "src/cost/composite_cost.hpp"
#include "src/descent/line_search.hpp"
#include "src/descent/recovery.hpp"
#include "src/descent/trace.hpp"
#include "src/markov/incremental.hpp"
#include "src/markov/transition_matrix.hpp"

namespace mocos::descent {

enum class StepPolicy {
  kConstant,   // V1: fixed Δt every iteration
  kLineSearch  // V3: Δt* from the trisection search along −Π[D_P U]
};

enum class DirectionPolicy {
  kSteepest,          // the paper's −Π[D_P U]
  kConjugateGradient  // Polak–Ribière+ nonlinear CG on the projected
                      // gradient (extension; same feasible subspace, fewer
                      // zig-zags in ill-conditioned valleys)
};

enum class StopReason {
  kMaxIterations,
  kGradientTolerance,  // |Π[D_P U]|_F below tolerance
  kNoDescentStep,      // line search returned Δt* = 0 (local optimum)
  kCostTolerance,      // relative cost change below tolerance
  kStallLimit,         // perturbed run: no best-cost improvement for too long
  kNumericalFailure,   // recovery ladder exhausted its retry budget; the
                       // result carries the last good iterate and a populated
                       // RecoveryLog instead of NaN
  kCancelled           // DescentConfig::should_stop returned true (request
                       // deadline / server drain); the result carries the
                       // best iterate reached so far, fully finite
};

const char* to_string(StopReason reason);

struct DescentConfig {
  StepPolicy step_policy = StepPolicy::kConstant;
  /// CG requires the line-search step policy (a constant step breaks the
  /// conjugacy rationale); validated at construction.
  DirectionPolicy direction_policy = DirectionPolicy::kSteepest;
  double constant_step = 1e-6;       // the paper's Δt for V1
  /// Stability guard for the constant-step policy: no single entry of P may
  /// move more than this per iteration. Near the simplex boundary the
  /// barrier gradient grows like 1/p, and Δt·∇U would otherwise catapult an
  /// entry across the box in one step (the failure mode the paper avoids by
  /// choosing Δt = 1e-6). The cap leaves ordinary steps untouched.
  double max_entry_change = 0.05;
  LineSearchConfig line_search;      // V3 parameters
  std::size_t max_iterations = 20000;
  double gradient_tolerance = 1e-12;
  /// Relative |ΔU|/max(|U|,1) over a full iteration below which we stop;
  /// 0 disables the test (the paper's V1 runs a fixed iteration budget).
  double cost_tolerance = 0.0;
  /// Entries of P are kept within [margin, 1-margin]; preserves ergodicity
  /// and keeps the barrier finite along the whole trajectory.
  double probability_margin = 1e-12;
  /// Record the per-iteration trace (disable for bulk CDF experiments).
  bool keep_trace = true;

  // --- Recovery ladder (numerical-failure containment) -------------------
  /// Consecutive failed evaluations tolerated before the run stops with
  /// StopReason::kNumericalFailure. 0 disables recovery entirely (a failure
  /// stops the run immediately, still without throwing).
  std::size_t recovery_retry_budget = 6;
  /// Trial-step shrink factor applied on each failed evaluation; the scale
  /// recovers geometrically on success.
  double recovery_step_backoff = 0.25;
  /// From the second consecutive failure on, the iterate is re-projected
  /// into the simplex interior with probability_margin widened by this
  /// factor (bounded by recovery_margin_cap), pulling the chain away from
  /// the boundary where the barrier and ergodicity break down.
  double recovery_margin_growth = 16.0;
  double recovery_margin_cap = 1e-4;

  // --- Incremental solver cache (rank-one chain updates) -----------------
  /// Parameters of the ChainSolveCache all probe evaluations run through.
  /// Set incremental.enabled = false (or export MOCOS_NO_INCREMENTAL=1, or
  /// pass --no-incremental to the CLI) to force every probe onto the full
  /// O(M³) solve path for A/B verification.
  markov::IncrementalConfig incremental;

  // --- Cooperative cancellation + cross-request cache reuse (serve) ------
  /// Polled once per iteration (cheap next to an O(M²) probe); returning
  /// true stops the run with StopReason::kCancelled and the best iterate so
  /// far. The functor must be wall-clock-free from the descent's point of
  /// view: any clock lives behind it (mocos_serve's deadline check), so this
  /// file stays inside the determinism lint scope.
  std::function<bool()> should_stop;
  /// Externally owned solver cache to run all probes through instead of a
  /// per-run private one — mocos_serve's warm-cache path, where consecutive
  /// same-topology requests are rank-one deltas of each other. The caller
  /// guarantees exclusive access for the duration of the run (the server's
  /// per-key lanes serialize same-cache requests). Null: private cache.
  markov::ChainSolveCache* shared_cache = nullptr;
};

struct DescentResult {
  markov::TransitionMatrix p;  // final iterate
  double cost = 0.0;           // U_ε at the final iterate
  std::size_t iterations = 0;
  StopReason reason = StopReason::kMaxIterations;
  Trace trace;
  /// Rescue events taken by the recovery ladder (empty on clean runs).
  RecoveryLog recovery;
  /// Solver-cache counters of the evaluator that served every probe of this
  /// run (previously computed but dropped at this boundary); flows through
  /// PerturbedResult and OptimizationOutcome to the CLI/metrics surface.
  markov::ChainSolveCache::Stats chain_stats;
};

/// Cost of a candidate transition matrix; +infinity when the analysis fails
/// (non-ergodic probe, singular fundamental matrix) so searches treat such
/// points as infeasible instead of crashing.
double safe_cost(const cost::CompositeCost& cost,
                 const markov::TransitionMatrix& p);

/// Deterministic steepest descent (paper variants V1/V3; the start matrix
/// selects V1 vs V2). One iteration: analyze chain → gradient (Eq. 10) →
/// project (Eq. 11) → step along −Π[D_P U] → clamp into the feasible box.
class SteepestDescent {
 public:
  SteepestDescent(const cost::CompositeCost& cost, DescentConfig config);

  [[nodiscard]] DescentResult run(const markov::TransitionMatrix& start) const;

  const DescentConfig& config() const { return config_; }

 private:
  const cost::CompositeCost& cost_;
  DescentConfig config_;
};

/// Applies P + t·V and clamps entries into [margin, 1-margin], renormalizing
/// rows exactly. Shared by the deterministic and perturbed drivers.
markov::TransitionMatrix apply_step(const markov::TransitionMatrix& p,
                                    const linalg::Matrix& v, double t,
                                    double margin);

/// Clamps all entries of P into [margin, 1-margin] and renormalizes rows —
/// the recovery ladder's "pull the iterate off the simplex boundary" rung.
markov::TransitionMatrix reproject_interior(const markov::TransitionMatrix& p,
                                            double margin);

}  // namespace mocos::descent
