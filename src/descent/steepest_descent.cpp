#include "src/descent/steepest_descent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "src/cost/gradient.hpp"
#include "src/descent/cached_cost.hpp"
#include "src/descent/step_bounds.hpp"
#include "src/linalg/norms.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/phase_timer.hpp"
#include "src/obs/trace.hpp"
#include "src/linalg/guard.hpp"

namespace mocos::descent {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kMaxIterations:
      return "max-iterations";
    case StopReason::kGradientTolerance:
      return "gradient-tolerance";
    case StopReason::kNoDescentStep:
      return "no-descent-step";
    case StopReason::kCostTolerance:
      return "cost-tolerance";
    case StopReason::kStallLimit:
      return "stall-limit";
    case StopReason::kNumericalFailure:
      return "numerical-failure";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

double safe_cost(const cost::CompositeCost& cost,
                 const markov::TransitionMatrix& p) {
  try {
    const double u = cost.value(p);
    return std::isnan(u) ? std::numeric_limits<double>::infinity() : u;
  } catch (const std::exception&) {
    return std::numeric_limits<double>::infinity();
  }
}

markov::TransitionMatrix apply_step(const markov::TransitionMatrix& p,
                                    const linalg::Matrix& v, double t,
                                    double margin) {
  const std::size_t n = p.size();
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      // Structural zeros of a support-restricted chain stay exactly zero:
      // the support-masked gradient projection gives them a zero direction,
      // and clamping them up to `margin` would silently densify the chain.
      // mocos-lint: allow(float-eq)
      if (p(i, j) == 0.0 && v(i, j) == 0.0) continue;
      const double x =
          std::clamp(p(i, j) + t * v(i, j), margin, 1.0 - margin);
      m(i, j) = x;
      row_sum += x;
    }
    // The direction is row-sum-zero, so row_sum ≈ 1 up to clamping;
    // renormalize exactly.
    for (std::size_t j = 0; j < n; ++j) m(i, j) /= row_sum;
  }
  return markov::TransitionMatrix(std::move(m));
}

markov::TransitionMatrix reproject_interior(const markov::TransitionMatrix& p,
                                            double margin) {
  return apply_step(p, linalg::Matrix(p.size(), p.size(), 0.0), 0.0, margin);
}

SteepestDescent::SteepestDescent(const cost::CompositeCost& cost,
                                 DescentConfig config)
    : cost_(cost), config_(config) {
  if (config_.constant_step <= 0.0 &&
      config_.step_policy == StepPolicy::kConstant)
    throw std::invalid_argument("SteepestDescent: constant_step <= 0");
  if (config_.max_iterations == 0)
    throw std::invalid_argument("SteepestDescent: max_iterations == 0");
  if (config_.direction_policy == DirectionPolicy::kConjugateGradient &&
      config_.step_policy != StepPolicy::kLineSearch)
    throw std::invalid_argument(
        "SteepestDescent: conjugate gradient requires the line-search step "
        "policy");
}

DescentResult SteepestDescent::run(
    const markov::TransitionMatrix& start) const {
  markov::TransitionMatrix p = start;
  // All probe evaluations in this run — gradients, line-search samples,
  // candidate checks — share one incremental solver cache: the run's own, or
  // the caller's long-lived one (mocos_serve warm reuse across requests).
  CachedCostEvaluator evaluator =
      config_.shared_cache != nullptr
          ? CachedCostEvaluator(cost_, *config_.shared_cache)
          : CachedCostEvaluator(cost_, config_.incremental);
  DescentResult result{p,
                       evaluator.cost_at(p),
                       0,
                       StopReason::kMaxIterations,
                       Trace{},
                       RecoveryLog{},
                       markov::ChainSolveCache::Stats{}};
  if (std::isinf(result.cost))
    throw std::invalid_argument("SteepestDescent: infeasible start matrix");
  obs::count("descent.runs");
  obs::ScopedSpan run_span("descent.run", "descent");
  obs::ScopedPhase run_phase("descent.run");
  // Shared epilogue for both exit paths: export the cache counters that were
  // previously dropped here, and the final cost as a gauge.
  auto finalize = [&] {
    result.chain_stats = evaluator.run_stats();
    record_cache_metrics(result.chain_stats);
    obs::gauge_set("descent.final_cost", result.cost);
  };

  // Recovery-ladder state. `last_good` is the most recent iterate whose cost
  // evaluated finite (the start qualifies by the check above); the ladder
  // rolls back to it whenever an evaluation fails.
  markov::TransitionMatrix last_good = p;
  markov::StationarySolver solver = markov::StationarySolver::kDirect;
  double margin = config_.probability_margin;
  double step_scale = 1.0;
  std::size_t consecutive_failures = 0;

  // Rolls back, backs off, and (from the second consecutive failure) widens
  // the interior margin. Returns false when the retry budget is exhausted.
  auto recover = [&](std::size_t it, const util::Status& cause) -> bool {
    ++consecutive_failures;
    if (consecutive_failures > config_.recovery_retry_budget) {
      result.recovery.record(it, RecoveryAction::kAbandoned, cause.code(),
                             "retry budget exhausted: " + cause.message());
      result.reason = StopReason::kNumericalFailure;
      return false;
    }
    p = last_good;
    result.recovery.record(it, RecoveryAction::kRollback, cause.code(),
                           cause.message());
    step_scale *= config_.recovery_step_backoff;
    result.recovery.record(it, RecoveryAction::kStepBackoff, cause.code(),
                           "step scale " + std::to_string(step_scale));
    if (consecutive_failures >= 2 && margin < config_.recovery_margin_cap) {
      margin = std::min(std::max(margin, 1e-12) *
                            config_.recovery_margin_growth,
                        config_.recovery_margin_cap);
      p = reproject_interior(p, margin);
      const double refreshed = evaluator.cost_at(p);
      if (std::isfinite(refreshed)) {
        last_good = p;
        result.cost = refreshed;
      }
      result.recovery.record(it, RecoveryAction::kMarginWidened, cause.code(),
                             "margin " + std::to_string(margin));
    }
    return true;
  };

  // Polak–Ribière+ state (only used by the CG direction policy).
  linalg::Matrix prev_grad;
  linalg::Matrix prev_direction;

  for (std::size_t it = 0; it < config_.max_iterations; ++it) {
    // Cooperative cancellation (request deadlines, server drain): polled
    // once per iteration, so a cancelled run still returns a consistent
    // finite iterate instead of being torn down mid-evaluation.
    if (config_.should_stop && config_.should_stop()) {
      result.reason = StopReason::kCancelled;
      break;
    }
    // --- Guarded evaluation: chain analysis, then the gradient. ----------
    util::StatusOr<const markov::ChainAnalysis*> chain =
        evaluator.analyze(p, solver);
    if (!chain.ok() && solver == markov::StationarySolver::kDirect &&
        util::is_numerical_failure(chain.status().code())) {
      solver = markov::StationarySolver::kPowerIteration;
      result.recovery.record(it, RecoveryAction::kPowerIterationFallback,
                             chain.status().code(), chain.status().message());
      chain = evaluator.analyze(p, solver);
    }
    if (!chain.ok()) {
      if (!recover(it, chain.status())) break;
      continue;
    }
    linalg::Matrix grad;
    {
      obs::ScopedPhase phase("gradient_assembly");
      grad = cost::projected_cost_gradient(cost_, **chain);
    }
    const util::Status grad_ok = util::check_finite(grad, "gradient");
    if (!grad_ok.is_ok()) {
      if (!recover(it, grad_ok)) break;
      continue;
    }

    const double grad_norm = linalg::frobenius_norm(grad);
    if (grad_norm < config_.gradient_tolerance) {
      result.reason = StopReason::kGradientTolerance;
      break;
    }
    linalg::Matrix direction = grad * (-1.0);
    if (config_.direction_policy == DirectionPolicy::kConjugateGradient &&
        !prev_grad.empty()) {
      // beta = max(0, <g, g - g_prev> / <g_prev, g_prev>)  (PR+).
      const double denom = linalg::frobenius_dot(prev_grad, prev_grad);
      if (denom > 0.0) {
        const double beta = std::max(
            0.0, linalg::frobenius_dot(grad, grad - prev_grad) / denom);
        direction += prev_direction * beta;
        // Restart on non-descent directions.
        if (linalg::frobenius_dot(direction, grad) >= 0.0)
          direction = grad * (-1.0);
      }
    }
    if (config_.direction_policy == DirectionPolicy::kConjugateGradient) {
      prev_grad = grad;
      prev_direction = direction;
    }
    const double max_step =
        max_feasible_step(p.matrix(), direction, margin) * step_scale;

    double step = 0.0;
    double new_cost = result.cost;
    std::size_t probes = 0;
    markov::TransitionMatrix candidate = p;
    {
      // Probe evaluations (and the chain solves they trigger) accumulate
      // under line_search in the phase profile.
      obs::ScopedPhase line_search_phase("line_search");
      if (config_.step_policy == StepPolicy::kConstant) {
        step = std::min(config_.constant_step * step_scale, max_step);
        const double biggest = linalg::max_abs(direction);
        if (biggest > 0.0 && config_.max_entry_change > 0.0)
          step = std::min(step, config_.max_entry_change / biggest);
        if (step > 0.0) {
          candidate = apply_step(p, direction, step, margin);
          new_cost = evaluator.cost_at(candidate);
          probes = 1;
        }
      } else {
        auto phi = [&](double t) {
          return evaluator.cost_at(apply_step(p, direction, t, margin));
        };
        const LineSearchResult ls = trisection_search(phi, result.cost,
                                                      max_step,
                                                      config_.line_search);
        step = ls.step;
        probes = ls.evaluations;
        if (step > 0.0) {
          candidate = apply_step(p, direction, step, margin);
          new_cost = ls.value;
        }
      }
    }

    // A step that lands on a non-finite cost is rejected, not silently
    // accepted: roll back and let the ladder shrink the trial step.
    if (step > 0.0 && !std::isfinite(new_cost)) {
      if (!recover(it, util::Status(util::StatusCode::kStepRejected,
                                    "candidate cost is not finite")))
        break;
      continue;
    }
    if (step > 0.0) p = std::move(candidate);

    ++result.iterations;
    if (config_.keep_trace)
      result.trace.record({result.iterations, new_cost, step, grad_norm,
                           /*accepted=*/step > 0.0});

    if (obs::current_metrics() != nullptr) {
      obs::count("descent.iterations");
      obs::count("descent.line_search.probes", probes);
      obs::count(step > 0.0 ? "descent.steps.accepted"
                            : "descent.steps.rejected");
      obs::observe("descent.gradient_norm", obs::decade_bounds(-12, 3),
                   grad_norm);
      if (step > 0.0)
        obs::observe("descent.step_size", obs::decade_bounds(-12, 0), step);
    }
    if (obs::trace_active()) {
      // Per-iteration telemetry: cost U at the analyzed iterate, its
      // per-term breakdown (coverage ΔC, exposure Ē, barrier/energy/entropy
      // contributions), and the transition just taken from it.
      obs::TraceArgs args;
      args.num("iteration", static_cast<double>(result.iterations))
          .num("u", result.cost)
          .num("u_next", new_cost)
          .num("step", step)
          .num("grad_norm", grad_norm)
          .num("probes", static_cast<double>(probes))
          .num("accepted", step > 0.0 ? 1.0 : 0.0);
      for (const auto& [term, value] : cost_.breakdown(**chain))
        args.num("term." + term, value);
      obs::trace_instant("descent.iteration", "descent", args);
    }

    // Exact on purpose: 0.0 is the line search's "no acceptable step"
    // sentinel, assigned literally — any accepted step is strictly positive.
    // mocos-lint: allow(float-eq)
    if (step == 0.0) {
      // Line search found no descent: the paper's Δt* = 0 termination
      // (a critical point — possibly one of the many local optima).
      result.cost = new_cost;
      result.reason = StopReason::kNoDescentStep;
      result.p = p;
      finalize();
      return result;
    }

    // Successful iteration: reset the ladder and let the step scale heal.
    last_good = p;
    consecutive_failures = 0;
    step_scale = std::min(1.0, step_scale * 2.0);

    const double change = std::abs(result.cost - new_cost) /
                          std::max(std::abs(result.cost), 1.0);
    result.cost = new_cost;
    if (config_.cost_tolerance > 0.0 && change < config_.cost_tolerance) {
      result.reason = StopReason::kCostTolerance;
      break;
    }
  }
  // On numerical failure the ladder already rolled p back to the last good
  // iterate, so the reported (p, cost) pair is finite and consistent.
  result.p = p;
  finalize();
  return result;
}

}  // namespace mocos::descent
