#include "src/descent/steepest_descent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/cost/gradient.hpp"
#include "src/descent/step_bounds.hpp"
#include "src/linalg/norms.hpp"

namespace mocos::descent {

double safe_cost(const cost::CompositeCost& cost,
                 const markov::TransitionMatrix& p) {
  try {
    const double u = cost.value(p);
    return std::isnan(u) ? std::numeric_limits<double>::infinity() : u;
  } catch (const std::exception&) {
    return std::numeric_limits<double>::infinity();
  }
}

markov::TransitionMatrix apply_step(const markov::TransitionMatrix& p,
                                    const linalg::Matrix& v, double t,
                                    double margin) {
  const std::size_t n = p.size();
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double x =
          std::clamp(p(i, j) + t * v(i, j), margin, 1.0 - margin);
      m(i, j) = x;
      row_sum += x;
    }
    // The direction is row-sum-zero, so row_sum ≈ 1 up to clamping;
    // renormalize exactly.
    for (std::size_t j = 0; j < n; ++j) m(i, j) /= row_sum;
  }
  return markov::TransitionMatrix(std::move(m));
}

SteepestDescent::SteepestDescent(const cost::CompositeCost& cost,
                                 DescentConfig config)
    : cost_(cost), config_(config) {
  if (config_.constant_step <= 0.0 &&
      config_.step_policy == StepPolicy::kConstant)
    throw std::invalid_argument("SteepestDescent: constant_step <= 0");
  if (config_.max_iterations == 0)
    throw std::invalid_argument("SteepestDescent: max_iterations == 0");
  if (config_.direction_policy == DirectionPolicy::kConjugateGradient &&
      config_.step_policy != StepPolicy::kLineSearch)
    throw std::invalid_argument(
        "SteepestDescent: conjugate gradient requires the line-search step "
        "policy");
}

DescentResult SteepestDescent::run(
    const markov::TransitionMatrix& start) const {
  markov::TransitionMatrix p = start;
  DescentResult result{p, safe_cost(cost_, p), 0, StopReason::kMaxIterations,
                       Trace{}};
  if (std::isinf(result.cost))
    throw std::invalid_argument("SteepestDescent: infeasible start matrix");

  // Polak–Ribière+ state (only used by the CG direction policy).
  linalg::Matrix prev_grad;
  linalg::Matrix prev_direction;

  for (std::size_t it = 0; it < config_.max_iterations; ++it) {
    const markov::ChainAnalysis chain = markov::analyze_chain(p);
    const linalg::Matrix grad = cost::projected_cost_gradient(cost_, chain);
    const double grad_norm = linalg::frobenius_norm(grad);
    if (grad_norm < config_.gradient_tolerance) {
      result.reason = StopReason::kGradientTolerance;
      break;
    }
    linalg::Matrix direction = grad * (-1.0);
    if (config_.direction_policy == DirectionPolicy::kConjugateGradient &&
        !prev_grad.empty()) {
      // beta = max(0, <g, g - g_prev> / <g_prev, g_prev>)  (PR+).
      const double denom = linalg::frobenius_dot(prev_grad, prev_grad);
      if (denom > 0.0) {
        const double beta = std::max(
            0.0, linalg::frobenius_dot(grad, grad - prev_grad) / denom);
        direction += prev_direction * beta;
        // Restart on non-descent directions.
        if (linalg::frobenius_dot(direction, grad) >= 0.0)
          direction = grad * (-1.0);
      }
    }
    if (config_.direction_policy == DirectionPolicy::kConjugateGradient) {
      prev_grad = grad;
      prev_direction = direction;
    }
    const double max_step =
        max_feasible_step(p.matrix(), direction, config_.probability_margin);

    double step = 0.0;
    double new_cost = result.cost;
    if (config_.step_policy == StepPolicy::kConstant) {
      step = std::min(config_.constant_step, max_step);
      const double biggest = linalg::max_abs(direction);
      if (biggest > 0.0 && config_.max_entry_change > 0.0)
        step = std::min(step, config_.max_entry_change / biggest);
      if (step > 0.0) {
        const markov::TransitionMatrix candidate =
            apply_step(p, direction, step, config_.probability_margin);
        new_cost = safe_cost(cost_, candidate);
        p = candidate;
      }
    } else {
      auto phi = [&](double t) {
        return safe_cost(
            cost_, apply_step(p, direction, t, config_.probability_margin));
      };
      const LineSearchResult ls = trisection_search(
          phi, result.cost, max_step, config_.line_search);
      step = ls.step;
      if (step > 0.0) {
        p = apply_step(p, direction, step, config_.probability_margin);
        new_cost = ls.value;
      }
    }

    ++result.iterations;
    if (config_.keep_trace)
      result.trace.record({result.iterations, new_cost, step, grad_norm,
                           /*accepted=*/step > 0.0});

    if (step == 0.0) {
      // Line search found no descent: the paper's Δt* = 0 termination
      // (a critical point — possibly one of the many local optima).
      result.cost = new_cost;
      result.reason = StopReason::kNoDescentStep;
      result.p = p;
      return result;
    }

    const double change = std::abs(result.cost - new_cost) /
                          std::max(std::abs(result.cost), 1.0);
    result.cost = new_cost;
    if (config_.cost_tolerance > 0.0 && change < config_.cost_tolerance) {
      result.reason = StopReason::kCostTolerance;
      break;
    }
  }
  result.p = p;
  return result;
}

}  // namespace mocos::descent
