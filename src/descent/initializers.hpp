#pragma once

#include <cstddef>
#include <vector>

#include "src/markov/transition_matrix.hpp"
#include "src/util/rng.hpp"

namespace mocos::descent {

/// V1 initial condition: p_ij = 1/M.
markov::TransitionMatrix uniform_start(std::size_t n);

/// Support-restricted initial condition: row i is uniform over support[i]
/// (which must include i itself so the chain is aperiodic) and exactly zero
/// elsewhere. The structural zeros are preserved by the descent's
/// support-masked projection and zero-preserving steps, which is what keeps
/// city-scale chains sparse through the whole optimization.
markov::TransitionMatrix support_uniform_start(
    const std::vector<std::vector<std::size_t>>& support);

/// V2 initial condition: the paper's random row-stochastic construction.
/// Retries (bounded) until the sampled chain is ergodic with every entry
/// strictly positive, which the construction almost surely yields anyway.
markov::TransitionMatrix random_start(std::size_t n, util::Rng& rng);

/// A blend (1-w)*uniform + w*random — useful in tests to sample matrices at
/// controlled distances from the uniform chain.
markov::TransitionMatrix blended_start(std::size_t n, double w,
                                       util::Rng& rng);

}  // namespace mocos::descent
