#include "src/descent/annealing_baseline.hpp"

#include <cmath>
#include <stdexcept>

#include "src/cost/projection.hpp"
#include "src/descent/steepest_descent.hpp"

namespace mocos::descent {

AnnealingResult anneal_schedule(const cost::CompositeCost& cost,
                                const markov::TransitionMatrix& start,
                                const AnnealingConfig& config,
                                util::Rng& rng) {
  if (config.max_iterations == 0)
    throw std::invalid_argument("anneal_schedule: max_iterations == 0");
  if (config.proposal_scale <= 0.0)
    throw std::invalid_argument("anneal_schedule: proposal_scale <= 0");
  if (config.annealing_k <= 0.0)
    throw std::invalid_argument("anneal_schedule: annealing_k <= 0");

  markov::TransitionMatrix p = start;
  double current = safe_cost(cost, p);
  if (std::isinf(current))
    throw std::invalid_argument("anneal_schedule: infeasible start");

  AnnealingResult result{p, current, 0, 0};
  const std::size_t n = p.size();

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    // Random row-sum-zero proposal, cooled like the temperature.
    const double cool = std::log(2.0) / std::log(static_cast<double>(it) + 2.0);
    linalg::Matrix noise(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        noise(i, j) = rng.gaussian(0.0, config.proposal_scale * cool);
    const linalg::Matrix direction = cost::project_row_sum_zero(noise);

    const markov::TransitionMatrix candidate =
        apply_step(p, direction, 1.0, config.probability_margin);
    const double cand_cost = safe_cost(cost, candidate);

    bool accept = cand_cost < current;
    if (!accept && std::isfinite(cand_cost)) {
      const double denom = std::max(std::abs(result.best_cost), 1e-300);
      const double delta = (cand_cost - current) / denom;
      const double temperature =
          config.annealing_k / std::log(static_cast<double>(it) + 2.0);
      accept = rng.bernoulli(std::exp(-delta / temperature));
    }
    ++result.iterations;
    if (accept) {
      ++result.accepted;
      p = candidate;
      current = cand_cost;
      if (current < result.best_cost) {
        result.best_cost = current;
        result.best_p = p;
      }
    }
  }
  return result;
}

}  // namespace mocos::descent
