#pragma once

#include <cstddef>
#include <functional>

namespace mocos::descent {

struct LineSearchConfig {
  /// Stop when the bracketing interval is narrower than
  /// relative_tolerance * initial_width (plus an absolute floor).
  double relative_tolerance = 1e-4;
  double absolute_tolerance = 1e-15;
  /// Hard cap on objective evaluations per search.
  std::size_t max_evaluations = 200;
  /// Treat the searched minimum as "no improvement" (Δt* = 0) unless it
  /// beats φ(0) by at least improvement_margin +
  /// relative_improvement_margin * |φ(0)| — the paper's local-optimum
  /// termination test, with the relative part keeping the threshold above
  /// floating-point noise for large cost magnitudes.
  double improvement_margin = 1e-14;
  double relative_improvement_margin = 1e-12;
};

struct LineSearchResult {
  double step = 0.0;        // Δt* (0 means: no descent along this direction)
  double value = 0.0;       // φ(Δt*)
  std::size_t evaluations = 0;
};

/// The paper's V3 step-size rule: minimize φ(δ) = U(P − δ∇U) over
/// δ ∈ [0, max_step] with a conservative trisection (each round evaluates the
/// two interior third-points and discards only one outer sub-interval).
/// φ may return +infinity for infeasible probes (barrier / non-ergodic).
///
/// The descent drivers pass a φ backed by CachedCostEvaluator, so successive
/// probe evaluations share one ChainSolveCache and are refreshed by rank-one
/// updates whenever consecutive probes differ in few rows of P (see
/// src/markov/incremental.hpp). φ itself stays a plain callable — the search
/// is agnostic to how the objective is produced.
LineSearchResult trisection_search(const std::function<double(double)>& phi,
                                   double phi_at_zero, double max_step,
                                   const LineSearchConfig& config = {});

}  // namespace mocos::descent
