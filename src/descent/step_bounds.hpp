#pragma once

#include "src/linalg/matrix.hpp"

namespace mocos::descent {

/// Largest t >= 0 such that every entry of P + t*V stays inside
/// [margin, 1 - margin] (the "boundaries of δ ... determined with respect to
/// the constraint 0 <= p_ij <= 1" in variant V3). Returns +infinity when V
/// never pushes any entry toward a bound.
///
/// `margin` > 0 keeps the iterate strictly inside the polytope so the chain
/// stays ergodic and the barrier terms stay finite.
double max_feasible_step(const linalg::Matrix& p, const linalg::Matrix& v,
                         double margin = 0.0);

}  // namespace mocos::descent
