#include "src/descent/cached_cost.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/markov/fundamental.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/phase_timer.hpp"
#include "src/util/fault_injection.hpp"

namespace mocos::descent {

CachedCostEvaluator::CachedCostEvaluator(const cost::CompositeCost& cost,
                                         markov::IncrementalConfig config)
    : cost_(cost), owned_(std::in_place, config), cache_(&*owned_) {}

CachedCostEvaluator::CachedCostEvaluator(const cost::CompositeCost& cost,
                                         markov::ChainSolveCache& shared)
    : cost_(cost), cache_(&shared), initial_stats_(shared.stats()) {}

double CachedCostEvaluator::cost_at(const markov::TransitionMatrix& p) {
  util::Status updated;
  {
    obs::ScopedPhase phase("chain_solve");
    updated = cache_->update(p);
  }
  if (!updated.is_ok()) return std::numeric_limits<double>::infinity();
  try {
    obs::ScopedPhase phase("cost_terms");
    const double u = cost_.value(cache_->analysis());
    return std::isnan(u) ? std::numeric_limits<double>::infinity() : u;
  } catch (const std::exception&) {
    return std::numeric_limits<double>::infinity();
  }
}

util::StatusOr<const markov::ChainAnalysis*> CachedCostEvaluator::analyze(
    const markov::TransitionMatrix& p, markov::StationarySolver solver) {
  if (solver == markov::StationarySolver::kDirect) {
    // The gradient-step analysis is usually a cache hit (the iterate was
    // just cost-evaluated), so the direct stationary solve inside
    // try_analyze_chain no longer runs here. Consult its fault site
    // directly to keep the ladder's power-iteration demote rung reachable
    // under injection, matching stationary.cpp's try_direct.
    if (util::fault::fire(util::fault::Site::kStationary))
      return util::Status(util::StatusCode::kSingularMatrix,
                          "stationary solve failed (fault injection)");
    obs::ScopedPhase phase("chain_solve");
    util::Status updated = cache_->update(p);
    if (!updated.is_ok()) return updated;
    return &cache_->analysis();
  }
  obs::ScopedPhase phase("chain_solve");
  util::StatusOr<markov::ChainAnalysis> chain =
      markov::try_analyze_chain(p, solver);
  if (!chain.ok()) return chain.status();
  fallback_.emplace(std::move(*chain));
  return &*fallback_;
}

void record_cache_metrics(const markov::ChainSolveCache::Stats& stats) {
  if (obs::current_metrics() == nullptr) return;
  obs::count("chain_cache.full_solves", stats.full_solves);
  obs::count("chain_cache.sparse_full_solves", stats.sparse_full_solves);
  obs::count("chain_cache.exact_hits", stats.exact_hits);
  obs::count("chain_cache.row_updates", stats.incremental_row_updates);
  obs::count("chain_cache.denominator_fallbacks",
             stats.denominator_fallbacks);
  obs::count("chain_cache.drift_refactors", stats.drift_refactors);
  obs::count("chain_cache.residual_fallbacks", stats.residual_fallbacks);
}

}  // namespace mocos::descent
