#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/descent/perturbed_descent.hpp"
#include "src/runtime/execution_context.hpp"

namespace mocos::descent {

/// Configuration of the multi-start driver (the paper's Fig. 2 protocol:
/// many V2 random initial matrices, each refined by the V4 perturbed
/// descent, keep the best).
struct MultiStartConfig {
  /// Independent starts (>= 1).
  std::size_t starts = 8;
  /// V2: sample each start from the random row-stochastic construction;
  /// false pins every start to the uniform matrix (then only the driver
  /// noise differs between starts).
  bool random_start = true;
  /// Per-start driver configuration.
  PerturbedConfig perturbed;
};

struct MultiStartResult {
  /// The winning start's full result (best_p / best_cost / trace / ...).
  PerturbedResult best;
  /// Index of the winning start; ties break to the lowest index so the
  /// reduction is deterministic.
  std::size_t best_index = 0;
  /// Per-start best costs, indexed by start.
  std::vector<double> costs;
  /// Per-start stop reasons (kNumericalFailure entries mark starts whose
  /// recovery ladder ran out; they still report their best-seen cost).
  std::vector<StopReason> reasons;
  /// Per-start rescue logs, indexed by start (empty logs on clean runs).
  std::vector<RecoveryLog> recovery;

  /// Starts that ended in kNumericalFailure.
  std::size_t failed_starts() const;
};

/// Runs `config.starts` independent perturbed descents on `cost` over
/// `num_pois` PoIs and keeps the lowest best-cost iterate.
///
/// Start k's initial matrix and driver noise both come from the indexed
/// stream `k` of one base drawn from `rng`, so for a fixed incoming RNG
/// state the winner (index, cost bits, matrix) is identical for any
/// `ctx.jobs()`. A start whose descent throws (infeasible sampled start,
/// exhausted initializer retries) propagates deterministically — callers
/// wanting isolation run one scenario per start instead.
[[nodiscard]] MultiStartResult multi_start_perturbed(
    const cost::CompositeCost& cost,
                                       std::size_t num_pois,
                                       const MultiStartConfig& config,
                                       util::Rng& rng,
                                       const runtime::ExecutionContext& ctx = {});

}  // namespace mocos::descent
