#include "src/descent/recovery.hpp"

#include <string>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace mocos::descent {

const char* to_string(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kRollback:
      return "rollback";
    case RecoveryAction::kStepBackoff:
      return "step-backoff";
    case RecoveryAction::kMarginWidened:
      return "margin-widened";
    case RecoveryAction::kPowerIterationFallback:
      return "power-iteration-fallback";
    case RecoveryAction::kAbandoned:
      return "abandoned";
  }
  return "unknown";
}

void RecoveryLog::record(std::size_t iteration, RecoveryAction action,
                         util::StatusCode cause, std::string detail) {
  obs::count(std::string("descent.recovery.") + to_string(action));
  if (obs::trace_active()) {
    obs::trace_instant(
        "descent.recovery", "descent",
        obs::TraceArgs()
            .num("iteration", static_cast<double>(iteration))
            .str("action", to_string(action))
            .str("cause", util::to_string(cause))
            .str("detail", detail));
  }
  events_.push_back({iteration, action, cause, std::move(detail)});
}

std::size_t RecoveryLog::count(RecoveryAction action) const {
  std::size_t n = 0;
  for (const RecoveryEvent& e : events_)
    if (e.action == action) ++n;
  return n;
}

std::string RecoveryLog::summary() const {
  if (events_.empty()) return "no recovery events";
  std::string out;
  constexpr RecoveryAction kActions[] = {
      RecoveryAction::kRollback, RecoveryAction::kStepBackoff,
      RecoveryAction::kMarginWidened, RecoveryAction::kPowerIterationFallback,
      RecoveryAction::kAbandoned};
  for (RecoveryAction a : kActions) {
    const std::size_t n = count(a);
    if (n == 0) continue;
    if (!out.empty()) out += ", ";
    out += to_string(a);
    out += " x";
    out += std::to_string(n);
  }
  return out;
}

}  // namespace mocos::descent
