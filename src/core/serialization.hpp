#pragma once

#include <string>

#include "src/markov/transition_matrix.hpp"

namespace mocos::core {

/// Plain-text schedule format (round-trips at full double precision):
///
///   mocos-schedule v1
///   pois <M>
///   <p_00> <p_01> ... <p_0,M-1>
///   ...
///
/// The deserializer re-validates row-stochasticity, so a hand-edited file
/// that is not a transition matrix is rejected loudly.
std::string serialize_schedule(const markov::TransitionMatrix& p);
markov::TransitionMatrix deserialize_schedule(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_schedule(const std::string& path,
                   const markov::TransitionMatrix& p);
markov::TransitionMatrix load_schedule(const std::string& path);

}  // namespace mocos::core
