#pragma once

#include <string>

#include "src/cost/metrics.hpp"
#include "src/descent/steepest_descent.hpp"
#include "src/descent/trace.hpp"
#include "src/markov/transition_matrix.hpp"

namespace mocos::core {

/// Which algorithm variant produced a result (§V naming).
enum class Algorithm {
  kBasic,      // V1 (+V2 if started from a random matrix)
  kAdaptive,   // V1+V2+V3: random start + trisection line search
  kPerturbed   // V1+V2+V3+V4: + gradient noise and annealed acceptance
};

std::string to_string(Algorithm a);

/// Outcome of one optimization run through the CoverageOptimizer facade.
struct OptimizationOutcome {
  Algorithm algorithm = Algorithm::kBasic;
  markov::TransitionMatrix p;   // best schedule found
  double penalized_cost = 0.0;  // U_ε at p
  cost::Metrics metrics;        // ΔC, Ē, C̄_i, Ē_i at p
  double report_cost = 0.0;     // Eq. 14: ½αΔC + ½βĒ²
  std::size_t iterations = 0;
  descent::Trace trace;
  /// Why the driving descent stopped; kNumericalFailure means the recovery
  /// ladder gave up and (p, costs) describe the last good iterate.
  descent::StopReason stop_reason = descent::StopReason::kMaxIterations;
  /// Rescue events the descent needed (empty on clean runs).
  descent::RecoveryLog recovery;
  /// Solver-cache counters of the run that produced p (all evaluators the
  /// winning descent used). Deterministic for a fixed seed, so tests can
  /// assert non-zero hit counts.
  markov::ChainSolveCache::Stats chain_stats;

  /// Multi-line human-readable summary (used by the examples).
  std::string summary() const;
};

}  // namespace mocos::core
