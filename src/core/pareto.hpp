#pragma once

#include <vector>

#include "src/core/optimizer.hpp"

namespace mocos::core {

/// One point on the coverage/exposure trade-off curve: the schedule obtained
/// at a particular β (with α = 1), and its two competing metrics.
struct TradeoffPoint {
  double beta = 0.0;
  double delta_c = 0.0;  // Eq. 12
  double e_bar = 0.0;    // Eq. 13
  markov::TransitionMatrix p;
};

struct FrontierOptions {
  /// Log-spaced β grid from beta_max down to beta_min, plus the exact
  /// endpoints {beta = 0} when include_beta_zero is set.
  double beta_max = 1.0;
  double beta_min = 1e-6;
  std::size_t grid_points = 7;
  bool include_beta_zero = true;
  /// Per-point optimizer settings.
  OptimizerOptions per_point;
};

/// Sweeps the exposure weight β (α fixed at 1) over a log grid, optimizing a
/// schedule per point — §VI-B's Tables I/II as a first-class API — and
/// returns the points sorted by descending β.
///
/// `problem_template` supplies topology/physics; its α/β weights are
/// overridden per grid point (straight-line motion model only, since the
/// problem must be re-built per β).
std::vector<TradeoffPoint> tradeoff_sweep(const Problem& problem_template,
                                          const FrontierOptions& options);

/// Filters a set of trade-off points down to the Pareto-efficient subset
/// (no other point is at least as good in both ΔC and Ē and strictly better
/// in one), sorted by ascending ΔC.
std::vector<TradeoffPoint> pareto_front(std::vector<TradeoffPoint> points);

}  // namespace mocos::core
