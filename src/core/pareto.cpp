#include "src/core/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/sensing/travel_model.hpp"

namespace mocos::core {

std::vector<TradeoffPoint> tradeoff_sweep(const Problem& problem_template,
                                          const FrontierOptions& options) {
  if (options.beta_min <= 0.0 || options.beta_max <= options.beta_min)
    throw std::invalid_argument("tradeoff_sweep: need 0 < beta_min < beta_max");
  if (options.grid_points < 2)
    throw std::invalid_argument("tradeoff_sweep: need >= 2 grid points");
  if (dynamic_cast<const sensing::TravelModel*>(&problem_template.model()) ==
      nullptr)
    throw std::invalid_argument(
        "tradeoff_sweep: requires the straight-line TravelModel (the "
        "problem is re-built per grid point)");

  std::vector<double> betas;
  const double log_hi = std::log(options.beta_max);
  const double log_lo = std::log(options.beta_min);
  for (std::size_t g = 0; g < options.grid_points; ++g) {
    const double t = static_cast<double>(g) /
                     static_cast<double>(options.grid_points - 1);
    betas.push_back(std::exp(log_hi + t * (log_lo - log_hi)));
  }
  if (options.include_beta_zero) betas.push_back(0.0);

  std::vector<TradeoffPoint> out;
  out.reserve(betas.size());
  for (double beta : betas) {
    Weights w = problem_template.weights();
    w.alpha = 1.0;
    w.beta = beta;
    w.alpha_per_poi.clear();
    w.beta_per_poi.clear();
    const Problem sub(geometry::Topology(problem_template.topology()),
                      problem_template.physics(), w);
    auto outcome = CoverageOptimizer(sub, options.per_point).run();
    out.push_back(TradeoffPoint{beta, outcome.metrics.delta_c,
                                outcome.metrics.e_bar, std::move(outcome.p)});
  }
  return out;
}

std::vector<TradeoffPoint> pareto_front(std::vector<TradeoffPoint> points) {
  std::vector<TradeoffPoint> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j == i) continue;
      const bool no_worse = points[j].delta_c <= points[i].delta_c &&
                            points[j].e_bar <= points[i].e_bar;
      const bool better = points[j].delta_c < points[i].delta_c ||
                          points[j].e_bar < points[i].e_bar;
      dominated = no_worse && better;
    }
    if (!dominated) front.push_back(points[i]);
  }
  std::sort(front.begin(), front.end(),
            [](const TradeoffPoint& a, const TradeoffPoint& b) {
              return a.delta_c < b.delta_c;
            });
  return front;
}

}  // namespace mocos::core
