#include "src/core/result.hpp"

#include <sstream>

#include "src/util/table.hpp"

namespace mocos::core {

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kBasic:
      return "basic";
    case Algorithm::kAdaptive:
      return "adaptive";
    case Algorithm::kPerturbed:
      return "perturbed";
  }
  return "unknown";
}

std::string OptimizationOutcome::summary() const {
  std::ostringstream oss;
  oss << "algorithm: " << to_string(algorithm) << '\n'
      << "iterations: " << iterations << '\n';
  if (!recovery.empty())
    oss << "recovery: " << recovery.summary() << " (stopped: "
        << descent::to_string(stop_reason) << ")\n";
  oss << "penalized cost U_eps: " << util::fmt(penalized_cost, 8) << '\n'
      << "report cost U (Eq.14): " << util::fmt(report_cost, 8) << '\n'
      << "delta_C (Eq.12): " << util::fmt(metrics.delta_c, 8) << '\n'
      << "E_bar (Eq.13): " << util::fmt(metrics.e_bar, 6) << '\n';
  util::Table t({"PoI", "coverage share C_i", "mean exposure E_i"});
  for (std::size_t i = 0; i < metrics.c_share.size(); ++i) {
    t.add_row({std::to_string(i + 1), util::fmt(metrics.c_share[i], 4),
               util::fmt(metrics.exposure[i], 4)});
  }
  oss << t.to_string();
  return oss.str();
}

}  // namespace mocos::core
