#include "src/core/problem.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/cost/barrier_term.hpp"
#include "src/cost/coverage_term.hpp"
#include "src/cost/energy_term.hpp"
#include "src/cost/entropy_term.hpp"
#include "src/cost/event_capture_term.hpp"
#include "src/cost/exposure_term.hpp"
#include "src/cost/information_term.hpp"
#include "src/cost/minimax_exposure_term.hpp"
#include "src/geometry/city_topology.hpp"
#include "src/markov/fundamental.hpp"

namespace mocos::core {

namespace {
sensing::CoverageTensors make_tensors(const sensing::MotionModel& model,
                                      const Physics& physics) {
  if (physics.support_radius > 0.0)
    return sensing::CoverageTensors(
        model,
        geometry::radius_neighbors(model.topology(), physics.support_radius),
        physics.sensing_radius);
  return sensing::CoverageTensors(model);
}
}  // namespace

Problem::Problem(geometry::Topology topology, Physics physics, Weights weights)
    : physics_(physics),
      weights_(weights),
      model_(std::make_unique<sensing::TravelModel>(
          std::move(topology), physics.speed, physics.pause,
          physics.sensing_radius)),
      tensors_(make_tensors(*model_, physics_)) {}

Problem::Problem(std::unique_ptr<sensing::MotionModel> model, Weights weights)
    : weights_(weights),
      model_([&]() -> std::unique_ptr<sensing::MotionModel> {
        if (!model) throw std::invalid_argument("Problem: null motion model");
        return std::move(model);
      }()),
      tensors_(*model_) {}

namespace {
// Resolves the scalar/per-PoI weight pair into a per-PoI vector; an empty
// override means "use the scalar everywhere". Returns an empty vector when
// the term is disabled (all weights zero).
std::vector<double> resolve_weights(double scalar,
                                    const std::vector<double>& per_poi,
                                    std::size_t n, const char* name) {
  std::vector<double> w = per_poi;
  if (w.empty()) w.assign(n, scalar);
  if (w.size() != n)
    throw std::invalid_argument(std::string("Weights: ") + name +
                                "_per_poi size mismatch");
  bool any = false;
  for (double x : w) {
    if (x < 0.0)
      throw std::invalid_argument(std::string("Weights: negative ") + name);
    // Exact on purpose: config weights are written literally; any nonzero
    // value, however small, keeps the per-PoI vector alive.
    // mocos-lint: allow(float-eq)
    any = any || x != 0.0;
  }
  if (!any) w.clear();
  return w;
}
}  // namespace

std::vector<double> Problem::resolved_event_rates() const {
  if (!weights_.event_rates.empty()) return weights_.event_rates;
  const std::size_t n = num_pois();
  std::vector<double> rates(n, 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = std::pow(static_cast<double>(i + 1), -weights_.lambda_skew);
    sum += rates[i];
  }
  for (std::size_t i = 0; i < n; ++i) rates[i] /= sum;
  return rates;
}

cost::CompositeCost Problem::make_cost(
    std::optional<double> smoothmax_beta_override) const {
  cost::CompositeCost u;
  // Information capture stays gated on the dense coverage matrices; event
  // capture needs only (π, Z) and composes with sparse problems, so rates
  // alone no longer force the dense path.
  const bool info_enabled =
      !weights_.event_rates.empty() && weights_.information_gamma > 0.0;
  if (tensors_.sparse() && info_enabled)
    throw std::invalid_argument(
        "Problem: the information-capture objective needs the dense per-PoI "
        "coverage matrices and cannot be combined with support_radius > 0");
  const auto alphas = resolve_weights(weights_.alpha, weights_.alpha_per_poi,
                                      num_pois(), "alpha");
  if (!alphas.empty())
    u.add(std::make_unique<cost::CoverageDeviationTerm>(tensors_, targets(),
                                                        alphas));
  const auto betas = resolve_weights(weights_.beta, weights_.beta_per_poi,
                                     num_pois(), "beta");
  if (!betas.empty())
    u.add(std::make_unique<cost::ExposureTerm>(betas));
  u.add(std::make_unique<cost::BarrierTerm>(weights_.epsilon));
  // Exact on purpose (both checks below): weight == 0 is the "term
  // disabled" config contract, not a computed quantity.
  // mocos-lint: allow(float-eq)
  if (weights_.energy_gamma != 0.0)
    u.add(std::make_unique<cost::EnergyTerm>(tensors_, weights_.energy_gamma,
                                             weights_.energy_target));
  // mocos-lint: allow(float-eq)
  if (weights_.entropy_weight != 0.0)
    u.add(std::make_unique<cost::EntropyTerm>(weights_.entropy_weight));
  if (info_enabled)
    u.add(std::make_unique<cost::InformationCaptureTerm>(
        tensors_, weights_.event_rates, weights_.information_gamma));
  if (weights_.capture_weight > 0.0)
    u.add(std::make_unique<cost::EventCaptureTerm>(
        resolved_event_rates(), weights_.capture_duration,
        weights_.capture_weight));
  if (weights_.minimax_weight > 0.0)
    u.add(std::make_unique<cost::MinimaxExposureTerm>(
        weights_.minimax_weight,
        smoothmax_beta_override.value_or(weights_.smoothmax_beta)));
  return u;
}

cost::Metrics Problem::metrics_of(const markov::TransitionMatrix& p) const {
  // Guarded analysis so callers evaluating an arbitrary schedule (e.g. the
  // CLI's load_schedule audit path) get a structured numerical-failure error
  // for reducible/degenerate chains instead of a bare runtime_error.
  util::StatusOr<markov::ChainAnalysis> chain = markov::try_analyze_chain(p);
  if (!chain.ok()) throw util::StatusError(chain.status());
  return cost::compute_metrics(*chain, tensors_, targets());
}

double Problem::report_cost(const markov::TransitionMatrix& p) const {
  return metrics_of(p).cost(weights_.alpha, weights_.beta);
}

}  // namespace mocos::core
