#include "src/core/serialization.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/util/status.hpp"

namespace mocos::core {

namespace {
constexpr const char* kHeader = "mocos-schedule v1";
}

std::string serialize_schedule(const markov::TransitionMatrix& p) {
  std::ostringstream out;
  out << kHeader << '\n' << "pois " << p.size() << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j)
      out << p(i, j) << (j + 1 < p.size() ? " " : "\n");
  }
  return out.str();
}

markov::TransitionMatrix deserialize_schedule(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    throw std::invalid_argument(
        "deserialize_schedule: missing 'mocos-schedule v1' header");
  std::string keyword;
  std::size_t n = 0;
  if (!(in >> keyword >> n) || keyword != "pois" || n < 2)
    throw std::invalid_argument(
        "deserialize_schedule: expected 'pois <M>' with M >= 2");
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double v = 0.0;
      if (!(in >> v))
        throw std::invalid_argument(
            "deserialize_schedule: truncated matrix data");
      m(i, j) = v;
    }
  }
  double extra;
  if (in >> extra)
    throw std::invalid_argument("deserialize_schedule: trailing data");
  return markov::TransitionMatrix(std::move(m));
}

void save_schedule(const std::string& path,
                   const markov::TransitionMatrix& p) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_schedule: cannot write " + path);
  out << serialize_schedule(p);
  if (!out) throw std::runtime_error("save_schedule: write failed " + path);
}

markov::TransitionMatrix load_schedule(const std::string& path) {
  std::ifstream in(path);
  // Structured code so the CLI maps an unreadable schedule to the same
  // bad-config exit as an unreadable config file (StatusError still derives
  // std::runtime_error for existing callers).
  if (!in)
    throw util::StatusError(
        util::Status(util::StatusCode::kInvalidConfig,
                     "load_schedule: cannot read " + path));
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize_schedule(buf.str());
}

}  // namespace mocos::core
