#include "src/core/optimizer.hpp"

#include <stdexcept>
#include <utility>

#include "src/descent/initializers.hpp"
#include "src/descent/multi_start.hpp"

namespace mocos::core {

CoverageOptimizer::CoverageOptimizer(const Problem& problem,
                                     OptimizerOptions options)
    : problem_(problem), options_(options) {
  if (options_.max_iterations == 0)
    throw std::invalid_argument("CoverageOptimizer: max_iterations == 0");
}

OptimizationOutcome CoverageOptimizer::finish(
    Algorithm algorithm, markov::TransitionMatrix best, double cost,
    std::size_t iterations, descent::Trace trace,
    descent::StopReason stop_reason, descent::RecoveryLog recovery,
    markov::ChainSolveCache::Stats chain_stats) const {
  cost::Metrics metrics = problem_.metrics_of(best);
  const double report =
      metrics.cost(problem_.weights().alpha, problem_.weights().beta);
  return OptimizationOutcome{algorithm,
                             std::move(best),
                             cost,
                             std::move(metrics),
                             report,
                             iterations,
                             std::move(trace),
                             stop_reason,
                             std::move(recovery),
                             chain_stats};
}

OptimizationOutcome CoverageOptimizer::run(
    const runtime::ExecutionContext& ctx) const {
  if (options_.starts > 1) {
    if (options_.algorithm != Algorithm::kPerturbed)
      throw std::invalid_argument(
          "CoverageOptimizer: starts > 1 requires the perturbed algorithm");
    const cost::CompositeCost cost =
        problem_.make_cost(options_.smoothmax_beta_override);
    descent::MultiStartConfig cfg;
    cfg.starts = options_.starts;
    cfg.random_start = options_.random_start;
    cfg.perturbed.base.step_policy = descent::StepPolicy::kLineSearch;
    cfg.perturbed.base.keep_trace = options_.keep_trace;
    cfg.perturbed.base.incremental.enabled = options_.use_incremental;
    // should_stop flows into every start; shared_cache deliberately does not
    // (parallel starts sharing one cache would race on its state).
    cfg.perturbed.base.should_stop = options_.should_stop;
    cfg.perturbed.noise_sigma = options_.noise_sigma;
    cfg.perturbed.annealing_k = options_.annealing_k;
    cfg.perturbed.max_iterations = options_.max_iterations;
    cfg.perturbed.stall_limit = options_.stall_limit;
    cfg.perturbed.keep_trace = options_.keep_trace;
    util::Rng rng(options_.seed);
    descent::MultiStartResult ms = descent::multi_start_perturbed(
        cost, problem_.num_pois(), cfg, rng, ctx);
    return finish(Algorithm::kPerturbed, std::move(ms.best.best_p),
                  ms.best.best_cost, ms.best.iterations,
                  std::move(ms.best.trace), ms.best.reason,
                  std::move(ms.best.recovery), ms.best.chain_stats);
  }
  util::Rng rng(options_.seed);
  // A support-restricted problem must start on its support: the sparse
  // coverage tensors only store entries over the support, so a dense start
  // would put probability on transitions whose coverage was never computed
  // (and would defeat the sparse chain solver besides).
  if (!problem_.support().empty())
    return run(descent::support_uniform_start(problem_.support()));
  const markov::TransitionMatrix start =
      options_.random_start ? descent::random_start(problem_.num_pois(), rng)
                            : descent::uniform_start(problem_.num_pois());
  return run(start);
}

OptimizationOutcome CoverageOptimizer::run(
    const markov::TransitionMatrix& start) const {
  const cost::CompositeCost cost =
      problem_.make_cost(options_.smoothmax_beta_override);

  if (options_.algorithm == Algorithm::kPerturbed) {
    descent::PerturbedConfig cfg;
    cfg.base.step_policy = descent::StepPolicy::kLineSearch;
    cfg.base.keep_trace = options_.keep_trace;
    cfg.base.incremental.enabled = options_.use_incremental;
    cfg.base.should_stop = options_.should_stop;
    cfg.base.shared_cache = options_.shared_cache;
    cfg.noise_sigma = options_.noise_sigma;
    cfg.annealing_k = options_.annealing_k;
    cfg.max_iterations = options_.max_iterations;
    cfg.stall_limit = options_.stall_limit;
    cfg.keep_trace = options_.keep_trace;
    descent::PerturbedDescent driver(cost, cfg);
    // The RNG must differ from the one used for the start matrix so reruns
    // from an explicit start stay reproducible from the seed alone.
    util::Rng rng(options_.seed ^ 0x5eedULL);
    descent::PerturbedResult res = driver.run(start, rng);
    return finish(Algorithm::kPerturbed, std::move(res.best_p), res.best_cost,
                  res.iterations, std::move(res.trace), res.reason,
                  std::move(res.recovery), res.chain_stats);
  }

  descent::DescentConfig cfg;
  cfg.max_iterations = options_.max_iterations;
  cfg.keep_trace = options_.keep_trace;
  cfg.incremental.enabled = options_.use_incremental;
  cfg.should_stop = options_.should_stop;
  cfg.shared_cache = options_.shared_cache;
  if (options_.algorithm == Algorithm::kAdaptive) {
    cfg.step_policy = descent::StepPolicy::kLineSearch;
  } else {
    cfg.step_policy = descent::StepPolicy::kConstant;
    cfg.constant_step = options_.constant_step;
  }
  descent::SteepestDescent driver(cost, cfg);
  descent::DescentResult res = driver.run(start);
  return finish(options_.algorithm, std::move(res.p), res.cost, res.iterations,
                std::move(res.trace), res.reason, std::move(res.recovery),
                res.chain_stats);
}

}  // namespace mocos::core
