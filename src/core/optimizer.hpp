#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "src/core/problem.hpp"
#include "src/core/result.hpp"
#include "src/descent/perturbed_descent.hpp"
#include "src/descent/steepest_descent.hpp"
#include "src/runtime/execution_context.hpp"

namespace mocos::core {

struct OptimizerOptions {
  Algorithm algorithm = Algorithm::kPerturbed;
  /// V2: start from a random ergodic matrix instead of the uniform one.
  bool random_start = false;
  std::uint64_t seed = 1;
  std::size_t max_iterations = 2000;
  /// V1 constant step (the paper's Δt = 1e-6 in §VI).
  double constant_step = 1e-6;
  /// V4 parameters.
  double noise_sigma = 2.0;
  double annealing_k = 10000.0;
  std::size_t stall_limit = 400;  // early exit for the perturbed algorithm
  bool keep_trace = true;
  /// Multi-start (perturbed algorithm only): run this many independent
  /// V2-random starts and keep the best — the paper's Fig. 2 protocol as a
  /// single call. Starts run on the ExecutionContext handed to run(); the
  /// winner is bit-identical for any job count.
  std::size_t starts = 1;
  /// Rank-one incremental chain solves for probe evaluations (see
  /// src/markov/incremental.hpp). False forces every probe onto the full
  /// O(M³) solve path — the `incremental = false` config key and the CLI
  /// --no-incremental / MOCOS_NO_INCREMENTAL escape hatch.
  bool use_incremental = true;
  /// Cooperative cancellation: polled once per descent iteration; returning
  /// true ends the run with StopReason::kCancelled and the best iterate so
  /// far (mocos_serve request deadlines). Null: never stops early.
  std::function<bool()> should_stop;
  /// Per-run override of the minimax term's smooth-max temperature β
  /// (nullopt keeps the Weights value). The β-annealing driver raises this
  /// across warm-started stages so early stages see a soft, well-conditioned
  /// max and late stages approach the hard worst case.
  std::optional<double> smoothmax_beta_override;
  /// Externally owned solver cache for all probe evaluations — mocos_serve's
  /// warm-reuse path. Only honored for single-start runs (parallel starts
  /// sharing one cache would race); the caller guarantees exclusive access
  /// for the duration of run().
  markov::ChainSolveCache* shared_cache = nullptr;
};

/// Facade tying the problem, the cost construction, and the §V algorithm
/// variants into one call — the typical downstream entry point:
///
///   core::Problem problem(topology, {}, {.alpha = 1, .beta = 1});
///   core::CoverageOptimizer opt(problem, {});
///   auto outcome = opt.run();
///   // outcome.p drives the sensor; outcome.metrics reports ΔC, Ē, ...
class CoverageOptimizer {
 public:
  CoverageOptimizer(const Problem& problem, OptimizerOptions options);

  /// Runs with a start matrix chosen per options (uniform or V2-random).
  /// With options.starts > 1 (perturbed algorithm), runs the multi-start
  /// protocol on `ctx` and returns the winner.
  [[nodiscard]] OptimizationOutcome run(
      const runtime::ExecutionContext& ctx = {}) const;

  /// Runs from an explicit start matrix (single start).
  [[nodiscard]] OptimizationOutcome run(
      const markov::TransitionMatrix& start) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  OptimizationOutcome finish(Algorithm algorithm,
                             markov::TransitionMatrix best, double cost,
                             std::size_t iterations, descent::Trace trace,
                             descent::StopReason stop_reason,
                             descent::RecoveryLog recovery,
                             markov::ChainSolveCache::Stats chain_stats) const;

  const Problem& problem_;
  OptimizerOptions options_;
};

}  // namespace mocos::core
