#pragma once

#include <memory>
#include <optional>

#include "src/cost/composite_cost.hpp"
#include "src/cost/metrics.hpp"
#include "src/geometry/topology.hpp"
#include "src/sensing/coverage_tensors.hpp"
#include "src/sensing/motion_model.hpp"
#include "src/sensing/travel_model.hpp"

namespace mocos::core {

/// Objective weights of the penalized cost U_ε (Eq. 9) plus the §VII
/// extension objectives.
struct Weights {
  double alpha = 1.0;          // coverage-deviation weight (all PoIs)
  double beta = 1.0;           // exposure weight (all PoIs)
  /// Per-PoI overrides of the paper's general α_i / β_i form (Eq. 1). When
  /// non-empty they must match the PoI count and replace the scalar values.
  std::vector<double> alpha_per_poi;
  std::vector<double> beta_per_poi;
  double epsilon = 1e-4;       // barrier ε (the paper's experiments use 1e-4)
  double energy_gamma = 0.0;   // §VII energy objective; 0 disables
  double energy_target = 0.0;  // prescribed movement per transition
  double entropy_weight = 0.0; // §VII entropy objective; 0 disables
  /// §III information-capture objective: event rates λ_i (empty disables)
  /// and its weight γ. A non-positive γ disables the information term even
  /// with rates set, so the rates can feed the event-capture term alone.
  std::vector<double> event_rates;
  double information_gamma = 1.0;
  /// Event-capture objective (EventCaptureTerm): expected captured fraction
  /// of Poisson events with window `capture_duration` (in transitions).
  /// capture_weight > 0 enables; the λ_i come from `event_rates` when set,
  /// otherwise from the power-law profile λ_i ∝ (i+1)^{-lambda_skew}
  /// normalized to sum 1 (skew 0 = uniform; larger skews concentrate events
  /// on low-index PoIs).
  double capture_weight = 0.0;
  double capture_duration = 1.0;
  double lambda_skew = 0.0;
  /// Minimax (smooth worst-PoI) exposure objective (MinimaxExposureTerm):
  /// weight > 0 enables; smoothmax_beta is the log-sum-exp temperature
  /// (annealable per run via OptimizerOptions::smoothmax_beta_override).
  double minimax_weight = 0.0;
  double smoothmax_beta = 8.0;
};

/// Physical motion parameters; the defaults match the reconstructed Fig.-1
/// setups (unit cells, unit speed, unit pause, quarter-cell sensing radius).
struct Physics {
  double speed = 1.0;
  double pause = 1.0;
  double sensing_radius = 0.25;
  /// When > 0, restrict the chain's support to PoI pairs within this travel
  /// distance (plus the self loop) and build the coverage tensors sparsely
  /// over that support — the O(M³) → O(M²·local) memory reduction that makes
  /// city-scale (M ≥ 1024) problems representable. 0 keeps the original
  /// dense, fully-connected behavior.
  double support_radius = 0.0;
};

/// A complete problem instance: where the PoIs are, what the target coverage
/// allocation is, how the sensor moves, and how the objectives are weighted.
/// This is the main entry point of the public API.
class Problem {
 public:
  /// Straight-line motion (the paper's setting).
  Problem(geometry::Topology topology, Physics physics, Weights weights);

  /// Custom motion model (e.g. sensing::RoutedTravelModel around obstacles).
  Problem(std::unique_ptr<sensing::MotionModel> model, Weights weights);

  std::size_t num_pois() const { return model_->num_pois(); }
  const geometry::Topology& topology() const { return model_->topology(); }
  const sensing::MotionModel& model() const { return *model_; }
  const sensing::CoverageTensors& tensors() const { return tensors_; }
  const std::vector<double>& targets() const {
    return model_->topology().targets();
  }
  const Weights& weights() const { return weights_; }
  const Physics& physics() const { return physics_; }

  /// The support adjacency (sorted, self included) when support_radius > 0;
  /// empty for dense problems.
  const std::vector<std::vector<std::size_t>>& support() const {
    return tensors_.support();
  }

  /// Builds the penalized multi-objective cost U_ε for these weights. The
  /// returned cost owns copies of everything it needs and outlives the
  /// Problem safely. `smoothmax_beta_override` replaces the weights'
  /// smooth-max temperature for this one cost (the β-annealing hook);
  /// nullopt keeps the configured value.
  cost::CompositeCost make_cost(
      std::optional<double> smoothmax_beta_override = std::nullopt) const;

  /// The event rates the capture objective runs on: `weights().event_rates`
  /// verbatim when non-empty, otherwise the normalized lambda_skew profile
  /// (see Weights). Always size num_pois(), summing to 1 in the derived
  /// case.
  std::vector<double> resolved_event_rates() const;

  /// Paper metrics (Eqs. 2, 3, 12, 13) at a candidate schedule.
  cost::Metrics metrics_of(const markov::TransitionMatrix& p) const;

  /// Eq.-14 cost ½αΔC + ½βĒ² at a candidate (no barrier) — the number the
  /// paper's tables report.
  double report_cost(const markov::TransitionMatrix& p) const;

 private:
  Physics physics_;
  Weights weights_;
  std::unique_ptr<sensing::MotionModel> model_;
  sensing::CoverageTensors tensors_;
};

}  // namespace mocos::core
