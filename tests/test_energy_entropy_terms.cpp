#include <gtest/gtest.h>

#include <cmath>

#include "src/sensing/travel_model.hpp"
#include "src/cost/energy_term.hpp"
#include "src/cost/entropy_term.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/markov/entropy.hpp"
#include "tests/helpers.hpp"

namespace mocos::cost {
namespace {

sensing::CoverageTensors tensors1() {
  static sensing::TravelModel model(geometry::paper_topology(1), 1.0, 1.0,
                                    0.25);
  return sensing::CoverageTensors(model);
}

TEST(EnergyTerm, LazyChainUsesNoEnergy) {
  // A chain that (almost) never moves has D ≈ 0.
  const auto tensors = tensors1();
  linalg::Matrix m(4, 4, 0.001 / 3.0);
  for (std::size_t i = 0; i < 4; ++i) m(i, i) = 0.999;
  const auto chain = markov::analyze_chain(markov::TransitionMatrix(m));
  EnergyTerm term(tensors, 1.0);
  EXPECT_LT(term.expected_distance(chain), 0.01);
}

TEST(EnergyTerm, ExpectedDistanceDefinition) {
  const auto tensors = tensors1();
  const auto chain =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  EnergyTerm term(tensors, 1.0);
  double expect = 0.0;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      expect += chain.pi[i] * chain.p(i, j) * tensors.distances()(i, j);
  EXPECT_NEAR(term.expected_distance(chain), expect, 1e-14);
}

TEST(EnergyTerm, ValueIsHalfGammaSquaredDeviation) {
  const auto tensors = tensors1();
  const auto chain =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  EnergyTerm term(tensors, 3.0, 0.5);
  const double d = term.expected_distance(chain);
  EXPECT_NEAR(term.value(chain), 0.5 * 3.0 * (d - 0.5) * (d - 0.5), 1e-14);
}

TEST(EnergyTerm, ZeroAtTarget) {
  const auto tensors = tensors1();
  const auto chain =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  EnergyTerm term(tensors, 2.0, 0.0);
  const double d0 = term.expected_distance(chain);
  EnergyTerm at_target(tensors, 2.0, d0);
  EXPECT_NEAR(at_target.value(chain), 0.0, 1e-18);
}

TEST(EnergyTerm, RejectsBadParameters) {
  const auto tensors = tensors1();
  EXPECT_THROW(EnergyTerm(tensors, -1.0), std::invalid_argument);
  EXPECT_THROW(EnergyTerm(tensors, 1.0, -1.0), std::invalid_argument);
}

TEST(EnergyTerm, PartialsVanishAtTarget) {
  const auto tensors = tensors1();
  const auto chain =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  EnergyTerm term(tensors, 2.0, 0.0);
  EnergyTerm at_target(tensors, 2.0, term.expected_distance(chain));
  Partials p(4);
  at_target.accumulate_partials(chain, p);
  EXPECT_NEAR(linalg::frobenius_dot(p.du_dp, p.du_dp), 0.0, 1e-20);
}

TEST(EntropyTerm, ValueIsMinusWeightedEntropyRate) {
  const auto chain = markov::analyze_chain(test::chain3());
  EntropyTerm term(2.0);
  const double h = markov::entropy_rate(chain.p.matrix(), chain.pi);
  EXPECT_NEAR(term.value(chain), -2.0 * h, 1e-14);
}

TEST(EntropyTerm, UniformChainMinimizesEntropyCost) {
  // Among all chains, the uniform chain maximizes H, hence minimizes -wH.
  EntropyTerm term(1.0);
  const auto uniform =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  util::Rng rng(81);
  for (int t = 0; t < 10; ++t) {
    const auto other =
        markov::analyze_chain(test::random_positive_chain(4, rng));
    EXPECT_LE(term.value(uniform), term.value(other) + 1e-12);
  }
}

TEST(EntropyTerm, ZeroWeightIsInert) {
  EntropyTerm term(0.0);
  const auto chain = markov::analyze_chain(test::chain3());
  EXPECT_DOUBLE_EQ(term.value(chain), 0.0);
  Partials p(3);
  term.accumulate_partials(chain, p);
  EXPECT_DOUBLE_EQ(linalg::frobenius_dot(p.du_dp, p.du_dp), 0.0);
}

TEST(EntropyTerm, RejectsNegativeWeight) {
  EXPECT_THROW(EntropyTerm(-0.5), std::invalid_argument);
}

}  // namespace
}  // namespace mocos::cost
