#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/csv.hpp"
#include "src/util/table.hpp"

namespace mocos::util {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, DoubleRowFormatting) {
  Table t({"label", "x", "y"});
  t.add_row("row", {1.5, 2.25}, 2);
  EXPECT_NE(t.to_string().find("1.50"), std::string::npos);
  EXPECT_NE(t.to_string().find("2.25"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 4), "1.0000");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/mocos_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.write_row(std::vector<double>{1.0, 2.5});
    w.write_row(std::vector<std::string>{"a", "b"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsColumnMismatch) {
  const std::string path = testing::TempDir() + "/mocos_csv_test2.csv";
  CsvWriter w(path, {"x", "y"});
  EXPECT_THROW(w.write_row(std::vector<double>{1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zz/f.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace mocos::util
