#include "src/geometry/topology.hpp"

#include <gtest/gtest.h>

#include "src/geometry/paper_topologies.hpp"

namespace mocos::geometry {
namespace {

TEST(Topology, BasicAccessors) {
  Topology t("t", {{0.0, 0.0}, {1.0, 0.0}}, {0.3, 0.7});
  EXPECT_EQ(t.name(), "t");
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.position(1), (Vec2{1.0, 0.0}));
  EXPECT_DOUBLE_EQ(t.target(0), 0.3);
  EXPECT_DOUBLE_EQ(t.distance(0, 1), 1.0);
}

TEST(Topology, ValidationRejectsBadInput) {
  EXPECT_THROW(Topology("x", {{0.0, 0.0}}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Topology("x", {{0.0, 0.0}, {1.0, 0.0}}, {0.5}),
               std::invalid_argument);
  EXPECT_THROW(Topology("x", {{0.0, 0.0}, {1.0, 0.0}}, {0.5, 0.6}),
               std::invalid_argument);
  EXPECT_THROW(Topology("x", {{0.0, 0.0}, {1.0, 0.0}}, {-0.5, 1.5}),
               std::invalid_argument);
  EXPECT_THROW(Topology("x", {{0.0, 0.0}, {0.0, 0.0}}, {0.5, 0.5}),
               std::invalid_argument);
}

TEST(Topology, OutOfRangeAccessThrows) {
  Topology t("t", {{0.0, 0.0}, {1.0, 0.0}}, {0.5, 0.5});
  EXPECT_THROW(t.position(2), std::out_of_range);
  EXPECT_THROW(t.target(2), std::out_of_range);
}

TEST(Topology, DiameterAndSeparation) {
  Topology t("t", {{0.0, 0.0}, {3.0, 4.0}, {1.0, 0.0}}, {0.4, 0.3, 0.3});
  EXPECT_DOUBLE_EQ(t.diameter(), 5.0);
  EXPECT_DOUBLE_EQ(t.min_separation(), 1.0);
}

TEST(MakeGrid, PositionsAtCellCenters) {
  const Topology g = make_grid("g", 2, 3, uniform_targets(6));
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.position(0), (Vec2{0.5, 0.5}));
  EXPECT_EQ(g.position(2), (Vec2{2.5, 0.5}));  // row-major
  EXPECT_EQ(g.position(3), (Vec2{0.5, 1.5}));
}

TEST(MakeGrid, CellScaling) {
  const Topology g = make_grid("g", 1, 2, uniform_targets(2), 2.0);
  EXPECT_EQ(g.position(0), (Vec2{1.0, 1.0}));
  EXPECT_EQ(g.position(1), (Vec2{3.0, 1.0}));
}

TEST(MakeGrid, RejectsBadArguments) {
  EXPECT_THROW(make_grid("g", 1, 1, {1.0}), std::invalid_argument);
  EXPECT_THROW(make_grid("g", 1, 2, uniform_targets(2), 0.0),
               std::invalid_argument);
}

TEST(UniformTargets, SumToOne) {
  const auto t = uniform_targets(8);
  double s = 0.0;
  for (double x : t) s += x;
  EXPECT_NEAR(s, 1.0, 1e-12);
  EXPECT_THROW(uniform_targets(0), std::invalid_argument);
}

TEST(PaperTopologies, AllFourAreValid) {
  const auto all = all_paper_topologies();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].size(), 4u);
  EXPECT_EQ(all[1].size(), 4u);
  EXPECT_EQ(all[2].size(), 4u);
  EXPECT_EQ(all[3].size(), 9u);
}

TEST(PaperTopologies, Topology3TargetsMatchTableI) {
  const Topology t3 = paper_topology(3);
  EXPECT_DOUBLE_EQ(t3.target(0), 0.4);
  EXPECT_DOUBLE_EQ(t3.target(1), 0.1);
  EXPECT_DOUBLE_EQ(t3.target(2), 0.1);
  EXPECT_DOUBLE_EQ(t3.target(3), 0.4);
}

TEST(PaperTopologies, Topology3IsALine) {
  const Topology t3 = paper_topology(3);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(t3.position(i).y, 0.5);
}

TEST(PaperTopologies, InvalidIndexThrows) {
  EXPECT_THROW(paper_topology(0), std::invalid_argument);
  EXPECT_THROW(paper_topology(5), std::invalid_argument);
}

}  // namespace
}  // namespace mocos::geometry
