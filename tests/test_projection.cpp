#include "src/cost/projection.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace mocos::cost {
namespace {

linalg::Matrix random_matrix(std::size_t n, util::Rng& rng) {
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-2.0, 2.0);
  return m;
}

TEST(Projection, RowsSumToZero) {
  util::Rng rng(11);
  const auto m = random_matrix(5, rng);
  const auto p = project_row_sum_zero(m);
  EXPECT_NEAR(max_abs_row_sum(p), 0.0, 1e-12);
}

TEST(Projection, Idempotent) {
  util::Rng rng(12);
  const auto m = random_matrix(4, rng);
  const auto once = project_row_sum_zero(m);
  const auto twice = project_row_sum_zero(once);
  EXPECT_TRUE(linalg::approx_equal(once, twice, 1e-14));
}

TEST(Projection, FixesRowSumZeroMatrices) {
  linalg::Matrix m{{1.0, -1.0}, {-0.5, 0.5}};
  EXPECT_TRUE(linalg::approx_equal(project_row_sum_zero(m), m, 1e-15));
}

TEST(Projection, MatchesPaperFormula) {
  linalg::Matrix m{{1.0, 2.0, 3.0}, {4.0, 4.0, 4.0}, {0.0, 0.0, 3.0}};
  const auto p = project_row_sum_zero(m);
  EXPECT_DOUBLE_EQ(p(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(p(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(p(2, 2), 2.0);
}

TEST(Projection, SelfAdjointOnFrobenius) {
  // <Pi[A], B> == <A, Pi[B]> for the orthogonal projector.
  util::Rng rng(13);
  const auto a = random_matrix(4, rng);
  const auto b = random_matrix(4, rng);
  EXPECT_NEAR(linalg::frobenius_dot(project_row_sum_zero(a), b),
              linalg::frobenius_dot(a, project_row_sum_zero(b)), 1e-10);
}

TEST(Projection, NonExpansive) {
  util::Rng rng(14);
  const auto a = random_matrix(6, rng);
  const auto p = project_row_sum_zero(a);
  EXPECT_LE(linalg::frobenius_dot(p, p), linalg::frobenius_dot(a, a) + 1e-12);
}

TEST(MaxAbsRowSum, ComputesCorrectly) {
  linalg::Matrix m{{1.0, 2.0}, {-4.0, 1.0}};
  EXPECT_DOUBLE_EQ(max_abs_row_sum(m), 3.0);
}

}  // namespace
}  // namespace mocos::cost
