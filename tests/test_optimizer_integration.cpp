// End-to-end runs through the CoverageOptimizer facade, checking the §V/§VI
// algorithm-level claims on small iteration budgets.

#include "src/core/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/markov/ergodicity.hpp"
#include "tests/helpers.hpp"

namespace mocos::core {
namespace {

TEST(Optimizer, BasicRunImprovesCost) {
  const Problem problem = test::paper_problem(2, 1.0, 0.0);
  OptimizerOptions opts;
  opts.algorithm = Algorithm::kBasic;
  opts.max_iterations = 300;
  opts.constant_step = 1e-4;
  CoverageOptimizer opt(problem, opts);
  const auto start = markov::TransitionMatrix::uniform(4);
  const double u0 = problem.report_cost(start);
  const auto outcome = opt.run();
  EXPECT_LT(outcome.report_cost, u0);
  EXPECT_EQ(outcome.algorithm, Algorithm::kBasic);
  EXPECT_TRUE(markov::is_ergodic(outcome.p));
}

TEST(Optimizer, AdaptiveRunTerminatesQuickly) {
  const Problem problem = test::paper_problem(1, 0.0, 1.0);
  OptimizerOptions opts;
  opts.algorithm = Algorithm::kAdaptive;
  opts.max_iterations = 1000;
  CoverageOptimizer opt(problem, opts);
  const auto outcome = opt.run();
  EXPECT_LT(outcome.iterations, 1000u);
  EXPECT_GT(outcome.metrics.e_bar, 0.0);
}

TEST(Optimizer, PerturbedBeatsOrMatchesAdaptive) {
  const Problem problem = test::paper_problem(1, 0.0, 1.0);

  OptimizerOptions adaptive;
  adaptive.algorithm = Algorithm::kAdaptive;
  adaptive.random_start = true;
  adaptive.seed = 11;
  adaptive.max_iterations = 500;
  const auto res_a = CoverageOptimizer(problem, adaptive).run();

  OptimizerOptions perturbed;
  perturbed.algorithm = Algorithm::kPerturbed;
  perturbed.random_start = true;
  perturbed.seed = 11;
  perturbed.max_iterations = 500;
  perturbed.stall_limit = 0;
  const auto res_p = CoverageOptimizer(problem, perturbed).run();

  EXPECT_LE(res_p.penalized_cost, res_a.penalized_cost + 1e-9);
}

TEST(Optimizer, ReproducibleFromSeed) {
  const Problem problem = test::paper_problem(1, 1.0, 1.0);
  OptimizerOptions opts;
  opts.algorithm = Algorithm::kPerturbed;
  opts.random_start = true;
  opts.seed = 99;
  opts.max_iterations = 100;
  const auto a = CoverageOptimizer(problem, opts).run();
  const auto b = CoverageOptimizer(problem, opts).run();
  EXPECT_EQ(a.penalized_cost, b.penalized_cost);
  EXPECT_TRUE(linalg::approx_equal(a.p.matrix(), b.p.matrix(), 0.0));
}

TEST(Optimizer, ExplicitStartRespected) {
  const Problem problem = test::paper_problem(3, 1.0, 0.0);
  OptimizerOptions opts;
  opts.algorithm = Algorithm::kBasic;
  opts.max_iterations = 5;
  opts.constant_step = 1e-8;  // tiny steps keep us near the start
  util::Rng rng(3);
  const auto start = test::random_positive_chain(4, rng);
  const auto outcome = CoverageOptimizer(problem, opts).run(start);
  EXPECT_TRUE(linalg::approx_equal(outcome.p.matrix(), start.matrix(), 1e-3));
}

TEST(Optimizer, SummaryMentionsKeyNumbers) {
  const Problem problem = test::paper_problem(1, 1.0, 1.0);
  OptimizerOptions opts;
  opts.max_iterations = 50;
  const auto outcome = CoverageOptimizer(problem, opts).run();
  const std::string s = outcome.summary();
  EXPECT_NE(s.find("perturbed"), std::string::npos);
  EXPECT_NE(s.find("delta_C"), std::string::npos);
  EXPECT_NE(s.find("PoI"), std::string::npos);
}

TEST(Optimizer, RejectsZeroIterations) {
  const Problem problem = test::paper_problem(1, 1.0, 1.0);
  OptimizerOptions opts;
  opts.max_iterations = 0;
  EXPECT_THROW(CoverageOptimizer(problem, opts), std::invalid_argument);
}

TEST(ResultFormatting, AlgorithmNames) {
  EXPECT_EQ(to_string(Algorithm::kBasic), "basic");
  EXPECT_EQ(to_string(Algorithm::kAdaptive), "adaptive");
  EXPECT_EQ(to_string(Algorithm::kPerturbed), "perturbed");
}

}  // namespace
}  // namespace mocos::core
