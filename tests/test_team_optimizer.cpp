#include "src/multi/team_optimizer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/multi/team_simulator.hpp"
#include "src/sensing/routed_travel_model.hpp"
#include "tests/helpers.hpp"

namespace mocos::multi {
namespace {

TeamOptimizerOptions quick_options(std::size_t sensors, std::size_t rounds) {
  TeamOptimizerOptions o;
  o.num_sensors = sensors;
  o.rounds = rounds;
  o.per_sensor.max_iterations = 250;
  o.per_sensor.keep_trace = false;
  o.per_sensor.stall_limit = 100;
  return o;
}

TEST(TeamOptimizer, ValidatesOptions) {
  const auto problem = test::paper_problem(1, 1.0, 1e-3);
  EXPECT_THROW(optimize_team(problem, quick_options(0, 1)),
               std::invalid_argument);
  EXPECT_THROW(optimize_team(problem, quick_options(2, 0)),
               std::invalid_argument);
  auto bad_floor = quick_options(2, 1);
  bad_floor.residual_floor = 0.0;
  EXPECT_THROW(optimize_team(problem, bad_floor), std::invalid_argument);
}

TEST(TeamOptimizer, ProducesRequestedTeamSize) {
  const auto problem = test::paper_problem(1, 1.0, 1e-3);
  const auto team = optimize_team(problem, quick_options(3, 1));
  EXPECT_EQ(team.num_sensors(), 3u);
  EXPECT_EQ(team.num_pois(), 4u);
}

TEST(TeamOptimizer, TwoSensorsBeatOneOnGaps) {
  const auto problem = test::paper_problem(1, 1.0, 1e-3);
  const auto solo = optimize_team(problem, quick_options(1, 1));
  const auto duo = optimize_team(problem, quick_options(2, 2));

  TeamSimulationConfig cfg;
  cfg.transitions_per_sensor = 15000;
  util::Rng rng1(3), rng2(3);
  const auto res1 = TeamSimulator(cfg).run(solo, rng1);
  const auto res2 = TeamSimulator(cfg).run(duo, rng2);

  double total1 = 0.0, total2 = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    total1 += res1.covered_fraction[i];
    total2 += res2.covered_fraction[i];
  }
  EXPECT_GT(total2, total1);
  EXPECT_LT(res2.worst_gap(), res1.worst_gap());
}

TEST(TeamOptimizer, ResidualRoundsDiversifyChains) {
  const auto problem = test::paper_problem(2, 1.0, 0.0);
  const auto team = optimize_team(problem, quick_options(2, 2));
  // After residual rounds the two chains should not be (near-)identical.
  EXPECT_FALSE(linalg::approx_equal(team.chain(0).matrix(),
                                    team.chain(1).matrix(), 1e-3));
}

TEST(TeamOptimizer, ResidualRoundsRejectCustomMotionModels) {
  geometry::Topology topo("pair", {{0.0, 0.0}, {4.0, 0.0}}, {0.5, 0.5});
  core::Problem problem(
      std::make_unique<sensing::RoutedTravelModel>(
          topo, std::vector<geometry::Polygon>{}, 1.0, 1.0, 0.25),
      core::Weights{});
  EXPECT_THROW(optimize_team(problem, quick_options(2, 2)),
               std::invalid_argument);
  EXPECT_NO_THROW(optimize_team(problem, quick_options(2, 1)));
}

}  // namespace
}  // namespace mocos::multi
