// Tests for the mocos_serve subsystem: request decoding, admission control,
// the byte-reproducible replay contract, deadline/watchdog behavior, and
// fault-injected failure isolation (every request line ends in exactly one
// structured response; the server never dies).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/serve/json.hpp"
#include "src/serve/queue.hpp"
#include "src/serve/request.hpp"
#include "src/serve/server.hpp"
#include "src/util/fault_injection.hpp"

namespace mocos {
namespace {

using util::fault::ScopedFault;
using util::fault::Site;

// --- json ----------------------------------------------------------------

TEST(ServeJson, ParsesFlatObject) {
  const auto fields = serve::parse_flat_object(
      R"({"id": "a\nb", "n": -2.5e3, "flag": true, "nothing": null})");
  ASSERT_TRUE(fields.ok()) << fields.status().to_string();
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ(fields->at("id").kind, serve::JsonValue::Kind::kString);
  EXPECT_EQ(fields->at("id").str, "a\nb");
  EXPECT_EQ(fields->at("n").kind, serve::JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(fields->at("n").num, -2500.0);
  EXPECT_TRUE(fields->at("flag").boolean);
  EXPECT_EQ(fields->at("nothing").kind, serve::JsonValue::Kind::kNull);
}

TEST(ServeJson, UnicodeEscapes) {
  const auto fields =
      serve::parse_flat_object(R"({"s": "Aé€"})");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->at("s").str, "A\xC3\xA9\xE2\x82\xAC");
  EXPECT_FALSE(serve::parse_flat_object(R"({"s": "\ud800"})").ok());
}

TEST(ServeJson, RejectsMalformedInput) {
  const char* bad[] = {
      "",                       // no object
      "{",                      // unterminated
      R"({"a": 1} trailing)",   // trailing garbage
      R"({"a": 1, "a": 2})",    // duplicate key
      R"({"a": {"b": 1}})",     // nesting
      R"({"a": [1]})",          // array
      R"({"a": 1e})",           // malformed number
      R"({"a": "x)",            // unterminated string
      R"({"a": "\q"})",         // bad escape
      "{\"a\": \"\x01\"}",      // raw control char
  };
  for (const char* line : bad) {
    const auto fields = serve::parse_flat_object(line);
    EXPECT_FALSE(fields.ok()) << "accepted: " << line;
    EXPECT_EQ(fields.status().code(), util::StatusCode::kInvalidConfig);
  }
}

// --- request decoding ----------------------------------------------------

TEST(ServeRequest, ParsesAllFields) {
  const auto req = serve::parse_request(
      R"({"id": "r1", "config": "topology = grid:2x2", "deadline_ms": 250,)"
      R"( "cache_key": "k", "warm_start": true})");
  ASSERT_TRUE(req.ok()) << req.status().to_string();
  EXPECT_EQ(req->id, "r1");
  EXPECT_EQ(req->config_text, "topology = grid:2x2");
  EXPECT_EQ(req->deadline_ms, 250u);
  EXPECT_TRUE(req->has_deadline);
  EXPECT_EQ(req->cache_key, "k");
  EXPECT_TRUE(req->warm_start);
}

TEST(ServeRequest, RejectsBadRequests) {
  const char* bad[] = {
      R"({"config": "topology = grid:2x2"})",          // missing id
      R"({"id": "a"})",                                // missing config
      R"({"id": "a", "config": "c", "extra": 1})",     // unknown field
      R"({"id": "a", "config": "c", "deadline_ms": -1})",
      R"({"id": "a", "config": "c", "deadline_ms": 1.5})",
      R"({"id": "a", "config": "c", "warm_start": true})",  // no cache_key
      R"({"id": 7, "config": "c"})",                   // mistyped id
  };
  for (const char* line : bad) {
    const auto req = serve::parse_request(line);
    EXPECT_FALSE(req.ok()) << "accepted: " << line;
  }
}

TEST(ServeRequest, DecodeFaultSiteSurfacesAsStatus) {
  ScopedFault fault(Site::kServeDecodeFault, 0);
  const auto req =
      serve::parse_request(R"({"id": "a", "config": "c"})");
  ASSERT_FALSE(req.ok());
  EXPECT_NE(req.status().message().find("injected"), std::string::npos);
}

TEST(ServeRequest, SeedFromIdIsStableAndSpread) {
  const std::uint64_t s1 = serve::seed_from_request_id("job-1");
  EXPECT_EQ(s1, serve::seed_from_request_id("job-1"));
  // Near-identical ids must land on unrelated seeds (SplitMix64 finalizer).
  EXPECT_NE(s1, serve::seed_from_request_id("job-2"));
  EXPECT_NE(s1 >> 32, serve::seed_from_request_id("job-2") >> 32);
}

TEST(ServeResponse, FixedKeyOrderAndEscaping) {
  serve::Response r;
  r.seq = 3;
  r.id = "a\"b";
  r.code = 6;
  r.status = "shed";
  r.error = "queue full";
  r.retry_after_ms = 75;
  std::ostringstream out;
  serve::write_response(r, out);
  EXPECT_EQ(out.str(),
            "{\"seq\": 3, \"id\": \"a\\\"b\", \"code\": 6, "
            "\"status\": \"shed\", \"error\": \"queue full\", "
            "\"retry_after_ms\": 75}\n");
}

// --- admission gate ------------------------------------------------------

TEST(AdmissionGate, BoundsDepthAndTracksPeak) {
  serve::AdmissionGate gate(2);
  EXPECT_TRUE(gate.try_admit());
  EXPECT_TRUE(gate.try_admit());
  EXPECT_FALSE(gate.try_admit());  // full
  EXPECT_EQ(gate.depth(), 2u);
  EXPECT_EQ(gate.peak(), 2u);
  EXPECT_EQ(gate.shed_count(), 1u);
  gate.release();
  EXPECT_TRUE(gate.try_admit());
  EXPECT_EQ(gate.peak(), 2u);  // never exceeded capacity
  gate.release();
  gate.release();
  EXPECT_THROW(gate.release(), std::logic_error);
}

TEST(AdmissionGate, RetryHintGrowsWithLoad) {
  serve::AdmissionGate gate(4);
  const std::uint64_t empty = gate.retry_after_ms_hint();
  ASSERT_TRUE(gate.try_admit());
  ASSERT_TRUE(gate.try_admit());
  EXPECT_GT(gate.retry_after_ms_hint(), empty);
  gate.release();
  gate.release();
}

TEST(AdmissionGate, QueueFullFaultForcesShed) {
  serve::AdmissionGate gate(8);
  ScopedFault fault(Site::kServeQueueFull, 0);
  EXPECT_FALSE(gate.try_admit());  // injected shed despite empty gate
  EXPECT_EQ(gate.shed_count(), 1u);
  EXPECT_TRUE(gate.try_admit());
  gate.release();
}

// --- obs support added for serve ----------------------------------------

TEST(ServeMetrics, GaugeSetMaxKeepsHighWaterMark) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("peak");
  g.set_max(3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(ServeMetrics, GaugeSetMaxOnUnsetGaugeKeepsNegativeValues) {
  // The unset sentinel is -infinity, not 0: a first set_max below zero must
  // record the observed value, not silently clamp it up.
  obs::Gauge g;
  EXPECT_FALSE(g.has_value());
  g.set_max(-5.0);
  EXPECT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g.value(), -5.0);
  g.set_max(-9.0);
  EXPECT_DOUBLE_EQ(g.value(), -5.0);
}

// --- end-to-end serve loop -----------------------------------------------

serve::ServeOptions test_options() {
  serve::ServeOptions options;
  options.jobs = 2;
  options.queue_capacity = 64;
  return options;
}

std::string tiny_config(int iterations, const char* algo = "adaptive") {
  return "topology = grid:2x2\\niterations = " + std::to_string(iterations) +
         "\\nalgorithm = " + std::string(algo);
}

std::string request_line(const std::string& id, const std::string& config,
                         const std::string& extra = "") {
  return "{\"id\": \"" + id + "\", \"config\": \"" + config + "\"" + extra +
         "}";
}

serve::ServeReport run_serve(const std::string& input, std::string& output,
                             const serve::ServeOptions& options) {
  serve::reset_drain();
  std::istringstream in(input);
  std::ostringstream out;
  const serve::ServeReport report = serve::serve(in, out, options);
  output = out.str();
  return report;
}

/// The ISSUE acceptance gate: a seeded 500-request log — keyed lanes with
/// warm starts, cold requests, and malformed lines — replays byte-identically
/// at 1 worker and at 8.
TEST(ServeReplay, FiveHundredRequestsByteIdenticalAcrossJobs) {
  std::ostringstream log;
  for (int i = 0; i < 500; ++i) {
    if (i % 25 == 24) {
      log << "this line is not json #" << i << "\n";  // decode-error path
      continue;
    }
    const std::string id = "req-" + std::to_string(i);
    const std::string config = tiny_config(8 + i % 3);
    if (i % 5 == 0) {
      log << request_line(id, config) << "\n";  // cold request
    } else {
      const std::string key = "lane-" + std::to_string(i % 4);
      std::string extra = ", \"cache_key\": \"" + key + "\"";
      if (i > 20) extra += ", \"warm_start\": true";
      log << request_line(id, config, extra) << "\n";
    }
  }

  serve::ServeOptions options = test_options();
  options.queue_capacity = 600;  // no sheds: identity covers the happy path
  options.max_lanes = 3;  // 4 keys over 3 slots: steady LRU eviction churn,
                          // so warm-vs-cold decisions are part of the gate
  std::string out_jobs1;
  std::string out_jobs8;
  options.jobs = 1;
  const serve::ServeReport r1 = run_serve(log.str(), out_jobs1, options);
  options.jobs = 8;
  const serve::ServeReport r8 = run_serve(log.str(), out_jobs8, options);

  EXPECT_EQ(r1.requests, 500u);
  EXPECT_EQ(r8.requests, 500u);
  EXPECT_EQ(r1.shed, 0u);
  EXPECT_GT(r1.ok, 400u);
  EXPECT_EQ(r1.errors, 20u);  // the malformed lines, nothing else
  EXPECT_EQ(out_jobs1, out_jobs8);
}

TEST(ServeLoop, WarmLaneReusesCacheAndSolution) {
  const std::string input =
      request_line("w1", tiny_config(20), ", \"cache_key\": \"k\"") + "\n" +
      request_line("w2", tiny_config(20),
                   ", \"cache_key\": \"k\", \"warm_start\": true") +
      "\n";
  std::string output;
  const serve::ServeReport report =
      run_serve(input, output, test_options());
  EXPECT_EQ(report.ok, 2u);
  const std::size_t second = output.find("\"id\": \"w2\"");
  ASSERT_NE(second, std::string::npos);
  EXPECT_NE(output.find("\"warm_started\": true", second),
            std::string::npos);
  // Warm start = the lane's previous solution = the cached matrix, so the
  // second request's first evaluation is an exact cache hit.
  EXPECT_NE(output.find("\"cache_exact_hits\": ", second),
            std::string::npos);
}

TEST(ServeLoop, LruEvictionBoundsLanesAndColdStartsEvictedKeys) {
  const std::string metrics_path = "serve_eviction_metrics_test.json";
  // max_lanes = 1: dispatching key "b" evicts key "a", so a's later
  // warm_start request finds a cold lane and must report warm_started
  // false — and the lane map never holds more than one warm cache.
  const std::string input =
      request_line("a1", tiny_config(15), ", \"cache_key\": \"a\"") + "\n" +
      request_line("b1", tiny_config(15), ", \"cache_key\": \"b\"") + "\n" +
      request_line("a2", tiny_config(15),
                   ", \"cache_key\": \"a\", \"warm_start\": true") +
      "\n";
  serve::ServeOptions options = test_options();
  options.jobs = 1;
  options.max_lanes = 1;
  options.metrics_path = metrics_path;
  std::string output;
  const serve::ServeReport report = run_serve(input, output, options);
  EXPECT_EQ(report.ok, 3u);
  const std::size_t a2 = output.find("\"id\": \"a2\"");
  ASSERT_NE(a2, std::string::npos);
  EXPECT_NE(output.find("\"warm_started\": false", a2), std::string::npos);
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream contents;
  contents << metrics.rdbuf();
  EXPECT_NE(contents.str().find("\"serve.lanes.evicted\": 2"),
            std::string::npos)
      << contents.str();
  EXPECT_NE(contents.str().find("\"serve.lanes.live\": 1"),
            std::string::npos)
      << contents.str();
  std::remove(metrics_path.c_str());
}

TEST(ServeLoop, WarmStartedFlagTracksActualApplication) {
  // starts > 1 makes run_optimization decline the offered warm start; the
  // response must say so instead of reporting the offer as a hit.
  const std::string multi_start_config =
      "topology = grid:2x2\\niterations = 10\\nalgorithm = "
      "perturbed\\nstarts = 2";
  const std::string input =
      request_line("m1", multi_start_config, ", \"cache_key\": \"m\"") +
      "\n" +
      request_line("m2", multi_start_config,
                   ", \"cache_key\": \"m\", \"warm_start\": true") +
      "\n";
  std::string output;
  const serve::ServeReport report =
      run_serve(input, output, test_options());
  EXPECT_EQ(report.ok, 2u);
  const std::size_t second = output.find("\"id\": \"m2\"");
  ASSERT_NE(second, std::string::npos);
  EXPECT_NE(output.find("\"warm_started\": false", second),
            std::string::npos);
}

TEST(ServeLoop, DeadlineCutsRunWithBestSoFar) {
  serve::ServeOptions options = test_options();
  options.jobs = 1;
  const std::string input = request_line(
      "slow",
      "topology = grid:3x3\\niterations = 1000000\\nalgorithm = perturbed",
      ", \"deadline_ms\": 80");
  std::string output;
  const serve::ServeReport report = run_serve(input + "\n", output, options);
  EXPECT_EQ(report.deadline_exceeded, 1u);
  EXPECT_NE(output.find("\"code\": 5"), std::string::npos);
  EXPECT_NE(output.find("\"status\": \"deadline-exceeded\""),
            std::string::npos);
  // Degradation, not loss: the response still carries the best iterate.
  EXPECT_NE(output.find("\"stop_reason\": \"cancelled\""),
            std::string::npos);
  EXPECT_NE(output.find("\"cost\": "), std::string::npos);
}

TEST(ServeLoop, InjectedQueueFullShedsWithBackoffHint) {
  // Fire on admissions 1 and 2 (0-based): requests two and three shed
  // deterministically, independent of worker timing.
  ScopedFault fault(Site::kServeQueueFull, 1, 2);
  std::ostringstream log;
  for (int i = 0; i < 5; ++i)
    log << request_line("q" + std::to_string(i), tiny_config(10)) << "\n";
  std::string output;
  const serve::ServeReport report =
      run_serve(log.str(), output, test_options());
  EXPECT_EQ(report.requests, 5u);
  EXPECT_EQ(report.shed, 2u);
  EXPECT_EQ(report.ok, 3u);
  EXPECT_NE(output.find("\"code\": 6"), std::string::npos);
  EXPECT_NE(output.find("\"status\": \"shed\""), std::string::npos);
  EXPECT_NE(output.find("\"retry_after_ms\": "), std::string::npos);
  EXPECT_LE(report.peak_depth, test_options().queue_capacity);
}

TEST(ServeLoop, InjectedDecodeFaultIsIsolated) {
  ScopedFault fault(Site::kServeDecodeFault, 0);  // first decode fails
  const std::string input = request_line("d1", tiny_config(10)) + "\n" +
                            request_line("d2", tiny_config(10)) + "\n";
  std::string output;
  const serve::ServeReport report =
      run_serve(input, output, test_options());
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_NE(output.find("injected decode fault"), std::string::npos);
  EXPECT_NE(output.find("\"id\": \"d2\", \"code\": 0"), std::string::npos);
}

TEST(ServeLoop, WatchdogFailsStuckRequestNotServer) {
  ScopedFault fault(Site::kServeStuckWorker, 0);  // first request wedges
  serve::ServeOptions options = test_options();
  // One worker pins dispatch order: with two, either request could reach
  // the one-shot fault site first, and the wedge only engages when the
  // faulted request carries a deadline.
  options.jobs = 1;
  options.watchdog_grace_ms = 40;
  options.watchdog_poll_ms = 5;
  const std::string input =
      request_line("stuck", tiny_config(10), ", \"deadline_ms\": 30") +
      "\n" + request_line("after", tiny_config(10)) + "\n";
  std::string output;
  const serve::ServeReport report = run_serve(input, output, options);
  EXPECT_EQ(report.requests, 2u);
  EXPECT_EQ(report.deadline_exceeded, 1u);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_NE(output.find("watchdog"), std::string::npos);
  EXPECT_NE(output.find("\"id\": \"after\", \"code\": 0"),
            std::string::npos);
}

TEST(ServeLoop, AbandonedWorkerOutlivingDrainIsJoinedBeforeTeardown) {
  // The last request wedges on a warm lane: the watchdog answers it, the
  // drain wait is satisfied by that response, and server teardown races the
  // still-running worker's writes to lane state. The pool must join that
  // worker before lane/inflight/emit state is destroyed (ASan drill).
  for (int round = 0; round < 3; ++round) {
    ScopedFault fault(Site::kServeStuckWorker, 1);  // second request wedges
    serve::ServeOptions options = test_options();
    options.jobs = 1;
    options.watchdog_grace_ms = 20;
    options.watchdog_poll_ms = 2;
    const std::string input =
        request_line("warm", tiny_config(10), ", \"cache_key\": \"k\"") +
        "\n" +
        request_line("wedge", tiny_config(10),
                     ", \"cache_key\": \"k\", \"deadline_ms\": 20") +
        "\n";
    std::string output;
    const serve::ServeReport report = run_serve(input, output, options);
    EXPECT_EQ(report.requests, 2u);
    EXPECT_EQ(report.deadline_exceeded, 1u);
    EXPECT_NE(output.find("watchdog"), std::string::npos);
  }
}

TEST(ServeLoop, EveryLineGetsExactlyOneResponseUnderChaos) {
  // Request-layer chaos: probabilistic decode faults and sheds, plus
  // deadlines. Invariant under test: one response per line, each in a known
  // terminal state, queue depth bounded — the server never crashes and
  // never leaks a request.
  util::fault::arm_probabilistic(Site::kServeDecodeFault, 0.2, 3);
  util::fault::arm_probabilistic(Site::kServeQueueFull, 0.3, 7);
  std::ostringstream log;
  const int kRequests = 40;
  for (int i = 0; i < kRequests; ++i)
    log << request_line("c" + std::to_string(i), tiny_config(10 + i % 5),
                        ", \"deadline_ms\": 2000")
        << "\n";
  serve::ServeOptions options = test_options();
  options.queue_capacity = 4;
  std::string output;
  const serve::ServeReport report =
      run_serve(log.str(), output, options);
  util::fault::disarm_all();

  EXPECT_EQ(report.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(report.ok + report.errors + report.deadline_exceeded +
                report.shed,
            static_cast<std::uint64_t>(kRequests));
  EXPECT_LE(report.peak_depth, options.queue_capacity);
  EXPECT_GT(report.shed + report.errors, 0u);  // the chaos actually fired

  // Exactly one response per seq, emitted in arrival order.
  std::istringstream lines(output);
  std::string line;
  std::uint64_t expect_seq = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "{\"seq\": " + std::to_string(expect_seq);
    EXPECT_EQ(line.rfind(prefix, 0), 0u) << line;
    ++expect_seq;
  }
  EXPECT_EQ(expect_seq, static_cast<std::uint64_t>(kRequests));
}

TEST(ServeLoop, DrainRequestStopsAcceptingAndFlushesMetrics) {
  const std::string metrics_path = "serve_drain_metrics_test.json";
  serve::ServeOptions options = test_options();
  options.metrics_path = metrics_path;
  std::string output;
  // Drain already requested: the server must accept nothing, still write a
  // complete final metrics snapshot, and report the early drain.
  serve::reset_drain();
  serve::request_drain();
  std::istringstream in(request_line("never", tiny_config(10)) + "\n");
  std::ostringstream out;
  const serve::ServeReport report = serve::serve(in, out, options);
  serve::reset_drain();
  EXPECT_TRUE(report.drained_early);
  EXPECT_EQ(report.requests, 0u);
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream contents;
  contents << metrics.rdbuf();
  EXPECT_NE(contents.str().find("serve.requests.total"), std::string::npos);
  EXPECT_NE(contents.str().find("serve.queue.peak_depth"),
            std::string::npos);
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace mocos
