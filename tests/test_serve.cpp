// Tests for the mocos_serve subsystem: request decoding, admission control,
// the byte-reproducible replay contract, deadline/watchdog behavior, and
// fault-injected failure isolation (every request line ends in exactly one
// structured response; the server never dies).

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/serve/json.hpp"
#include "src/serve/queue.hpp"
#include "src/serve/request.hpp"
#include "src/serve/server.hpp"
#include "src/util/fault_injection.hpp"

namespace mocos {
namespace {

using util::fault::ScopedFault;
using util::fault::Site;

// --- json ----------------------------------------------------------------

TEST(ServeJson, ParsesFlatObject) {
  const auto fields = serve::parse_flat_object(
      R"({"id": "a\nb", "n": -2.5e3, "flag": true, "nothing": null})");
  ASSERT_TRUE(fields.ok()) << fields.status().to_string();
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ(fields->at("id").kind, serve::JsonValue::Kind::kString);
  EXPECT_EQ(fields->at("id").str, "a\nb");
  EXPECT_EQ(fields->at("n").kind, serve::JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(fields->at("n").num, -2500.0);
  EXPECT_TRUE(fields->at("flag").boolean);
  EXPECT_EQ(fields->at("nothing").kind, serve::JsonValue::Kind::kNull);
}

TEST(ServeJson, UnicodeEscapes) {
  const auto fields =
      serve::parse_flat_object(R"({"s": "Aé€"})");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->at("s").str, "A\xC3\xA9\xE2\x82\xAC");
  EXPECT_FALSE(serve::parse_flat_object(R"({"s": "\ud800"})").ok());
}

TEST(ServeJson, RejectsMalformedInput) {
  const char* bad[] = {
      "",                       // no object
      "{",                      // unterminated
      R"({"a": 1} trailing)",   // trailing garbage
      R"({"a": 1, "a": 2})",    // duplicate key
      R"({"a": {"b": 1}})",     // nesting
      R"({"a": [1]})",          // array
      R"({"a": 1e})",           // malformed number
      R"({"a": "x)",            // unterminated string
      R"({"a": "\q"})",         // bad escape
      "{\"a\": \"\x01\"}",      // raw control char
  };
  for (const char* line : bad) {
    const auto fields = serve::parse_flat_object(line);
    EXPECT_FALSE(fields.ok()) << "accepted: " << line;
    EXPECT_EQ(fields.status().code(), util::StatusCode::kInvalidConfig);
  }
}

// --- request decoding ----------------------------------------------------

TEST(ServeRequest, ParsesAllFields) {
  const auto req = serve::parse_request(
      R"({"id": "r1", "config": "topology = grid:2x2", "deadline_ms": 250,)"
      R"( "cache_key": "k", "warm_start": true})");
  ASSERT_TRUE(req.ok()) << req.status().to_string();
  EXPECT_EQ(req->id, "r1");
  EXPECT_EQ(req->config_text, "topology = grid:2x2");
  EXPECT_EQ(req->deadline_ms, 250u);
  EXPECT_TRUE(req->has_deadline);
  EXPECT_EQ(req->cache_key, "k");
  EXPECT_TRUE(req->warm_start);
}

TEST(ServeRequest, RejectsBadRequests) {
  const char* bad[] = {
      R"({"config": "topology = grid:2x2"})",          // missing id
      R"({"id": "a"})",                                // missing config
      R"({"id": "a", "config": "c", "extra": 1})",     // unknown field
      R"({"id": "a", "config": "c", "deadline_ms": -1})",
      R"({"id": "a", "config": "c", "deadline_ms": 1.5})",
      R"({"id": "a", "config": "c", "warm_start": true})",  // no cache_key
      R"({"id": 7, "config": "c"})",                   // mistyped id
  };
  for (const char* line : bad) {
    const auto req = serve::parse_request(line);
    EXPECT_FALSE(req.ok()) << "accepted: " << line;
  }
}

TEST(ServeRequest, DecodeFaultSiteSurfacesAsStatus) {
  ScopedFault fault(Site::kServeDecodeFault, 0);
  const auto req =
      serve::parse_request(R"({"id": "a", "config": "c"})");
  ASSERT_FALSE(req.ok());
  EXPECT_NE(req.status().message().find("injected"), std::string::npos);
}

TEST(ServeRequest, SeedFromIdIsStableAndSpread) {
  const std::uint64_t s1 = serve::seed_from_request_id("job-1");
  EXPECT_EQ(s1, serve::seed_from_request_id("job-1"));
  // Near-identical ids must land on unrelated seeds (SplitMix64 finalizer).
  EXPECT_NE(s1, serve::seed_from_request_id("job-2"));
  EXPECT_NE(s1 >> 32, serve::seed_from_request_id("job-2") >> 32);
}

TEST(ServeResponse, FixedKeyOrderAndEscaping) {
  serve::Response r;
  r.seq = 3;
  r.id = "a\"b";
  r.code = 6;
  r.status = "shed";
  r.error = "queue full";
  r.retry_after_ms = 75;
  std::ostringstream out;
  serve::write_response(r, out);
  EXPECT_EQ(out.str(),
            "{\"seq\": 3, \"id\": \"a\\\"b\", \"code\": 6, "
            "\"status\": \"shed\", \"error\": \"queue full\", "
            "\"retry_after_ms\": 75}\n");
}

// --- admission gate ------------------------------------------------------

TEST(AdmissionGate, BoundsDepthAndTracksPeak) {
  serve::AdmissionGate gate(2);
  EXPECT_TRUE(gate.try_admit());
  EXPECT_TRUE(gate.try_admit());
  EXPECT_FALSE(gate.try_admit());  // full
  EXPECT_EQ(gate.depth(), 2u);
  EXPECT_EQ(gate.peak(), 2u);
  EXPECT_EQ(gate.shed_count(), 1u);
  gate.release();
  EXPECT_TRUE(gate.try_admit());
  EXPECT_EQ(gate.peak(), 2u);  // never exceeded capacity
  gate.release();
  gate.release();
  EXPECT_THROW(gate.release(), std::logic_error);
}

TEST(AdmissionGate, RetryHintGrowsWithLoad) {
  serve::AdmissionGate gate(4);
  const std::uint64_t empty = gate.retry_after_ms_hint();
  ASSERT_TRUE(gate.try_admit());
  ASSERT_TRUE(gate.try_admit());
  EXPECT_GT(gate.retry_after_ms_hint(), empty);
  gate.release();
  gate.release();
}

TEST(AdmissionGate, QueueFullFaultForcesShed) {
  serve::AdmissionGate gate(8);
  ScopedFault fault(Site::kServeQueueFull, 0);
  EXPECT_FALSE(gate.try_admit());  // injected shed despite empty gate
  EXPECT_EQ(gate.shed_count(), 1u);
  EXPECT_TRUE(gate.try_admit());
  gate.release();
}

// --- obs support added for serve ----------------------------------------

TEST(ServeMetrics, GaugeSetMaxKeepsHighWaterMark) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("peak");
  g.set_max(3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(ServeMetrics, GaugeSetMaxOnUnsetGaugeKeepsNegativeValues) {
  // The unset sentinel is -infinity, not 0: a first set_max below zero must
  // record the observed value, not silently clamp it up.
  obs::Gauge g;
  EXPECT_FALSE(g.has_value());
  g.set_max(-5.0);
  EXPECT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g.value(), -5.0);
  g.set_max(-9.0);
  EXPECT_DOUBLE_EQ(g.value(), -5.0);
}

// --- end-to-end serve loop -----------------------------------------------

serve::ServeOptions test_options() {
  serve::ServeOptions options;
  options.jobs = 2;
  options.queue_capacity = 64;
  return options;
}

std::string tiny_config(int iterations, const char* algo = "adaptive") {
  return "topology = grid:2x2\\niterations = " + std::to_string(iterations) +
         "\\nalgorithm = " + std::string(algo);
}

std::string request_line(const std::string& id, const std::string& config,
                         const std::string& extra = "") {
  return "{\"id\": \"" + id + "\", \"config\": \"" + config + "\"" + extra +
         "}";
}

serve::ServeReport run_serve(const std::string& input, std::string& output,
                             const serve::ServeOptions& options) {
  serve::reset_drain();
  std::istringstream in(input);
  std::ostringstream out;
  const serve::ServeReport report = serve::serve(in, out, options);
  output = out.str();
  return report;
}

/// The 500-request replay log shared by the byte-identity and metrics-merge
/// gates: keyed lanes with warm starts, cold requests, and malformed lines.
std::string build_replay_log(int requests = 500) {
  std::ostringstream log;
  for (int i = 0; i < requests; ++i) {
    if (i % 25 == 24) {
      log << "this line is not json #" << i << "\n";  // decode-error path
      continue;
    }
    const std::string id = "req-" + std::to_string(i);
    const std::string config = tiny_config(8 + i % 3);
    if (i % 5 == 0) {
      log << request_line(id, config) << "\n";  // cold request
    } else {
      const std::string key = "lane-" + std::to_string(i % 4);
      std::string extra = ", \"cache_key\": \"" + key + "\"";
      if (i > 20) extra += ", \"warm_start\": true";
      log << request_line(id, config, extra) << "\n";
    }
  }
  return log.str();
}

/// The ISSUE acceptance gate: a seeded 500-request log — keyed lanes with
/// warm starts, cold requests, and malformed lines — replays byte-identically
/// at 1 worker and at 8.
TEST(ServeReplay, FiveHundredRequestsByteIdenticalAcrossJobs) {
  std::ostringstream log;
  log << build_replay_log();

  serve::ServeOptions options = test_options();
  options.queue_capacity = 600;  // no sheds: identity covers the happy path
  options.max_lanes = 3;  // 4 keys over 3 slots: steady LRU eviction churn,
                          // so warm-vs-cold decisions are part of the gate
  std::string out_jobs1;
  std::string out_jobs8;
  options.jobs = 1;
  const serve::ServeReport r1 = run_serve(log.str(), out_jobs1, options);
  options.jobs = 8;
  const serve::ServeReport r8 = run_serve(log.str(), out_jobs8, options);

  EXPECT_EQ(r1.requests, 500u);
  EXPECT_EQ(r8.requests, 500u);
  EXPECT_EQ(r1.shed, 0u);
  EXPECT_GT(r1.ok, 400u);
  EXPECT_EQ(r1.errors, 20u);  // the malformed lines, nothing else
  EXPECT_EQ(out_jobs1, out_jobs8);
}

TEST(ServeLoop, WarmLaneReusesCacheAndSolution) {
  const std::string input =
      request_line("w1", tiny_config(20), ", \"cache_key\": \"k\"") + "\n" +
      request_line("w2", tiny_config(20),
                   ", \"cache_key\": \"k\", \"warm_start\": true") +
      "\n";
  std::string output;
  const serve::ServeReport report =
      run_serve(input, output, test_options());
  EXPECT_EQ(report.ok, 2u);
  const std::size_t second = output.find("\"id\": \"w2\"");
  ASSERT_NE(second, std::string::npos);
  EXPECT_NE(output.find("\"warm_started\": true", second),
            std::string::npos);
  // Warm start = the lane's previous solution = the cached matrix, so the
  // second request's first evaluation is an exact cache hit.
  EXPECT_NE(output.find("\"cache_exact_hits\": ", second),
            std::string::npos);
}

TEST(ServeLoop, LruEvictionBoundsLanesAndColdStartsEvictedKeys) {
  const std::string metrics_path = "serve_eviction_metrics_test.json";
  // max_lanes = 1: dispatching key "b" evicts key "a", so a's later
  // warm_start request finds a cold lane and must report warm_started
  // false — and the lane map never holds more than one warm cache.
  const std::string input =
      request_line("a1", tiny_config(15), ", \"cache_key\": \"a\"") + "\n" +
      request_line("b1", tiny_config(15), ", \"cache_key\": \"b\"") + "\n" +
      request_line("a2", tiny_config(15),
                   ", \"cache_key\": \"a\", \"warm_start\": true") +
      "\n";
  serve::ServeOptions options = test_options();
  options.jobs = 1;
  options.max_lanes = 1;
  options.metrics_path = metrics_path;
  std::string output;
  const serve::ServeReport report = run_serve(input, output, options);
  EXPECT_EQ(report.ok, 3u);
  const std::size_t a2 = output.find("\"id\": \"a2\"");
  ASSERT_NE(a2, std::string::npos);
  EXPECT_NE(output.find("\"warm_started\": false", a2), std::string::npos);
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream contents;
  contents << metrics.rdbuf();
  EXPECT_NE(contents.str().find("\"serve.lanes.evicted\": 2"),
            std::string::npos)
      << contents.str();
  EXPECT_NE(contents.str().find("\"serve.lanes.live\": 1"),
            std::string::npos)
      << contents.str();
  std::remove(metrics_path.c_str());
}

TEST(ServeLoop, WarmStartedFlagTracksActualApplication) {
  // starts > 1 makes run_optimization decline the offered warm start; the
  // response must say so instead of reporting the offer as a hit.
  const std::string multi_start_config =
      "topology = grid:2x2\\niterations = 10\\nalgorithm = "
      "perturbed\\nstarts = 2";
  const std::string input =
      request_line("m1", multi_start_config, ", \"cache_key\": \"m\"") +
      "\n" +
      request_line("m2", multi_start_config,
                   ", \"cache_key\": \"m\", \"warm_start\": true") +
      "\n";
  std::string output;
  const serve::ServeReport report =
      run_serve(input, output, test_options());
  EXPECT_EQ(report.ok, 2u);
  const std::size_t second = output.find("\"id\": \"m2\"");
  ASSERT_NE(second, std::string::npos);
  EXPECT_NE(output.find("\"warm_started\": false", second),
            std::string::npos);
}

TEST(ServeLoop, DeadlineCutsRunWithBestSoFar) {
  serve::ServeOptions options = test_options();
  options.jobs = 1;
  const std::string input = request_line(
      "slow",
      "topology = grid:3x3\\niterations = 1000000\\nalgorithm = perturbed",
      ", \"deadline_ms\": 80");
  std::string output;
  const serve::ServeReport report = run_serve(input + "\n", output, options);
  EXPECT_EQ(report.deadline_exceeded, 1u);
  EXPECT_NE(output.find("\"code\": 5"), std::string::npos);
  EXPECT_NE(output.find("\"status\": \"deadline-exceeded\""),
            std::string::npos);
  // Degradation, not loss: the response still carries the best iterate.
  EXPECT_NE(output.find("\"stop_reason\": \"cancelled\""),
            std::string::npos);
  EXPECT_NE(output.find("\"cost\": "), std::string::npos);
}

TEST(ServeLoop, InjectedQueueFullShedsWithBackoffHint) {
  // Fire on admissions 1 and 2 (0-based): requests two and three shed
  // deterministically, independent of worker timing.
  ScopedFault fault(Site::kServeQueueFull, 1, 2);
  std::ostringstream log;
  for (int i = 0; i < 5; ++i)
    log << request_line("q" + std::to_string(i), tiny_config(10)) << "\n";
  std::string output;
  const serve::ServeReport report =
      run_serve(log.str(), output, test_options());
  EXPECT_EQ(report.requests, 5u);
  EXPECT_EQ(report.shed, 2u);
  EXPECT_EQ(report.ok, 3u);
  EXPECT_NE(output.find("\"code\": 6"), std::string::npos);
  EXPECT_NE(output.find("\"status\": \"shed\""), std::string::npos);
  EXPECT_NE(output.find("\"retry_after_ms\": "), std::string::npos);
  EXPECT_LE(report.peak_depth, test_options().queue_capacity);
}

TEST(ServeLoop, InjectedDecodeFaultIsIsolated) {
  ScopedFault fault(Site::kServeDecodeFault, 0);  // first decode fails
  const std::string input = request_line("d1", tiny_config(10)) + "\n" +
                            request_line("d2", tiny_config(10)) + "\n";
  std::string output;
  const serve::ServeReport report =
      run_serve(input, output, test_options());
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_NE(output.find("injected decode fault"), std::string::npos);
  EXPECT_NE(output.find("\"id\": \"d2\", \"code\": 0"), std::string::npos);
}

TEST(ServeLoop, WatchdogFailsStuckRequestNotServer) {
  ScopedFault fault(Site::kServeStuckWorker, 0);  // first request wedges
  serve::ServeOptions options = test_options();
  // One worker pins dispatch order: with two, either request could reach
  // the one-shot fault site first, and the wedge only engages when the
  // faulted request carries a deadline.
  options.jobs = 1;
  options.watchdog_grace_ms = 40;
  options.watchdog_poll_ms = 5;
  const std::string input =
      request_line("stuck", tiny_config(10), ", \"deadline_ms\": 30") +
      "\n" + request_line("after", tiny_config(10)) + "\n";
  std::string output;
  const serve::ServeReport report = run_serve(input, output, options);
  EXPECT_EQ(report.requests, 2u);
  EXPECT_EQ(report.deadline_exceeded, 1u);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_NE(output.find("watchdog"), std::string::npos);
  EXPECT_NE(output.find("\"id\": \"after\", \"code\": 0"),
            std::string::npos);
}

TEST(ServeLoop, AbandonedWorkerOutlivingDrainIsJoinedBeforeTeardown) {
  // The last request wedges on a warm lane: the watchdog answers it, the
  // drain wait is satisfied by that response, and server teardown races the
  // still-running worker's writes to lane state. The pool must join that
  // worker before lane/inflight/emit state is destroyed (ASan drill).
  for (int round = 0; round < 3; ++round) {
    ScopedFault fault(Site::kServeStuckWorker, 1);  // second request wedges
    serve::ServeOptions options = test_options();
    options.jobs = 1;
    options.watchdog_grace_ms = 20;
    options.watchdog_poll_ms = 2;
    const std::string input =
        request_line("warm", tiny_config(10), ", \"cache_key\": \"k\"") +
        "\n" +
        request_line("wedge", tiny_config(10),
                     ", \"cache_key\": \"k\", \"deadline_ms\": 20") +
        "\n";
    std::string output;
    const serve::ServeReport report = run_serve(input, output, options);
    EXPECT_EQ(report.requests, 2u);
    EXPECT_EQ(report.deadline_exceeded, 1u);
    EXPECT_NE(output.find("watchdog"), std::string::npos);
  }
}

TEST(ServeLoop, EveryLineGetsExactlyOneResponseUnderChaos) {
  // Request-layer chaos: probabilistic decode faults and sheds, plus
  // deadlines. Invariant under test: one response per line, each in a known
  // terminal state, queue depth bounded — the server never crashes and
  // never leaks a request.
  util::fault::arm_probabilistic(Site::kServeDecodeFault, 0.2, 3);
  util::fault::arm_probabilistic(Site::kServeQueueFull, 0.3, 7);
  std::ostringstream log;
  const int kRequests = 40;
  for (int i = 0; i < kRequests; ++i)
    log << request_line("c" + std::to_string(i), tiny_config(10 + i % 5),
                        ", \"deadline_ms\": 2000")
        << "\n";
  serve::ServeOptions options = test_options();
  options.queue_capacity = 4;
  std::string output;
  const serve::ServeReport report =
      run_serve(log.str(), output, options);
  util::fault::disarm_all();

  EXPECT_EQ(report.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(report.ok + report.errors + report.deadline_exceeded +
                report.shed,
            static_cast<std::uint64_t>(kRequests));
  EXPECT_LE(report.peak_depth, options.queue_capacity);
  EXPECT_GT(report.shed + report.errors, 0u);  // the chaos actually fired

  // Exactly one response per seq, emitted in arrival order.
  std::istringstream lines(output);
  std::string line;
  std::uint64_t expect_seq = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "{\"seq\": " + std::to_string(expect_seq);
    EXPECT_EQ(line.rfind(prefix, 0), 0u) << line;
    ++expect_seq;
  }
  EXPECT_EQ(expect_seq, static_cast<std::uint64_t>(kRequests));
}

TEST(ServeLoop, DrainRequestStopsAcceptingAndFlushesMetrics) {
  const std::string metrics_path = "serve_drain_metrics_test.json";
  serve::ServeOptions options = test_options();
  options.metrics_path = metrics_path;
  std::string output;
  // Drain already requested: the server must accept nothing, still write a
  // complete final metrics snapshot, and report the early drain.
  serve::reset_drain();
  serve::request_drain();
  std::istringstream in(request_line("never", tiny_config(10)) + "\n");
  std::ostringstream out;
  const serve::ServeReport report = serve::serve(in, out, options);
  serve::reset_drain();
  EXPECT_TRUE(report.drained_early);
  EXPECT_EQ(report.requests, 0u);
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream contents;
  contents << metrics.rdbuf();
  EXPECT_NE(contents.str().find("serve.requests.total"), std::string::npos);
  EXPECT_NE(contents.str().find("serve.queue.peak_depth"),
            std::string::npos);
  std::remove(metrics_path.c_str());
}

// --- Metrics-merge correctness (DESIGN.md §15) -----------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

/// Sums every per-request delta's counters via the on_request_metrics hook
/// and asserts the final snapshot file carries exactly those totals — the
/// merge loses nothing and double-counts nothing, across lane eviction
/// churn and (in the drain variant below) a mid-log SIGTERM drain.
void expect_delta_sums_match_final_snapshot(
    const std::map<std::string, std::uint64_t>& sums,
    const std::string& metrics_json) {
  ASSERT_FALSE(sums.empty());
  for (const auto& [name, value] : sums) {
    const std::string needle =
        "\"" + name + "\": " + std::to_string(value);
    EXPECT_NE(metrics_json.find(needle), std::string::npos)
        << "final snapshot disagrees with delta sum: wanted " << needle;
  }
}

TEST(ServeMetricsMerge, FinalSnapshotEqualsSumOfPerRequestDeltas) {
  const std::string metrics_path = "serve_merge_metrics_test.json";
  serve::ServeOptions options = test_options();
  options.jobs = 4;
  options.queue_capacity = 600;
  options.max_lanes = 3;  // 4 keys over 3 slots: steady eviction churn
  options.metrics_path = metrics_path;
  std::map<std::string, std::uint64_t> sums;
  std::uint64_t hook_calls = 0;
  std::uint64_t last_seq = 0;
  bool arrival_order = true;
  options.on_request_metrics = [&](const serve::Response& r,
                                   const obs::MetricsSnapshot& delta) {
    // The hook fires under the emit lock in arrival order: seq is exactly
    // the call index.
    if (r.seq != hook_calls) arrival_order = false;
    last_seq = r.seq;
    ++hook_calls;
    for (const auto& c : delta.counters) sums[c.name] += c.value;
  };
  std::string output;
  const serve::ServeReport report =
      run_serve(build_replay_log(), output, options);
  EXPECT_EQ(report.requests, 500u);
  EXPECT_EQ(hook_calls, 500u);
  EXPECT_EQ(last_seq, 499u);
  EXPECT_TRUE(arrival_order);
  const std::string metrics_json = read_file(metrics_path);
  ASSERT_FALSE(metrics_json.empty());
  expect_delta_sums_match_final_snapshot(sums, metrics_json);
  // Spot-check that the deltas carried real optimizer work, not just
  // empties: 480 well-formed requests each start one descent run.
  EXPECT_EQ(sums["serve.requests.started"], 480u);
  EXPECT_EQ(sums["descent.runs"], 480u);
  EXPECT_GT(sums["descent.iterations"], 0u);
  std::remove(metrics_path.c_str());
}

/// std::streambuf over a fixed string that calls serve::request_drain()
/// once `drain_after_lines` newlines have been consumed — an in-process
/// stand-in for SIGTERM arriving mid-log.
class DrainingSource : public std::streambuf {
 public:
  DrainingSource(std::string text, int drain_after_lines)
      : text_(std::move(text)), remaining_(drain_after_lines) {}

 protected:
  int_type underflow() override {
    if (pos_ >= text_.size()) return traits_type::eof();
    ch_ = text_[pos_++];
    if (ch_ == '\n' && remaining_ > 0 && --remaining_ == 0)
      serve::request_drain();
    setg(&ch_, &ch_, &ch_ + 1);
    return traits_type::to_int_type(ch_);
  }

 private:
  std::string text_;
  std::size_t pos_ = 0;
  int remaining_;
  char ch_ = 0;
};

TEST(ServeMetricsMerge, DeltaSumsHoldAcrossMidLogDrain) {
  const std::string metrics_path = "serve_merge_drain_metrics_test.json";
  serve::ServeOptions options = test_options();
  options.jobs = 2;
  options.queue_capacity = 600;
  options.max_lanes = 3;
  options.metrics_path = metrics_path;
  std::map<std::string, std::uint64_t> sums;
  std::uint64_t hook_calls = 0;
  options.on_request_metrics = [&](const serve::Response&,
                                   const obs::MetricsSnapshot& delta) {
    ++hook_calls;
    for (const auto& c : delta.counters) sums[c.name] += c.value;
  };
  serve::reset_drain();
  DrainingSource source(build_replay_log(200), 60);
  std::istream in(&source);
  std::ostringstream out;
  const serve::ServeReport report = serve::serve(in, out, options);
  serve::reset_drain();
  EXPECT_TRUE(report.drained_early);
  // Drain fires while line 60 is being read: that line still completes, and
  // the read loop stops before the next one.
  EXPECT_EQ(report.requests, 60u);
  EXPECT_EQ(hook_calls, 60u);
  const std::string metrics_json = read_file(metrics_path);
  ASSERT_FALSE(metrics_json.empty());
  expect_delta_sums_match_final_snapshot(sums, metrics_json);
  std::remove(metrics_path.c_str());
}

// --- Live telemetry endpoint (DESIGN.md §15) -------------------------------

/// Minimal HTTP/1.0 client against the loopback endpoint; returns the whole
/// response (status line + headers + body), or "" when the connection fails.
std::string http_request(int port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < request_text.size()) {
    const ssize_t n = ::send(fd, request_text.data() + off,
                             request_text.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

/// Blocks serve()'s reader until the test has finished scraping, then
/// delivers EOF — keeps the server (and its endpoint) alive on demand.
class BlockingFeed : public std::streambuf {
 public:
  void feed(const std::string& text) {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_ += text;
    cv_.notify_all();
  }
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

 protected:
  int_type underflow() override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pos_ < buffer_.size() || closed_; });
    if (pos_ >= buffer_.size()) return traits_type::eof();
    ch_ = buffer_[pos_++];
    setg(&ch_, &ch_, &ch_ + 1);
    return traits_type::to_int_type(ch_);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool closed_ = false;
  char ch_ = 0;
};

/// Polls `path` for a port number written by the server (one decimal line),
/// for up to ~5 seconds. Returns -1 on timeout.
int wait_for_port_file(const std::string& path) {
  for (int tries = 0; tries < 500; ++tries) {
    std::ifstream in(path);
    int port = -1;
    if (in >> port && port > 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

TEST(ServeTelemetry, EndpointServesMetricsAndHealth) {
  const std::string port_file = "serve_endpoint_port_test.txt";
  std::remove(port_file.c_str());
  serve::ServeOptions options = test_options();
  options.metrics_port = 0;  // ephemeral
  options.metrics_port_file = port_file;
  BlockingFeed feed;
  feed.feed(request_line("t1", tiny_config(10)) + "\n" +
            request_line("t2", tiny_config(10)) + "\n");
  std::istream in(&feed);
  std::ostringstream out;
  serve::reset_drain();
  serve::ServeReport report;
  std::thread server(
      [&] { report = serve::serve(in, out, options); });

  const int port = wait_for_port_file(port_file);
  ASSERT_GT(port, 0) << "endpoint never wrote its port file";

  // /metrics reflects merged request metrics once both responses flushed;
  // poll rather than race the workers.
  std::string metrics;
  for (int tries = 0; tries < 500; ++tries) {
    metrics = http_get(port, "/metrics");
    if (metrics.find("mocos_serve_requests_ok 2") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("mocos_serve_requests_ok 2"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("# TYPE mocos_serve_request_latency histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("mocos_serve_request_latency_quantile{q=\"0.99\"}"),
            std::string::npos);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"queue_depth\": "), std::string::npos);
  EXPECT_NE(health.find("\"lanes_live\": "), std::string::npos);
  EXPECT_NE(health.find("\"draining\": false"), std::string::npos);

  EXPECT_NE(http_get(port, "/nope").find("HTTP/1.0 404 Not Found"),
            std::string::npos);
  EXPECT_NE(http_request(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .find("HTTP/1.0 405 Method Not Allowed"),
            std::string::npos);

  feed.close();
  server.join();
  EXPECT_EQ(report.requests, 2u);
  EXPECT_EQ(report.ok, 2u);
  std::remove(port_file.c_str());
}

TEST(ServeTelemetry, ProfileFileWrittenAtDrain) {
  const std::string profile_path = "serve_profile_test.json";
  std::remove(profile_path.c_str());
  serve::ServeOptions options = test_options();
  options.jobs = 1;
  options.profile_path = profile_path;
  std::string output;
  const serve::ServeReport report = run_serve(
      request_line("p1", tiny_config(10)) + "\n", output, options);
  EXPECT_EQ(report.ok, 1u);
  const std::string profile = read_file(profile_path);
  ASSERT_FALSE(profile.empty());
  EXPECT_NE(profile.find("\"version\": 1"), std::string::npos);
  // Stacks are rooted at the serve.request phase the server installs.
  EXPECT_NE(profile.find("\"serve.request\""), std::string::npos) << profile;
  EXPECT_NE(profile.find("\"serve.request;"), std::string::npos) << profile;
  std::remove(profile_path.c_str());
}

/// The replay contract with the telemetry plane switched on: the same
/// 500-request log, jobs 1 vs 8, while a scraper hammers /metrics and
/// /healthz — responses stay byte-identical (the endpoint only reads).
TEST(ServeReplay, EndpointEnabledReplayIsByteIdenticalWhilePolled) {
  const std::string log = build_replay_log();
  serve::ServeOptions options = test_options();
  options.queue_capacity = 600;
  options.max_lanes = 3;
  options.metrics_port = 0;

  auto run_polled = [&](std::size_t jobs, const std::string& port_file) {
    std::remove(port_file.c_str());
    options.jobs = jobs;
    options.metrics_port_file = port_file;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> scrapes{0};
    std::thread poller([&] {
      int port = -1;
      while (!stop.load(std::memory_order_relaxed)) {
        if (port <= 0) {
          std::ifstream in(port_file);
          if (!(in >> port)) port = -1;
        }
        if (port > 0) {
          if (http_get(port, "/metrics").find("200 OK") !=
              std::string::npos)
            scrapes.fetch_add(1, std::memory_order_relaxed);
          http_get(port, "/healthz");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    std::string output;
    const serve::ServeReport report = run_serve(log, output, options);
    stop.store(true, std::memory_order_relaxed);
    poller.join();
    std::remove(port_file.c_str());
    EXPECT_EQ(report.requests, 500u);
    EXPECT_GT(scrapes.load(), 0u) << "the poller never reached /metrics";
    return output;
  };

  const std::string out_jobs1 = run_polled(1, "serve_poll_port_j1.txt");
  const std::string out_jobs8 = run_polled(8, "serve_poll_port_j8.txt");
  EXPECT_EQ(out_jobs1, out_jobs8);
}

}  // namespace
}  // namespace mocos
