// POSITIVE fixture for the thread-safety CI gate: correct annotated
// locking that must compile clean under -Wthread-safety
// -Werror=thread-safety. Run before the negative unlocked_access.cpp
// check so a failure there is attributable to the analysis detecting the
// planted bug, not to a broken include path or toolchain. Exercises the
// conventions DESIGN.md §13 documents: guarded members, a *_locked helper
// with MOCOS_REQUIRES, public entry points with MOCOS_EXCLUDES, and a
// CondVar wait loop inside the locked region. Not part of any CMake
// target.

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace mocos {

class Account {
 public:
  void deposit(int amount) MOCOS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    balance_ += amount;
    changed_.notify_all();
  }

  [[nodiscard]] int balance() const MOCOS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return balance_;
  }

  void wait_for_at_least(int amount) MOCOS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    while (balance_ < amount) changed_.wait(mu_);
  }

  void audit() MOCOS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    audit_locked();
  }

 private:
  void audit_locked() MOCOS_REQUIRES(mu_) { audits_ += balance_ >= 0 ? 1 : 0; }

  mutable util::Mutex mu_;
  util::CondVar changed_;
  int balance_ MOCOS_GUARDED_BY(mu_) = 0;
  int audits_ MOCOS_GUARDED_BY(mu_) = 0;
};

}  // namespace mocos
