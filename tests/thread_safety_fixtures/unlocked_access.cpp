// NEGATIVE fixture for the thread-safety CI gate: this file contains a
// deliberate locking bug and MUST FAIL to compile under
//
//   clang++ -std=c++20 -I. -fsyntax-only -Wthread-safety \
//           -Werror=thread-safety tests/thread_safety_fixtures/unlocked_access.cpp
//
// The CI job inverts the compiler's exit status; if this file ever
// compiles clean the gate itself is broken (e.g. the MOCOS_* annotation
// macros silently became no-ops under Clang) and the job fails. The
// companion locked_access.cpp is the same class with correct locking and
// must compile clean. Not part of any CMake target.

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace mocos {

class Account {
 public:
  void deposit(int amount) MOCOS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    balance_ += amount;
  }

  // BUG (deliberate): reads a guarded field without holding mu_. Clang
  // diagnoses "reading variable 'balance_' requires holding mutex 'mu_'".
  [[nodiscard]] int balance() const { return balance_; }

 private:
  mutable util::Mutex mu_;
  int balance_ MOCOS_GUARDED_BY(mu_) = 0;
};

}  // namespace mocos
