#include "src/core/serialization.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "tests/helpers.hpp"

namespace mocos::core {
namespace {

TEST(Serialization, RoundTripsToLastUlp) {
  // The text carries max_digits10 precision; the only loss is the
  // deserializer's defensive row renormalization (one division by a sum
  // within 1 ulp of 1.0).
  util::Rng rng(3);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(3 + rng.index(5), rng);
    const auto q = deserialize_schedule(serialize_schedule(p));
    ASSERT_EQ(q.size(), p.size());
    EXPECT_TRUE(linalg::approx_equal(q.matrix(), p.matrix(), 1e-15));
  }
}

TEST(Serialization, FormatIsHumanReadable) {
  const std::string text =
      serialize_schedule(markov::TransitionMatrix::uniform(2));
  EXPECT_NE(text.find("mocos-schedule v1"), std::string::npos);
  EXPECT_NE(text.find("pois 2"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
}

TEST(Serialization, RejectsCorruptInput) {
  EXPECT_THROW(deserialize_schedule(""), std::invalid_argument);
  EXPECT_THROW(deserialize_schedule("wrong header\npois 2\n"),
               std::invalid_argument);
  EXPECT_THROW(deserialize_schedule("mocos-schedule v1\npois 1\n1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      deserialize_schedule("mocos-schedule v1\npois 2\n0.5 0.5\n0.5\n"),
      std::invalid_argument);
  EXPECT_THROW(deserialize_schedule(
                   "mocos-schedule v1\npois 2\n0.5 0.5\n0.5 0.5\n0.1\n"),
               std::invalid_argument);
  // Valid shape but not row-stochastic: the TransitionMatrix ctor rejects.
  EXPECT_THROW(
      deserialize_schedule("mocos-schedule v1\npois 2\n0.9 0.5\n0.5 0.5\n"),
      std::invalid_argument);
}

TEST(Serialization, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/mocos_sched_test.txt";
  util::Rng rng(4);
  const auto p = test::random_positive_chain(4, rng);
  save_schedule(path, p);
  const auto q = load_schedule(path);
  EXPECT_TRUE(linalg::approx_equal(p.matrix(), q.matrix(), 0.0));
  std::remove(path.c_str());
  EXPECT_THROW(load_schedule("/nonexistent/sched.txt"), std::runtime_error);
  EXPECT_THROW(save_schedule("/nonexistent_dir_zz/s.txt", p),
               std::runtime_error);
}

}  // namespace
}  // namespace mocos::core
