#include "src/markov/sensitivity.hpp"

#include <gtest/gtest.h>

#include "src/markov/stationary.hpp"
#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

// Central finite difference of the chain analysis along direction V.
struct FiniteDiff {
  linalg::Vector dpi;
  linalg::Matrix dz;
};

FiniteDiff finite_difference(const TransitionMatrix& p,
                             const linalg::Matrix& v, double h) {
  const std::size_t n = p.size();
  linalg::Matrix plus(n, n), minus(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      plus(i, j) = p(i, j) + h * v(i, j);
      minus(i, j) = p(i, j) - h * v(i, j);
    }
  }
  const auto cp = analyze_chain(TransitionMatrix(plus));
  const auto cm = analyze_chain(TransitionMatrix(minus));
  FiniteDiff out{linalg::Vector(n, 0.0), linalg::Matrix(n, n)};
  for (std::size_t i = 0; i < n; ++i)
    out.dpi[i] = (cp.pi[i] - cm.pi[i]) / (2.0 * h);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      out.dz(i, j) = (cp.z(i, j) - cm.z(i, j)) / (2.0 * h);
  return out;
}

TEST(Sensitivity, StationaryDerivativeMatchesFiniteDifference) {
  util::Rng rng(61);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(4, rng);
    const auto chain = analyze_chain(p);
    const auto v = test::random_direction(4, rng);
    const auto analytic = stationary_directional_derivative(chain, v);
    const auto fd = finite_difference(p, v, 1e-6);
    EXPECT_TRUE(linalg::approx_equal(analytic, fd.dpi, 1e-5))
        << "trial " << t;
  }
}

TEST(Sensitivity, FundamentalDerivativeMatchesFiniteDifference) {
  util::Rng rng(62);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(4, rng);
    const auto chain = analyze_chain(p);
    const auto v = test::random_direction(4, rng);
    const auto analytic = fundamental_directional_derivative(chain, v);
    const auto fd = finite_difference(p, v, 1e-6);
    EXPECT_TRUE(linalg::approx_equal(analytic, fd.dz, 1e-4)) << "trial " << t;
  }
}

TEST(Sensitivity, StationaryDerivativeSumsToZero) {
  // Σ_i dπ_i = 0 since Σ_i π_i = 1 identically.
  util::Rng rng(63);
  const auto p = test::random_positive_chain(5, rng);
  const auto chain = analyze_chain(p);
  const auto v = test::random_direction(5, rng);
  const auto dpi = stationary_directional_derivative(chain, v);
  double s = 0.0;
  for (double x : dpi) s += x;
  EXPECT_NEAR(s, 0.0, 1e-12);
}

TEST(Sensitivity, ZeroDirectionGivesZeroDerivatives) {
  const auto chain = analyze_chain(test::chain3());
  const linalg::Matrix zero(3, 3);
  EXPECT_TRUE(linalg::approx_equal(
      stationary_directional_derivative(chain, zero),
      linalg::Vector(3, 0.0), 0.0));
  EXPECT_TRUE(linalg::approx_equal(
      fundamental_directional_derivative(chain, zero), zero, 0.0));
}

TEST(Sensitivity, DerivativesAreLinearInDirection) {
  util::Rng rng(64);
  const auto p = test::random_positive_chain(4, rng);
  const auto chain = analyze_chain(p);
  const auto v = test::random_direction(4, rng);
  const auto dpi1 = stationary_directional_derivative(chain, v);
  const auto dpi2 = stationary_directional_derivative(chain, v * 2.0);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(dpi2[i], 2.0 * dpi1[i], 1e-12);
}

TEST(ChainRule, ReproducesDirectionalDerivative) {
  // For any partials (g_pi, G_z, G_p), <chain_rule_gradient, V> must equal
  // g_pi . dpi(V) + <G_z, dZ(V)> + <G_p, V>.
  util::Rng rng(65);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(4, rng);
    const auto chain = analyze_chain(p);
    const auto v = test::random_direction(4, rng);

    linalg::Vector g_pi(4);
    linalg::Matrix g_z(4, 4), g_p(4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      g_pi[i] = rng.uniform(-1.0, 1.0);
      for (std::size_t j = 0; j < 4; ++j) {
        g_z(i, j) = rng.uniform(-1.0, 1.0);
        g_p(i, j) = rng.uniform(-1.0, 1.0);
      }
    }

    const auto grad = chain_rule_gradient(chain, g_pi, g_z, g_p);
    const double lhs = linalg::frobenius_dot(grad, v);

    const auto dpi = stationary_directional_derivative(chain, v);
    const auto dz = fundamental_directional_derivative(chain, v);
    const double rhs = linalg::dot(g_pi, dpi) + linalg::frobenius_dot(g_z, dz) +
                       linalg::frobenius_dot(g_p, v);
    EXPECT_NEAR(lhs, rhs, 1e-9) << "trial " << t;
  }
}

TEST(ChainRule, SizeMismatchThrows) {
  const auto chain = analyze_chain(test::chain3());
  EXPECT_THROW(chain_rule_gradient(chain, linalg::Vector(2, 0.0),
                                   linalg::Matrix(3, 3), linalg::Matrix(3, 3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mocos::markov
