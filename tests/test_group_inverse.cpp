#include "src/markov/group_inverse.hpp"

#include <gtest/gtest.h>

#include "src/markov/fundamental.hpp"
#include "src/markov/stationary.hpp"
#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

TEST(GroupInverse, SatisfiesAxiomsOnKnownChain) {
  const TransitionMatrix p = test::chain3();
  const auto pi = stationary_distribution(p);
  const auto a = linalg::Matrix::identity(3) - p.matrix();
  const auto g = group_inverse(p.matrix(), pi);
  EXPECT_TRUE(satisfies_group_inverse_axioms(a, g, 1e-10));
}

TEST(GroupInverse, PaperEq5WIsIMinusAAsharp) {
  const TransitionMatrix p = test::chain3();
  const auto chain = analyze_chain(p);
  const auto a = linalg::Matrix::identity(3) - p.matrix();
  const auto g = group_inverse(p.matrix(), chain.pi);
  const auto w = linalg::Matrix::identity(3) - a * g;
  EXPECT_TRUE(linalg::approx_equal(w, chain.w, 1e-10));
}

TEST(GroupInverse, PaperEq7ZIsIPlusPAsharp) {
  const TransitionMatrix p = test::chain3();
  const auto chain = analyze_chain(p);
  const auto g = group_inverse(p.matrix(), chain.pi);
  const auto z = linalg::Matrix::identity(3) + p.matrix() * g;
  EXPECT_TRUE(linalg::approx_equal(z, chain.z, 1e-10));
}

TEST(GroupInverse, CheckerRejectsWrongCandidate) {
  const TransitionMatrix p = test::chain3();
  const auto a = linalg::Matrix::identity(3) - p.matrix();
  EXPECT_FALSE(
      satisfies_group_inverse_axioms(a, linalg::Matrix::identity(3), 1e-10));
  EXPECT_FALSE(satisfies_group_inverse_axioms(a, linalg::Matrix(2, 2), 1e-10));
}

class GroupInversePropertyTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupInversePropertyTest, AxiomsAcrossRandomChains) {
  util::Rng rng(700 + GetParam());
  for (int t = 0; t < 5; ++t) {
    const auto p = test::random_positive_chain(GetParam(), rng);
    const auto pi = stationary_distribution(p);
    const auto a =
        linalg::Matrix::identity(GetParam()) - p.matrix();
    const auto g = group_inverse(p.matrix(), pi);
    EXPECT_TRUE(satisfies_group_inverse_axioms(a, g, 1e-9));
    // A# A = I - W (projector complementary to the stationary direction).
    const auto w = stationary_rows(pi);
    EXPECT_TRUE(linalg::approx_equal(
        g * a, linalg::Matrix::identity(GetParam()) - w, 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupInversePropertyTest,
                         ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace mocos::markov
