#include "src/markov/hitting.hpp"

#include <gtest/gtest.h>

#include "src/markov/fundamental.hpp"
#include "src/sim/simulator.hpp"
#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

TEST(HitBefore, BoundaryConditions) {
  const auto h = hit_before(test::chain3(), 1, 2);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
  EXPECT_DOUBLE_EQ(h[2], 0.0);
  EXPECT_GT(h[0], 0.0);
  EXPECT_LT(h[0], 1.0);
}

TEST(HitBefore, SatisfiesHarmonicEquation) {
  util::Rng rng(41);
  const auto p = test::random_positive_chain(5, rng);
  const auto h = hit_before(p, 0, 4);
  for (std::size_t i = 1; i < 4; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 5; ++j) expect += p(i, j) * h[j];
    EXPECT_NEAR(h[i], expect, 1e-10) << "state " << i;
  }
}

TEST(HitBefore, ComplementaryProbabilitiesSumToOne) {
  util::Rng rng(42);
  const auto p = test::random_positive_chain(4, rng);
  const auto h01 = hit_before(p, 0, 1);
  const auto h10 = hit_before(p, 1, 0);
  for (std::size_t i = 2; i < 4; ++i)
    EXPECT_NEAR(h01[i] + h10[i], 1.0, 1e-10);
}

TEST(HitBefore, SymmetricRandomWalkOnLine) {
  // Gambler's ruin on 3 states {0,1,2} with p=1/2 left/right from state 1:
  // P(hit 2 before 0 | start 1) = 1/2.
  linalg::Matrix m{{0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  const auto h = hit_before(TransitionMatrix(m), 2, 0);
  EXPECT_NEAR(h[1], 0.5, 1e-12);
}

TEST(HitBefore, ValidatesArguments) {
  const auto p = test::chain3();
  EXPECT_THROW(hit_before(p, 0, 0), std::invalid_argument);
  EXPECT_THROW(hit_before(p, 3, 0), std::out_of_range);
}

TEST(ExpectedVisits, StartAtTransientCountsItself) {
  util::Rng rng(43);
  const auto p = test::random_positive_chain(4, rng);
  const auto v = expected_visits_before(p, 1, 3);
  EXPECT_GE(v[1], 1.0);           // the time-0 visit
  EXPECT_DOUBLE_EQ(v[3], 0.0);    // absorbed immediately
  EXPECT_GT(v[0], 0.0);
}

TEST(ExpectedVisits, OneStepRecurrence) {
  // v_i = [i == a] + Σ_{j != b} p_ij v_j.
  util::Rng rng(44);
  const auto p = test::random_positive_chain(5, rng);
  const auto v = expected_visits_before(p, 2, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    double expect = (i == 2) ? 1.0 : 0.0;
    for (std::size_t j = 0; j < 5; ++j)
      if (j != 4) expect += p(i, j) * v[j];
    EXPECT_NEAR(v[i], expect, 1e-9) << "state " << i;
  }
}

TEST(ExpectedVisits, ValidatesArguments) {
  const auto p = test::chain3();
  EXPECT_THROW(expected_visits_before(p, 1, 1), std::invalid_argument);
  EXPECT_THROW(expected_visits_before(p, 5, 0), std::out_of_range);
}

TEST(PassageVariance, GeometricClosedForm) {
  // chain2(a, b): passage 1 -> 0 is geometric(b): mean 1/b,
  // variance (1-b)/b^2.
  const double a = 0.4, b = 0.25;
  const auto var = passage_time_variance(test::chain2(a, b), 0);
  EXPECT_NEAR(var[1], (1.0 - b) / (b * b), 1e-9);
}

TEST(PassageVariance, MeansMatchFirstPassageMatrix) {
  // Internal consistency: the mean used by the variance computation is R.
  util::Rng rng(45);
  const auto p = test::random_positive_chain(4, rng);
  const auto chain = analyze_chain(p);
  for (std::size_t t = 0; t < 4; ++t) {
    const auto var = passage_time_variance(p, t);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GE(var[i], -1e-9) << "variance must be non-negative";
    }
  }
}

TEST(PassageVariance, MatchesSimulatedReturnVariance) {
  // Simulate return times to state 0 and compare moments.
  const auto p = test::chain3();
  const auto var = passage_time_variance(p, 0);
  util::Rng rng(46);
  // Mean return time from R: 1/pi_0. Simulate passages from state 1.
  std::size_t trials = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::size_t state = 1;
    double steps = 0.0;
    while (true) {
      state = rng.discrete(p.row(state));
      steps += 1.0;
      if (state == 0) break;
    }
    sum += steps;
    sum_sq += steps * steps;
  }
  const double n = static_cast<double>(trials);
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  const auto chain = analyze_chain(p);
  EXPECT_NEAR(mean, chain.r(1, 0), 0.05 * chain.r(1, 0));
  EXPECT_NEAR(variance, var[1], 0.08 * var[1]);
}

TEST(PassageVariance, DeterministicCycleHasZeroVariance) {
  linalg::Matrix m{{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}};
  const auto var = passage_time_variance(TransitionMatrix(m), 0);
  for (double v : var) EXPECT_NEAR(v, 0.0, 1e-9);
}

}  // namespace
}  // namespace mocos::markov
