#include "src/sensing/travel_model.hpp"
#include "src/cost/information_term.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/cost/composite_cost.hpp"
#include "src/cost/gradient.hpp"
#include "src/cost/metrics.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "tests/helpers.hpp"

namespace mocos::cost {
namespace {

struct Fixture {
  sensing::TravelModel model;
  sensing::CoverageTensors tensors;
  explicit Fixture(int topo)
      : model(geometry::paper_topology(topo), 1.0, 1.0, 0.25),
        tensors(model) {}
};

TEST(InformationTerm, CaptureRateIsRateWeightedCoverageShares) {
  Fixture f(1);
  util::Rng rng(55);
  const auto chain =
      markov::analyze_chain(test::random_positive_chain(4, rng));
  const std::vector<double> rates{2.0, 1.0, 0.5, 0.0};
  InformationCaptureTerm term(f.tensors, rates, 1.0);
  const auto shares = coverage_shares(chain, f.tensors);
  double expect = 0.0;
  for (std::size_t i = 0; i < 4; ++i) expect += rates[i] * shares[i];
  EXPECT_NEAR(term.capture_rate(chain), expect, 1e-12);
}

TEST(InformationTerm, ValueIsNegativeGammaTimesCapture) {
  Fixture f(1);
  const auto chain =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  InformationCaptureTerm term(f.tensors, {1.0, 1.0, 1.0, 1.0}, 3.0);
  EXPECT_NEAR(term.value(chain), -3.0 * term.capture_rate(chain), 1e-14);
  EXPECT_LT(term.value(chain), 0.0);
}

TEST(InformationTerm, GradientMatchesFiniteDifference) {
  Fixture f(3);
  CompositeCost u;
  u.add(std::make_unique<InformationCaptureTerm>(
      f.tensors, std::vector<double>{1.5, 0.2, 0.0, 2.0}, 1.0));
  util::Rng rng(56);
  for (int t = 0; t < 6; ++t) {
    const auto p = test::random_positive_chain(4, rng);
    const auto chain = markov::analyze_chain(p);
    const auto v = test::random_direction(4, rng);
    const auto grad = cost_gradient(u, chain);
    const double analytic = linalg::frobenius_dot(grad, v);
    const double h = 1e-7;
    linalg::Matrix plus(4, 4), minus(4, 4);
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j) {
        plus(i, j) = p(i, j) + h * v(i, j);
        minus(i, j) = p(i, j) - h * v(i, j);
      }
    const double fd = (u.value(markov::TransitionMatrix(plus)) -
                       u.value(markov::TransitionMatrix(minus))) /
                      (2.0 * h);
    EXPECT_NEAR(analytic, fd, 1e-5 * std::max(1.0, std::abs(fd)))
        << "trial " << t;
  }
}

TEST(InformationTerm, StayingAtHighRatePoiMaximizesCapture) {
  // A chain that lingers at the (only) high-rate PoI captures more.
  Fixture f(1);
  const std::vector<double> rates{10.0, 0.0, 0.0, 0.0};
  InformationCaptureTerm term(f.tensors, rates, 1.0);

  linalg::Matrix lazy(4, 4, 0.1 / 3.0);
  for (std::size_t j = 0; j < 4; ++j) lazy(0, j) = (j == 0) ? 0.9 : 0.1 / 3.0;
  for (std::size_t i = 1; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) lazy(i, j) = (j == 0) ? 0.9 : 0.1 / 3.0;
  }
  const auto camp = markov::analyze_chain(markov::TransitionMatrix(lazy));
  const auto uniform =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  EXPECT_GT(term.capture_rate(camp), term.capture_rate(uniform));
}

TEST(InformationTerm, RejectsBadArguments) {
  Fixture f(1);
  EXPECT_THROW(
      InformationCaptureTerm(f.tensors, std::vector<double>{1.0}, 1.0),
      std::invalid_argument);
  EXPECT_THROW(InformationCaptureTerm(
                   f.tensors, std::vector<double>{1.0, 1.0, 1.0, -1.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(InformationCaptureTerm(
                   f.tensors, std::vector<double>{1.0, 1.0, 1.0, 1.0}, 0.0),
               std::invalid_argument);
}

TEST(InformationTerm, ChainSizeMismatchThrows) {
  Fixture f(1);
  InformationCaptureTerm term(f.tensors, {1.0, 1.0, 1.0, 1.0}, 1.0);
  const auto chain = markov::analyze_chain(test::chain3());
  EXPECT_THROW(term.value(chain), std::invalid_argument);
  Partials out(3);
  EXPECT_THROW(term.accumulate_partials(chain, out), std::invalid_argument);
}

}  // namespace
}  // namespace mocos::cost
