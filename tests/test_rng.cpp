#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mocos::util {
namespace {

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Rng, UniformDegenerateRangeReturnsLow) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform(2.5, 2.5), 2.5);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(4);
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, IndexWithinRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
}

TEST(Rng, IndexZeroThrows) {
  Rng rng(6);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(7);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianZeroSigmaIsMean) {
  Rng rng(8);
  EXPECT_EQ(rng.gaussian(3.25, 0.0), 3.25);
}

TEST(Rng, GaussianNegativeSigmaThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(10);
  std::vector<double> w{0.1, 0.0, 0.9};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[rng.discrete(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.9, 0.02);
}

TEST(Rng, DiscreteRejectsBadInput) {
  Rng rng(11);
  EXPECT_THROW(rng.discrete({}), std::invalid_argument);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.discrete({0.5, -0.1}), std::invalid_argument);
}

TEST(Rng, DiscreteUnnormalizedWeightsWork) {
  Rng rng(12);
  std::vector<double> w{2.0, 6.0};  // 25% / 75%
  int c0 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.discrete(w) == 0) ++c0;
  EXPECT_NEAR(c0 / double(n), 0.25, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliClampsOutOfRange) {
  Rng rng(14);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(99);
  Rng child = parent.split();
  // Parent and child should produce (almost surely) different sequences.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.uniform() == child.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitIsReproducible) {
  Rng a(7), b(7);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.uniform(), cb.uniform());
}

}  // namespace
}  // namespace mocos::util
