#include "src/markov/transition_matrix.hpp"

#include <gtest/gtest.h>

#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

TEST(TransitionMatrix, AcceptsValidMatrix) {
  const TransitionMatrix p = test::chain3();
  EXPECT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p(0, 1), 0.3);
}

TEST(TransitionMatrix, RowsMustSumToOne) {
  EXPECT_THROW(
      TransitionMatrix(linalg::Matrix{{0.5, 0.4}, {0.5, 0.5}}),
      std::invalid_argument);
}

TEST(TransitionMatrix, EntriesMustBeProbabilities) {
  EXPECT_THROW(
      TransitionMatrix(linalg::Matrix{{1.5, -0.5}, {0.5, 0.5}}),
      std::invalid_argument);
}

TEST(TransitionMatrix, RejectsNonSquareAndTiny) {
  EXPECT_THROW(TransitionMatrix(linalg::Matrix(2, 3, 0.5)),
               std::invalid_argument);
  EXPECT_THROW(TransitionMatrix(linalg::Matrix(1, 1, 1.0)),
               std::invalid_argument);
}

TEST(TransitionMatrix, RenormalizesWithinTolerance) {
  linalg::Matrix m{{0.5 + 1e-10, 0.5}, {0.25, 0.75}};
  const TransitionMatrix p(m);
  double s = p(0, 0) + p(0, 1);
  EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(TransitionMatrix, UniformConstruction) {
  const TransitionMatrix p = TransitionMatrix::uniform(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(p(i, j), 0.25);
  EXPECT_THROW(TransitionMatrix::uniform(1), std::invalid_argument);
}

TEST(TransitionMatrix, RandomConstructionIsStochastic) {
  util::Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    const TransitionMatrix p = TransitionMatrix::random(5, rng);
    for (std::size_t i = 0; i < 5; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < 5; ++j) {
        EXPECT_GE(p(i, j), 0.0);
        EXPECT_LE(p(i, j), 1.0);
        s += p(i, j);
      }
      EXPECT_NEAR(s, 1.0, 1e-12);
    }
  }
}

TEST(TransitionMatrix, RandomLastColumnAbsorbsRemainder) {
  // The paper's V2 scheme gives each non-final entry at most rem/M, so the
  // final column keeps a large share.
  util::Rng rng(4);
  const TransitionMatrix p = TransitionMatrix::random(4, rng);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(p(i, 3), 0.3);
}

TEST(TransitionMatrix, MinEntry) {
  const TransitionMatrix p = test::chain3();
  EXPECT_DOUBLE_EQ(p.min_entry(), 0.1);
}

TEST(TransitionMatrix, RowAccessor) {
  const TransitionMatrix p = test::chain3();
  EXPECT_EQ(p.row(2), (linalg::Vector{0.4, 0.4, 0.2}));
}

}  // namespace
}  // namespace mocos::markov
