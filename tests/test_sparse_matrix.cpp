#include "src/sparse/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "src/linalg/norms.hpp"
#include "src/util/rng.hpp"
#include "tests/helpers.hpp"

namespace mocos::sparse {
namespace {

linalg::Matrix random_sparse_dense(std::size_t n, double density,
                                   util::Rng& rng) {
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng.uniform() < density) m(i, j) = rng.uniform(-2.0, 2.0);
  return m;
}

TEST(SparseMatrix, FromTripletsSortsSumsDuplicatesAndDropsZeroSums) {
  // Unsorted input with a duplicate pair and a pair that cancels exactly.
  const SparseMatrix a = SparseMatrix::from_triplets(
      3, 3,
      {{2, 1, 4.0}, {0, 2, 1.5}, {0, 0, 1.0}, {0, 2, 0.5}, {1, 1, 3.0},
       {1, 1, -3.0}});
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_EQ(a.nnz(), 3u);  // (0,0), (0,2) summed, (2,1); (1,1) cancelled
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
  // CSR invariants: offsets non-decreasing, columns strictly increasing.
  ASSERT_EQ(a.row_offsets().size(), 4u);
  EXPECT_EQ(a.row_offsets().back(), a.nnz());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t k = a.row_offsets()[i] + 1; k < a.row_offsets()[i + 1];
         ++k)
      EXPECT_LT(a.col_indices()[k - 1], a.col_indices()[k]);
  }
}

TEST(SparseMatrix, FromTripletsRejectsBadInput) {
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{0, 2, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      SparseMatrix::from_triplets(
          2, 2, {{0, 0, std::numeric_limits<double>::quiet_NaN()}}),
      std::invalid_argument);
}

TEST(SparseMatrix, DenseRoundTripIsExact) {
  util::Rng rng(11);
  const linalg::Matrix m = random_sparse_dense(17, 0.2, rng);
  const SparseMatrix sp = SparseMatrix::from_dense(m);
  const linalg::Matrix back = sp.to_dense();
  ASSERT_EQ(back.rows(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_EQ(back(i, j), m(i, j)) << i << "," << j;
}

TEST(SparseMatrix, DensityCountsStoredEntries) {
  const SparseMatrix a =
      SparseMatrix::from_triplets(4, 4, {{0, 0, 1.0}, {3, 3, 2.0}});
  EXPECT_DOUBLE_EQ(a.density(), 2.0 / 16.0);
  EXPECT_DOUBLE_EQ(SparseMatrix().density(), 0.0);
}

TEST(SparseMatrix, MatvecMatchesDense) {
  util::Rng rng(23);
  const linalg::Matrix m = random_sparse_dense(31, 0.15, rng);
  const SparseMatrix sp = SparseMatrix::from_dense(m);
  linalg::Vector x(31);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);

  const linalg::Vector y = sp.matvec(x);
  const linalg::Vector yt = sp.transpose_matvec(x);
  for (std::size_t i = 0; i < 31; ++i) {
    double dense = 0.0, dense_t = 0.0;
    for (std::size_t j = 0; j < 31; ++j) {
      dense += m(i, j) * x[j];
      dense_t += m(j, i) * x[j];
    }
    EXPECT_NEAR(y[i], dense, 1e-13);
    EXPECT_NEAR(yt[i], dense_t, 1e-13);
  }
}

TEST(SparseMatrix, TransposedMatchesDenseTranspose) {
  util::Rng rng(37);
  const linalg::Matrix m = random_sparse_dense(12, 0.3, rng);
  const SparseMatrix t = SparseMatrix::from_dense(m).transposed();
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j)
      EXPECT_EQ(t.at(j, i), m(i, j));
}

TEST(SparseMatrix, AtReturnsZeroForMissingEntries) {
  const SparseMatrix a = SparseMatrix::from_triplets(3, 3, {{1, 2, 5.0}});
  EXPECT_DOUBLE_EQ(a.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 0.0);
}

}  // namespace
}  // namespace mocos::sparse
