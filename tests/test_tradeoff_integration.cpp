// The paper's headline physical claims (§VI-B): reducing the exposure weight
// β lets the coverage profile approach the target (ΔC decreases) while the
// mean exposure Ē grows — and the chain moves less (energy trend, §VII).

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/optimizer.hpp"
#include "src/markov/entropy.hpp"
#include "tests/helpers.hpp"

namespace mocos::core {
namespace {

OptimizationOutcome optimize(int topology, double alpha, double beta,
                             std::size_t iters = 800,
                             std::uint64_t seed = 5) {
  const Problem problem = test::paper_problem(topology, alpha, beta);
  OptimizerOptions opts;
  opts.algorithm = Algorithm::kPerturbed;
  opts.max_iterations = iters;
  opts.seed = seed;
  opts.stall_limit = 200;
  opts.keep_trace = false;
  return CoverageOptimizer(problem, opts).run();
}

TEST(Tradeoff, LowerBetaReducesDeltaC) {
  const auto heavy = optimize(3, 1.0, 1.0);
  const auto light = optimize(3, 1.0, 1e-6);
  EXPECT_LT(light.metrics.delta_c, heavy.metrics.delta_c);
}

TEST(Tradeoff, LowerBetaIncreasesExposure) {
  const auto heavy = optimize(3, 1.0, 1.0);
  const auto light = optimize(3, 1.0, 1e-6);
  EXPECT_GT(light.metrics.e_bar, heavy.metrics.e_bar);
}

TEST(Tradeoff, AlphaOnlyDrivesSharesTowardTargets) {
  // α=1, β≈0 on Topology 3: shares should approach (.4,.1,.1,.4) in shape:
  // edge PoIs get clearly more coverage than middle PoIs.
  const auto res = optimize(3, 1.0, 0.0, 1200);
  const auto& c = res.metrics.c_share;
  EXPECT_GT(c[0], c[1]);
  EXPECT_GT(c[3], c[2]);
  // Relative shape: normalized shares close to the targets' shape.
  const double total = c[0] + c[1] + c[2] + c[3];
  EXPECT_NEAR(c[0] / total, 0.4, 0.08);
  EXPECT_NEAR(c[1] / total, 0.1, 0.08);
}

TEST(Tradeoff, BetaOnlySolutionIgnoresTargets) {
  // α=0: nothing pulls the shares toward Φ; the optimizer minimizes
  // exposure instead, so the uniform-ish solution has roughly equal
  // exposure across PoIs of the symmetric Topology 1.
  const auto res = optimize(1, 0.0, 1.0);
  const auto& e = res.metrics.exposure;
  const double emax = *std::max_element(e.begin(), e.end());
  const double emin = *std::min_element(e.begin(), e.end());
  EXPECT_LT(emax - emin, 0.35 * emax);
}

TEST(Tradeoff, EnergyTermReducesMovement) {
  // Adding the §VII energy objective should reduce expected travel distance.
  const Problem base = test::paper_problem(1, 1.0, 1e-4);
  Weights w_energy;
  w_energy.alpha = 1.0;
  w_energy.beta = 1e-4;
  w_energy.energy_gamma = 10.0;
  const Problem with_energy(geometry::paper_topology(1), Physics{}, w_energy);

  OptimizerOptions opts;
  opts.max_iterations = 600;
  opts.stall_limit = 200;
  opts.keep_trace = false;
  const auto res_base = CoverageOptimizer(base, opts).run();
  const auto res_energy = CoverageOptimizer(with_energy, opts).run();

  auto expected_distance = [](const Problem& pr,
                              const markov::TransitionMatrix& p) {
    const auto chain = markov::analyze_chain(p);
    double d = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
      for (std::size_t j = 0; j < p.size(); ++j)
        d += chain.pi[i] * chain.p(i, j) * pr.tensors().distances()(i, j);
    return d;
  };
  EXPECT_LT(expected_distance(with_energy, res_energy.p),
            expected_distance(base, res_base.p));
}

TEST(Tradeoff, EntropyTermRaisesEntropy) {
  Weights w_plain;
  w_plain.alpha = 1.0;
  w_plain.beta = 0.0;
  const Problem plain(geometry::paper_topology(2), Physics{}, w_plain);

  Weights w_entropy = w_plain;
  w_entropy.entropy_weight = 0.05;
  const Problem with_h(geometry::paper_topology(2), Physics{}, w_entropy);

  OptimizerOptions opts;
  opts.max_iterations = 600;
  opts.stall_limit = 200;
  opts.keep_trace = false;
  const auto res_plain = CoverageOptimizer(plain, opts).run();
  const auto res_h = CoverageOptimizer(with_h, opts).run();

  EXPECT_GT(markov::entropy_rate(res_h.p), markov::entropy_rate(res_plain.p));
}

}  // namespace
}  // namespace mocos::core
