#include "src/partition/block_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "src/core/optimizer.hpp"
#include "src/descent/initializers.hpp"
#include "src/geometry/city_topology.hpp"
#include "src/linalg/norms.hpp"
#include "src/markov/incremental.hpp"
#include "src/markov/sparse_mode.hpp"
#include "src/markov/stationary.hpp"
#include "src/util/rng.hpp"
#include "tests/helpers.hpp"

namespace mocos {
namespace {

/// Restores kAuto on scope exit so a failing test cannot leak a forced mode
/// into the rest of the suite.
struct ScopedSparseMode {
  explicit ScopedSparseMode(markov::SparseMode mode) {
    markov::force_sparse_mode(mode);
  }
  ~ScopedSparseMode() { markov::force_sparse_mode(markov::SparseMode::kAuto); }
};

/// Weakly-coupled city fixture: uniform transitions over the radius-2
/// neighbourhoods of a jittered grid (4-connected at minimum, so ergodic).
markov::TransitionMatrix city_chain(std::size_t n, std::uint64_t seed) {
  geometry::CityConfig cfg;
  cfg.count = n;
  cfg.seed = seed;
  const auto topo = geometry::city_topology(cfg);
  return descent::support_uniform_start(geometry::radius_neighbors(topo, 2.0));
}

double max_abs_gap(const linalg::Vector& a, const linalg::Vector& b) {
  double gap = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    gap = std::max(gap, std::abs(a[i] - b[i]));
  return gap;
}

double max_rel_gap(const linalg::Matrix& a, const linalg::Matrix& b) {
  double gap = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      gap = std::max(gap, std::abs(a(i, j) - b(i, j)) /
                              std::max(1.0, std::abs(b(i, j))));
  return gap;
}

TEST(CityTopology, DeterministicSeparatedAndSeeded) {
  geometry::CityConfig cfg;
  cfg.count = 100;
  cfg.seed = 42;
  const auto a = geometry::city_topology(cfg);
  const auto b = geometry::city_topology(cfg);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.position(i).x, b.position(i).x);
    EXPECT_EQ(a.position(i).y, b.position(i).y);
    EXPECT_EQ(a.target(i), b.target(i));
  }
  // The jitter cap guarantees >= 0.3 * spacing pairwise separation.
  EXPECT_GE(a.min_separation(), 0.3);

  cfg.seed = 43;
  const auto c = geometry::city_topology(cfg);
  EXPECT_NE(a.position(0).x, c.position(0).x);
}

TEST(CityTopology, RadiusNeighborsMatchBruteForce) {
  geometry::CityConfig cfg;
  cfg.count = 60;
  cfg.seed = 7;
  const auto topo = geometry::city_topology(cfg);
  for (const double radius : {0.8, 1.7, 3.2}) {
    const auto fast = geometry::radius_neighbors(topo, radius);
    ASSERT_EQ(fast.size(), topo.size());
    for (std::size_t i = 0; i < topo.size(); ++i) {
      std::vector<std::size_t> brute;
      for (std::size_t j = 0; j < topo.size(); ++j)
        if (topo.distance(i, j) <= radius) brute.push_back(j);
      EXPECT_EQ(fast[i], brute) << "PoI " << i << " radius " << radius;
    }
  }
}

TEST(BlockStationary, MatchesDenseOnCityChain) {
  const auto p = city_chain(196, 1);
  const auto sp = sparse::SparseMatrix::from_dense(p.matrix());
  const auto blocks = partition::structural_blocks(sp, {});
  partition::SparseSolveStats stats;
  const auto pi = partition::try_block_stationary(sp, blocks, {}, {}, &stats);
  ASSERT_TRUE(pi.ok()) << pi.status().message();
  const linalg::Vector ref = markov::stationary_distribution(p);
  EXPECT_LE(max_abs_gap(*pi, ref), 1e-10);
  EXPECT_GE(stats.blocks, 2u);
  EXPECT_GT(stats.ad_sweeps, 0u);
  EXPECT_LE(stats.ad_residual, 1e-12);
}

TEST(SparseAnalysis, PiAndPassageTimesMatchDense) {
  const auto p = city_chain(196, 2);
  partition::SparseSolveStats stats;
  const auto sparse_chain =
      partition::try_sparse_analyze_chain(p, {}, {}, &stats);
  ASSERT_TRUE(sparse_chain.ok()) << sparse_chain.status().message();
  const markov::ChainAnalysis dense = markov::analyze_chain(p);

  // The acceptance contract: pi and R agree with the dense pipeline to 1e-8
  // on weakly-coupled fixtures.
  EXPECT_LE(max_abs_gap(sparse_chain->pi, dense.pi), 1e-8);
  EXPECT_LE(max_rel_gap(sparse_chain->r, dense.r), 1e-8);
  EXPECT_LE(max_rel_gap(sparse_chain->z, dense.z), 1e-8);
  EXPECT_LE(stats.pi_gap, 1e-8);
  EXPECT_TRUE(stats.used_banded || stats.used_bicgstab);
}

TEST(SparseAnalysis, BitIdenticalForAnyJobCount) {
  const auto p = city_chain(144, 3);
  const runtime::ExecutionContext serial(1);
  const runtime::ExecutionContext parallel(4);
  const auto a = partition::try_sparse_analyze_chain(p, {}, serial);
  const auto b = partition::try_sparse_analyze_chain(p, {}, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t i = 0; i < a->pi.size(); ++i)
    EXPECT_EQ(a->pi[i], b->pi[i]);
  for (std::size_t i = 0; i < 144; ++i)
    for (std::size_t j = 0; j < 144; ++j) {
      EXPECT_EQ(a->z(i, j), b->z(i, j));
      EXPECT_EQ(a->r(i, j), b->r(i, j));
    }
}

TEST(SparseAnalysis, FullyCoupledChainStillMatchesDense) {
  // A dense random chain has no weak coupling to cut: the block solver falls
  // back internally (power-iteration cross-check) or the dispatcher falls
  // through to dense — either way the answer must match the dense pipeline.
  ScopedSparseMode forced(markov::SparseMode::kOn);
  util::Rng rng(31);
  const auto p = test::random_positive_chain(24, rng);
  const auto chain = markov::try_analyze_chain(p);
  ASSERT_TRUE(chain.ok()) << chain.status().message();
  markov::force_sparse_mode(markov::SparseMode::kOff);
  const auto dense = markov::try_analyze_chain(p);
  ASSERT_TRUE(dense.ok());
  EXPECT_LE(max_abs_gap(chain->pi, dense->pi), 1e-8);
  EXPECT_LE(max_rel_gap(chain->r, dense->r), 1e-8);
}

TEST(SparseMode, AutoGateRespectsSizeAndDensity) {
  // Small chains never take the sparse path under kAuto.
  EXPECT_FALSE(markov::sparse_path_enabled(test::chain3().matrix()));
  // A large sparse chain does...
  const auto big = city_chain(256, 4);
  EXPECT_TRUE(markov::sparse_path_enabled(big.matrix()));
  // ...but a large dense chain does not (density above the cutoff).
  util::Rng rng(5);
  const auto dense = test::random_positive_chain(200, rng);
  EXPECT_FALSE(markov::sparse_path_enabled(dense.matrix()));

  {
    ScopedSparseMode off(markov::SparseMode::kOff);
    EXPECT_FALSE(markov::sparse_path_enabled(big.matrix()));
  }
  {
    ScopedSparseMode on(markov::SparseMode::kOn);
    EXPECT_TRUE(markov::sparse_path_enabled(big.matrix()));
    // Forced mode still refuses tiny chains (below the M >= 8 floor).
    EXPECT_FALSE(markov::sparse_path_enabled(test::chain2(0.3, 0.4).matrix()));
    // The environment escape hatch wins over the forced mode.
    ::setenv("MOCOS_NO_SPARSE", "1", 1);
    EXPECT_TRUE(markov::sparse_globally_disabled());
    EXPECT_FALSE(markov::sparse_path_enabled(big.matrix()));
    ::unsetenv("MOCOS_NO_SPARSE");
    EXPECT_FALSE(markov::sparse_globally_disabled());
  }
}

TEST(SparseMode, AutoGatePinnedExactlyAtItsBoundaries) {
  // Regression pin on the documented kAuto contract — M >= 192 AND
  // density <= 0.25, both comparisons inclusive. A drift in either constant
  // or a <-vs-<= slip silently reroutes city-scale maps between pipelines;
  // this test fails loudly instead.
  ASSERT_EQ(markov::kSparseAutoMinSize, 192u);
  ASSERT_EQ(markov::kSparseAutoMaxDensity, 0.25);

  // Identical ring structure (self + both neighbours, density 3/M << 0.25)
  // on either side of the size cutoff: 191 stays dense, 192 goes sparse.
  const auto ring = [](std::size_t n) {
    linalg::Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      m(i, i) = 0.5;
      m(i, (i + 1) % n) = 0.25;
      m(i, (i + n - 1) % n) = 0.25;
    }
    return m;
  };
  EXPECT_FALSE(markov::sparse_path_enabled(ring(191)));
  EXPECT_TRUE(markov::sparse_path_enabled(ring(192)));

  // Density boundary at M = 192: exactly 25% nonzeros still qualifies; one
  // extra nonzero tips the chain back to the dense pipeline.
  const std::size_t n = markov::kSparseAutoMinSize;
  const std::size_t row_quota = n / 4;  // 48 nonzeros/row == exactly 25%
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < row_quota; ++k)
      m(i, (i + k) % n) = 1.0 / static_cast<double>(row_quota);
  EXPECT_TRUE(markov::sparse_path_enabled(m));
  m(0, row_quota) = 1e-12;  // 25% + one entry
  EXPECT_FALSE(markov::sparse_path_enabled(m));
}

TEST(SparseIncremental, CacheParityHoldsAtBlockLevel) {
  // The incremental cache's parity contract, at block level: a sparse full
  // rebuild followed by Sherman-Morrison row updates must agree with dense
  // from-scratch analyses to 1e-10.
  ScopedSparseMode forced(markov::SparseMode::kOn);
  const auto start = city_chain(64, 6);

  markov::ChainSolveCache cache;
  ASSERT_TRUE(cache.reset(start).is_ok());
  EXPECT_EQ(cache.stats().sparse_full_solves, 1u);
  EXPECT_FALSE(cache.lu().has_value());  // G came from the sparse ladder

  // Walk a few support-preserving row perturbations.
  linalg::Matrix m = start.matrix();
  util::Rng rng(77);
  for (int step = 0; step < 5; ++step) {
    const std::size_t row = static_cast<std::size_t>(
        rng.uniform(0.0, static_cast<double>(m.rows()) - 0.001));
    linalg::Vector new_row(m.cols(), 0.0);
    double sum = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      // mocos-lint: allow(float-eq) — structural zeros stay zero
      if (m(row, j) == 0.0) continue;
      new_row[j] = m(row, j) * (0.5 + rng.uniform());
      sum += new_row[j];
    }
    for (std::size_t j = 0; j < m.cols(); ++j) new_row[j] /= sum;
    ASSERT_TRUE(cache.update_row(row, new_row).is_ok());
    for (std::size_t j = 0; j < m.cols(); ++j) m(row, j) = new_row[j];

    markov::force_sparse_mode(markov::SparseMode::kOff);
    const markov::ChainAnalysis ref =
        markov::analyze_chain(markov::TransitionMatrix(m));
    markov::force_sparse_mode(markov::SparseMode::kOn);

    const markov::ChainAnalysis& got = cache.analysis();
    EXPECT_LE(max_abs_gap(got.pi, ref.pi), 1e-10) << "step " << step;
    EXPECT_LE(max_rel_gap(got.z, ref.z), 1e-10) << "step " << step;
    EXPECT_LE(max_rel_gap(got.r, ref.r), 1e-10) << "step " << step;
  }
  EXPECT_GE(cache.stats().incremental_row_updates, 1u);
}

TEST(SparseDescent, SupportRestrictedProblemKeepsZerosEndToEnd) {
  geometry::CityConfig cfg;
  cfg.count = 49;
  cfg.seed = 9;
  core::Physics physics;
  physics.sensing_radius = 0.1;  // city min separation is 0.3
  physics.support_radius = 2.0;
  core::Weights w;
  const core::Problem problem(geometry::city_topology(cfg), physics, w);
  ASSERT_TRUE(problem.tensors().sparse());
  ASSERT_EQ(problem.support().size(), 49u);

  core::OptimizerOptions opts;
  opts.algorithm = core::Algorithm::kAdaptive;
  opts.max_iterations = 3;
  const core::CoverageOptimizer optimizer(problem, opts);
  const core::OptimizationOutcome outcome = optimizer.run();

  // The descent stayed on the support: structural zeros survived every
  // projection, step, clamp and renormalization exactly.
  const auto& support = problem.support();
  for (std::size_t i = 0; i < 49; ++i) {
    std::size_t s = 0;
    for (std::size_t j = 0; j < 49; ++j) {
      const bool on_support = s < support[i].size() && support[i][s] == j;
      if (on_support) {
        EXPECT_GT(outcome.p(i, j), 0.0);
        ++s;
      } else {
        EXPECT_EQ(outcome.p(i, j), 0.0);
      }
    }
  }
  EXPECT_TRUE(std::isfinite(outcome.penalized_cost));
  EXPECT_TRUE(std::isfinite(outcome.report_cost));
  EXPECT_TRUE(std::isfinite(outcome.metrics.delta_c));
}

}  // namespace
}  // namespace mocos
