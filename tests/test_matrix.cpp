#include "src/linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace mocos::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.is_square());
  EXPECT_EQ(m(1, 2), 1.5);
  m(1, 2) = 7.0;
  EXPECT_EQ(m(1, 2), 7.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_TRUE(m.is_square());
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, OutOfRangeAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(m(0, 2), std::out_of_range);
}

TEST(Matrix, IdentityOnesDiag) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
  const Matrix j = Matrix::ones(2);
  EXPECT_EQ(j(1, 0), 1.0);
  const Matrix d = Matrix::diag({2.0, 3.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, OuterProduct) {
  const Matrix w = Matrix::outer({1.0, 1.0, 1.0}, {0.2, 0.3, 0.5});
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(w(r, 0), 0.2);
    EXPECT_DOUBLE_EQ(w(r, 2), 0.5);
  }
}

TEST(Matrix, RowColDiagonal) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.row(1), (Vector{3.0, 4.0}));
  EXPECT_EQ(m.col(0), (Vector{1.0, 3.0}));
  EXPECT_EQ(m.diagonal(), (Vector{1.0, 4.0}));
}

TEST(Matrix, Transposed) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, AdditionSubtractionScaling) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ((a + b)(1, 1), 5.0);
  EXPECT_EQ((a - b)(0, 0), 0.0);
  EXPECT_EQ((a * 2.0)(0, 1), 4.0);
  EXPECT_EQ((0.5 * a)(1, 0), 1.5);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(b * b, std::invalid_argument);  // inner dims 3 vs 2
  Matrix c(3, 2);
  EXPECT_NO_THROW(b * c);
  EXPECT_NO_THROW(a * b);
}

TEST(Matrix, Product) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 2.0);
  EXPECT_EQ(c(0, 1), 1.0);
  EXPECT_EQ(c(1, 0), 4.0);
  EXPECT_EQ(c(1, 1), 3.0);
}

TEST(Matrix, ProductWithIdentityIsNoop) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(VectorOps, MulMatrixVector) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(mul(a, {1.0, 1.0}), (Vector{3.0, 7.0}));
  EXPECT_EQ(mul({1.0, 1.0}, a), (Vector{4.0, 6.0}));
}

TEST(VectorOps, MulShapeMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(mul(a, Vector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(mul(Vector{1.0, 2.0, 3.0}, a), std::invalid_argument);
}

TEST(VectorOps, DotAndArithmetic) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_EQ(vadd({1.0, 2.0}, {1.0, 1.0}), (Vector{2.0, 3.0}));
  EXPECT_EQ(vsub({1.0, 2.0}, {1.0, 1.0}), (Vector{0.0, 1.0}));
  EXPECT_EQ(vscale({1.0, 2.0}, 3.0), (Vector{3.0, 6.0}));
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOps, FrobeniusDot) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(frobenius_dot(a, b), 5.0);
}

TEST(VectorOps, ApproxEqual) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = a;
  b(0, 0) += 1e-10;
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
  EXPECT_FALSE(approx_equal(a, b, 1e-11));
  EXPECT_FALSE(approx_equal(a, Matrix(2, 3), 1.0));
  EXPECT_TRUE(approx_equal(Vector{1.0}, Vector{1.0 + 1e-12}, 1e-9));
  EXPECT_FALSE(approx_equal(Vector{1.0}, Vector{1.0, 2.0}, 1e9));
}

}  // namespace
}  // namespace mocos::linalg
