#include "src/geometry/random_topology.hpp"

#include <gtest/gtest.h>

namespace mocos::geometry {
namespace {

TEST(RandomTopology, RespectsSeparationAndCount) {
  util::Rng rng(1);
  RandomTopologyConfig cfg;
  cfg.num_pois = 8;
  cfg.min_separation = 1.5;
  const auto topo = random_topology(cfg, rng);
  EXPECT_EQ(topo.size(), 8u);
  EXPECT_GE(topo.min_separation(), 1.5);
}

TEST(RandomTopology, TargetsSumToOne) {
  util::Rng rng(2);
  const auto topo = random_topology({}, rng);
  double s = 0.0;
  for (double t : topo.targets()) {
    EXPECT_GT(t, 0.0);
    s += t;
  }
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(RandomTopology, DeterministicGivenRngState) {
  util::Rng a(7), b(7);
  const auto ta = random_topology({}, a);
  const auto tb = random_topology({}, b);
  for (std::size_t i = 0; i < ta.size(); ++i)
    EXPECT_EQ(ta.position(i), tb.position(i));
}

TEST(RandomTopology, FailsLoudlyWhenInfeasible) {
  util::Rng rng(3);
  RandomTopologyConfig cfg;
  cfg.num_pois = 50;
  cfg.extent = 2.0;
  cfg.min_separation = 1.0;  // cannot pack 50 PoIs at separation 1 in 2x2
  cfg.max_attempts = 2000;
  EXPECT_THROW(random_topology(cfg, rng), std::runtime_error);
}

TEST(RandomTopology, ValidatesConfig) {
  util::Rng rng(4);
  RandomTopologyConfig bad;
  bad.num_pois = 1;
  EXPECT_THROW(random_topology(bad, rng), std::invalid_argument);
  RandomTopologyConfig bad2;
  bad2.extent = 0.0;
  EXPECT_THROW(random_topology(bad2, rng), std::invalid_argument);
  RandomTopologyConfig bad3;
  bad3.min_weight = 0.0;
  EXPECT_THROW(random_topology(bad3, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mocos::geometry
