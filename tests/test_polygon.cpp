#include "src/geometry/polygon.hpp"

#include <gtest/gtest.h>

namespace mocos::geometry {
namespace {

Polygon unit_square() {
  return Polygon::rectangle({0.0, 0.0}, {1.0, 1.0});
}

TEST(Orientation, SignConvention) {
  EXPECT_GT(orientation({0, 0}, {1, 0}, {0, 1}), 0.0);  // CCW
  EXPECT_LT(orientation({0, 0}, {0, 1}, {1, 0}), 0.0);  // CW
  EXPECT_DOUBLE_EQ(orientation({0, 0}, {1, 1}, {2, 2}), 0.0);
}

TEST(SegmentsIntersect, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
}

TEST(SegmentsIntersect, DisjointSegments) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(SegmentsIntersect, SharedEndpointDoesNotCount) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{1, 0}, {2, 1}}));
}

TEST(SegmentsIntersect, CollinearOverlapCounts) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}));
}

TEST(SegmentsIntersect, TTouchMidpointCounts) {
  // Endpoint of one segment strictly interior to the other.
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 0}}, {{1, 0}, {1, 1}}));
}

TEST(Polygon, ValidatesInput) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 0}}), std::invalid_argument);
  EXPECT_THROW(Polygon({{0, 0}, {1, 0}, {0, 0}}), std::invalid_argument);
  EXPECT_THROW(Polygon::rectangle({1, 1}, {0, 0}), std::invalid_argument);
}

TEST(Polygon, ContainsInteriorNotBoundary) {
  const Polygon sq = unit_square();
  EXPECT_TRUE(sq.contains({0.5, 0.5}));
  EXPECT_FALSE(sq.contains({1.5, 0.5}));
  EXPECT_FALSE(sq.contains({0.0, 0.5}));   // boundary
  EXPECT_FALSE(sq.contains({0.0, 0.0}));   // corner
  EXPECT_FALSE(sq.contains({-0.1, -0.1}));
}

TEST(Polygon, ContainsWorksForTriangle) {
  const Polygon tri({{0, 0}, {4, 0}, {0, 4}});
  EXPECT_TRUE(tri.contains({1.0, 1.0}));
  EXPECT_FALSE(tri.contains({3.0, 3.0}));
}

TEST(Polygon, CentroidOfSquare) {
  EXPECT_EQ(unit_square().centroid(), (Vec2{0.5, 0.5}));
}

TEST(Polygon, BlocksCrossingSegment) {
  const Polygon sq = unit_square();
  EXPECT_TRUE(sq.blocks({{-1.0, 0.5}, {2.0, 0.5}}));   // straight through
  EXPECT_TRUE(sq.blocks({{0.5, 0.5}, {2.0, 2.0}}));    // starts inside
  EXPECT_TRUE(sq.blocks({{0.2, 0.2}, {0.8, 0.8}}));    // fully inside
}

TEST(Polygon, DoesNotBlockClearSegments) {
  const Polygon sq = unit_square();
  EXPECT_FALSE(sq.blocks({{-1.0, 2.0}, {2.0, 2.0}}));  // passes above
  EXPECT_FALSE(sq.blocks({{-1.0, -1.0}, {-1.0, 2.0}}));
}

TEST(Polygon, InflatedVerticesMoveOutward) {
  const Polygon sq = unit_square();
  const auto inflated = sq.inflated_vertices(0.1);
  ASSERT_EQ(inflated.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(sq.contains(inflated[i]));
    EXPECT_GT(distance(inflated[i], sq.centroid()),
              distance(sq.vertices()[i], sq.centroid()));
  }
  EXPECT_THROW(sq.inflated_vertices(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mocos::geometry
