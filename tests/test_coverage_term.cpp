#include "src/sensing/travel_model.hpp"
#include "src/cost/coverage_term.hpp"

#include <gtest/gtest.h>

#include "src/cost/metrics.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "tests/helpers.hpp"

namespace mocos::cost {
namespace {

sensing::TravelModel model3() {
  return sensing::TravelModel(geometry::paper_topology(3), 1.0, 1.0, 0.25);
}

TEST(CoverageTerm, ZeroWhenCoverageMatchesTarget) {
  // Uniform targets on a symmetric 2x2 grid with the uniform chain give a
  // small but generally nonzero deviation; instead test the analytic zero:
  // targets equal to the achieved shares => g_i ≈ 0 by construction.
  sensing::TravelModel model(geometry::paper_topology(1), 1.0, 1.0, 0.25);
  sensing::CoverageTensors tensors(model);
  const auto p = markov::TransitionMatrix::uniform(4);
  const auto chain = markov::analyze_chain(p);
  const auto shares = coverage_shares(chain, tensors);
  CoverageDeviationTerm term(tensors, shares, 1.0);
  // g_i uses per-transition scaling, so exact zero only when the shares are
  // plugged back in as targets.
  EXPECT_NEAR(term.value(chain), 0.0, 1e-16);
}

TEST(CoverageTerm, PositiveWhenOffTarget) {
  sensing::TravelModel model = model3();
  sensing::CoverageTensors tensors(model);
  CoverageDeviationTerm term(tensors, model.topology().targets(), 1.0);
  const auto chain =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  EXPECT_GT(term.value(chain), 0.0);
}

TEST(CoverageTerm, ScalesLinearlyWithAlpha) {
  sensing::TravelModel model = model3();
  sensing::CoverageTensors tensors(model);
  const auto targets = model.topology().targets();
  CoverageDeviationTerm t1(tensors, targets, 1.0);
  CoverageDeviationTerm t5(tensors, targets, 5.0);
  const auto chain =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  EXPECT_NEAR(t5.value(chain), 5.0 * t1.value(chain), 1e-14);
}

TEST(CoverageTerm, DiscrepanciesMatchDefinition) {
  sensing::TravelModel model = model3();
  sensing::CoverageTensors tensors(model);
  const auto targets = model.topology().targets();
  CoverageDeviationTerm term(tensors, targets, 1.0);
  const auto p = markov::TransitionMatrix::uniform(4);
  const auto chain = markov::analyze_chain(p);
  const auto kernels = tensors.deviation_kernels(targets);
  const auto g = term.discrepancies(chain);
  for (std::size_t i = 0; i < 4; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t k = 0; k < 4; ++k)
        expect += chain.pi[j] * chain.p(j, k) * kernels[i](j, k);
    EXPECT_NEAR(g[i], expect, 1e-14);
  }
}

TEST(CoverageTerm, ValueIsHalfWeightedSquares) {
  sensing::TravelModel model = model3();
  sensing::CoverageTensors tensors(model);
  CoverageDeviationTerm term(tensors, model.topology().targets(), 2.0);
  const auto chain =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  const auto g = term.discrepancies(chain);
  double expect = 0.0;
  for (double gi : g) expect += 0.5 * 2.0 * gi * gi;
  EXPECT_NEAR(term.value(chain), expect, 1e-15);
}

TEST(CoverageTerm, PartialsOnlyTouchPiAndP) {
  sensing::TravelModel model = model3();
  sensing::CoverageTensors tensors(model);
  CoverageDeviationTerm term(tensors, model.topology().targets(), 1.0);
  util::Rng rng(9);
  const auto chain =
      markov::analyze_chain(test::random_positive_chain(4, rng));
  Partials p(4);
  term.accumulate_partials(chain, p);
  EXPECT_DOUBLE_EQ(linalg::frobenius_dot(p.du_dz, p.du_dz), 0.0);
  double pi_mag = 0.0;
  for (double x : p.du_dpi) pi_mag += x * x;
  EXPECT_GT(pi_mag, 0.0);
}

TEST(CoverageTerm, RejectsBadWeights) {
  sensing::TravelModel model = model3();
  sensing::CoverageTensors tensors(model);
  EXPECT_THROW(CoverageDeviationTerm(tensors, model.topology().targets(),
                                     std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      CoverageDeviationTerm(tensors, model.topology().targets(), -1.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace mocos::cost
