#include "src/sim/trajectory.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/geometry/paper_topologies.hpp"
#include "src/sensing/routed_travel_model.hpp"
#include "src/sensing/travel_model.hpp"
#include "tests/helpers.hpp"

namespace mocos::sim {
namespace {

sensing::TravelModel model1(double speed = 1.0) {
  return sensing::TravelModel(geometry::paper_topology(1), speed, 1.0, 0.25);
}

TEST(Trajectory, ValidatesInput) {
  EXPECT_THROW(Trajectory({}), std::invalid_argument);
  EXPECT_THROW(Trajectory({{1.0, {0, 0}}, {0.5, {1, 1}}}),
               std::invalid_argument);
}

TEST(Trajectory, InterpolatesLinearly) {
  Trajectory t({{0.0, {0.0, 0.0}}, {2.0, {4.0, 0.0}}, {3.0, {4.0, 0.0}}});
  EXPECT_EQ(t.position_at(1.0), (geometry::Vec2{2.0, 0.0}));
  EXPECT_EQ(t.position_at(2.5), (geometry::Vec2{4.0, 0.0}));  // pause holds
  EXPECT_EQ(t.position_at(-1.0), (geometry::Vec2{0.0, 0.0}));  // clamps
  EXPECT_EQ(t.position_at(9.0), (geometry::Vec2{4.0, 0.0}));
  EXPECT_DOUBLE_EQ(t.length(), 4.0);
}

TEST(RecordTrajectory, SpeedNeverExceedsModelSpeed) {
  const auto model = model1(1.5);
  util::Rng rng(3);
  const auto p = test::random_positive_chain(4, rng);
  const auto traj = record_trajectory(model, p, 200, rng);
  const auto& pts = traj.points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double dt = pts[i].t - pts[i - 1].t;
    const double dist = geometry::distance(pts[i - 1].pos, pts[i].pos);
    if (dt > 1e-12)
      EXPECT_LE(dist / dt, 1.5 + 1e-9) << "segment " << i;
    else
      EXPECT_NEAR(dist, 0.0, 1e-12);
  }
}

TEST(RecordTrajectory, EndTimeMatchesTransitionDurations) {
  // Deterministic alternating pair: total time = N * (travel + pause).
  auto topo = geometry::make_grid("pair", 1, 2, geometry::uniform_targets(2));
  sensing::TravelModel model(topo, 1.0, 1.0, 0.25);
  util::Rng rng(4);
  const auto p =
      markov::TransitionMatrix(linalg::Matrix{{0.0, 1.0}, {1.0, 0.0}});
  const auto traj = record_trajectory(model, p, 10, rng);
  EXPECT_NEAR(traj.end_time(), 10.0 * 2.0, 1e-12);
  EXPECT_NEAR(traj.length(), 10.0, 1e-12);  // 10 unit hops
}

TEST(RecordTrajectory, PositionsVisitOnlyPoIsAndRoutes) {
  // Sampled positions at pause ends must coincide with PoI locations.
  const auto model = model1();
  util::Rng rng(5);
  const auto traj =
      record_trajectory(model, markov::TransitionMatrix::uniform(4), 100, rng);
  std::size_t on_poi = 0;
  for (const auto& pt : traj.points()) {
    for (std::size_t i = 0; i < 4; ++i)
      if (geometry::distance(pt.pos, model.topology().position(i)) < 1e-9)
        ++on_poi;
  }
  // Departure + arrival + pause-end points all sit on PoIs for straight
  // routes; every recorded point qualifies.
  EXPECT_EQ(on_poi, traj.points().size());
}

TEST(RecordTrajectory, RoutedModelDetoursAroundObstacle) {
  geometry::Topology topo("pair", {{0.0, 0.0}, {4.0, 0.0}}, {0.5, 0.5});
  const auto wall = geometry::Polygon::rectangle({1.8, -1.0}, {2.2, 1.0});
  sensing::RoutedTravelModel model(topo, {wall}, 1.0, 1.0, 0.25, 0.05);
  util::Rng rng(6);
  const auto p =
      markov::TransitionMatrix(linalg::Matrix{{0.0, 1.0}, {1.0, 0.0}});
  const auto traj = record_trajectory(model, p, 4, rng);
  // Sample densely; no position may be inside the wall.
  for (double t = traj.start_time(); t <= traj.end_time(); t += 0.05)
    EXPECT_FALSE(wall.contains(traj.position_at(t))) << "t=" << t;
  // And the trajectory length shows the detour.
  EXPECT_GT(traj.length(), 4.0 * 4.0);
}

TEST(RecordTrajectory, CsvRoundTrip) {
  const auto model = model1();
  util::Rng rng(7);
  const auto traj =
      record_trajectory(model, markov::TransitionMatrix::uniform(4), 5, rng);
  const std::string path = testing::TempDir() + "/mocos_traj.csv";
  traj.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,x,y");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, traj.points().size());
  std::remove(path.c_str());
}

TEST(RecordTrajectory, ValidatesArguments) {
  const auto model = model1();
  util::Rng rng(8);
  EXPECT_THROW(
      record_trajectory(model, markov::TransitionMatrix::uniform(3), 5, rng),
      std::invalid_argument);
  EXPECT_THROW(
      record_trajectory(model, markov::TransitionMatrix::uniform(4), 0, rng),
      std::invalid_argument);
  EXPECT_THROW(record_trajectory(model, markov::TransitionMatrix::uniform(4),
                                 5, rng, 9),
               std::invalid_argument);
}

}  // namespace
}  // namespace mocos::sim
