#include "src/util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mocos::util {
namespace {

TEST(Split, BasicAndEdgeCases) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(" a , b ", ','), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split("1,,2", ','), (std::vector<std::string>{"1", "", "2"}));
  EXPECT_TRUE(split("", ',').empty());
  EXPECT_TRUE(split("   ", ',').empty());
  EXPECT_EQ(split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(ParseDouble, AcceptsNumbersRejectsJunk) {
  EXPECT_DOUBLE_EQ(parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e-3 "), -2e-3);
  EXPECT_THROW(parse_double(""), std::invalid_argument);
  EXPECT_THROW(parse_double("abc"), std::invalid_argument);
  EXPECT_THROW(parse_double("1.5x"), std::invalid_argument);
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Config, ParsesKeysAndValues) {
  const auto cfg = Config::parse_string(
      "a = 1\n"
      "# full comment line\n"
      "\n"
      "name = hello world   # trailing comment\n");
  EXPECT_EQ(cfg.size(), 2u);
  EXPECT_TRUE(cfg.has("a"));
  EXPECT_EQ(cfg.get_string("name", ""), "hello world");
  EXPECT_DOUBLE_EQ(cfg.get_double("a", 0.0), 1.0);
}

TEST(Config, LastValueWinsAndGetAllPreservesOrder) {
  const auto cfg = Config::parse_string(
      "x = 1\nobstacle = A\nx = 2\nobstacle = B\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("x", 0.0), 2.0);
  EXPECT_EQ(cfg.get_all("obstacle"), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(cfg.keys(), (std::vector<std::string>{"x", "obstacle"}));
}

TEST(Config, FallbacksWhenAbsent) {
  const auto cfg = Config::parse_string("a = 1\n");
  EXPECT_EQ(cfg.get_string("missing", "def"), "def");
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 3.5), 3.5);
  EXPECT_EQ(cfg.get_size("missing", 7u), 7u);
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_THROW(cfg.require_string("missing"), std::out_of_range);
}

TEST(Config, BooleanForms) {
  const auto cfg = Config::parse_string(
      "t1 = true\nt2 = YES\nt3 = 1\nf1 = false\nf2 = No\nf3 = 0\nbad = maybe\n");
  EXPECT_TRUE(cfg.get_bool("t1", false));
  EXPECT_TRUE(cfg.get_bool("t2", false));
  EXPECT_TRUE(cfg.get_bool("t3", false));
  EXPECT_FALSE(cfg.get_bool("f1", true));
  EXPECT_FALSE(cfg.get_bool("f2", true));
  EXPECT_FALSE(cfg.get_bool("f3", true));
  EXPECT_THROW(cfg.get_bool("bad", true), std::invalid_argument);
}

TEST(Config, SizeRejectsNegativeAndFractional) {
  const auto cfg = Config::parse_string("n = -3\nf = 2.5\nok = 42\n");
  EXPECT_THROW(cfg.get_size("n", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_size("f", 0), std::invalid_argument);
  EXPECT_EQ(cfg.get_size("ok", 0), 42u);
}

TEST(Config, SizeRejectsNonFiniteAndHugeValues) {
  // Fuzz regression (tools/fuzz/fuzz_config): these values parse as
  // doubles, and get_size used to cast them straight to size_t — undefined
  // behavior for anything outside the representable range, NaN included.
  // They must be rejected through the documented error taxonomy instead.
  const auto cfg = Config::parse_string(
      "huge = 1e300\n"
      "not_a_number = nan\n"
      "pos_inf = inf\n"
      "neg_inf = -inf\n"
      "above_exact = 9007199254740994\n"  // 2^53 + 2, past the exact bound
      "max_exact = 9007199254740992\n");  // 2^53, the last exact integer
  EXPECT_THROW(cfg.get_size("huge", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_size("not_a_number", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_size("pos_inf", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_size("neg_inf", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_size("above_exact", 0), std::invalid_argument);
  EXPECT_EQ(cfg.get_size("max_exact", 0), 9007199254740992u);
}

TEST(Config, MalformedLinesThrowWithLineNumber) {
  try {
    Config::parse_string("good = 1\nbad line without equals\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("<string>:2:"), std::string::npos);
  }
  EXPECT_THROW(Config::parse_string("= value\n"), std::invalid_argument);
}

TEST(Config, MalformedFileLineNamesPathAndLine) {
  const std::string path = testing::TempDir() + "/mocos_config_bad.conf";
  {
    std::ofstream out(path);
    out << "alpha = 1\n\n# comment\nthis line is broken\n";
  }
  try {
    Config::parse_file(path);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":4:"), std::string::npos) << what;
    EXPECT_NE(what.find("missing '='"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(Config, UnreadableFileNamesPathWithStructuredCode) {
  try {
    Config::parse_file("/nonexistent/file.conf");
    FAIL() << "expected throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidConfig);
    EXPECT_NE(std::string(e.what()).find("/nonexistent/file.conf"),
              std::string::npos);
  }
}

TEST(Config, ParseFileRoundTrip) {
  const std::string path = testing::TempDir() + "/mocos_config_test.conf";
  {
    std::ofstream out(path);
    out << "alpha = 2.5\nbeta = 0.1\n";
  }
  const auto cfg = Config::parse_file(path);
  EXPECT_DOUBLE_EQ(cfg.get_double("alpha", 0.0), 2.5);
  std::remove(path.c_str());
  EXPECT_THROW(Config::parse_file("/nonexistent/file.conf"),
               std::runtime_error);
}

}  // namespace
}  // namespace mocos::util
