#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/exposition.hpp"
#include "src/obs/phase_timer.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/execution_context.hpp"

namespace mocos {
namespace {

// --- Counter / Gauge / Histogram primitives --------------------------------

TEST(ObsCounter, AddsAndReads) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, UnsetUntilFirstWrite) {
  obs::Gauge g;
  EXPECT_FALSE(g.has_value());
  g.set(-2.5);
  EXPECT_TRUE(g.has_value());
  EXPECT_EQ(g.value(), -2.5);
}

TEST(ObsHistogram, BucketEdgesAreLowerInclusive) {
  // bounds {1, 10}: bucket 0 is x < 1, bucket 1 is 1 <= x < 10, bucket 2
  // (overflow) is x >= 10.
  obs::Histogram h({1.0, 10.0});
  h.observe(0.5);
  h.observe(1.0);
  h.observe(9.9);
  h.observe(10.0);
  h.observe(100.0);
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{1, 2, 2}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 121.4);
}

TEST(ObsHistogram, RejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, FoldWidensMinMaxAndAddsBuckets) {
  obs::Histogram a({1.0});
  a.observe(0.25);
  obs::Histogram b({1.0});
  b.observe(4.0);
  b.observe(8.0);
  a.fold(b.counts(), b.count(), b.sum(), b.min(), b.max());
  EXPECT_EQ(a.counts(), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 0.25);
  EXPECT_EQ(a.max(), 8.0);
  // Folding an empty histogram must not clobber min/max with zeros.
  obs::Histogram empty({1.0});
  a.fold(empty.counts(), empty.count(), empty.sum(), empty.min(), empty.max());
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 0.25);
  EXPECT_EQ(a.max(), 8.0);
  EXPECT_THROW(a.fold({1, 2, 3}, 6, 0.0, 0.0, 0.0), std::invalid_argument);
}

TEST(ObsDecadeBounds, OneEdgePerDecade) {
  const std::vector<double> b = obs::decade_bounds(-2, 1);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1e-2);
  EXPECT_DOUBLE_EQ(b[3], 10.0);
}

// --- Registry, snapshots, merge --------------------------------------------

TEST(ObsRegistry, SnapshotIsNameSortedAndSkipsUnsetGauges) {
  obs::MetricsRegistry reg;
  reg.counter("zeta").add(2);
  reg.counter("alpha").add(1);
  reg.gauge("set_me").set(3.5);
  reg.gauge("never_set");
  reg.histogram("h", {1.0}).observe(0.5);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  EXPECT_EQ(snap.counter_value("zeta"), 2u);
  EXPECT_EQ(snap.counter_value("missing"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "set_me");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(obs::MetricsSnapshot{}.empty());
}

TEST(ObsRegistry, MergeAddsCountersOverwritesGaugesFoldsHistograms) {
  obs::MetricsRegistry a;
  a.counter("c").add(1);
  a.gauge("g").set(1.0);
  a.histogram("h", {1.0}).observe(0.5);
  obs::MetricsRegistry b;
  b.counter("c").add(10);
  b.counter("only_b").add(7);
  b.gauge("g").set(2.0);
  b.histogram("h", {1.0}).observe(5.0);
  a.merge(b.snapshot());
  const obs::MetricsSnapshot snap = a.snapshot();
  EXPECT_EQ(snap.counter_value("c"), 11u);
  EXPECT_EQ(snap.counter_value("only_b"), 7u);
  EXPECT_EQ(snap.gauges[0].value, 2.0);
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_EQ(snap.histograms[0].min, 0.5);
  EXPECT_EQ(snap.histograms[0].max, 5.0);
}

TEST(ObsRegistry, MergeRejectsMismatchedHistogramBounds) {
  obs::MetricsRegistry a;
  a.histogram("h", {1.0}).observe(0.5);
  obs::MetricsRegistry b;
  b.histogram("h", {1.0, 2.0}).observe(0.5);
  EXPECT_THROW(a.merge(b.snapshot()), std::invalid_argument);
}

TEST(ObsSnapshot, WriteJsonIsDeterministic) {
  obs::MetricsRegistry reg;
  reg.counter("runs").add(3);
  reg.gauge("cost").set(0.5);
  reg.histogram("steps", {1.0}).observe(0.25);
  std::ostringstream out;
  reg.snapshot().write_json(out);
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"counters\": {\n    \"runs\": 3\n  },\n"
            "  \"gauges\": {\n    \"cost\": 0.5\n  },\n"
            "  \"histograms\": {\n"
            "    \"steps\": {\"bounds\": [1], \"counts\": [1, 0], "
            "\"count\": 1, \"sum\": 0.25, \"min\": 0.25, \"max\": 0.25, "
            "\"p50\": 0.25, \"p90\": 0.25, \"p99\": 0.25}\n"
            "  }\n}\n");
  std::ostringstream empty;
  obs::MetricsSnapshot{}.write_json(empty);
  EXPECT_EQ(empty.str(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

// --- Thread-local installation and call-site helpers ------------------------

TEST(ObsScopedMetrics, InstallsAndRestoresNested) {
  EXPECT_EQ(obs::current_metrics(), nullptr);
  // All helpers are silent no-ops with no registry installed.
  obs::count("ignored");
  obs::gauge_set("ignored", 1.0);
  obs::observe("ignored", {1.0}, 0.5);

  obs::MetricsRegistry outer;
  {
    obs::ScopedMetrics install_outer(&outer);
    EXPECT_EQ(obs::current_metrics(), &outer);
    obs::count("depth", 1);
    obs::MetricsRegistry inner;
    {
      obs::ScopedMetrics install_inner(&inner);
      EXPECT_EQ(obs::current_metrics(), &inner);
      obs::count("depth", 10);
    }
    EXPECT_EQ(obs::current_metrics(), &outer);
    EXPECT_EQ(inner.snapshot().counter_value("depth"), 10u);
  }
  EXPECT_EQ(obs::current_metrics(), nullptr);
  EXPECT_EQ(outer.snapshot().counter_value("depth"), 1u);
}

// --- The determinism contract through parallel_for --------------------------

std::string metrics_json_for_jobs(std::size_t jobs) {
  obs::MetricsRegistry reg;
  {
    obs::ScopedMetrics install(&reg);
    runtime::ExecutionContext ctx(jobs);
    runtime::parallel_for(ctx, 64, [](std::size_t i) {
      obs::count("work.items");
      obs::count("work.weighted", i);
      obs::gauge_set("work.last_index", static_cast<double>(i));
      // Sum association is shard-local then index-ordered, so the float
      // accumulation order is identical for every job count.
      obs::observe("work.value", obs::decade_bounds(-2, 2),
                   0.1 * static_cast<double>(i) + 0.01);
    });
  }
  std::ostringstream out;
  reg.snapshot().write_json(out);
  return out.str();
}

TEST(ObsParallelFor, MetricValuesAreJobsInvariant) {
  const std::string serial = metrics_json_for_jobs(1);
  EXPECT_EQ(serial, metrics_json_for_jobs(2));
  EXPECT_EQ(serial, metrics_json_for_jobs(8));
  // Spot-check the merged values themselves.
  EXPECT_NE(serial.find("\"work.items\": 64"), std::string::npos);
  EXPECT_NE(serial.find("\"work.weighted\": 2016"), std::string::npos);
  EXPECT_NE(serial.find("\"work.last_index\": 63"), std::string::npos);
  EXPECT_NE(serial.find("\"runtime.parallel_for.calls\": 1"),
            std::string::npos);
  EXPECT_NE(serial.find("\"runtime.parallel_for.tasks\": 64"),
            std::string::npos);
}

// --- TraceSink --------------------------------------------------------------

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ObsTrace, InactiveByDefaultAndHelpersAreNoOps) {
  EXPECT_EQ(obs::current_trace(), nullptr);
  EXPECT_FALSE(obs::trace_active());
  obs::trace_instant("ignored", "test");  // must not crash
  obs::ScopedSpan ignored("ignored", "test");
}

TEST(ObsTrace, EmitsOneJsonObjectPerEvent) {
  std::ostringstream out;
  obs::TraceSink sink(out);
  sink.begin("phase", "cat", obs::TraceArgs().num("n", 2.0).str("s", "x\"y"));
  sink.instant("tick", "cat");
  sink.end("phase", "cat");
  sink.flush();
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("{\"ph\":\"B\",\"name\":\"phase\",\"cat\":\"cat\","
                          "\"ts\":"),
            0u);
  EXPECT_NE(lines[0].find("\"args\":{\"n\":2,\"s\":\"x\\\"y\"}"),
            std::string::npos);
  EXPECT_EQ(lines[1].find("{\"ph\":\"i\",\"name\":\"tick\""), 0u);
  EXPECT_EQ(lines[2].find("{\"ph\":\"E\",\"name\":\"phase\""), 0u);
  // Events carry a dense thread id (a single-threaded test is always 0).
  EXPECT_NE(lines[0].find("\"tid\":0"), std::string::npos);
}

TEST(ObsTrace, ScopedInstallAndSpanPairing) {
  std::ostringstream out;
  obs::TraceSink sink(out);
  {
    obs::ScopedTraceInstall install(&sink);
    EXPECT_TRUE(obs::trace_active());
    EXPECT_EQ(obs::current_trace(), &sink);
    {
      obs::ScopedSpan span("work", "test");
      obs::trace_instant("inside", "test", obs::TraceArgs().num("k", 1.0));
    }
  }
  EXPECT_FALSE(obs::trace_active());
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("{\"ph\":\"B\",\"name\":\"work\""), 0u);
  EXPECT_EQ(lines[1].find("{\"ph\":\"i\",\"name\":\"inside\""), 0u);
  EXPECT_EQ(lines[2].find("{\"ph\":\"E\",\"name\":\"work\""), 0u);
}

// --- Bucket-interpolated quantiles ------------------------------------------

TEST(ObsQuantile, EdgeCases) {
  const std::vector<double> bounds{1.0, 2.0, 3.0};
  const std::vector<std::uint64_t> counts{0, 4, 0, 0};
  // Empty distribution reports 0 regardless of q.
  EXPECT_EQ(obs::histogram_quantile(bounds, {0, 0, 0, 0}, 0, 0.0, 0.0, 0.5),
            0.0);
  // q <= 0 pins to min, q >= 1 to max.
  EXPECT_EQ(obs::histogram_quantile(bounds, counts, 4, 1.0, 2.0, 0.0), 1.0);
  EXPECT_EQ(obs::histogram_quantile(bounds, counts, 4, 1.0, 2.0, -1.0), 1.0);
  EXPECT_EQ(obs::histogram_quantile(bounds, counts, 4, 1.0, 2.0, 1.0), 2.0);
  EXPECT_EQ(obs::histogram_quantile(bounds, counts, 4, 1.0, 2.0, 2.0), 2.0);
  EXPECT_THROW(obs::histogram_quantile(bounds, {0, 4, 0}, 4, 1.0, 2.0, 0.5),
               std::invalid_argument);
}

TEST(ObsQuantile, InterpolatesInsideTheTargetBucket) {
  // All 4 observations in [1, 2): rank q*4 lands in that bucket and
  // interpolates linearly between its edges.
  const std::vector<double> bounds{1.0, 2.0, 3.0};
  const std::vector<std::uint64_t> counts{0, 4, 0, 0};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 4, 1.0, 2.0, 0.25),
                   1.25);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 4, 1.0, 2.0, 0.5),
                   1.5);
}

TEST(ObsQuantile, UnderflowAndOverflowBucketsClampToObservedRange) {
  // Underflow bucket has no finite lower edge: its edges are [min, bound]
  // clamped to the observed range.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile({10.0}, {3, 0}, 3, 2.0, 4.0, 0.5),
                   3.0);
  // Overflow bucket has no upper edge: its edges are [bound, max], with the
  // lower edge raised to min when every observation sits above the last bound.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile({1.0}, {0, 3}, 3, 5.0, 9.0, 0.5),
                   7.0);
}

TEST(ObsQuantile, DegenerateBucketReportsItsLowerEdge) {
  // min == max: every bucket collapses and the estimate is the single value.
  EXPECT_EQ(obs::histogram_quantile({1.0}, {2, 0}, 2, 0.5, 0.5, 0.5), 0.5);
}

TEST(ObsQuantile, HistogramAndSnapshotAgree) {
  obs::Histogram h({10.0});
  h.observe(2.0);
  h.observe(4.0);
  h.observe(6.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
  obs::MetricsRegistry reg;
  reg.histogram("lat", {10.0}).observe(2.0);
  reg.histogram("lat", {10.0}).observe(4.0);
  reg.histogram("lat", {10.0}).observe(6.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].quantile(0.5), 4.0);
  EXPECT_EQ(snap.histograms[0].quantile(0.0), 2.0);
  EXPECT_EQ(snap.histograms[0].quantile(1.0), 6.0);
}

// --- Prometheus text exposition ---------------------------------------------

TEST(ObsExposition, PrometheusNameSanitizesAndPrefixes) {
  EXPECT_EQ(obs::prometheus_name("serve.request.latency"),
            "mocos_serve_request_latency");
  EXPECT_EQ(obs::prometheus_name("already_ok:name"), "mocos_already_ok:name");
  EXPECT_EQ(obs::prometheus_name("weird-chars/x"), "mocos_weird_chars_x");
}

TEST(ObsExposition, RendersCountersGaugesHistogramsAndQuantiles) {
  obs::MetricsRegistry reg;
  reg.counter("serve.requests.total").add(3);
  reg.gauge("serve.queue.depth").set(2.5);
  obs::Histogram& h = reg.histogram("serve.request.latency", {1.0, 10.0});
  h.observe(0.5);
  h.observe(4.0);
  h.observe(6.0);
  std::ostringstream out;
  obs::render_prometheus(reg.snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE mocos_serve_requests_total counter\n"
                      "mocos_serve_requests_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mocos_serve_queue_depth gauge\n"
                      "mocos_serve_queue_depth 2.5\n"),
            std::string::npos);
  // Cumulative buckets: le="1" sees 1 observation, le="10" all 3, +Inf = count.
  EXPECT_NE(text.find("mocos_serve_request_latency_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mocos_serve_request_latency_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("mocos_serve_request_latency_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("mocos_serve_request_latency_sum 10.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("mocos_serve_request_latency_count 3\n"),
            std::string::npos);
  // Bucket-derived summary gauges ride along the standard exposition shape.
  EXPECT_NE(text.find("mocos_serve_request_latency_quantile{q=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("mocos_serve_request_latency_quantile{q=\"0.99\"} "),
            std::string::npos);
}

// --- Phase profiler ---------------------------------------------------------

TEST(ObsPhaseTimer, RecordAccumulatesPerStack) {
  obs::PhaseTimer t;
  t.record("a", 10, 30);
  t.record("a", 5, 5);
  t.record("a;b", 20, 20);
  const auto stats = t.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at("a").count, 2u);
  EXPECT_EQ(stats.at("a").exclusive_ns, 15u);
  EXPECT_EQ(stats.at("a").inclusive_ns, 35u);
  EXPECT_EQ(stats.at("a;b").count, 1u);
}

TEST(ObsPhaseTimer, WriteJsonAndCollapsedAreDeterministic) {
  obs::PhaseTimer t;
  t.record("run;solve", 2500, 2500);
  t.record("run", 1000, 3500);
  std::ostringstream json;
  t.write_json(json);
  EXPECT_EQ(json.str(),
            "{\n  \"version\": 1,\n  \"phases\": {\n"
            "    \"run\": {\"count\": 1, \"exclusive_ns\": 1000, "
            "\"inclusive_ns\": 3500},\n"
            "    \"run;solve\": {\"count\": 1, \"exclusive_ns\": 2500, "
            "\"inclusive_ns\": 2500}\n"
            "  }\n}\n");
  std::ostringstream collapsed;
  t.write_collapsed(collapsed);
  EXPECT_EQ(collapsed.str(), "run 1\nrun;solve 2\n");
  std::ostringstream empty;
  obs::PhaseTimer{}.write_json(empty);
  EXPECT_EQ(empty.str(), "{\n  \"version\": 1,\n  \"phases\": {}\n}\n");
}

TEST(ObsPhaseTimer, ScopedPhaseBuildsStackPathsAndExclusiveTime) {
  EXPECT_EQ(obs::current_profiler(), nullptr);
  obs::PhaseTimer t;
  {
    obs::ScopedProfileInstall install(&t);
    EXPECT_EQ(obs::current_profiler(), &t);
    obs::ScopedPhase outer("outer");
    {
      obs::ScopedPhase inner("inner");
    }
    {
      obs::ScopedPhase inner("inner");
    }
  }
  EXPECT_EQ(obs::current_profiler(), nullptr);
  const auto stats = t.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at("outer").count, 1u);
  EXPECT_EQ(stats.at("outer;inner").count, 2u);
  // Exclusive time is inclusive minus direct children, exactly.
  EXPECT_EQ(stats.at("outer").exclusive_ns,
            stats.at("outer").inclusive_ns -
                stats.at("outer;inner").inclusive_ns);
  EXPECT_LE(stats.at("outer;inner").inclusive_ns,
            stats.at("outer").inclusive_ns);
}

TEST(ObsPhaseTimer, ScopedPhaseIsANoOpWhenProfilingIsOff) {
  {
    obs::ScopedPhase phase("ignored");
    obs::ScopedPhase nested("also_ignored");
  }
  // A profiler installed after the fact sees nothing from those scopes.
  obs::PhaseTimer t;
  obs::ScopedProfileInstall install(&t);
  EXPECT_TRUE(t.stats().empty());
}

// --- Request-scoped trace context -------------------------------------------

TEST(ObsTraceContext, NestsAndRestores) {
  EXPECT_EQ(obs::current_trace_context(), "");
  {
    obs::ScopedTraceContext req("req-1");
    EXPECT_EQ(obs::current_trace_context(), "req-1");
    {
      obs::ScopedTraceContext inner("req-2");
      EXPECT_EQ(obs::current_trace_context(), "req-2");
    }
    EXPECT_EQ(obs::current_trace_context(), "req-1");
  }
  EXPECT_EQ(obs::current_trace_context(), "");
}

TEST(ObsTraceContext, EventsCarryTheRequestId) {
  std::ostringstream out;
  obs::TraceSink sink(out);
  {
    obs::ScopedTraceInstall install(&sink);
    obs::trace_instant("outside", "test");
    obs::ScopedTraceContext req("r42");
    obs::ScopedSpan span("work", "test");
    obs::trace_instant("inside", "test");
  }
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].find("\"rid\""), std::string::npos);
  for (std::size_t i = 1; i < lines.size(); ++i)
    EXPECT_NE(lines[i].find("\"rid\":\"r42\""), std::string::npos)
        << lines[i];
}

}  // namespace
}  // namespace mocos
