#!/usr/bin/env python3
"""Process-level tests for the mocos_serve binary (stdlib only).

Drives the built server end to end and asserts the DESIGN.md §11 contract:

  - every response line validates against tools/serve/response_schema.json,
  - a seeded request log replays byte-identically at --jobs 1 and --jobs 8,
  - a chaos run (request-layer fault injection + deadlines + a tiny queue)
    ends with exactly one terminal response per request and a bounded queue,
    asserted from the metrics snapshot — and zero server crashes,
  - SIGTERM drains gracefully: the server stops accepting, answers what it
    admitted, and leaves a complete final metrics snapshot.

Registered as the `ServeCli.*` ctests; runnable directly:
    python3 tests/test_serve_cli.py --serve build/tools/mocos_serve
"""

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from test_obs_cli import validate  # noqa: E402  (shared mini-validator)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA = os.path.join(REPO_ROOT, "tools", "serve", "response_schema.json")

SERVE = None  # resolved in main()

TERMINAL_STATUSES = {"ok", "error", "deadline-exceeded", "shed"}


def tiny_config(iterations):
    return ("topology = grid:2x2\\niterations = %d\\nalgorithm = adaptive"
            % iterations)


def request_line(rid, iterations, extra=""):
    return '{"id": "%s", "config": "%s"%s}' % (
        rid, tiny_config(iterations), extra)


def make_log(n):
    """Seeded mix: keyed lanes with warm starts, cold requests, malformed
    lines — the same shape as the in-process replay test."""
    lines = []
    for i in range(n):
        if i % 20 == 19:
            lines.append("not json #%d" % i)
            continue
        extra = ""
        if i % 4 != 0:
            extra = ', "cache_key": "lane-%d"' % (i % 3)
            if i > 10:
                extra += ', "warm_start": true'
        lines.append(request_line("req-%d" % i, 8 + i % 3, extra))
    return "\n".join(lines) + "\n"


def run_serve(args, request_text):
    return subprocess.run([SERVE] + args, input=request_text,
                          capture_output=True, text=True, timeout=600)


class ResponseSchema(unittest.TestCase):
    def test_mixed_run_validates_line_by_line(self):
        with open(SCHEMA) as f:
            schema = json.load(f)
        proc = run_serve(["--jobs", "2"], make_log(30))
        self.assertEqual(proc.returncode, 4, proc.stderr)  # malformed lines
        lines = proc.stdout.splitlines()
        self.assertEqual(len(lines), 30)
        for line in lines:
            doc = json.loads(line)
            self.assertEqual(validate(doc, schema), [], line)
            self.assertIn(doc["status"], TERMINAL_STATUSES)


class ReplayIdentity(unittest.TestCase):
    def test_jobs_1_and_8_are_byte_identical(self):
        log = make_log(60)
        outs = {}
        for jobs in ("1", "8"):
            proc = run_serve(["--jobs", jobs, "--queue-depth", "64"], log)
            self.assertEqual(proc.returncode, 4, proc.stderr)
            outs[jobs] = proc.stdout
        self.assertEqual(outs["1"], outs["8"])


class ChaosRun(unittest.TestCase):
    def test_faults_deadlines_and_tiny_queue_never_crash_the_server(self):
        n = 50
        lines = [request_line("c%d" % i, 10 + i % 5,
                              ', "deadline_ms": 2000')
                 for i in range(n)]
        with tempfile.TemporaryDirectory() as tmp:
            metrics = os.path.join(tmp, "m.json")
            proc = run_serve(
                ["--jobs", "2", "--queue-depth", "4",
                 "--metrics", metrics,
                 "--fault", "serve-decode:0.2:3",
                 "--fault", "serve-queue-full:0.3:7"],
                "\n".join(lines) + "\n")
            # The server must exit through its normal path (0 = all ok is
            # impossible here; 4 = partial failure), never crash.
            self.assertEqual(proc.returncode, 4, proc.stderr)
            responses = [json.loads(l) for l in proc.stdout.splitlines()]
            self.assertEqual(len(responses), n)
            # Exactly one response per request, in arrival order, each in a
            # known terminal state.
            for seq, doc in enumerate(responses):
                self.assertEqual(doc["seq"], seq)
                self.assertIn(doc["status"], TERMINAL_STATUSES)
            by_status = {}
            for doc in responses:
                by_status[doc["status"]] = by_status.get(doc["status"], 0) + 1
            self.assertGreater(by_status.get("shed", 0), 0)
            self.assertGreater(by_status.get("error", 0), 0)
            for doc in responses:
                if doc["status"] == "shed":
                    self.assertIn("retry_after_ms", doc)
            # Queue depth bounded, asserted from the metrics snapshot.
            with open(metrics) as f:
                snapshot = json.load(f)
            self.assertLessEqual(snapshot["gauges"]["serve.queue.peak_depth"],
                                 4)
            self.assertEqual(snapshot["counters"]["serve.requests.total"], n)


class SigtermDrain(unittest.TestCase):
    def test_sigterm_drains_and_flushes_metrics(self):
        with tempfile.TemporaryDirectory() as tmp:
            metrics = os.path.join(tmp, "m.json")
            proc = subprocess.Popen(
                [SERVE, "--jobs", "2", "--metrics", metrics],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True)
            try:
                proc.stdin.write(request_line("pre-term-1", 20) + "\n")
                proc.stdin.write(request_line("pre-term-2", 20) + "\n")
                proc.stdin.flush()
                # Wait for the first response so we know requests were
                # admitted before the signal arrives.
                first = proc.stdout.readline()
                self.assertTrue(first.strip(), "no response before signal")
                proc.send_signal(signal.SIGTERM)
                out, err = proc.communicate(timeout=120)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()
            self.assertIn(proc.returncode, (0, 4), err)
            self.assertIn("drained on signal", err)
            # Everything admitted before the signal was answered.
            answered = [json.loads(l) for l in (first + out).splitlines()]
            self.assertEqual([d["seq"] for d in answered],
                             list(range(len(answered))))
            # The final metrics snapshot is complete and parseable.
            with open(metrics) as f:
                snapshot = json.load(f)
            self.assertIn("serve.requests.total", snapshot["counters"])
            self.assertIn("serve.queue.peak_depth", snapshot["gauges"])


class TelemetryEndpoint(unittest.TestCase):
    """The DESIGN.md §15 telemetry plane, end to end: --metrics-port 0
    binds an ephemeral loopback port, /metrics serves Prometheus text,
    /healthz live server state, and --profile leaves a valid profile."""

    @staticmethod
    def wait_for_port(path, timeout_s=10.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                with open(path) as f:
                    return int(f.read().strip())
            except (OSError, ValueError):
                time.sleep(0.05)
        return -1

    @staticmethod
    def http_get(port, path):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), \
                response.read().decode()
        finally:
            conn.close()

    def test_endpoint_smoke(self):
        with tempfile.TemporaryDirectory() as tmp:
            port_file = os.path.join(tmp, "port.txt")
            profile = os.path.join(tmp, "profile.json")
            proc = subprocess.Popen(
                [SERVE, "--jobs", "2", "--metrics-port", "0",
                 "--metrics-port-file", port_file, "--profile", profile],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True)
            try:
                proc.stdin.write(request_line("e1", 10) + "\n")
                proc.stdin.write(request_line("e2", 10) + "\n")
                proc.stdin.flush()
                port = self.wait_for_port(port_file)
                self.assertGreater(port, 0, "no port file written")
                # Both responses flushed => their metrics are merged.
                for _ in range(2):
                    self.assertTrue(proc.stdout.readline().strip())

                status, headers, body = self.http_get(port, "/metrics")
                self.assertEqual(status, 200)
                self.assertEqual(headers.get("Content-Type"),
                                 "text/plain; version=0.0.4")
                self.assertIn("mocos_serve_requests_ok 2", body)
                self.assertIn("# TYPE mocos_serve_request_latency histogram",
                              body)
                self.assertIn(
                    'mocos_serve_request_latency_quantile{q="0.99"}', body)

                status, headers, body = self.http_get(port, "/healthz")
                self.assertEqual(status, 200)
                self.assertEqual(headers.get("Content-Type"),
                                 "application/json")
                health = json.loads(body)
                self.assertEqual(health["status"], "ok")
                self.assertFalse(health["draining"])
                for key in ("queue_depth", "queue_capacity", "inflight",
                            "lanes_live", "lanes_evicted"):
                    self.assertIn(key, health)

                status, _, _ = self.http_get(port, "/nope")
                self.assertEqual(status, 404)

                out, err = proc.communicate(timeout=120)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()
            self.assertEqual(proc.returncode, 0, err)
            self.assertFalse(out.strip())  # both responses already read
            # --profile left a valid, non-trivial phase profile behind.
            with open(profile) as f:
                doc = json.load(f)
            self.assertEqual(doc["version"], 1)
            self.assertTrue(any(k.startswith("serve.request")
                                for k in doc["phases"]), doc["phases"])


def main():
    global SERVE
    parser = argparse.ArgumentParser()
    parser.add_argument("--serve", required=True,
                        help="path to the built mocos_serve binary")
    args, rest = parser.parse_known_args()
    SERVE = os.path.abspath(args.serve)
    if not os.path.exists(SERVE):
        print("mocos_serve binary not found: %s" % SERVE, file=sys.stderr)
        return 1
    unittest.main(argv=[sys.argv[0]] + rest, verbosity=2)


if __name__ == "__main__":
    sys.exit(main())
