#include "src/core/problem.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "src/core/optimizer.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/markov/stationary.hpp"
#include "tests/helpers.hpp"

namespace mocos::core {
namespace {

TEST(Problem, BuildsWithDefaults) {
  Problem p(geometry::paper_topology(1), Physics{}, Weights{});
  EXPECT_EQ(p.num_pois(), 4u);
  EXPECT_EQ(p.targets().size(), 4u);
  EXPECT_DOUBLE_EQ(p.physics().speed, 1.0);
}

TEST(Problem, CostContainsExpectedTerms) {
  Weights w;
  w.alpha = 1.0;
  w.beta = 1.0;
  Problem p(geometry::paper_topology(1), Physics{}, w);
  const auto cost = p.make_cost();
  EXPECT_EQ(cost.num_terms(), 3u);  // coverage + exposure + barrier
}

TEST(Problem, ZeroWeightsDropTerms) {
  Weights w;
  w.alpha = 0.0;
  w.beta = 1.0;
  Problem p(geometry::paper_topology(1), Physics{}, w);
  EXPECT_EQ(p.make_cost().num_terms(), 2u);  // exposure + barrier
}

TEST(Problem, ExtensionTermsIncluded) {
  Weights w;
  w.energy_gamma = 1.0;
  w.entropy_weight = 0.5;
  Problem p(geometry::paper_topology(1), Physics{}, w);
  EXPECT_EQ(p.make_cost().num_terms(), 5u);
}

TEST(Problem, MetricsAndReportCostConsistent) {
  Weights w;
  w.alpha = 2.0;
  w.beta = 3.0;
  Problem p(geometry::paper_topology(3), Physics{}, w);
  const auto m = p.metrics_of(markov::TransitionMatrix::uniform(4));
  EXPECT_NEAR(p.report_cost(markov::TransitionMatrix::uniform(4)),
              0.5 * 2.0 * m.delta_c + 0.5 * 3.0 * m.e_bar * m.e_bar, 1e-12);
}

TEST(Problem, CostOutlivesProblem) {
  // The composite cost must own copies of the tensors it uses.
  cost::CompositeCost cost = [] {
    Problem p(geometry::paper_topology(1), Physics{}, Weights{});
    return p.make_cost();
  }();
  const auto chain =
      markov::analyze_chain(markov::TransitionMatrix::uniform(4));
  EXPECT_TRUE(std::isfinite(cost.value(chain)));
}

TEST(Problem, PerPoiWeightsOverrideScalars) {
  // Scalar alpha=0 but a per-PoI alpha vector enables the coverage term.
  Weights w;
  w.alpha = 0.0;
  w.beta = 0.0;
  w.alpha_per_poi = {1.0, 0.0, 0.0, 0.0};
  Problem p(geometry::paper_topology(1), Physics{}, w);
  EXPECT_EQ(p.make_cost().num_terms(), 2u);  // coverage + barrier
}

TEST(Problem, PerPoiWeightsMatchScalarWhenUniform) {
  Weights scalar;
  scalar.alpha = 2.0;
  scalar.beta = 0.5;
  Weights vec = scalar;
  vec.alpha_per_poi = std::vector<double>(4, 2.0);
  vec.beta_per_poi = std::vector<double>(4, 0.5);
  Problem ps(geometry::paper_topology(1), Physics{}, scalar);
  Problem pv(geometry::paper_topology(1), Physics{}, vec);
  util::Rng rng(77);
  const auto m = test::random_positive_chain(4, rng);
  EXPECT_NEAR(ps.make_cost().value(m), pv.make_cost().value(m), 1e-14);
}

TEST(Problem, PerPoiWeightsValidated) {
  Weights bad;
  bad.alpha_per_poi = {1.0, 1.0};  // wrong size for 4 PoIs
  Problem p(geometry::paper_topology(1), Physics{}, bad);
  EXPECT_THROW(p.make_cost(), std::invalid_argument);
  Weights neg;
  neg.beta_per_poi = {1.0, -1.0, 1.0, 1.0};
  Problem pn(geometry::paper_topology(1), Physics{}, neg);
  EXPECT_THROW(pn.make_cost(), std::invalid_argument);
}

TEST(Problem, EventRatesEnableInformationTerm) {
  Weights w;
  w.alpha = 0.0;
  w.beta = 0.0;
  w.event_rates = {1.0, 2.0, 3.0, 4.0};
  Problem p(geometry::paper_topology(1), Physics{}, w);
  EXPECT_EQ(p.make_cost().num_terms(), 2u);  // information + barrier
  // The information term is negative at any chain (it rewards capture).
  EXPECT_LT(p.make_cost().value(markov::TransitionMatrix::uniform(4)), 0.0);
}

TEST(Problem, PenalizedCostExceedsReportCostInsideGates) {
  // U_eps = U + barrier >= U; away from the gates they coincide.
  Weights w;
  Problem p(geometry::paper_topology(1), Physics{}, w);
  const auto cost = p.make_cost();
  const auto u = markov::TransitionMatrix::uniform(4);
  const auto chain = markov::analyze_chain(u);
  EXPECT_NEAR(cost.value(chain), p.report_cost(u), 1e-9);
}

// --- Boundary topologies through the full pipeline -------------------------

TEST(Problem, TwoPoiBoundaryTopologyOptimizesCleanly) {
  // The smallest legal instance: 2 PoIs, 2x2 transition matrix. The whole
  // pipeline — tensors, cost terms, descent, metrics — must work at this
  // floor, not just at the paper's 4..6-PoI topologies.
  geometry::Topology topo("pair", {{0.0, 0.0}, {1.0, 0.0}}, {0.7, 0.3});
  Weights w;
  w.alpha = 1.0;
  w.beta = 0.5;
  Problem problem(std::move(topo), Physics{}, w);
  ASSERT_EQ(problem.num_pois(), 2u);

  const auto m = problem.metrics_of(markov::TransitionMatrix::uniform(2));
  EXPECT_TRUE(std::isfinite(m.delta_c));
  EXPECT_TRUE(std::isfinite(m.e_bar));

  OptimizerOptions opts;
  opts.algorithm = Algorithm::kAdaptive;
  opts.max_iterations = 60;
  const auto outcome = CoverageOptimizer(problem, opts).run();
  EXPECT_TRUE(std::isfinite(outcome.penalized_cost));
  EXPECT_TRUE(outcome.recovery.empty());
  // A lopsided 0.7/0.3 target pulls coverage toward PoI 0.
  const auto pi = markov::stationary_distribution(outcome.p);
  EXPECT_GT(pi[0], pi[1]);
}

TEST(Problem, OnePoiTopologyIsAStructuredConfigError) {
  // A single PoI admits no Markov schedule (TransitionMatrix needs n >= 2),
  // so the degenerate instance is rejected at the earliest layer — topology
  // construction — with a structured invalid_argument, not a downstream
  // crash or a bogus 1x1 chain.
  EXPECT_THROW(geometry::Topology("solo", {{0.0, 0.0}}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(markov::TransitionMatrix::uniform(1), std::invalid_argument);
  EXPECT_THROW(markov::TransitionMatrix(linalg::Matrix{{1.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mocos::core
