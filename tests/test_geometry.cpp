#include <gtest/gtest.h>

#include <cmath>

#include "src/geometry/segment.hpp"
#include "src/geometry/vec2.hpp"

namespace mocos::geometry {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
}

TEST(Vec2, DotLengthDistance) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(length({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(length_sq({3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(Chord, FullDiameterThroughCenter) {
  // Horizontal segment through a disk of radius 1 centred on its middle.
  const Segment s{{-2.0, 0.0}, {2.0, 0.0}};
  EXPECT_NEAR(chord_length_in_disk(s, {0.0, 0.0}, 1.0), 2.0, 1e-12);
}

TEST(Chord, OffCenterChordMatchesFormula) {
  // Line y = 0.6 through a unit disk: chord = 2*sqrt(1 - 0.36) = 1.6.
  const Segment s{{-5.0, 0.6}, {5.0, 0.6}};
  EXPECT_NEAR(chord_length_in_disk(s, {0.0, 0.0}, 1.0), 1.6, 1e-12);
}

TEST(Chord, MissingLineIsZero) {
  const Segment s{{-5.0, 2.0}, {5.0, 2.0}};
  EXPECT_DOUBLE_EQ(chord_length_in_disk(s, {0.0, 0.0}, 1.0), 0.0);
}

TEST(Chord, TangentLineIsZero) {
  const Segment s{{-5.0, 1.0}, {5.0, 1.0}};
  EXPECT_DOUBLE_EQ(chord_length_in_disk(s, {0.0, 0.0}, 1.0), 0.0);
}

TEST(Chord, SegmentClippedByEndpoints) {
  // Segment starts at the disk centre: only half the diameter is inside.
  const Segment s{{0.0, 0.0}, {5.0, 0.0}};
  EXPECT_NEAR(chord_length_in_disk(s, {0.0, 0.0}, 1.0), 1.0, 1e-12);
}

TEST(Chord, SegmentEntirelyInsideDisk) {
  const Segment s{{-0.2, 0.0}, {0.3, 0.0}};
  EXPECT_NEAR(chord_length_in_disk(s, {0.0, 0.0}, 1.0), 0.5, 1e-12);
}

TEST(Chord, SegmentEndsBeforeDisk) {
  const Segment s{{-5.0, 0.0}, {-2.0, 0.0}};
  EXPECT_DOUBLE_EQ(chord_length_in_disk(s, {0.0, 0.0}, 1.0), 0.0);
}

TEST(Chord, DegenerateSegmentIsZero) {
  const Segment s{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_DOUBLE_EQ(chord_length_in_disk(s, {0.0, 0.0}, 1.0), 0.0);
}

TEST(Chord, NonPositiveRadiusIsZero) {
  const Segment s{{-1.0, 0.0}, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(chord_length_in_disk(s, {0.0, 0.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(chord_length_in_disk(s, {0.0, 0.0}, -1.0), 0.0);
}

TEST(Chord, DiagonalSegment) {
  // 45-degree line through the centre of a unit disk.
  const Segment s{{-3.0, -3.0}, {3.0, 3.0}};
  EXPECT_NEAR(chord_length_in_disk(s, {0.0, 0.0}, 1.0), 2.0, 1e-12);
}

TEST(DistanceToSegment, ProjectionCases) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(distance_to_segment(s, {5.0, 3.0}), 3.0);   // interior
  EXPECT_DOUBLE_EQ(distance_to_segment(s, {-3.0, 4.0}), 5.0);  // clamp to a
  EXPECT_DOUBLE_EQ(distance_to_segment(s, {13.0, 4.0}), 5.0);  // clamp to b
}

TEST(DistanceToSegment, DegenerateSegment) {
  const Segment s{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(distance_to_segment(s, {4.0, 5.0}), 5.0);
}

class ChordSymmetryTest : public ::testing::TestWithParam<double> {};

TEST_P(ChordSymmetryTest, DirectionDoesNotMatter) {
  const double offset = GetParam();
  const Segment fwd{{-4.0, offset}, {4.0, offset}};
  const Segment bwd{{4.0, offset}, {-4.0, offset}};
  EXPECT_NEAR(chord_length_in_disk(fwd, {0.0, 0.0}, 1.0),
              chord_length_in_disk(bwd, {0.0, 0.0}, 1.0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Offsets, ChordSymmetryTest,
                         ::testing::Values(0.0, 0.3, 0.7, 0.99, 1.5));

}  // namespace
}  // namespace mocos::geometry
