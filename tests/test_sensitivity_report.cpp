#include "src/cost/sensitivity_report.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/optimizer.hpp"
#include "src/cost/metrics.hpp"
#include "src/cost/projection.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/sensing/travel_model.hpp"
#include "tests/helpers.hpp"

namespace mocos::cost {
namespace {

struct Fixture {
  sensing::TravelModel model;
  sensing::CoverageTensors tensors;
  explicit Fixture(int topo)
      : model(geometry::paper_topology(topo), 1.0, 1.0, 0.25),
        tensors(model) {}
};

TEST(MetricSensitivity, MatchesFiniteDifferences) {
  Fixture f(3);
  const auto targets = f.model.topology().targets();
  util::Rng rng(11);
  for (int t = 0; t < 5; ++t) {
    const auto p = test::random_positive_chain(4, rng);
    const auto chain = markov::analyze_chain(p);
    const auto sens = metric_sensitivity(chain, f.tensors, targets);
    const auto v = test::random_direction(4, rng);

    const double h = 1e-6;
    linalg::Matrix plus(4, 4), minus(4, 4);
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j) {
        plus(i, j) = p(i, j) + h * v(i, j);
        minus(i, j) = p(i, j) - h * v(i, j);
      }
    const auto mp = compute_metrics(
        markov::analyze_chain(markov::TransitionMatrix(plus)), f.tensors,
        targets);
    const auto mm = compute_metrics(
        markov::analyze_chain(markov::TransitionMatrix(minus)), f.tensors,
        targets);

    const double fd_dc = (mp.delta_c - mm.delta_c) / (2.0 * h);
    const double fd_eb = (mp.e_bar - mm.e_bar) / (2.0 * h);
    EXPECT_NEAR(linalg::frobenius_dot(sens.delta_c, v), fd_dc,
                1e-4 * std::max(1.0, std::abs(fd_dc)))
        << "trial " << t;
    EXPECT_NEAR(linalg::frobenius_dot(sens.e_bar, v), fd_eb,
                1e-4 * std::max(1.0, std::abs(fd_eb)))
        << "trial " << t;
  }
}

TEST(MetricSensitivity, GradientsLieInFeasibleSubspace) {
  Fixture f(1);
  util::Rng rng(12);
  const auto chain =
      markov::analyze_chain(test::random_positive_chain(4, rng));
  const auto sens =
      metric_sensitivity(chain, f.tensors, f.model.topology().targets());
  EXPECT_NEAR(max_abs_row_sum(sens.delta_c), 0.0, 1e-10);
  EXPECT_NEAR(max_abs_row_sum(sens.e_bar), 0.0, 1e-10);
}

TEST(MetricSensitivity, AntagonisticAtTradeoffOptimum) {
  // The defining tension of the paper: at an (interior) optimum of the
  // weighted cost, the combined gradient vanishes, so grad(DeltaC) and
  // grad(E-bar) must point in opposing directions — improving one metric
  // necessarily worsens the other.
  const auto problem = test::paper_problem(3, 1.0, 1e-3);
  core::OptimizerOptions opts;
  opts.max_iterations = 600;
  opts.stall_limit = 250;
  opts.keep_trace = false;
  const auto outcome = core::CoverageOptimizer(problem, opts).run();

  const auto chain = markov::analyze_chain(outcome.p);
  const auto sens = metric_sensitivity(chain, problem.tensors(),
                                       problem.targets());
  const double alignment = linalg::frobenius_dot(sens.delta_c, sens.e_bar);
  const double scale =
      std::sqrt(linalg::frobenius_dot(sens.delta_c, sens.delta_c) *
                linalg::frobenius_dot(sens.e_bar, sens.e_bar));
  ASSERT_GT(scale, 0.0);
  EXPECT_LT(alignment / scale, -0.5)
      << "gradients should be strongly anti-aligned at the optimum";
}

}  // namespace
}  // namespace mocos::cost
