#include "src/sensing/target_allocation.hpp"

#include <gtest/gtest.h>

namespace mocos::sensing {
namespace {

TEST(TargetAllocation, AcceptsValidShares) {
  TargetAllocation t({0.4, 0.1, 0.5});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 0.4);
  EXPECT_DOUBLE_EQ(t[2], 0.5);
}

TEST(TargetAllocation, RejectsInvalid) {
  EXPECT_THROW(TargetAllocation({}), std::invalid_argument);
  EXPECT_THROW(TargetAllocation({0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(TargetAllocation({-0.5, 1.5}), std::invalid_argument);
}

TEST(TargetAllocation, Uniform) {
  const auto t = TargetAllocation::uniform(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t[i], 0.25);
  EXPECT_THROW(TargetAllocation::uniform(0), std::invalid_argument);
}

TEST(TargetAllocation, ProportionalNormalizes) {
  const auto t = TargetAllocation::proportional({2.0, 6.0});
  EXPECT_DOUBLE_EQ(t[0], 0.25);
  EXPECT_DOUBLE_EQ(t[1], 0.75);
}

TEST(TargetAllocation, ProportionalRejectsBadWeights) {
  EXPECT_THROW(TargetAllocation::proportional({}), std::invalid_argument);
  EXPECT_THROW(TargetAllocation::proportional({0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(TargetAllocation::proportional({-1.0, 2.0}),
               std::invalid_argument);
}

TEST(TargetAllocation, L1Distance) {
  TargetAllocation t({0.5, 0.5});
  EXPECT_DOUBLE_EQ(t.l1_distance({0.25, 0.75}), 0.5);
  EXPECT_DOUBLE_EQ(t.l1_distance({0.5, 0.5}), 0.0);
  EXPECT_THROW(t.l1_distance({1.0}), std::invalid_argument);
}

TEST(TargetAllocation, IndexOutOfRangeThrows) {
  TargetAllocation t({0.5, 0.5});
  EXPECT_THROW(t[2], std::out_of_range);
}

}  // namespace
}  // namespace mocos::sensing
