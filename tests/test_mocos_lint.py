#!/usr/bin/env python3
"""Self-test for tools/lint/mocos_lint.py.

Runs the linter over the fixture tree in tests/lint_fixtures/ (which mirrors
src/ so the directory-scoped rules fire) and asserts, per fixture:

  - the exact rule id and line number of each expected violation,
  - a nonzero exit status whenever a fixture violates a rule,
  - zero violations for the clean, suppressed, and out-of-scope fixtures,
  - and finally that the real src/ tree lints clean (exit 0).

Registered as the `mocos_lint` ctest; runnable directly:
    python3 tests/test_mocos_lint.py
"""

import json
import os
import subprocess
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "tools", "lint", "mocos_lint.py")
FIXTURE_ROOT = os.path.join(REPO_ROOT, "tests", "lint_fixtures")


def run_lint(paths, root, extra=None):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root, "--json"] + (extra or [])
        + paths,
        capture_output=True, text=True, cwd=REPO_ROOT)
    try:
        violations = json.loads(proc.stdout) if proc.stdout.strip() else []
    except json.JSONDecodeError:
        raise AssertionError("non-JSON lint output:\n" + proc.stdout)
    return proc.returncode, violations


def fixture(rel):
    return os.path.join(FIXTURE_ROOT, rel)


class FixtureViolations(unittest.TestCase):
    """Each violating fixture yields exactly its expected (rule, line)
    pairs and a nonzero exit status."""

    EXPECTED = {
        "src/runtime/det_rng.cpp": [("det-rng", 8)],
        "src/sim/det_time.cpp": [("det-time", 8)],
        "src/multi/det_unordered.cpp": [("det-unordered", 12)],
        "src/descent/raw_solver.cpp": [("raw-solver", 9)],
        "src/linalg/float_eq.cpp": [("float-eq", 9)],
        "src/markov/discarded_status.cpp": [("discarded-status", 10)],
        # The incremental-cache scope extension: src/markov/incremental*
        # is inside the raw-solver and determinism scopes even though the
        # rest of src/markov/ is not (discarded_status.cpp above fires a
        # path-independent rule).
        "src/markov/incremental_raw_solver.cpp": [("raw-solver", 14),
                                                  ("det-unordered", 16)],
        "src/runtime/task_throw.cpp": [("task-throw", 14)],
        "src/core/bad_suppression.cpp": [("bad-suppression", 8),
                                         ("float-eq", 9)],
        # Observability clock contract: outside src/obs/ (and outside the
        # determinism scope, where det-time already fires) a clock read is
        # obs-only-clock; inside src/obs/ it is det-time unless the site
        # carries an allow() justification like the real trace-sink epoch.
        "src/cost/clock_outside_obs.cpp": [("obs-only-clock", 10)],
        "src/obs/clock_in_obs.cpp": [("det-time", 15)],
        # The serve scope extension: src/serve/ joins both the determinism
        # scope (clock reads there are det-time, suppressible at the
        # sanctioned deadline/watchdog sites) and the raw-solver scope
        # (request execution must stay on the guarded try_* layer so one
        # numerical fault costs one structured error response, not the
        # process).
        "src/serve/deadline_clock.cpp": [("det-time", 20),
                                         ("raw-solver", 25)],
        # The det-socket rule (telemetry plane, DESIGN.md §15): raw socket
        # calls in the determinism scope fire unless carrying the explicit
        # per-line sanction the real endpoint uses; std::bind, project
        # accept()/send() members, and the allow()ed mirror stay clean.
        "src/serve/raw_socket.cpp": [("det-socket", 18),
                                     ("det-socket", 19),
                                     ("det-socket", 20)],
        # The sparse/partition scope extension: both directories join the
        # determinism scope (the resolvent ladder and block solver fan work
        # out over runtime::parallel_for under the bit-identical contract)
        # and the raw-solver scope (their fallback ladders branch on Status,
        # which an unguarded throwing solver would bypass).
        "src/sparse/clock_in_solver.cpp": [("det-time", 16),
                                           ("raw-solver", 21)],
        "src/partition/unordered_blocks.cpp": [("det-unordered", 19),
                                               ("raw-solver", 24)],
        # Layering contract (PR 8): the include-graph pass judges every
        # `#include "src/..."` edge against the module DAG (the target need
        # not exist), and flags file-level include cycles via SCC — the
        # cycle is caught even when only one of its files is scanned,
        # reported at that file's offending include line.
        "src/geometry/forbidden_edge.cpp": [("layer-violation", 6)],
        "src/markov/cycle_a.hpp": [("layer-cycle", 6)],
        "src/markov/cycle_b.hpp": [("layer-cycle", 4)],
        # Locking contract (PR 8): raw std primitives and manual
        # lock()/unlock() are invisible to Clang -Wthread-safety; locks
        # held across parallel_for self-deadlock under inline execution.
        # Each fixture also contains the compliant form as a near-miss.
        "src/cost/raw_mutex.cpp": [("lock-raw-mutex", 14),
                                   ("lock-raw-mutex", 19)],
        "src/cost/raw_lock_call.cpp": [("lock-raw-call", 12),
                                       ("lock-raw-call", 14)],
        "src/partition/lock_across_parallel.cpp":
            [("lock-across-parallel", 17)],
    }

    def test_each_fixture_exact_rule_and_line(self):
        for rel, expected in self.EXPECTED.items():
            with self.subTest(fixture=rel):
                code, violations = run_lint([fixture(rel)], FIXTURE_ROOT)
                self.assertEqual(code, 1,
                                 "%s: expected exit 1, got %d" % (rel, code))
                got = [(v["rule"], v["line"]) for v in violations]
                self.assertEqual(sorted(got), sorted(expected), rel)

    def test_violation_paths_are_root_relative(self):
        code, violations = run_lint(
            [fixture("src/linalg/float_eq.cpp")], FIXTURE_ROOT)
        self.assertEqual(code, 1)
        self.assertEqual(violations[0]["path"], "src/linalg/float_eq.cpp")


class CleanFixtures(unittest.TestCase):
    """Suppressed, near-miss, and out-of-scope fixtures lint clean."""

    CLEAN = [
        "src/descent/suppressed.cpp",   # allow() on every violation
        "src/core/clean.cpp",           # near-miss patterns
        "src/cost/out_of_scope.cpp",    # scoped rules outside their dirs
    ]

    def test_clean_fixtures_exit_zero(self):
        for rel in self.CLEAN:
            with self.subTest(fixture=rel):
                code, violations = run_lint([fixture(rel)], FIXTURE_ROOT)
                self.assertEqual(violations, [], rel)
                self.assertEqual(code, 0, rel)

    def test_whole_fixture_tree_reports_every_violation(self):
        code, violations = run_lint(
            [os.path.join(FIXTURE_ROOT, "src")], FIXTURE_ROOT)
        self.assertEqual(code, 1)
        expected = sorted(
            (rel, rule, line)
            for rel, pairs in FixtureViolations.EXPECTED.items()
            for rule, line in pairs)
        got = sorted((v["path"], v["rule"], v["line"]) for v in violations)
        self.assertEqual(got, expected)


class SuppressionForms(unittest.TestCase):
    """Same-line and standalone-previous-line suppressions both work, and
    only for the named rule."""

    def test_suppressed_fixture_has_raw_patterns(self):
        # Guard against the fixture rotting: the suppressed file must still
        # contain the raw violation patterns its allow() comments cover.
        with open(fixture("src/descent/suppressed.cpp")) as f:
            text = f.read()
        self.assertIn("markov::analyze_chain(", text)
        self.assertIn("== 0.0", text)
        self.assertIn("mocos-lint: allow(raw-solver)", text)
        self.assertIn("mocos-lint: allow(float-eq)", text)

    def test_misspelled_suppression_reported_and_ineffective(self):
        code, violations = run_lint(
            [fixture("src/core/bad_suppression.cpp")], FIXTURE_ROOT)
        self.assertEqual(code, 1)
        rules = [v["rule"] for v in violations]
        self.assertIn("bad-suppression", rules)
        self.assertIn("float-eq", rules)  # the typo suppressed nothing


class BaselineRatchet(unittest.TestCase):
    """--baseline suppresses exactly the recorded findings: known findings
    pass, new findings still fail, and stale entries fail as
    baseline-expiry so the file can only ratchet down."""

    FIXTURE = "src/cost/raw_lock_call.cpp"  # fires lock-raw-call twice

    def run_with_baseline(self, baseline_path):
        return run_lint([fixture(self.FIXTURE)], FIXTURE_ROOT,
                        extra=["--baseline", baseline_path])

    def write_baseline(self, entries):
        import tempfile
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        json.dump(entries, handle)
        handle.close()
        self.addCleanup(os.unlink, handle.name)
        return handle.name

    def test_write_baseline_round_trips_clean(self):
        import tempfile
        path = os.path.join(tempfile.mkdtemp(), "baseline.json")
        proc = subprocess.run(
            [sys.executable, LINT, "--root", FIXTURE_ROOT,
             "--write-baseline", path, fixture(self.FIXTURE)],
            capture_output=True, text=True, cwd=REPO_ROOT)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        with open(path) as f:
            recorded = json.load(f)
        self.assertEqual(recorded, {self.FIXTURE + ":lock-raw-call": 2})
        code, violations = self.run_with_baseline(path)
        self.assertEqual(violations, [])
        self.assertEqual(code, 0)

    def test_new_finding_is_not_masked(self):
        # Baseline covers only one of the two findings: the second is new.
        path = self.write_baseline({self.FIXTURE + ":lock-raw-call": 1})
        code, violations = self.run_with_baseline(path)
        self.assertEqual(code, 1)
        self.assertEqual([(v["rule"], v["line"]) for v in violations],
                         [("lock-raw-call", 14)])

    def test_stale_entry_fails_as_baseline_expiry(self):
        # The checked-in stale baseline over-counts: its obs-only-clock
        # entry no longer fires at all. Silence there must not be free —
        # it would mask the next regression at that (path, rule).
        code, violations = self.run_with_baseline(
            os.path.join(FIXTURE_ROOT, "stale_baseline.json"))
        self.assertEqual(code, 1)
        self.assertEqual(
            [(v["path"], v["rule"], v["line"]) for v in violations],
            [(self.FIXTURE, "baseline-expiry", 0)])

    def test_baseline_conflicts_with_write_baseline(self):
        path = self.write_baseline({})
        proc = subprocess.run(
            [sys.executable, LINT, "--root", FIXTURE_ROOT,
             "--baseline", path, "--write-baseline", path,
             fixture(self.FIXTURE)],
            capture_output=True, text=True, cwd=REPO_ROOT)
        self.assertEqual(proc.returncode, 2)


class RealTreeIsClean(unittest.TestCase):
    """The contract the CI gate enforces: src/ lints clean."""

    def test_src_tree_exits_zero(self):
        code, violations = run_lint(
            [os.path.join(REPO_ROOT, "src")], REPO_ROOT)
        self.assertEqual(
            violations, [],
            "src/ has lint violations:\n" + "\n".join(
                "%s:%d [%s]" % (v["path"], v["line"], v["rule"])
                for v in violations))
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
