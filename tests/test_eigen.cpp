#include "src/linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/lu.hpp"
#include "src/markov/fundamental.hpp"
#include "src/markov/spectral.hpp"
#include "src/markov/stationary.hpp"
#include "src/util/rng.hpp"
#include "tests/helpers.hpp"

namespace mocos::linalg {
namespace {

TEST(Eigen, DiagonalMatrix) {
  const auto eig = eigenvalues(Matrix::diag({3.0, -1.0, 2.0}));
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(std::abs(eig[0]), 3.0, 1e-10);
  EXPECT_NEAR(std::abs(eig[1]), 2.0, 1e-10);
  EXPECT_NEAR(std::abs(eig[2]), 1.0, 1e-10);
  EXPECT_NEAR(eig[2].real(), -1.0, 1e-10);
}

TEST(Eigen, RotationMatrixHasComplexPair) {
  const double theta = 0.7;
  Matrix r{{std::cos(theta), -std::sin(theta)},
           {std::sin(theta), std::cos(theta)}};
  const auto eig = eigenvalues(r);
  ASSERT_EQ(eig.size(), 2u);
  EXPECT_NEAR(std::abs(eig[0]), 1.0, 1e-10);
  EXPECT_NEAR(std::abs(eig[1]), 1.0, 1e-10);
  EXPECT_NEAR(std::abs(eig[0].imag()), std::sin(theta), 1e-10);
  EXPECT_NEAR(eig[0].real(), std::cos(theta), 1e-10);
}

TEST(Eigen, CompanionMatrixOfKnownPolynomial) {
  // x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
  Matrix c{{6.0, -11.0, 6.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  const auto eig = eigenvalues(c);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0].real(), 3.0, 1e-8);
  EXPECT_NEAR(eig[1].real(), 2.0, 1e-8);
  EXPECT_NEAR(eig[2].real(), 1.0, 1e-8);
  for (const auto& l : eig) EXPECT_NEAR(l.imag(), 0.0, 1e-8);
}

TEST(Eigen, TraceAndDeterminantIdentities) {
  util::Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const std::size_t n = 3 + rng.index(5);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
    const auto eig = eigenvalues(a);
    std::complex<double> sum(0.0, 0.0), prod(1.0, 0.0);
    for (const auto& l : eig) {
      sum += l;
      prod *= l;
    }
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
    EXPECT_NEAR(sum.real(), trace, 1e-7);
    EXPECT_NEAR(sum.imag(), 0.0, 1e-7);
    EXPECT_NEAR(prod.real(), determinant(a), 1e-6 * std::max(1.0, std::abs(determinant(a))));
  }
}

TEST(Eigen, StochasticMatrixHasPerronEigenvalueOne) {
  util::Rng rng(6);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(5, rng);
    const auto eig = eigenvalues(p.matrix());
    EXPECT_NEAR(std::abs(eig[0]), 1.0, 1e-9);
    EXPECT_NEAR(eig[0].real(), 1.0, 1e-9);
    for (std::size_t k = 1; k < eig.size(); ++k)
      EXPECT_LT(std::abs(eig[k]), 1.0);
  }
}

TEST(Eigen, ValidatesSlemEstimator) {
  // The exact second eigenvalue modulus must match markov::slem.
  util::Rng rng(7);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(5, rng);
    const auto pi = markov::stationary_distribution(p);
    const Matrix deflated = p.matrix() - markov::stationary_rows(pi);
    const double exact = eigenvalue_modulus(deflated, 0);
    // slem() is a repeated-squaring *estimator*; its error shrinks with the
    // λ2/λ3 separation, so allow a modest relative band.
    EXPECT_NEAR(markov::slem(p), exact, 1e-3 + 1e-2 * exact) << "trial " << t;
  }
}

TEST(Eigen, TwoStateChainClosedForm) {
  const auto eig = eigenvalues(test::chain2(0.3, 0.2).matrix());
  ASSERT_EQ(eig.size(), 2u);
  EXPECT_NEAR(eig[0].real(), 1.0, 1e-10);
  EXPECT_NEAR(eig[1].real(), 0.5, 1e-10);
}

TEST(Eigen, EdgeCases) {
  EXPECT_TRUE(eigenvalues(Matrix()).empty());
  const auto one = eigenvalues(Matrix{{4.2}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].real(), 4.2);
  const auto zero = eigenvalues(Matrix(3, 3, 0.0));
  for (const auto& l : zero) EXPECT_EQ(std::abs(l), 0.0);
  EXPECT_THROW(eigenvalues(Matrix(2, 3)), std::invalid_argument);
  EXPECT_THROW(eigenvalue_modulus(Matrix{{1.0}}, 1), std::out_of_range);
}

TEST(Eigen, PeriodicChainEigenvaluesOnUnitCircle) {
  // Deterministic 3-cycle: eigenvalues are the cube roots of unity.
  Matrix m{{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}};
  const auto eig = eigenvalues(m);
  for (const auto& l : eig) EXPECT_NEAR(std::abs(l), 1.0, 1e-9);
  // One real eigenvalue 1, one conjugate pair at angle ±120°.
  int real_count = 0;
  for (const auto& l : eig)
    if (std::abs(l.imag()) < 1e-9) ++real_count;
  EXPECT_EQ(real_count, 1);
}

}  // namespace
}  // namespace mocos::linalg
