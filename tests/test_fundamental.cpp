#include "src/markov/fundamental.hpp"

#include <gtest/gtest.h>

#include "src/markov/stationary.hpp"
#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

TEST(Fundamental, DefinitionHolds) {
  // Z (I - P + W) = I.
  const TransitionMatrix p = test::chain3();
  const auto pi = stationary_distribution(p);
  const auto w = stationary_rows(pi);
  const auto z = fundamental_matrix(p.matrix(), pi);
  const auto m = linalg::Matrix::identity(3) - p.matrix() + w;
  EXPECT_TRUE(linalg::approx_equal(z * m, linalg::Matrix::identity(3), 1e-11));
  EXPECT_TRUE(linalg::approx_equal(m * z, linalg::Matrix::identity(3), 1e-11));
}

TEST(Fundamental, RowSumsAreOne) {
  // Z 1 = 1 because (I - P + W) 1 = 1.
  const TransitionMatrix p = test::chain3();
  const auto chain = analyze_chain(p);
  for (std::size_t i = 0; i < 3; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 3; ++j) s += chain.z(i, j);
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Fundamental, PiZEqualsPi) {
  const TransitionMatrix p = test::chain3();
  const auto chain = analyze_chain(p);
  const auto pi_z = linalg::mul(chain.pi, chain.z);
  EXPECT_TRUE(linalg::approx_equal(pi_z, chain.pi, 1e-12));
}

TEST(Fundamental, StationaryRowsMatrix) {
  const linalg::Vector pi{0.2, 0.3, 0.5};
  const auto w = stationary_rows(pi);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(w(i, j), pi[j]);
}

TEST(Fundamental, UniformChainHasIdentityLikeZ) {
  // For P = W (already stationary), Z = (I - W + W)^(-1) = I.
  const TransitionMatrix p = TransitionMatrix::uniform(4);
  const auto chain = analyze_chain(p);
  EXPECT_TRUE(
      linalg::approx_equal(chain.z, linalg::Matrix::identity(4), 1e-12));
}

TEST(Fundamental, AnalyzeChainBundlesConsistently) {
  util::Rng rng(5);
  const auto p = test::random_positive_chain(5, rng);
  const auto chain = analyze_chain(p);
  EXPECT_EQ(chain.p.size(), 5u);
  EXPECT_TRUE(linalg::approx_equal(chain.w, stationary_rows(chain.pi), 0.0));
  // R diag = mean return times 1/pi_i.
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(chain.r(i, i), 1.0 / chain.pi[i], 1e-9);
}

class FundamentalPropertyTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(FundamentalPropertyTest, IdentitiesAcrossRandomChains) {
  util::Rng rng(500 + GetParam());
  for (int t = 0; t < 5; ++t) {
    const auto p = test::random_positive_chain(GetParam(), rng);
    const auto chain = analyze_chain(p);
    const auto i = linalg::Matrix::identity(GetParam());
    const auto m = i - p.matrix() + chain.w;
    EXPECT_TRUE(linalg::approx_equal(chain.z * m, i, 1e-10));
    // WZ = W and ZW = W.
    EXPECT_TRUE(linalg::approx_equal(chain.w * chain.z, chain.w, 1e-10));
    EXPECT_TRUE(linalg::approx_equal(chain.z * chain.w, chain.w, 1e-10));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FundamentalPropertyTest,
                         ::testing::Values(2, 3, 4, 6, 9));

}  // namespace
}  // namespace mocos::markov
