// Randomized whole-pipeline property tests: random topologies, physics and
// weights; every stage of the library must uphold its invariants. These are
// the "does anything break off the happy path" sweeps complementing the
// per-module unit suites.

#include <gtest/gtest.h>

#include <cmath>

#include "src/cost/gradient.hpp"
#include "src/core/optimizer.hpp"
#include "src/descent/initializers.hpp"
#include "src/geometry/random_topology.hpp"
#include "src/markov/ergodicity.hpp"
#include "src/markov/spectral.hpp"
#include "src/sim/simulator.hpp"
#include "tests/helpers.hpp"

namespace mocos {
namespace {

/// Random valid problem: random PoI cloud, random positive physics, random
/// weights. Deterministic per seed.
core::Problem random_problem(std::uint64_t seed) {
  util::Rng rng(seed);
  geometry::RandomTopologyConfig topo_cfg;
  topo_cfg.num_pois = 3 + rng.index(5);  // 3..7 PoIs
  topo_cfg.extent = 10.0;
  topo_cfg.min_separation = 1.0;
  geometry::Topology topo = geometry::random_topology(topo_cfg, rng);

  core::Physics physics;
  physics.speed = rng.uniform(0.5, 3.0);
  physics.pause = rng.uniform(0.2, 2.0);
  physics.sensing_radius =
      std::min(0.45, 0.4 * topo.min_separation() / 2.0 + 0.01);

  core::Weights w;
  w.alpha = rng.uniform() < 0.8 ? rng.uniform(0.1, 2.0) : 0.0;
  w.beta = rng.uniform() < 0.8 ? rng.uniform(1e-5, 1.0) : 0.0;
  w.epsilon = 1e-4;
  if (rng.uniform() < 0.3) w.energy_gamma = rng.uniform(0.1, 5.0);
  if (rng.uniform() < 0.3) w.entropy_weight = rng.uniform(0.01, 0.3);
  return core::Problem(std::move(topo), physics, w);
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, CostAndMetricsAreFiniteAndConsistent) {
  const auto problem = random_problem(GetParam());
  const auto cost = problem.make_cost();
  util::Rng rng(GetParam() ^ 0xabcULL);
  for (int t = 0; t < 3; ++t) {
    const auto p = test::random_positive_chain(problem.num_pois(), rng);
    const auto chain = markov::analyze_chain(p);
    const double u = cost.value(chain);
    EXPECT_TRUE(std::isfinite(u)) << "seed " << GetParam();
    const auto metrics = problem.metrics_of(p);
    EXPECT_TRUE(std::isfinite(metrics.delta_c));
    EXPECT_GT(metrics.e_bar, 0.0);
    double share_sum = 0.0;
    for (double c : metrics.c_share) {
      EXPECT_GT(c, 0.0);
      share_sum += c;
    }
    EXPECT_LE(share_sum, 1.0 + 1e-9);
  }
}

TEST_P(PipelineFuzz, GradientMatchesFiniteDifference) {
  const auto problem = random_problem(GetParam());
  const auto cost = problem.make_cost();
  const std::size_t n = problem.num_pois();
  util::Rng rng(GetParam() ^ 0xdefULL);
  const auto p = test::random_positive_chain(n, rng);
  const auto chain = markov::analyze_chain(p);
  const auto v = test::random_direction(n, rng);
  const auto grad = cost::cost_gradient(cost, chain);
  const double analytic = linalg::frobenius_dot(grad, v);
  const double h = 1e-7;
  linalg::Matrix plus(n, n), minus(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      plus(i, j) = p(i, j) + h * v(i, j);
      minus(i, j) = p(i, j) - h * v(i, j);
    }
  const double fd = (cost.value(markov::TransitionMatrix(plus)) -
                     cost.value(markov::TransitionMatrix(minus))) /
                    (2.0 * h);
  const double scale = std::max({std::abs(analytic), std::abs(fd), 1.0});
  EXPECT_NEAR(analytic, fd, 2e-4 * scale) << "seed " << GetParam();
}

TEST_P(PipelineFuzz, ShortOptimizationImprovesAndStaysFeasible) {
  const auto problem = random_problem(GetParam());
  core::OptimizerOptions opts;
  opts.max_iterations = 60;
  opts.seed = GetParam();
  opts.keep_trace = false;
  const auto start = markov::TransitionMatrix::uniform(problem.num_pois());
  const double u0 = problem.make_cost().value(start);
  const auto outcome = core::CoverageOptimizer(problem, opts).run();
  EXPECT_LE(outcome.penalized_cost, u0 + 1e-9);
  EXPECT_TRUE(markov::is_ergodic(outcome.p));
  EXPECT_GT(outcome.p.min_entry(), 0.0);
  // Spectral quantities stay sane on the optimized chain.
  EXPECT_LT(markov::slem(outcome.p), 1.0);
}

TEST_P(PipelineFuzz, SimulationAgreesWithAnalyticShares) {
  const auto problem = random_problem(GetParam());
  util::Rng rng(GetParam() ^ 0x123ULL);
  const auto p = test::random_positive_chain(problem.num_pois(), rng, 0.05);
  const auto analytic = problem.metrics_of(p);
  sim::SimulationConfig cfg;
  cfg.num_transitions = 60000;
  sim::MarkovCoverageSimulator sim(problem.model(), cfg);
  const auto res = sim.run(p, rng);
  for (std::size_t i = 0; i < problem.num_pois(); ++i)
    EXPECT_NEAR(res.coverage_share[i], analytic.c_share[i],
                0.03 * analytic.c_share[i] + 0.005)
        << "seed " << GetParam() << " PoI " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mocos
