#include "src/markov/reversal.hpp"

#include <gtest/gtest.h>

#include "src/baselines/metropolis.hpp"
#include "src/markov/stationary.hpp"
#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

TEST(Reversal, ReversedChainSharesStationaryDistribution) {
  util::Rng rng(1);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(5, rng);
    const auto rev = reversed_chain(p);
    EXPECT_TRUE(linalg::approx_equal(stationary_distribution(p),
                                     stationary_distribution(rev), 1e-10));
  }
}

TEST(Reversal, DoubleReversalIsIdentity) {
  util::Rng rng(2);
  const auto p = test::random_positive_chain(4, rng);
  const auto back = reversed_chain(reversed_chain(p));
  EXPECT_TRUE(linalg::approx_equal(back.matrix(), p.matrix(), 1e-12));
}

TEST(Reversal, MetropolisChainsAreReversible) {
  // Metropolis–Hastings constructions satisfy detailed balance by design.
  const auto p = baselines::metropolis_chain({0.4, 0.1, 0.1, 0.4});
  EXPECT_TRUE(is_reversible(p));
  EXPECT_TRUE(
      linalg::approx_equal(reversed_chain(p).matrix(), p.matrix(), 1e-12));
}

TEST(Reversal, GenericChainsAreNot) {
  EXPECT_FALSE(is_reversible(test::chain3()));
  const auto rev = reversed_chain(test::chain3());
  EXPECT_FALSE(
      linalg::approx_equal(rev.matrix(), test::chain3().matrix(), 1e-6));
}

TEST(Reversal, SymmetricChainsAreReversible) {
  // Symmetric P has uniform pi and detailed balance trivially.
  linalg::Matrix m{{0.5, 0.3, 0.2}, {0.3, 0.4, 0.3}, {0.2, 0.3, 0.5}};
  EXPECT_TRUE(is_reversible(TransitionMatrix(m)));
}

}  // namespace
}  // namespace mocos::markov
