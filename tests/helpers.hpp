#pragma once

#include <vector>

#include "src/sensing/travel_model.hpp"
#include "src/core/problem.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/markov/fundamental.hpp"
#include "src/markov/transition_matrix.hpp"
#include "src/util/rng.hpp"

namespace mocos::test {

/// A small, asymmetric, ergodic 3-state chain with known structure used by
/// many analytic unit tests.
inline markov::TransitionMatrix chain3() {
  return markov::TransitionMatrix(linalg::Matrix{
      {0.5, 0.3, 0.2}, {0.1, 0.6, 0.3}, {0.4, 0.4, 0.2}});
}

/// A 2-state chain whose stationary distribution and passage times have
/// closed forms: pi = (b, a)/(a+b), R_12 = 1/a, R_21 = 1/b.
inline markov::TransitionMatrix chain2(double a, double b) {
  return markov::TransitionMatrix(
      linalg::Matrix{{1.0 - a, a}, {b, 1.0 - b}});
}

/// Random strictly-positive ergodic chain (entries bounded away from 0).
inline markov::TransitionMatrix random_positive_chain(std::size_t n,
                                                      util::Rng& rng,
                                                      double floor = 0.02) {
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = floor + rng.uniform();
      sum += m(i, j);
    }
    for (std::size_t j = 0; j < n; ++j) m(i, j) /= sum;
  }
  return markov::TransitionMatrix(std::move(m));
}

/// Standard paper problem: topology index 1..4, default physics, weights.
inline core::Problem paper_problem(int topology, double alpha, double beta,
                                   double epsilon = 1e-4) {
  core::Weights w;
  w.alpha = alpha;
  w.beta = beta;
  w.epsilon = epsilon;
  return core::Problem(geometry::paper_topology(topology), core::Physics{}, w);
}

/// Random row-sum-zero direction matrix with entries in [-1, 1].
inline linalg::Matrix random_direction(std::size_t n, util::Rng& rng) {
  linalg::Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double mean = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      v(i, j) = rng.uniform(-1.0, 1.0);
      mean += v(i, j);
    }
    mean /= static_cast<double>(n);
    for (std::size_t j = 0; j < n; ++j) v(i, j) -= mean;
  }
  return v;
}

}  // namespace mocos::test
