#!/usr/bin/env python3
"""Corpus regression harness (see tools/corpus/).

Slice mode (the tier-1 gate, default):
  1. generates the seeded corpus twice and requires byte-identical trees
     (manifest + every sampled config),
  2. runs the stratified slice through the batch CLI at --jobs 1 and
     --jobs 8 and requires byte-identical summary documents with zero
     scenario failures,
  3. normalizes the summary (floats rounded to 6 significant digits,
     canonical JSON) and compares its sha256 against the checked-in golden
     digest. Regenerate goldens with MOCOS_GOLDEN_UPDATE=1.

Full mode (--full, the nightly-labeled ctest): runs every corpus scenario
through the batch CLI at --jobs 8 and requires zero failures. The golden
digest only covers the slice, so the nightly stays robust to corpus growth
while still sweeping all ~1200 scenarios for crashes, non-determinism
escapes, and numerical failures.

Usage:
  test_corpus_cli.py --cli PATH --corpus-bin PATH --golden-dir DIR [--full]
"""

import argparse
import filecmp
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile

GOLDEN_DIGEST = "corpus_slice.sha256"
GOLDEN_SUMMARY = "corpus_slice_summary.json"


def fail(msg):
    print("FAIL: %s" % msg)
    sys.exit(1)


def run(cmd, cwd=None):
    proc = subprocess.run(cmd, cwd=cwd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def round_floats(node):
    if isinstance(node, float):
        return float("%.6g" % node)
    if isinstance(node, list):
        return [round_floats(x) for x in node]
    if isinstance(node, dict):
        return {k: round_floats(v) for k, v in node.items()}
    return node


def normalize_summary(text):
    doc = round_floats(json.loads(text))
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def generate(corpus_bin, out_dir):
    code, out, err = run([corpus_bin, "--out", out_dir])
    if code != 0:
        fail("mocos_corpus exited %d: %s%s" % (code, out, err))


def check_generation_determinism(corpus_bin, root):
    a = os.path.join(root, "corpus_a")
    b = os.path.join(root, "corpus_b")
    generate(corpus_bin, a)
    generate(corpus_bin, b)
    if not filecmp.cmp(os.path.join(a, "manifest.tsv"),
                       os.path.join(b, "manifest.tsv"), shallow=False):
        fail("same-seed regeneration changed manifest.tsv")
    scenarios = sorted(os.listdir(os.path.join(a, "scenarios")))
    if len(scenarios) < 1000:
        fail("corpus has %d scenarios; expected >= 1000" % len(scenarios))
    # Full per-file comparison is cheap relative to the batch runs below.
    for name in scenarios:
        if not filecmp.cmp(os.path.join(a, "scenarios", name),
                           os.path.join(b, "scenarios", name), shallow=False):
            fail("same-seed regeneration changed scenarios/%s" % name)
    print("ok: deterministic generation (%d scenarios)" % len(scenarios))
    return a


def check_manifest_digests(corpus_dir):
    """Every manifest row's FNV-1a 64 digest must match the file on disk."""
    def fnv1a64(data):
        h = 0xCBF29CE484222325
        for byte in data:
            h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h

    rows = 0
    with open(os.path.join(corpus_dir, "manifest.tsv")) as manifest:
        for line in manifest:
            if line.startswith("#"):
                continue
            fields = line.rstrip("\n").split("\t")
            path, digest = fields[9], fields[10]
            with open(os.path.join(corpus_dir, path), "rb") as conf:
                actual = "%016x" % fnv1a64(conf.read())
            if actual != digest:
                fail("manifest digest mismatch for %s: %s != %s"
                     % (path, actual, digest))
            rows += 1
    print("ok: %d manifest digests verified" % rows)


def run_batch(cli, corpus_dir, list_name, jobs, summary_path):
    code, out, err = run(
        [cli, "--batch", list_name, "--jobs", str(jobs),
         "--summary", summary_path],
        cwd=corpus_dir)
    if code != 0:
        fail("batch %s --jobs %d exited %d\nstderr:\n%s"
             % (list_name, jobs, code, err))
    with open(summary_path) as f:
        text = f.read()
    doc = json.loads(text)
    if doc["failed"] != 0:
        fail("batch %s: %d scenario failures" % (list_name, doc["failed"]))
    return text, doc


def check_slice(cli, corpus_dir, golden_dir, root):
    s1 = os.path.join(root, "summary_jobs1.json")
    s8 = os.path.join(root, "summary_jobs8.json")
    text1, doc1 = run_batch(cli, corpus_dir, "slice.list", 1, s1)
    text8, _ = run_batch(cli, corpus_dir, "slice.list", 8, s8)
    if text1 != text8:
        fail("slice summaries differ between --jobs 1 and --jobs 8")
    print("ok: slice summaries byte-identical across --jobs (%d scenarios)"
          % doc1["scenarios"])

    normalized = normalize_summary(text1)
    digest = hashlib.sha256(normalized.encode()).hexdigest()
    digest_path = os.path.join(golden_dir, GOLDEN_DIGEST)
    summary_path = os.path.join(golden_dir, GOLDEN_SUMMARY)
    if os.environ.get("MOCOS_GOLDEN_UPDATE") == "1":
        with open(digest_path, "w") as f:
            f.write(digest + "\n")
        with open(summary_path, "w") as f:
            f.write(normalized)
        print("ok: goldens updated (%s)" % digest)
        return
    if not os.path.exists(digest_path):
        fail("missing golden %s; run with MOCOS_GOLDEN_UPDATE=1" % digest_path)
    with open(digest_path) as f:
        expected = f.read().strip()
    if digest != expected:
        # The checked-in normalized summary makes the regression reviewable:
        # show which scenarios moved instead of just two hashes.
        diff = ""
        if os.path.exists(summary_path):
            with open(summary_path) as f:
                golden_doc = json.loads(f.read())
            got_doc = json.loads(normalized)
            golden_by = {r["config"]: r for r in golden_doc["results"]}
            got_by = {r["config"]: r for r in got_doc["results"]}
            for key in sorted(set(golden_by) | set(got_by)):
                if golden_by.get(key) != got_by.get(key):
                    diff += "  %s\n    golden: %s\n    got:    %s\n" % (
                        key, golden_by.get(key), got_by.get(key))
        fail("slice summary digest %s != golden %s\nchanged scenarios:\n%s"
             "(intentional? rerun with MOCOS_GOLDEN_UPDATE=1)"
             % (digest, expected, diff or "  (unavailable)\n"))
    print("ok: slice summary matches golden digest %s" % digest[:12])


def check_full(cli, corpus_dir, root):
    summary = os.path.join(root, "summary_full.json")
    _, doc = run_batch(cli, corpus_dir, "full.list", 8, summary)
    print("ok: full corpus clean (%d scenarios)" % doc["scenarios"])


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cli", required=True)
    parser.add_argument("--corpus-bin", required=True)
    parser.add_argument("--golden-dir", required=True)
    parser.add_argument("--full", action="store_true",
                        help="run every scenario (the nightly gate)")
    args = parser.parse_args()
    # Batch runs chdir into the corpus directory, so binary/golden paths
    # must survive the cwd change.
    args.cli = os.path.abspath(args.cli)
    args.corpus_bin = os.path.abspath(args.corpus_bin)
    args.golden_dir = os.path.abspath(args.golden_dir)

    root = tempfile.mkdtemp(prefix="mocos_corpus_")
    try:
        corpus_dir = check_generation_determinism(args.corpus_bin, root)
        check_manifest_digests(corpus_dir)
        if args.full:
            check_full(args.cli, corpus_dir, root)
        else:
            check_slice(args.cli, corpus_dir, args.golden_dir, root)
        print("PASS")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
