#include <gtest/gtest.h>

#include <cmath>

#include "src/sensing/travel_model.hpp"
#include "src/baselines/metropolis.hpp"
#include "src/baselines/proportional.hpp"
#include "src/baselines/tour.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/markov/ergodicity.hpp"
#include "src/markov/stationary.hpp"
#include "tests/helpers.hpp"

namespace mocos::baselines {
namespace {

TEST(Metropolis, AchievesTargetStationaryDistribution) {
  const std::vector<double> target{0.4, 0.1, 0.1, 0.4};
  const auto p = metropolis_chain(target);
  const auto pi = markov::stationary_distribution(p);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(pi[i], target[i], 1e-10);
}

TEST(Metropolis, SatisfiesDetailedBalance) {
  const std::vector<double> target{0.5, 0.2, 0.3};
  const auto p = metropolis_chain(target);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(target[i] * p(i, j), target[j] * p(j, i), 1e-12);
}

TEST(Metropolis, UniformTargetGivesUniformChain) {
  const auto p = metropolis_chain({0.25, 0.25, 0.25, 0.25});
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(p(i, j), 0.25, 1e-12);
}

TEST(Metropolis, RejectsBadTargets) {
  EXPECT_THROW(metropolis_chain({1.0}), std::invalid_argument);
  EXPECT_THROW(metropolis_chain({0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(metropolis_chain({1.0, 0.0}), std::invalid_argument);
}

TEST(MetropolisKnn, AchievesTargetWithLocalMoves) {
  const auto topo = geometry::paper_topology(3);
  sensing::TravelModel model(topo, 1.0, 1.0, 0.25);
  sensing::CoverageTensors tensors(model);
  const std::vector<double> target{0.4, 0.1, 0.1, 0.4};
  const auto p = metropolis_chain_knn(target, tensors.distances(), 1);
  EXPECT_TRUE(markov::is_irreducible(p));
  const auto pi = markov::stationary_distribution(p);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(pi[i], target[i], 1e-9);
}

TEST(MetropolisKnn, RejectsBadK) {
  const auto topo = geometry::paper_topology(1);
  sensing::TravelModel model(topo, 1.0, 1.0, 0.25);
  sensing::CoverageTensors tensors(model);
  const std::vector<double> target{0.25, 0.25, 0.25, 0.25};
  EXPECT_THROW(metropolis_chain_knn(target, tensors.distances(), 0),
               std::invalid_argument);
  EXPECT_THROW(metropolis_chain_knn(target, tensors.distances(), 4),
               std::invalid_argument);
}

TEST(Proportional, RowsAreIdenticalWeights) {
  const std::vector<double> w{0.2, 0.3, 0.5};
  const auto p = proportional_chain(w);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(p(i, j), w[j]);
}

TEST(Proportional, StationaryEqualsWeights) {
  const std::vector<double> w{0.2, 0.3, 0.5};
  const auto pi = markov::stationary_distribution(proportional_chain(w));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(pi[i], w[i], 1e-12);
}

TEST(Proportional, RejectsBadWeights) {
  EXPECT_THROW(proportional_chain({1.0}), std::invalid_argument);
  EXPECT_THROW(proportional_chain({0.5, 0.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(proportional_chain({0.5, 0.6}), std::invalid_argument);
}

TEST(Proportional, WeightsFromTargetsFloorsZeros) {
  const auto w = weights_from_targets({1.0, 0.0});
  EXPECT_GT(w[1], 0.0);
  double s = w[0] + w[1];
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Tour, RoundRobinCoversAllPois) {
  const auto seq = round_robin_tour(4);
  EXPECT_EQ(seq, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Tour, WeightedTourApportionsSlots) {
  const auto seq = weighted_tour({0.5, 0.25, 0.25}, 8);
  ASSERT_EQ(seq.size(), 8u);
  std::vector<int> counts(3, 0);
  for (auto s : seq) counts[s]++;
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
}

TEST(Tour, WeightedTourGuaranteesPresence) {
  const auto seq = weighted_tour({0.98, 0.01, 0.01}, 10);
  std::vector<int> counts(3, 0);
  for (auto s : seq) counts[s]++;
  EXPECT_GE(counts[1], 1);
  EXPECT_GE(counts[2], 1);
}

TEST(Tour, WeightedTourSpreadsOccurrences) {
  // With 4 out of 8 slots, PoI 0 should never appear 3 times in a row.
  const auto seq = weighted_tour({0.5, 0.25, 0.25}, 8);
  for (std::size_t i = 0; i + 2 < seq.size(); ++i)
    EXPECT_FALSE(seq[i] == 0 && seq[i + 1] == 0 && seq[i + 2] == 0);
}

TEST(Tour, ScheduleMetricsForAlternatingPair) {
  auto topo = geometry::make_grid("pair", 1, 2, geometry::uniform_targets(2));
  sensing::TravelModel model(topo, 1.0, 1.0, 0.25);
  TourSchedule tour(model, {0, 1});
  const auto shares = tour.coverage_shares();
  EXPECT_NEAR(shares[0], 0.25, 1e-12);  // pause 1 of total 4 per period
  EXPECT_NEAR(shares[1], 0.25, 1e-12);
  const auto e = tour.mean_exposure_steps();
  EXPECT_NEAR(e[0], 1.0, 1e-12);
  EXPECT_NEAR(e[1], 1.0, 1e-12);
  EXPECT_NEAR(tour.e_bar(), std::sqrt(2.0), 1e-12);
}

TEST(Tour, DeltaCZeroWhenTargetsMatchSchedule) {
  auto topo = geometry::make_grid("pair", 1, 2, geometry::uniform_targets(2));
  sensing::TravelModel model(topo, 1.0, 1.0, 0.25);
  TourSchedule tour(model, {0, 1});
  const auto shares = tour.coverage_shares();
  // Targets equal to achieved shares (renormalized) won't be exactly the
  // Eq.-12 zero because shares sum < 1; instead verify monotonicity: the
  // matched-shape target scores better than a mismatched one.
  const double matched = tour.delta_c({0.5, 0.5});
  const double mismatched = tour.delta_c({0.9, 0.1});
  EXPECT_LT(matched, mismatched);
}

TEST(Tour, ValidatesSequence) {
  auto topo = geometry::make_grid("pair", 1, 2, geometry::uniform_targets(2));
  sensing::TravelModel model(topo, 1.0, 1.0, 0.25);
  EXPECT_THROW(TourSchedule(model, {}), std::invalid_argument);
  EXPECT_THROW(TourSchedule(model, {0, 0}), std::invalid_argument);
  EXPECT_THROW(TourSchedule(model, {0, 5}), std::invalid_argument);
}

TEST(Tour, WeightedTourRejectsBadArgs) {
  EXPECT_THROW(weighted_tour({1.0}, 8), std::invalid_argument);
  EXPECT_THROW(weighted_tour({0.5, 0.5}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mocos::baselines
