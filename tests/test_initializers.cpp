#include "src/descent/initializers.hpp"

#include <gtest/gtest.h>

#include "src/markov/ergodicity.hpp"

namespace mocos::descent {
namespace {

TEST(Initializers, UniformStart) {
  const auto p = uniform_start(5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(p(i, j), 0.2);
}

TEST(Initializers, RandomStartIsErgodic) {
  util::Rng rng(7);
  for (int t = 0; t < 20; ++t) {
    const auto p = random_start(4, rng);
    EXPECT_TRUE(markov::is_ergodic(p));
    EXPECT_GT(p.min_entry(), 0.0);
  }
}

TEST(Initializers, RandomStartsDiffer) {
  util::Rng rng(8);
  const auto a = random_start(4, rng);
  const auto b = random_start(4, rng);
  EXPECT_FALSE(linalg::approx_equal(a.matrix(), b.matrix(), 1e-6));
}

TEST(Initializers, BlendedStartInterpolates) {
  util::Rng rng(9);
  const auto b0 = blended_start(4, 0.0, rng);
  EXPECT_TRUE(linalg::approx_equal(b0.matrix(),
                                   uniform_start(4).matrix(), 1e-12));
  const auto b1 = blended_start(4, 0.5, rng);
  EXPECT_TRUE(markov::is_ergodic(b1));
  EXPECT_THROW(blended_start(4, 1.5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mocos::descent
