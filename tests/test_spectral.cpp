#include "src/markov/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

TEST(Slem, TwoStateClosedForm) {
  // chain2(a, b) has eigenvalues {1, 1 - a - b}.
  for (auto [a, b] : {std::pair{0.3, 0.2}, {0.5, 0.5}, {0.1, 0.05}}) {
    EXPECT_NEAR(slem(test::chain2(a, b)), std::abs(1.0 - a - b), 1e-6)
        << "a=" << a << " b=" << b;
  }
}

TEST(Slem, UniformChainMixesInstantly) {
  EXPECT_NEAR(slem(markov::TransitionMatrix::uniform(5)), 0.0, 1e-9);
}

TEST(Slem, LazyChainCloseToOne) {
  // Mostly-staying chain: eigenvalues near 1.
  linalg::Matrix m(3, 3, 0.005);
  for (std::size_t i = 0; i < 3; ++i) m(i, i) = 0.99;
  EXPECT_GT(slem(TransitionMatrix(m)), 0.9);
  EXPECT_LT(slem(TransitionMatrix(m)), 1.0);
}

TEST(Slem, LazinessInterpolation) {
  // P_lazy = (1-w) I + w P has SLEM 1 - w(1 - lambda2(P)) for real spectra;
  // for the symmetric two-state chain this is exact.
  const auto base = test::chain2(0.5, 0.5);  // lambda2 = 0
  for (double w : {0.25, 0.5, 0.75}) {
    linalg::Matrix m(2, 2);
    for (std::size_t i = 0; i < 2; ++i)
      for (std::size_t j = 0; j < 2; ++j)
        m(i, j) = (1.0 - w) * (i == j ? 1.0 : 0.0) + w * base(i, j);
    EXPECT_NEAR(slem(TransitionMatrix(m)), 1.0 - w, 1e-6);
  }
}

TEST(Slem, BoundedByOneForRandomChains) {
  util::Rng rng(123);
  for (int t = 0; t < 20; ++t) {
    const double s = slem(test::random_positive_chain(6, rng));
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(RelaxationTime, InverseSpectralGap) {
  const auto p = test::chain2(0.3, 0.3);  // slem = 0.4
  EXPECT_NEAR(relaxation_time(p), 1.0 / 0.6, 1e-6);
}

TEST(MixingTime, UniformChainMixesInOneStep) {
  EXPECT_EQ(mixing_time(TransitionMatrix::uniform(4), 0.01), 1u);
}

TEST(MixingTime, SlowChainTakesLonger) {
  linalg::Matrix fast_m{{0.5, 0.5}, {0.5, 0.5}};
  linalg::Matrix slow_m{{0.95, 0.05}, {0.05, 0.95}};
  const auto fast = mixing_time(TransitionMatrix(fast_m), 0.05);
  const auto slow = mixing_time(TransitionMatrix(slow_m), 0.05);
  EXPECT_LT(fast, slow);
  EXPECT_GT(slow, 10u);
}

TEST(MixingTime, MatchesGeometricDecayForTwoState) {
  // TV distance from the worst start decays exactly like |1-a-b|^t * max
  // start distance; for a=b the distance at t is (1-2a)^t / 2.
  const double a = 0.2;
  const auto p = test::chain2(a, a);
  const double lambda = 1.0 - 2.0 * a;
  const double eps = 0.05;
  // Smallest t with lambda^t / 2 <= eps.
  std::size_t expected = static_cast<std::size_t>(
      std::ceil(std::log(2.0 * eps) / std::log(lambda)));
  EXPECT_EQ(mixing_time(p, eps), expected);
}

TEST(MixingTime, RejectsBadEps) {
  EXPECT_THROW(mixing_time(TransitionMatrix::uniform(3), 0.0),
               std::invalid_argument);
  EXPECT_THROW(mixing_time(TransitionMatrix::uniform(3), 1.0),
               std::invalid_argument);
}

TEST(Kemeny, StartIndependence) {
  util::Rng rng(321);
  for (int t = 0; t < 10; ++t) {
    const auto chain = analyze_chain(test::random_positive_chain(5, rng));
    const double k0 = kemeny_constant_from_row(chain, 0);
    for (std::size_t i = 1; i < 5; ++i)
      EXPECT_NEAR(kemeny_constant_from_row(chain, i), k0, 1e-9);
  }
}

TEST(Kemeny, TraceIdentity) {
  util::Rng rng(322);
  for (int t = 0; t < 10; ++t) {
    const auto chain = analyze_chain(test::random_positive_chain(4, rng));
    EXPECT_NEAR(kemeny_constant(chain), kemeny_constant_from_row(chain, 0),
                1e-9);
  }
}

TEST(Kemeny, TwoStateClosedForm) {
  // For chain2(a,b): K = trace(Z) - 1; Z eigenvalues {1, 1/(a+b)} =>
  // trace Z = 1 + 1/(a+b); K = 1/(a+b).
  const double a = 0.3, b = 0.2;
  const auto chain = analyze_chain(test::chain2(a, b));
  EXPECT_NEAR(kemeny_constant(chain), 1.0 / (a + b), 1e-10);
}

TEST(Kemeny, UniformChainValue) {
  // Uniform chain on n states: Z = I, so K = trace(Z) - 1 = n - 1.
  const auto chain = analyze_chain(TransitionMatrix::uniform(6));
  EXPECT_NEAR(kemeny_constant(chain), 5.0, 1e-10);
}

TEST(Kemeny, RowOutOfRangeThrows) {
  const auto chain = analyze_chain(test::chain3());
  EXPECT_THROW(kemeny_constant_from_row(chain, 3), std::out_of_range);
}


TEST(Spectrum, ExactSlemMatchesEstimatorAndSpectrumShape) {
  util::Rng rng(324);
  for (int t = 0; t < 8; ++t) {
    const auto p = test::random_positive_chain(5, rng);
    const auto eig = chain_spectrum(p);
    ASSERT_EQ(eig.size(), 5u);
    EXPECT_NEAR(std::abs(eig[0]), 1.0, 1e-9);
    for (std::size_t k = 1; k < 5; ++k) EXPECT_LT(std::abs(eig[k]), 1.0);
    EXPECT_NEAR(slem(p), slem_exact(p), 1e-3 + 1e-2 * slem_exact(p));
  }
}

TEST(Spectrum, CyclicStructureShowsComplexPairs) {
  // A strongly cyclic (but aperiodic) 3-chain has a complex pair.
  linalg::Matrix m{{0.05, 0.9, 0.05}, {0.05, 0.05, 0.9}, {0.9, 0.05, 0.05}};
  const auto eig = chain_spectrum(TransitionMatrix(m));
  bool complex_pair = false;
  for (const auto& l : eig)
    if (std::abs(l.imag()) > 0.1) complex_pair = true;
  EXPECT_TRUE(complex_pair);
}

}  // namespace
}  // namespace mocos::markov
