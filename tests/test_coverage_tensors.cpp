#include "src/sensing/travel_model.hpp"
#include "src/sensing/coverage_tensors.hpp"

#include <gtest/gtest.h>

#include "src/geometry/paper_topologies.hpp"

namespace mocos::sensing {
namespace {

TEST(CoverageTensors, DurationsMatchModel) {
  TravelModel model(geometry::paper_topology(3), 1.0, 1.0, 0.25);
  CoverageTensors t(model);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_DOUBLE_EQ(t.durations()(j, k), model.transition_duration(j, k));
}

TEST(CoverageTensors, CoverageMatchesModel) {
  TravelModel model(geometry::paper_topology(3), 1.0, 1.0, 0.25);
  CoverageTensors t(model);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_DOUBLE_EQ(t.coverage_of(i)(j, k),
                         model.coverage_during(j, k, i));
}

TEST(CoverageTensors, CoverageNeverExceedsDuration) {
  TravelModel model(geometry::paper_topology(4), 1.0, 1.0, 0.25);
  CoverageTensors t(model);
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = 0; j < 9; ++j)
      for (std::size_t k = 0; k < 9; ++k)
        EXPECT_LE(t.coverage_of(i)(j, k), t.durations()(j, k) + 1e-12);
}

TEST(CoverageTensors, TotalCoveragePerTransitionBounded) {
  // PoIs are disjoint, so summed pass-by coverage cannot exceed duration.
  TravelModel model(geometry::paper_topology(3), 1.0, 1.0, 0.25);
  CoverageTensors t(model);
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t k = 0; k < 4; ++k) {
      double total = 0.0;
      for (std::size_t i = 0; i < 4; ++i) total += t.coverage_of(i)(j, k);
      EXPECT_LE(total, t.durations()(j, k) + 1e-12);
    }
  }
}

TEST(CoverageTensors, DeviationKernelsDefinition) {
  TravelModel model(geometry::paper_topology(3), 1.0, 1.0, 0.25);
  CoverageTensors t(model);
  const auto targets = model.topology().targets();
  const auto kernels = t.deviation_kernels(targets);
  ASSERT_EQ(kernels.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_DOUBLE_EQ(
            kernels[i](j, k),
            t.coverage_of(i)(j, k) - targets[i] * t.durations()(j, k));
}

TEST(CoverageTensors, KernelsSumNegativeOffDiagonal) {
  // Σ_i B^i_jk = Σ_i T_jk,i − T_jk ≤ 0 since coverage can't exceed duration.
  TravelModel model(geometry::paper_topology(1), 1.0, 1.0, 0.25);
  CoverageTensors t(model);
  const auto kernels =
      t.deviation_kernels(model.topology().targets());
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t k = 0; k < 4; ++k) {
      double s = 0.0;
      for (std::size_t i = 0; i < 4; ++i) s += kernels[i](j, k);
      EXPECT_LE(s, 1e-12);
    }
}

TEST(CoverageTensors, RejectsBadTargetSize) {
  TravelModel model(geometry::paper_topology(1), 1.0, 1.0, 0.25);
  CoverageTensors t(model);
  EXPECT_THROW(t.deviation_kernels({0.5, 0.5}), std::invalid_argument);
}

TEST(CoverageTensors, OutOfRangeThrows) {
  TravelModel model(geometry::paper_topology(1), 1.0, 1.0, 0.25);
  CoverageTensors t(model);
  EXPECT_THROW(t.coverage_of(4), std::out_of_range);
}

}  // namespace
}  // namespace mocos::sensing
