#include "src/descent/annealing_baseline.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/cost/barrier_term.hpp"
#include "src/cost/coverage_term.hpp"
#include "src/cost/exposure_term.hpp"
#include "src/descent/initializers.hpp"
#include "src/descent/perturbed_descent.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/markov/ergodicity.hpp"
#include "src/sensing/travel_model.hpp"
#include "tests/helpers.hpp"

namespace mocos::descent {
namespace {

struct Fixture {
  sensing::TravelModel model;
  sensing::CoverageTensors tensors;
  cost::CompositeCost u;

  Fixture(int topo, double alpha, double beta)
      : model(geometry::paper_topology(topo), 1.0, 1.0, 0.25),
        tensors(model) {
    if (alpha != 0.0)
      u.add(std::make_unique<cost::CoverageDeviationTerm>(
          tensors, model.topology().targets(), alpha));
    if (beta != 0.0)
      u.add(std::make_unique<cost::ExposureTerm>(model.num_pois(), beta));
    u.add(std::make_unique<cost::BarrierTerm>(1e-4));
  }
};

TEST(AnnealingBaseline, ImprovesOnStart) {
  Fixture f(1, 0.0, 1.0);
  util::Rng rng(1);
  AnnealingConfig cfg;
  cfg.max_iterations = 800;
  const auto start = uniform_start(4);
  const auto res = anneal_schedule(f.u, start, cfg, rng);
  EXPECT_LT(res.best_cost, safe_cost(f.u, start));
  EXPECT_TRUE(markov::is_ergodic(res.best_p));
  EXPECT_GT(res.accepted, 0u);
}

TEST(AnnealingBaseline, BestMatrixMatchesBestCost) {
  Fixture f(2, 1.0, 0.0);
  util::Rng rng(2);
  AnnealingConfig cfg;
  cfg.max_iterations = 400;
  const auto res = anneal_schedule(f.u, uniform_start(4), cfg, rng);
  EXPECT_NEAR(safe_cost(f.u, res.best_p), res.best_cost, 1e-12);
}

TEST(AnnealingBaseline, GradientGuidedV4BeatsBlindAnnealing) {
  // The control-arm comparison: same iteration budget, same annealing
  // schedule — the gradient-guided perturbed algorithm must reach a
  // substantially better cost.
  Fixture f(1, 0.0, 1.0);
  const std::size_t budget = 800;

  util::Rng rng_a(3);
  AnnealingConfig cfg;
  cfg.max_iterations = budget;
  const auto blind = anneal_schedule(f.u, uniform_start(4), cfg, rng_a);

  PerturbedConfig pcfg;
  pcfg.max_iterations = budget;
  pcfg.keep_trace = false;
  util::Rng rng_b(3);
  const auto guided =
      PerturbedDescent(f.u, pcfg).run(uniform_start(4), rng_b);

  EXPECT_LT(guided.best_cost, blind.best_cost);
}

TEST(AnnealingBaseline, ValidatesConfig) {
  Fixture f(1, 1.0, 0.0);
  util::Rng rng(4);
  AnnealingConfig bad;
  bad.max_iterations = 0;
  EXPECT_THROW(anneal_schedule(f.u, uniform_start(4), bad, rng),
               std::invalid_argument);
  AnnealingConfig bad2;
  bad2.proposal_scale = 0.0;
  EXPECT_THROW(anneal_schedule(f.u, uniform_start(4), bad2, rng),
               std::invalid_argument);
  AnnealingConfig bad3;
  bad3.annealing_k = 0.0;
  EXPECT_THROW(anneal_schedule(f.u, uniform_start(4), bad3, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mocos::descent
