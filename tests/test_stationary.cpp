#include "src/markov/stationary.hpp"

#include <gtest/gtest.h>

#include "src/linalg/matrix.hpp"
#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

TEST(Stationary, TwoStateClosedForm) {
  // pi = (b, a) / (a + b) for chain2(a, b).
  const double a = 0.3, b = 0.2;
  const auto pi = stationary_distribution(test::chain2(a, b));
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
}

TEST(Stationary, UniformChainIsUniform) {
  const auto pi = stationary_distribution(TransitionMatrix::uniform(5));
  for (double x : pi) EXPECT_NEAR(x, 0.2, 1e-12);
}

TEST(Stationary, SatisfiesFixedPointEquation) {
  const TransitionMatrix p = test::chain3();
  const auto pi = stationary_distribution(p);
  const auto pi_p = linalg::mul(pi, p.matrix());
  EXPECT_TRUE(linalg::approx_equal(pi, pi_p, 1e-12));
}

TEST(Stationary, SumsToOneAndPositive) {
  util::Rng rng(21);
  for (int t = 0; t < 20; ++t) {
    const auto p = test::random_positive_chain(6, rng);
    const auto pi = stationary_distribution(p);
    double s = 0.0;
    for (double x : pi) {
      EXPECT_GT(x, 0.0);
      s += x;
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Stationary, MatchesPowerIteration) {
  util::Rng rng(22);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(5, rng);
    const auto direct = stationary_distribution(p);
    const auto power = stationary_power_iteration(p);
    EXPECT_TRUE(linalg::approx_equal(direct, power, 1e-9));
  }
}

// --- Degenerate chains through the guarded solver -------------------------

TEST(TryStationary, ErgodicChainMatchesThrowingSolver) {
  const auto p = test::chain3();
  const auto pi = try_stationary_distribution(p);
  ASSERT_TRUE(pi.ok());
  EXPECT_TRUE(linalg::approx_equal(*pi, stationary_distribution(p), 1e-12));
}

TEST(TryStationary, FullyReducibleChainIsSingular) {
  // The identity chain: every state absorbing, stationary distribution not
  // unique, so the direct system (I - P^T + 11^T) is the all-ones matrix.
  const TransitionMatrix p(linalg::Matrix::identity(4));
  const auto pi = try_stationary_distribution(p);
  ASSERT_FALSE(pi.ok());
  EXPECT_EQ(pi.status().code(), util::StatusCode::kSingularMatrix);
}

TEST(TryStationary, TwoClassReducibleChainIsSingular) {
  // Two closed communicating classes {0,1} and {2,3}: the difference of the
  // per-class stationary vectors is in the null space of the direct system.
  const TransitionMatrix p(linalg::Matrix{{0.5, 0.5, 0.0, 0.0},
                                          {0.5, 0.5, 0.0, 0.0},
                                          {0.0, 0.0, 0.5, 0.5},
                                          {0.0, 0.0, 0.5, 0.5}});
  const auto pi = try_stationary_distribution(p);
  ASSERT_FALSE(pi.ok());
  // Depending on round-off the rank deficiency surfaces either as a pivot
  // underflow or as negative stationary mass — both are structured
  // numerical failures, never a bogus distribution.
  EXPECT_TRUE(util::is_numerical_failure(pi.status().code()))
      << pi.status().to_string();
  EXPECT_TRUE(pi.status().code() == util::StatusCode::kSingularMatrix ||
              pi.status().code() == util::StatusCode::kNotErgodic)
      << pi.status().to_string();
}

TEST(TryStationary, PeriodicChainSolvesDirectButFailsPowerIteration) {
  // Irreducible but periodic (period 2, bipartite {0,2} <-> {1}): the
  // stationary distribution exists and the direct solve finds it, while
  // power iteration oscillates forever and must report kNotErgodic instead
  // of silently returning a non-fixed-point.
  const TransitionMatrix p(linalg::Matrix{
      {0.0, 1.0, 0.0}, {0.5, 0.0, 0.5}, {0.0, 1.0, 0.0}});

  const auto direct = try_stationary_distribution(p);
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR((*direct)[0], 0.25, 1e-12);
  EXPECT_NEAR((*direct)[1], 0.50, 1e-12);
  EXPECT_NEAR((*direct)[2], 0.25, 1e-12);

  const auto power =
      try_stationary_distribution(p, StationarySolver::kPowerIteration);
  ASSERT_FALSE(power.ok());
  EXPECT_EQ(power.status().code(), util::StatusCode::kNotErgodic);
  EXPECT_NE(power.status().message().find("fixed point"), std::string::npos);
}

TEST(TryStationary, PowerIterationSolverAgreesOnErgodicChains) {
  util::Rng rng(23);
  for (int t = 0; t < 5; ++t) {
    const auto p = test::random_positive_chain(5, rng);
    const auto direct = try_stationary_distribution(p);
    const auto power =
        try_stationary_distribution(p, StationarySolver::kPowerIteration);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(power.ok());
    EXPECT_TRUE(linalg::approx_equal(*direct, *power, 1e-9));
  }
}

class StationarySizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StationarySizeTest, FixedPointAcrossSizes) {
  util::Rng rng(100 + GetParam());
  const auto p = test::random_positive_chain(GetParam(), rng);
  const auto pi = stationary_distribution(p);
  EXPECT_TRUE(
      linalg::approx_equal(pi, linalg::mul(pi, p.matrix()), 1e-11));
}

INSTANTIATE_TEST_SUITE_P(Sizes, StationarySizeTest,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 16));

}  // namespace
}  // namespace mocos::markov
