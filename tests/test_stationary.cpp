#include "src/markov/stationary.hpp"

#include <gtest/gtest.h>

#include "src/linalg/matrix.hpp"
#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

TEST(Stationary, TwoStateClosedForm) {
  // pi = (b, a) / (a + b) for chain2(a, b).
  const double a = 0.3, b = 0.2;
  const auto pi = stationary_distribution(test::chain2(a, b));
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
}

TEST(Stationary, UniformChainIsUniform) {
  const auto pi = stationary_distribution(TransitionMatrix::uniform(5));
  for (double x : pi) EXPECT_NEAR(x, 0.2, 1e-12);
}

TEST(Stationary, SatisfiesFixedPointEquation) {
  const TransitionMatrix p = test::chain3();
  const auto pi = stationary_distribution(p);
  const auto pi_p = linalg::mul(pi, p.matrix());
  EXPECT_TRUE(linalg::approx_equal(pi, pi_p, 1e-12));
}

TEST(Stationary, SumsToOneAndPositive) {
  util::Rng rng(21);
  for (int t = 0; t < 20; ++t) {
    const auto p = test::random_positive_chain(6, rng);
    const auto pi = stationary_distribution(p);
    double s = 0.0;
    for (double x : pi) {
      EXPECT_GT(x, 0.0);
      s += x;
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Stationary, MatchesPowerIteration) {
  util::Rng rng(22);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(5, rng);
    const auto direct = stationary_distribution(p);
    const auto power = stationary_power_iteration(p);
    EXPECT_TRUE(linalg::approx_equal(direct, power, 1e-9));
  }
}

class StationarySizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StationarySizeTest, FixedPointAcrossSizes) {
  util::Rng rng(100 + GetParam());
  const auto p = test::random_positive_chain(GetParam(), rng);
  const auto pi = stationary_distribution(p);
  EXPECT_TRUE(
      linalg::approx_equal(pi, linalg::mul(pi, p.matrix()), 1e-11));
}

INSTANTIATE_TEST_SUITE_P(Sizes, StationarySizeTest,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 16));

}  // namespace
}  // namespace mocos::markov
