// Integration tests: long Markov simulations must converge to the
// closed-form quantities of §III — coverage shares (Eq. 2), unit-transition
// exposures (Eq. 3), ΔC and Ē (Eqs. 12, 13). This is the paper's §VI-D
// validation ("the measured U in the simulations gives a close match with
// the computed U").

#include <gtest/gtest.h>

#include <cmath>

#include "src/sensing/travel_model.hpp"
#include "src/cost/exposure_term.hpp"
#include "src/cost/metrics.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/sim/simulator.hpp"
#include "tests/helpers.hpp"

namespace mocos::sim {
namespace {

struct SimSetup {
  sensing::TravelModel model;
  sensing::CoverageTensors tensors;
  explicit SimSetup(int topo)
      : model(geometry::paper_topology(topo), 1.0, 1.0, 0.25),
        tensors(model) {}
};

class SimVsAnalyticTest : public ::testing::TestWithParam<int> {};

TEST_P(SimVsAnalyticTest, CoverageSharesConverge) {
  SimSetup s(GetParam());
  const std::size_t n = s.model.num_pois();
  util::Rng rng(300 + GetParam());
  const auto p = test::random_positive_chain(n, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto analytic = cost::coverage_shares(chain, s.tensors);

  SimulationConfig cfg;
  cfg.num_transitions = 300000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.coverage_share[i], analytic[i], 0.01)
        << "PoI " << i << " topology " << GetParam();
}

TEST_P(SimVsAnalyticTest, ExposuresConverge) {
  SimSetup s(GetParam());
  const std::size_t n = s.model.num_pois();
  util::Rng rng(400 + GetParam());
  const auto p = test::random_positive_chain(n, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto analytic = cost::ExposureTerm::compute_mean_exposures(chain);

  SimulationConfig cfg;
  cfg.num_transitions = 300000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.exposure_steps[i], analytic[i],
                0.05 * analytic[i] + 0.05)
        << "PoI " << i << " topology " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Topologies, SimVsAnalyticTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(SimVsAnalytic, DeltaCMatchesAnalytic) {
  SimSetup s(3);
  util::Rng rng(500);
  const auto p = test::random_positive_chain(4, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto targets = s.model.topology().targets();
  const auto m = cost::compute_metrics(chain, s.tensors, targets);

  SimulationConfig cfg;
  cfg.num_transitions = 400000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  EXPECT_NEAR(res.delta_c(targets), m.delta_c,
              0.05 * m.delta_c + 1e-5);
}

TEST(SimVsAnalytic, EBarMatchesAnalytic) {
  SimSetup s(1);
  util::Rng rng(501);
  const auto p = test::random_positive_chain(4, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto m =
      cost::compute_metrics(chain, s.tensors, s.model.topology().targets());

  SimulationConfig cfg;
  cfg.num_transitions = 400000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  EXPECT_NEAR(res.e_bar(), m.e_bar, 0.03 * m.e_bar);
}

TEST(SimVsAnalytic, Equation14CostMatches) {
  // β = 0 case: "the measured U gives a perfect match" — here sampling noise
  // is the only gap, so demand a tight tolerance.
  SimSetup s(2);
  util::Rng rng(502);
  const auto p = test::random_positive_chain(4, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto targets = s.model.topology().targets();
  const auto m = cost::compute_metrics(chain, s.tensors, targets);

  SimulationConfig cfg;
  cfg.num_transitions = 400000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  EXPECT_NEAR(res.cost(1.0, 0.0, targets), m.cost(1.0, 0.0),
              0.05 * m.cost(1.0, 0.0) + 1e-6);
}

TEST(SimVsAnalytic, WallClockExposureDiffersFromUnitConvention) {
  // The paper's §VI-D caveat: the analytic Ē uses unit transitions, so the
  // wall-clock measurement deviates (transitions have different durations).
  SimSetup s(4);
  util::Rng rng(503);
  const auto p = test::random_positive_chain(9, rng, 0.02);

  SimulationConfig cfg;
  cfg.num_transitions = 100000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  // Wall-clock exposures are longer: every transition takes >= pause = 1
  // time unit and usually more (travel).
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_GT(res.exposure_time[i], res.exposure_steps[i]);
}

}  // namespace
}  // namespace mocos::sim
