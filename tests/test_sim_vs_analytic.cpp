// Integration tests: long Markov simulations must converge to the
// closed-form quantities of §III — coverage shares (Eq. 2), unit-transition
// exposures (Eq. 3), ΔC and Ē (Eqs. 12, 13). This is the paper's §VI-D
// validation ("the measured U in the simulations gives a close match with
// the computed U").

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/sensing/travel_model.hpp"
#include "src/cost/event_capture_term.hpp"
#include "src/cost/exposure_term.hpp"
#include "src/cost/metrics.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/sim/event_capture.hpp"
#include "src/sim/simulator.hpp"
#include "tests/helpers.hpp"

namespace mocos::sim {
namespace {

struct SimSetup {
  sensing::TravelModel model;
  sensing::CoverageTensors tensors;
  explicit SimSetup(int topo)
      : model(geometry::paper_topology(topo), 1.0, 1.0, 0.25),
        tensors(model) {}
};

class SimVsAnalyticTest : public ::testing::TestWithParam<int> {};

TEST_P(SimVsAnalyticTest, CoverageSharesConverge) {
  SimSetup s(GetParam());
  const std::size_t n = s.model.num_pois();
  util::Rng rng(300 + GetParam());
  const auto p = test::random_positive_chain(n, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto analytic = cost::coverage_shares(chain, s.tensors);

  SimulationConfig cfg;
  cfg.num_transitions = 300000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.coverage_share[i], analytic[i], 0.01)
        << "PoI " << i << " topology " << GetParam();
}

TEST_P(SimVsAnalyticTest, ExposuresConverge) {
  SimSetup s(GetParam());
  const std::size_t n = s.model.num_pois();
  util::Rng rng(400 + GetParam());
  const auto p = test::random_positive_chain(n, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto analytic = cost::ExposureTerm::compute_mean_exposures(chain);

  SimulationConfig cfg;
  cfg.num_transitions = 300000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.exposure_steps[i], analytic[i],
                0.05 * analytic[i] + 0.05)
        << "PoI " << i << " topology " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Topologies, SimVsAnalyticTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(SimVsAnalytic, DeltaCMatchesAnalytic) {
  SimSetup s(3);
  util::Rng rng(500);
  const auto p = test::random_positive_chain(4, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto targets = s.model.topology().targets();
  const auto m = cost::compute_metrics(chain, s.tensors, targets);

  SimulationConfig cfg;
  cfg.num_transitions = 400000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  EXPECT_NEAR(res.delta_c(targets), m.delta_c,
              0.05 * m.delta_c + 1e-5);
}

TEST(SimVsAnalytic, EBarMatchesAnalytic) {
  SimSetup s(1);
  util::Rng rng(501);
  const auto p = test::random_positive_chain(4, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto m =
      cost::compute_metrics(chain, s.tensors, s.model.topology().targets());

  SimulationConfig cfg;
  cfg.num_transitions = 400000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  EXPECT_NEAR(res.e_bar(), m.e_bar, 0.03 * m.e_bar);
}

TEST(SimVsAnalytic, Equation14CostMatches) {
  // β = 0 case: "the measured U gives a perfect match" — here sampling noise
  // is the only gap, so demand a tight tolerance.
  SimSetup s(2);
  util::Rng rng(502);
  const auto p = test::random_positive_chain(4, rng, 0.05);
  const auto chain = markov::analyze_chain(p);
  const auto targets = s.model.topology().targets();
  const auto m = cost::compute_metrics(chain, s.tensors, targets);

  SimulationConfig cfg;
  cfg.num_transitions = 400000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  EXPECT_NEAR(res.cost(1.0, 0.0, targets), m.cost(1.0, 0.0),
              0.05 * m.cost(1.0, 0.0) + 1e-6);
}

/// Distance from PoI `k` to the straight segment between PoIs `a` and `b`.
double poi_to_segment(const geometry::Topology& topo, std::size_t a,
                      std::size_t b, std::size_t k) {
  const geometry::Vec2 pa = topo.position(a);
  const geometry::Vec2 d = topo.position(b) - pa;
  const geometry::Vec2 q = topo.position(k) - pa;
  const double len2 = d.x * d.x + d.y * d.y;
  const double t =
      std::clamp(len2 > 0.0 ? (q.x * d.x + q.y * d.y) / len2 : 0.0, 0.0, 1.0);
  const geometry::Vec2 gap = q - d * t;
  return std::sqrt(gap.x * gap.x + gap.y * gap.y);
}

/// Random ergodic chain supported only on transitions whose straight-line
/// path stays clear of every third PoI. On the line and grid topologies a
/// fully dense chain overflies intermediate PoIs in transit, capturing
/// events the stationary-hitting model cannot see; nearest-neighbour moves
/// (which this restriction keeps) leave all four paper topologies strongly
/// connected.
markov::TransitionMatrix clear_path_chain(const geometry::Topology& topo,
                                          util::Rng& rng, double margin) {
  const std::size_t n = topo.size();
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 0.1 + rng.uniform();
    double sum = m(i, i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      bool clear = true;
      for (std::size_t k = 0; k < n && clear; ++k)
        if (k != i && k != j) clear = poi_to_segment(topo, i, j, k) > margin;
      if (!clear) continue;
      m(i, j) = 0.05 + rng.uniform();
      sum += m(i, j);
    }
    for (std::size_t j = 0; j < n; ++j) m(i, j) /= sum;
  }
  return markov::TransitionMatrix(m);
}

class CaptureVsAnalyticTest : public ::testing::TestWithParam<int> {};

TEST_P(CaptureVsAnalyticTest, EventCaptureTermMatchesMonteCarlo) {
  // Matched regime for the analytic capture model: near-instant travel
  // (speed 200) makes one transition ~ one pause = one time unit, a small
  // sensing radius makes "covered" ~ "paused at the PoI", and the chain
  // support keeps transit paths clear of third PoIs, so the simulator's
  // wall-clock event window lines up with the term's window in transitions.
  // What remains is the term's documented exponentialization of the
  // residual hitting time — the tolerances below budget that modeling
  // error plus Monte Carlo noise (see DESIGN.md §14).
  const int topo = GetParam();
  sensing::TravelModel model(geometry::paper_topology(topo), 200.0, 1.0,
                             0.05);
  const std::size_t n = model.num_pois();
  util::Rng rng(600 + topo);
  const auto p = clear_path_chain(model.topology(), rng, 0.2);
  const auto chain = markov::analyze_chain(p);

  const double duration = 2.0;
  const std::vector<double> rates(n, 1.5);
  const cost::EventCaptureTerm term(rates, duration, 1.0);
  const auto analytic = term.per_poi_capture(chain);

  EventCaptureConfig cfg;
  cfg.num_transitions = 60000;
  cfg.event_duration = duration;
  const auto res = EventCaptureSimulator(cfg).run(model, p, rates, rng);

  double weighted_sim = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(res.events[i], 500u) << "PoI " << i;
    EXPECT_NEAR(res.capture_fraction[i], analytic[i], 0.08)
        << "PoI " << i << " topology " << topo;
    weighted_sim += res.capture_fraction[i];
  }
  // Per-PoI errors are signed modeling residuals that partially cancel in
  // the aggregate the term actually optimizes.
  EXPECT_NEAR(weighted_sim / static_cast<double>(n),
              term.capture_fraction(chain), 0.05)
      << "topology " << topo;
}

INSTANTIATE_TEST_SUITE_P(Topologies, CaptureVsAnalyticTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(SimVsAnalytic, WallClockExposureDiffersFromUnitConvention) {
  // The paper's §VI-D caveat: the analytic Ē uses unit transitions, so the
  // wall-clock measurement deviates (transitions have different durations).
  SimSetup s(4);
  util::Rng rng(503);
  const auto p = test::random_positive_chain(9, rng, 0.02);

  SimulationConfig cfg;
  cfg.num_transitions = 100000;
  MarkovCoverageSimulator sim(s.model, cfg);
  const auto res = sim.run(p, rng);
  // Wall-clock exposures are longer: every transition takes >= pause = 1
  // time unit and usually more (travel).
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_GT(res.exposure_time[i], res.exposure_steps[i]);
}

}  // namespace
}  // namespace mocos::sim
