#!/usr/bin/env python3
"""Tests for tools/bench/bench_trend.py (stdlib only).

Covers the gate the CI bench-trend step relies on:

  - the checked-in BENCH_*.json files pass `--check` against the current
    schema and baselines (the repo is always in a passing state),
  - a regressed metric (fixture copy with a blown overhead percentage)
    fails `--check` with a band violation naming the metric,
  - a schema violation (unexpected field) fails even when every band holds,
  - a BENCH file with no schema entry fails (new benches must be added to
    the schema in the same change),
  - the band-path resolver handles `[*]`, `[N]`, and `[name=value]`
    selectors and reports unresolvable paths,
  - usage errors (bad --slack, unsupported schema version) exit 2.

Registered as the `BenchTrend.selftest` ctest; runnable directly:
    python3 tests/test_bench_trend.py
"""

import importlib.util
import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_TREND = os.path.join(REPO_ROOT, "tools", "bench", "bench_trend.py")

_spec = importlib.util.spec_from_file_location("bench_trend", BENCH_TREND)
bench_trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_trend)


def run_tool(args, cwd=REPO_ROOT):
    return subprocess.run([sys.executable, BENCH_TREND] + args,
                          capture_output=True, text=True, cwd=cwd)


class CheckedInFilesPass(unittest.TestCase):
    """The repo invariant: every committed BENCH file passes --check."""

    def test_repo_root_passes_check(self):
        proc = run_tool(["--check"])
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + "\n" + proc.stderr)
        self.assertIn("pass", proc.stdout)

    def test_report_mode_prints_tracked_metrics(self):
        proc = run_tool([])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("tracked metric", proc.stdout)
        self.assertIn("ok", proc.stdout)


class RegressionFixture(unittest.TestCase):
    """A copied bench dir with one regressed metric must fail --check —
    and only --check (report mode stays exit 0 but prints the failure)."""

    BENCH = "BENCH_descent_telemetry.json"

    def make_bench_dir(self, mutate=None):
        tmp = tempfile.mkdtemp()
        self.addCleanup(shutil.rmtree, tmp)
        src = os.path.join(REPO_ROOT, self.BENCH)
        dst = os.path.join(tmp, self.BENCH)
        shutil.copy(src, dst)
        if mutate:
            with open(dst) as f:
                doc = json.load(f)
            mutate(doc)
            with open(dst, "w") as f:
                json.dump(doc, f)
        return tmp

    def test_unmodified_copy_passes(self):
        tmp = self.make_bench_dir()
        proc = run_tool(["--check", "--bench-dir", tmp])
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_overhead_regression_fails_check(self):
        def blow_overhead(doc):
            doc["profile_overhead_pct"] = 50.0  # band max is 3.0
        tmp = self.make_bench_dir(blow_overhead)
        proc = run_tool(["--check", "--bench-dir", tmp])
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("profile_overhead_pct", proc.stderr)
        self.assertIn("outside", proc.stderr)
        # Report mode surfaces the same failure without the hard exit.
        proc = run_tool(["--bench-dir", tmp])
        self.assertEqual(proc.returncode, 0)
        self.assertIn("profile_overhead_pct", proc.stderr)

    def test_slack_widens_the_band(self):
        def nudge_overhead(doc):
            doc["profile_overhead_pct"] = 4.0  # 3.0 < 4.0 <= 3.0 * 2
        tmp = self.make_bench_dir(nudge_overhead)
        self.assertEqual(
            run_tool(["--check", "--bench-dir", tmp]).returncode, 1)
        self.assertEqual(
            run_tool(["--check", "--bench-dir", tmp,
                      "--slack", "2.0"]).returncode, 0)

    def test_schema_violation_fails_even_with_bands_ok(self):
        def add_unknown_field(doc):
            doc["wall_clock_comment"] = "not in the schema"
        tmp = self.make_bench_dir(add_unknown_field)
        proc = run_tool(["--check", "--bench-dir", tmp])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("unexpected key", proc.stderr)

    def test_unknown_bench_file_requires_schema_entry(self):
        tmp = self.make_bench_dir()
        with open(os.path.join(tmp, "BENCH_mystery.json"), "w") as f:
            json.dump({"version": 1}, f)
        proc = run_tool(["--check", "--bench-dir", tmp])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no schema entry", proc.stderr)

    def test_require_all_flags_missing_files(self):
        tmp = self.make_bench_dir()
        proc = run_tool(["--check", "--bench-dir", tmp, "--require-all"])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("required file missing", proc.stderr)


class PathResolver(unittest.TestCase):
    DOC = {
        "points": [{"x": 1, "name": "a"}, {"x": 2, "name": "b"}],
        "peak": {"speedup": 3.5},
    }

    def test_star_selector_resolves_every_element(self):
        hits = bench_trend.resolve(self.DOC, "points[*].x")
        self.assertEqual([v for _, v in hits], [1, 2])

    def test_index_selector(self):
        hits = bench_trend.resolve(self.DOC, "points[1].x")
        self.assertEqual(hits, [("$.points[1].x", 2)])

    def test_field_match_selector(self):
        hits = bench_trend.resolve(self.DOC, "points[name=b].x")
        self.assertEqual([v for _, v in hits], [2])

    def test_plain_dotted_path(self):
        hits = bench_trend.resolve(self.DOC, "peak.speedup")
        self.assertEqual(hits, [("$.peak.speedup", 3.5)])

    def test_unresolvable_paths_raise(self):
        for bad in ("nope.x", "points[9].x", "points[name=zz].x",
                    "peak[*].speedup"):
            with self.assertRaises(ValueError, msg=bad):
                bench_trend.resolve(self.DOC, bad)


class UsageErrors(unittest.TestCase):
    def test_slack_below_one_is_a_usage_error(self):
        proc = run_tool(["--slack", "0.5"])
        self.assertEqual(proc.returncode, 2)

    def test_unsupported_schema_version_is_a_usage_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            schema = os.path.join(tmp, "schema.json")
            with open(schema, "w") as f:
                json.dump({"version": 99, "files": {}}, f)
            proc = run_tool(["--schema", schema])
        self.assertEqual(proc.returncode, 2)
        self.assertIn("version", proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
