#include "src/cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mocos::cli {
namespace {

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(BuildProblem, GridTopologyWithDefaults) {
  const auto cfg = util::Config::parse_string("topology = grid:2x2\n");
  const auto problem = build_problem(cfg);
  EXPECT_EQ(problem.num_pois(), 4u);
  for (double t : problem.targets()) EXPECT_DOUBLE_EQ(t, 0.25);
}

TEST(BuildProblem, PointsTopologyWithTargets) {
  const auto cfg = util::Config::parse_string(
      "topology = points:0,0;3,0;0,4\ntargets = 0.5,0.25,0.25\n");
  const auto problem = build_problem(cfg);
  EXPECT_EQ(problem.num_pois(), 3u);
  EXPECT_DOUBLE_EQ(problem.targets()[0], 0.5);
  EXPECT_DOUBLE_EQ(problem.topology().distance(0, 1), 3.0);
}

TEST(BuildProblem, WeightsAndPhysicsPropagate) {
  const auto cfg = util::Config::parse_string(
      "topology = grid:2x2\nalpha = 2\nbeta = 0.5\nspeed = 3\npause = 0.5\n"
      "radius = 0.1\nentropy_weight = 0.2\n");
  const auto problem = build_problem(cfg);
  EXPECT_DOUBLE_EQ(problem.weights().alpha, 2.0);
  EXPECT_DOUBLE_EQ(problem.weights().beta, 0.5);
  EXPECT_DOUBLE_EQ(problem.weights().entropy_weight, 0.2);
  // entropy + coverage + exposure + barrier
  EXPECT_EQ(problem.make_cost().num_terms(), 4u);
  EXPECT_NEAR(problem.model().travel_time(0, 1), 1.0 / 3.0, 1e-12);
}

TEST(BuildProblem, ObstacleSwitchesToRoutedModel) {
  const auto cfg = util::Config::parse_string(
      "topology = points:0,0;4,0\n"
      "obstacle = rect:1.8,-1.0,2.2,1.0\nclearance = 0.05\n");
  const auto problem = build_problem(cfg);
  EXPECT_GT(problem.model().travel_distance(0, 1), 4.0);  // detour
}

TEST(BuildProblem, PolygonObstacle) {
  const auto cfg = util::Config::parse_string(
      "topology = points:0,0;4,0\n"
      "obstacle = poly:1.8,-1.0;2.2,-1.0;2.2,1.0;1.8,1.0\n"
      "clearance = 0.05\n");
  EXPECT_GT(build_problem(cfg).model().travel_distance(0, 1), 4.0);
}

TEST(BuildProblem, RejectsMalformedSpecs) {
  using util::Config;
  EXPECT_THROW(build_problem(Config::parse_string("alpha = 1\n")),
               std::out_of_range);  // no topology
  EXPECT_THROW(build_problem(Config::parse_string("topology = grid:4\n")),
               std::invalid_argument);
  EXPECT_THROW(build_problem(Config::parse_string("topology = blob:2\n")),
               std::invalid_argument);
  EXPECT_THROW(
      build_problem(Config::parse_string("topology = points:0,0;1\n")),
      std::invalid_argument);
  EXPECT_THROW(build_problem(Config::parse_string(
                   "topology = grid:2x2\ntargets = 0.5,0.5\n")),
               std::invalid_argument);
  EXPECT_THROW(build_problem(Config::parse_string(
                   "topology = grid:2x2\nobstacle = rect:1,1\n")),
               std::invalid_argument);
  EXPECT_THROW(build_problem(Config::parse_string(
                   "topology = grid:2x2\nobstacle = circle:1,1,2\n")),
               std::invalid_argument);
}


TEST(BuildProblem, PerPoiWeightsAndEventRates) {
  const auto cfg = util::Config::parse_string(
      "topology = grid:2x2\n"
      "alpha = 0\nbeta = 0\n"
      "alpha_i = 1,0,0,0\n"
      "event_rates = 2,1,1,1\n"
      "information_gamma = 0.5\n");
  const auto problem = build_problem(cfg);
  // coverage (per-PoI alpha) + barrier + information capture.
  EXPECT_EQ(problem.make_cost().num_terms(), 3u);
  EXPECT_EQ(problem.weights().event_rates.size(), 4u);
  EXPECT_DOUBLE_EQ(problem.weights().information_gamma, 0.5);
}

TEST(BuildProblem, MalformedPerPoiListsReported) {
  const auto cfg = util::Config::parse_string(
      "topology = grid:2x2\nalpha_i = 1,0\n");  // wrong length
  const auto problem = build_problem(cfg);
  EXPECT_THROW(problem.make_cost(), std::invalid_argument);
}

TEST(RunCli, UsageErrorWithoutArgs) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({}, out, err), kExitBadConfig);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(RunCli, MissingFileIsBadConfig) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"/nonexistent.conf"}, out, err), kExitBadConfig);
  EXPECT_NE(err.str().find("/nonexistent.conf"), std::string::npos);
}

TEST(RunCli, MalformedConfigLineIsBadConfigWithLocation) {
  const std::string path = write_temp("cli_malformed.conf",
                                      "topology = grid:2x2\n"
                                      "this line has no equals sign\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({path}, out, err), kExitBadConfig);
  EXPECT_NE(err.str().find(":2:"), std::string::npos) << err.str();
  std::remove(path.c_str());
}

TEST(RunCli, EndToEndOptimizationAndSimulation) {
  const std::string path = write_temp("cli_e2e.conf",
                                      "topology = grid:2x2\n"
                                      "targets = 0.4,0.2,0.2,0.2\n"
                                      "alpha = 1\nbeta = 0.001\n"
                                      "iterations = 150\nseed = 3\n"
                                      "simulate = 5000\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({path}, out, err), 0) << err.str();
  const std::string text = out.str();
  EXPECT_NE(text.find("transition matrix"), std::string::npos);
  EXPECT_NE(text.find("validation simulation"), std::string::npos);
  EXPECT_NE(text.find("delta_C"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunCli, BasicAlgorithmSelectable) {
  const std::string path = write_temp("cli_basic.conf",
                                      "topology = grid:2x2\n"
                                      "algorithm = basic\n"
                                      "iterations = 50\nstep = 1e-4\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({path}, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("algorithm: basic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunCli, BadAlgorithmReported) {
  const std::string path = write_temp("cli_bad.conf",
                                      "topology = grid:2x2\n"
                                      "algorithm = magic\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({path}, out, err), kExitBadConfig);
  EXPECT_NE(err.str().find("algorithm"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunCli, ReducibleLoadedScheduleIsNumericalFailure) {
  // An identity schedule is a valid row-stochastic matrix but a fully
  // reducible chain: every PoI is absorbing, so the stationary analysis
  // fails. The audit path must report a structured numerical failure (exit
  // 3), not crash or emit NaN metrics.
  const std::string sched = testing::TempDir() + "/cli_reducible_schedule.txt";
  {
    std::ofstream f(sched);
    f << "mocos-schedule v1\npois 4\n"
         "1 0 0 0\n0 1 0 0\n0 0 1 0\n0 0 0 1\n";
  }
  const std::string conf = write_temp("cli_reducible.conf",
                                      "topology = grid:2x2\n"
                                      "load_schedule = " + sched + "\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({conf}, out, err), kExitNumericalFailure) << err.str();
  EXPECT_NE(err.str().find("error"), std::string::npos);
  std::remove(sched.c_str());
  std::remove(conf.c_str());
}


TEST(RunCli, SpectralReportOptIn) {
  const std::string path = write_temp("cli_spectral.conf",
                                      "topology = grid:2x2\n"
                                      "iterations = 80\n"
                                      "report_spectral = true\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({path}, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("SLEM"), std::string::npos);
  EXPECT_NE(out.str().find("Kemeny"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunCli, SimulationReportsTailExposure) {
  const std::string path = write_temp("cli_tail.conf",
                                      "topology = grid:2x2\n"
                                      "iterations = 80\n"
                                      "simulate = 3000\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({path}, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("p95 exposure"), std::string::npos);
  EXPECT_NE(out.str().find("max exposure"), std::string::npos);
  std::remove(path.c_str());
}


TEST(RunCli, SaveThenLoadSchedule) {
  const std::string sched = testing::TempDir() + "/cli_saved_schedule.txt";
  const std::string save_conf = write_temp("cli_save.conf",
                                           "topology = grid:2x2\n"
                                           "iterations = 100\nseed = 5\n"
                                           "save_schedule = " + sched + "\n");
  std::ostringstream out1, err1;
  ASSERT_EQ(run_cli({save_conf}, out1, err1), 0) << err1.str();
  EXPECT_NE(out1.str().find("schedule saved"), std::string::npos);

  const std::string load_conf = write_temp("cli_load.conf",
                                           "topology = grid:2x2\n"
                                           "load_schedule = " + sched + "\n");
  std::ostringstream out2, err2;
  ASSERT_EQ(run_cli({load_conf}, out2, err2), 0) << err2.str();
  EXPECT_NE(out2.str().find("evaluating saved schedule"), std::string::npos);
  EXPECT_NE(out2.str().find("delta_C"), std::string::npos);
  std::remove(sched.c_str());
  std::remove(save_conf.c_str());
  std::remove(load_conf.c_str());
}

TEST(RunCli, MissingScheduleFileIsBadConfig) {
  // An unreadable schedule named by load_schedule is a configuration
  // problem, same exit code as an unreadable config file.
  const std::string conf = write_temp("cli_missing_sched.conf",
                                      "topology = grid:2x2\n"
                                      "load_schedule = /nonexistent/s.txt\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({conf}, out, err), kExitBadConfig);
  EXPECT_NE(err.str().find("/nonexistent/s.txt"), std::string::npos);
  std::remove(conf.c_str());
}

TEST(RunCli, LoadedScheduleMustMatchTopology) {
  const std::string sched = testing::TempDir() + "/cli_mismatch_schedule.txt";
  {
    std::ofstream f(sched);
    f << "mocos-schedule v1\npois 2\n0.5 0.5\n0.5 0.5\n";
  }
  const std::string conf = write_temp("cli_mismatch.conf",
                                      "topology = grid:2x2\n"
                                      "load_schedule = " + sched + "\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({conf}, out, err), kExitBadConfig);
  EXPECT_NE(err.str().find("does not match"), std::string::npos);
  std::remove(sched.c_str());
  std::remove(conf.c_str());
}


TEST(RunCli, FrontierMode) {
  const std::string path = write_temp("cli_frontier.conf",
                                      "topology = grid:2x2\n"
                                      "mode = frontier\n"
                                      "frontier_points = 2\n"
                                      "iterations = 100\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({path}, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("trade-off frontier"), std::string::npos);
  EXPECT_NE(out.str().find("E-bar"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mocos::cli
