#include "src/sensing/travel_model.hpp"
#include "src/descent/perturbed_descent.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/cost/barrier_term.hpp"
#include "src/cost/coverage_term.hpp"
#include "src/cost/exposure_term.hpp"
#include "src/descent/initializers.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/markov/ergodicity.hpp"
#include "tests/helpers.hpp"

namespace mocos::descent {
namespace {

struct Fixture {
  sensing::TravelModel model;
  sensing::CoverageTensors tensors;
  cost::CompositeCost u;

  Fixture(int topo, double alpha, double beta, double eps = 1e-4)
      : model(geometry::paper_topology(topo), 1.0, 1.0, 0.25),
        tensors(model) {
    if (alpha != 0.0)
      u.add(std::make_unique<cost::CoverageDeviationTerm>(
          tensors, model.topology().targets(), alpha));
    if (beta != 0.0)
      u.add(std::make_unique<cost::ExposureTerm>(model.num_pois(), beta));
    u.add(std::make_unique<cost::BarrierTerm>(eps));
  }
};

PerturbedConfig quick_config(std::size_t iters = 300) {
  PerturbedConfig cfg;
  cfg.max_iterations = iters;
  cfg.keep_trace = true;
  return cfg;
}

TEST(PerturbedDescent, BestNeverWorseThanStart) {
  Fixture f(1, 1.0, 1.0);
  util::Rng rng(1);
  PerturbedDescent driver(f.u, quick_config());
  const auto start = uniform_start(4);
  const double u0 = safe_cost(f.u, start);
  const auto res = driver.run(start, rng);
  EXPECT_LE(res.best_cost, u0);
  EXPECT_LE(res.best_cost, res.final_cost + 1e-12);
}

TEST(PerturbedDescent, BestMatrixAchievesBestCost) {
  Fixture f(1, 1.0, 1.0);
  util::Rng rng(2);
  PerturbedDescent driver(f.u, quick_config());
  const auto res = driver.run(uniform_start(4), rng);
  EXPECT_NEAR(safe_cost(f.u, res.best_p), res.best_cost, 1e-10);
}

TEST(PerturbedDescent, ResultStaysErgodic) {
  Fixture f(3, 1.0, 0.0001);
  util::Rng rng(3);
  PerturbedDescent driver(f.u, quick_config());
  const auto res = driver.run(uniform_start(4), rng);
  EXPECT_TRUE(markov::is_ergodic(res.best_p));
  EXPECT_GT(res.best_p.min_entry(), 0.0);
}

TEST(PerturbedDescent, DifferentSeedsSimilarBestCost) {
  // The headline claim: the perturbed algorithm converges to (nearly) the
  // same optimum from different random starts.
  Fixture f(1, 0.0, 1.0);
  PerturbedConfig cfg = quick_config(3000);
  cfg.keep_trace = false;
  PerturbedDescent driver(f.u, cfg);
  std::vector<double> bests;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    const auto start = random_start(4, rng);
    bests.push_back(driver.run(start, rng).best_cost);
  }
  const double spread = *std::max_element(bests.begin(), bests.end()) -
                        *std::min_element(bests.begin(), bests.end());
  const double scale = *std::min_element(bests.begin(), bests.end());
  EXPECT_LT(spread, 0.05 * scale) << "best costs spread too widely";
}

TEST(PerturbedDescent, NoNoiseReducesToAdaptiveBehaviour) {
  Fixture f(2, 1.0, 0.0);
  PerturbedConfig cfg = quick_config(100);
  cfg.noise_sigma = 0.0;
  util::Rng rng(4);
  PerturbedDescent driver(f.u, cfg);
  const auto res = driver.run(uniform_start(4), rng);
  const double u0 = safe_cost(f.u, uniform_start(4));
  EXPECT_LT(res.best_cost, u0);
}

TEST(PerturbedDescent, StallLimitStopsEarly) {
  Fixture f(1, 1.0, 0.0);
  PerturbedConfig cfg = quick_config(20000);
  cfg.keep_trace = false;
  cfg.stall_limit = 50;
  cfg.stall_relative_improvement = 1e-4;  // <0.01% gain counts as stalling
  util::Rng rng(5);
  PerturbedDescent driver(f.u, cfg);
  const auto res = driver.run(uniform_start(4), rng);
  EXPECT_LT(res.iterations, 20000u);
}

TEST(PerturbedDescent, TraceRecordsAcceptedMoves) {
  Fixture f(1, 1.0, 1.0);
  util::Rng rng(6);
  PerturbedDescent driver(f.u, quick_config(50));
  const auto res = driver.run(uniform_start(4), rng);
  EXPECT_FALSE(res.trace.empty());
}

TEST(PerturbedDescent, RejectsBadConfig) {
  Fixture f(1, 1.0, 1.0);
  PerturbedConfig bad;
  bad.noise_sigma = -1.0;
  EXPECT_THROW(PerturbedDescent(f.u, bad), std::invalid_argument);
  PerturbedConfig bad2;
  bad2.annealing_k = 0.0;
  EXPECT_THROW(PerturbedDescent(f.u, bad2), std::invalid_argument);
  PerturbedConfig bad3;
  bad3.max_iterations = 0;
  EXPECT_THROW(PerturbedDescent(f.u, bad3), std::invalid_argument);
}

}  // namespace
}  // namespace mocos::descent
