#include "src/sensing/routed_travel_model.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/optimizer.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "src/sensing/coverage_tensors.hpp"
#include "src/sensing/travel_model.hpp"
#include "src/sim/simulator.hpp"

namespace mocos::sensing {
namespace {

TEST(RoutedTravelModel, NoObstaclesMatchesStraightLineModel) {
  const auto topo = geometry::paper_topology(3);
  TravelModel straight(topo, 1.0, 1.0, 0.25);
  RoutedTravelModel routed(topo, {}, 1.0, 1.0, 0.25);
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(routed.transition_duration(j, k),
                  straight.transition_duration(j, k), 1e-9);
      EXPECT_NEAR(routed.travel_distance(j, k), straight.travel_distance(j, k),
                  1e-9);
      for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(routed.coverage_during(j, k, i),
                    straight.coverage_during(j, k, i), 1e-9)
            << j << "->" << k << " covering " << i;
    }
  }
}

RoutedTravelModel walled_pair() {
  // Two PoIs with a wall between them.
  geometry::Topology topo("pair", {{0.0, 0.0}, {4.0, 0.0}}, {0.5, 0.5});
  const auto wall = geometry::Polygon::rectangle({1.8, -1.0}, {2.2, 1.0});
  return RoutedTravelModel(topo, {wall}, 1.0, 1.0, 0.25, 0.05);
}

TEST(RoutedTravelModel, ObstacleLengthensTravel) {
  const auto model = walled_pair();
  EXPECT_GT(model.travel_distance(0, 1), 4.0);
  EXPECT_GT(model.travel_time(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(model.travel_distance(0, 0), 0.0);
}

TEST(RoutedTravelModel, PaperConventionsHold) {
  const auto model = walled_pair();
  EXPECT_DOUBLE_EQ(model.coverage_during(0, 1, 1), 1.0);  // pause only
  EXPECT_DOUBLE_EQ(model.coverage_during(0, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.coverage_during(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.coverage_during(1, 1, 0), 0.0);
}

TEST(RoutedTravelModel, DetourCreatesPassByCoverage) {
  // PoI 1 sits above the straight 0->2 path, outside sensing range of it.
  // A wall blocks the straight path and (extending further down than up)
  // forces the detour over its top corners — which passes within range of
  // PoI 1: the feasible route changes which PoIs get pass-by coverage.
  geometry::Topology topo("detour", {{0.0, 0.0}, {2.0, 0.75}, {4.0, 0.0}},
                          {0.34, 0.33, 0.33});
  RoutedTravelModel clear(topo, {}, 1.0, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(clear.coverage_during(0, 2, 1), 0.0);  // 0.75 > r

  const auto wall = geometry::Polygon::rectangle({1.7, -1.0}, {2.3, 0.5});
  RoutedTravelModel blocked(topo, {wall}, 1.0, 1.0, 0.25, 0.05);
  EXPECT_GT(blocked.travel_distance(0, 2), 4.0);
  EXPECT_GT(blocked.coverage_during(0, 2, 1), 0.0);
}

TEST(RoutedTravelModel, ValidatesPhysics) {
  geometry::Topology topo("pair", {{0.0, 0.0}, {4.0, 0.0}}, {0.5, 0.5});
  EXPECT_THROW(RoutedTravelModel(topo, {}, 0.0, 1.0, 0.25),
               std::invalid_argument);
  EXPECT_THROW(RoutedTravelModel(topo, {}, 1.0, 0.0, 0.25),
               std::invalid_argument);
  EXPECT_THROW(RoutedTravelModel(topo, {}, 1.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(RoutedTravelModel(topo, {}, 1.0, 1.0, 2.5),
               std::invalid_argument);
}

TEST(RoutedTravelModel, WorksThroughCoverageTensorsAndSimulator) {
  const auto model = walled_pair();
  CoverageTensors tensors(model);
  EXPECT_GT(tensors.durations()(0, 1), 5.0);  // detour + pause
  sim::SimulationConfig cfg;
  cfg.num_transitions = 5000;
  sim::MarkovCoverageSimulator sim(model, cfg);
  util::Rng rng(5);
  const auto res = sim.run(markov::TransitionMatrix::uniform(2), rng);
  EXPECT_GT(res.total_time, 5000.0);
}

TEST(RoutedTravelModel, EndToEndOptimizationAroundObstacle) {
  geometry::Topology topo("square", {{0.0, 0.0}, {4.0, 0.0}, {4.0, 4.0},
                                     {0.0, 4.0}},
                          {0.4, 0.2, 0.2, 0.2});
  const auto block = geometry::Polygon::rectangle({1.5, 1.5}, {2.5, 2.5});
  core::Weights w;
  w.alpha = 1.0;
  w.beta = 1e-4;
  core::Problem problem(
      std::make_unique<RoutedTravelModel>(topo, std::vector{block}, 1.0, 1.0,
                                          0.25, 0.05),
      w);
  core::OptimizerOptions opts;
  opts.max_iterations = 200;
  opts.keep_trace = false;
  const auto outcome = core::CoverageOptimizer(problem, opts).run();
  EXPECT_TRUE(std::isfinite(outcome.penalized_cost));
  EXPECT_GT(outcome.metrics.c_share[0], outcome.metrics.c_share[1]);
}

}  // namespace
}  // namespace mocos::sensing
