// The central correctness test of the whole optimizer: the closed-form
// gradient [D_P U] (Eq. 10, combining the terms' partials through the
// Schweitzer chain rule) must match central finite differences of the full
// cost U_eps(P) along arbitrary row-sum-zero directions. This exercises, in
// one sweep: the stationary/fundamental computations, every cost term's
// partials, the chain-rule combiner, and the projection.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/sensing/travel_model.hpp"
#include "src/cost/barrier_term.hpp"
#include "src/cost/composite_cost.hpp"
#include "src/cost/coverage_term.hpp"
#include "src/cost/energy_term.hpp"
#include "src/cost/entropy_term.hpp"
#include "src/cost/event_capture_term.hpp"
#include "src/cost/exposure_term.hpp"
#include "src/cost/gradient.hpp"
#include "src/cost/minimax_exposure_term.hpp"
#include "src/geometry/paper_topologies.hpp"
#include "tests/helpers.hpp"

namespace mocos::cost {
namespace {

double directional_fd(const CompositeCost& u, const markov::TransitionMatrix& p,
                      const linalg::Matrix& v, double h) {
  const std::size_t n = p.size();
  linalg::Matrix plus(n, n), minus(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      plus(i, j) = p(i, j) + h * v(i, j);
      minus(i, j) = p(i, j) - h * v(i, j);
    }
  return (u.value(markov::TransitionMatrix(plus)) -
          u.value(markov::TransitionMatrix(minus))) /
         (2.0 * h);
}

void expect_gradient_matches_fd(const CompositeCost& u, int topology_size,
                                std::uint64_t seed, double tol) {
  util::Rng rng(seed);
  for (int t = 0; t < 6; ++t) {
    const auto p = test::random_positive_chain(
        static_cast<std::size_t>(topology_size), rng);
    const auto chain = markov::analyze_chain(p);
    const auto v =
        test::random_direction(static_cast<std::size_t>(topology_size), rng);
    const auto grad = cost_gradient(u, chain);
    const double analytic = linalg::frobenius_dot(grad, v);
    const double fd = directional_fd(u, p, v, 1e-7);
    const double scale = std::max({std::abs(analytic), std::abs(fd), 1.0});
    EXPECT_NEAR(analytic, fd, tol * scale) << "trial " << t;
  }
}

struct Fixture {
  sensing::TravelModel model;
  sensing::CoverageTensors tensors;
  explicit Fixture(int topo)
      : model(geometry::paper_topology(topo), 1.0, 1.0, 0.25),
        tensors(model) {}
};

TEST(GradientFd, CoverageOnly) {
  Fixture f(3);
  CompositeCost u;
  u.add(std::make_unique<CoverageDeviationTerm>(
      f.tensors, f.model.topology().targets(), 1.0));
  expect_gradient_matches_fd(u, 4, 101, 1e-5);
}

TEST(GradientFd, ExposureOnly) {
  CompositeCost u;
  u.add(std::make_unique<ExposureTerm>(4, 1.0));
  expect_gradient_matches_fd(u, 4, 102, 1e-5);
}

TEST(GradientFd, BarrierOnly) {
  // Wide gates so random chains (entries ~0.02..0.5) activate the barrier.
  CompositeCost u;
  u.add(std::make_unique<BarrierTerm>(0.2));
  expect_gradient_matches_fd(u, 4, 103, 1e-5);
}

TEST(GradientFd, EnergyOnly) {
  Fixture f(1);
  CompositeCost u;
  u.add(std::make_unique<EnergyTerm>(f.tensors, 2.0, 0.3));
  expect_gradient_matches_fd(u, 4, 104, 1e-5);
}

TEST(GradientFd, EntropyOnly) {
  CompositeCost u;
  u.add(std::make_unique<EntropyTerm>(1.5));
  expect_gradient_matches_fd(u, 4, 105, 1e-5);
}

TEST(GradientFd, FullPaperCostTopology1) {
  Fixture f(1);
  CompositeCost u;
  u.add(std::make_unique<CoverageDeviationTerm>(
      f.tensors, f.model.topology().targets(), 1.0));
  u.add(std::make_unique<ExposureTerm>(4, 1.0));
  u.add(std::make_unique<BarrierTerm>(1e-4));
  expect_gradient_matches_fd(u, 4, 106, 1e-5);
}

TEST(GradientFd, FullPaperCostTopology3SkewedWeights) {
  Fixture f(3);
  CompositeCost u;
  u.add(std::make_unique<CoverageDeviationTerm>(
      f.tensors, f.model.topology().targets(), 1.0));
  u.add(std::make_unique<ExposureTerm>(4, 1e-4));
  u.add(std::make_unique<BarrierTerm>(1e-4));
  expect_gradient_matches_fd(u, 4, 107, 1e-5);
}

TEST(GradientFd, EverythingTogetherTopology4) {
  Fixture f(4);
  CompositeCost u;
  u.add(std::make_unique<CoverageDeviationTerm>(
      f.tensors, f.model.topology().targets(), 1.0));
  u.add(std::make_unique<ExposureTerm>(9, 0.01));
  u.add(std::make_unique<BarrierTerm>(1e-4));
  u.add(std::make_unique<EnergyTerm>(f.tensors, 0.5, 0.2));
  u.add(std::make_unique<EntropyTerm>(0.1));
  expect_gradient_matches_fd(u, 9, 108, 1e-4);
}

TEST(GradientFd, EventCaptureOnly) {
  CompositeCost u;
  u.add(std::make_unique<EventCaptureTerm>(
      std::vector<double>{0.5, 0.2, 0.2, 0.1}, 2.0, 1.5));
  expect_gradient_matches_fd(u, 4, 110, 1e-5);
}

TEST(GradientFd, EventCaptureShortWindowSparseRates) {
  // A zero rate exercises the lambda == 0 skip; the short window keeps the
  // exp() term far from saturation.
  CompositeCost u;
  u.add(std::make_unique<EventCaptureTerm>(
      std::vector<double>{1.0, 0.0, 0.0, 3.0}, 0.25, 2.0));
  expect_gradient_matches_fd(u, 4, 111, 1e-5);
}

TEST(GradientFd, MinimaxExposureOnly) {
  CompositeCost u;
  u.add(std::make_unique<MinimaxExposureTerm>(1.0, 4.0));
  expect_gradient_matches_fd(u, 4, 112, 1e-5);
}

TEST(GradientFd, MinimaxExposureStiffBeta) {
  // Near-hard max: the softmax concentrates on the argmax PoI and the
  // curvature grows with beta, so the FD tolerance is loosened a notch.
  CompositeCost u;
  u.add(std::make_unique<MinimaxExposureTerm>(0.7, 32.0));
  expect_gradient_matches_fd(u, 4, 113, 1e-4);
}

TEST(GradientFd, CaptureAndMinimaxWithFullCostTopology4) {
  Fixture f(4);
  CompositeCost u;
  u.add(std::make_unique<CoverageDeviationTerm>(
      f.tensors, f.model.topology().targets(), 1.0));
  u.add(std::make_unique<ExposureTerm>(9, 0.01));
  u.add(std::make_unique<BarrierTerm>(1e-4));
  u.add(std::make_unique<EventCaptureTerm>(
      std::vector<double>{0.3, 0.2, 0.1, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05},
      1.5, 1.0));
  u.add(std::make_unique<MinimaxExposureTerm>(0.5, 6.0));
  expect_gradient_matches_fd(u, 9, 114, 1e-4);
}

TEST(GradientFd, NewTermsOnSupportRestrictedChain) {
  // City-style support restriction: probability lives only on a ring
  // (self + both neighbors), and the FD direction stays on that support, as
  // the sparse descent path's directions do. The capture and minimax terms
  // need only (pi, Z), so their partials must be exact here too.
  const std::size_t n = 8;
  util::Rng rng(115);
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t d = 0; d < 3; ++d) {
      const std::size_t j = (i + n - 1 + d) % n;
      m(i, j) = 0.05 + rng.uniform();
      sum += m(i, j);
    }
    for (std::size_t j = 0; j < n; ++j) m(i, j) /= sum;
  }
  const markov::TransitionMatrix p{std::move(m)};
  linalg::Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    // Row-sum-zero direction supported on the ring neighborhood.
    const std::size_t l = (i + n - 1) % n;
    const std::size_t r = (i + 1) % n;
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    v(i, l) = a;
    v(i, r) = b;
    v(i, i) = -a - b;
  }
  CompositeCost u;
  u.add(std::make_unique<EventCaptureTerm>(
      std::vector<double>{0.3, 0.2, 0.1, 0.1, 0.1, 0.1, 0.05, 0.05}, 2.0,
      1.0));
  u.add(std::make_unique<MinimaxExposureTerm>(0.8, 5.0));
  const auto chain = markov::analyze_chain(p);
  const auto grad = cost_gradient(u, chain);
  const double analytic = linalg::frobenius_dot(grad, v);
  const double fd = directional_fd(u, p, v, 1e-7);
  const double scale = std::max({std::abs(analytic), std::abs(fd), 1.0});
  EXPECT_NEAR(analytic, fd, 1e-5 * scale);
}

TEST(GradientFd, ProjectedGradientMatchesForProjectedDirections) {
  // For row-sum-zero V, <Pi[grad], V> == <grad, V> (Pi is the orthogonal
  // projector onto that subspace).
  Fixture f(1);
  CompositeCost u;
  u.add(std::make_unique<CoverageDeviationTerm>(
      f.tensors, f.model.topology().targets(), 1.0));
  u.add(std::make_unique<ExposureTerm>(4, 1.0));
  util::Rng rng(109);
  const auto p = test::random_positive_chain(4, rng);
  const auto chain = markov::analyze_chain(p);
  const auto v = test::random_direction(4, rng);
  const auto grad = cost_gradient(u, chain);
  const auto proj = projected_cost_gradient(u, chain);
  EXPECT_NEAR(linalg::frobenius_dot(grad, v), linalg::frobenius_dot(proj, v),
              1e-10);
}

}  // namespace
}  // namespace mocos::cost
