#include "src/markov/passage_times.hpp"

#include <gtest/gtest.h>

#include "src/markov/fundamental.hpp"
#include "src/util/rng.hpp"
#include "tests/helpers.hpp"

namespace mocos::markov {
namespace {

TEST(PassageTimes, TwoStateClosedForm) {
  // chain2(a, b): R_01 = 1/a, R_10 = 1/b, R_ii = 1/pi_i.
  const double a = 0.25, b = 0.4;
  const auto chain = analyze_chain(test::chain2(a, b));
  EXPECT_NEAR(chain.r(0, 1), 1.0 / a, 1e-10);
  EXPECT_NEAR(chain.r(1, 0), 1.0 / b, 1e-10);
  EXPECT_NEAR(chain.r(0, 0), (a + b) / b, 1e-10);
  EXPECT_NEAR(chain.r(1, 1), (a + b) / a, 1e-10);
}

TEST(PassageTimes, DiagonalIsMeanReturnTime) {
  const auto chain = analyze_chain(test::chain3());
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(chain.r(i, i), 1.0 / chain.pi[i], 1e-10);
}

TEST(PassageTimes, SatisfiesOneStepRecurrence) {
  // R_ij = 1 + sum_{k != j} p_ik R_kj for i != j.
  const auto p = test::chain3();
  const auto chain = analyze_chain(p);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      double rhs = 1.0;
      for (std::size_t k = 0; k < 3; ++k)
        if (k != j) rhs += p(i, k) * chain.r(k, j);
      EXPECT_NEAR(chain.r(i, j), rhs, 1e-9);
    }
  }
}

TEST(PassageTimes, MatchesIndependentLinearSolve) {
  util::Rng rng(31);
  for (int t = 0; t < 10; ++t) {
    const auto p = test::random_positive_chain(5, rng);
    const auto chain = analyze_chain(p);
    const auto direct = first_passage_times_by_solve(p.matrix());
    EXPECT_TRUE(linalg::approx_equal(chain.r, direct, 1e-8));
  }
}

TEST(PassageTimes, AllEntriesPositive) {
  util::Rng rng(32);
  const auto p = test::random_positive_chain(7, rng);
  const auto chain = analyze_chain(p);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 7; ++j) EXPECT_GT(chain.r(i, j), 0.0);
}

TEST(PassageTimes, AtLeastOneStep) {
  util::Rng rng(33);
  const auto p = test::random_positive_chain(4, rng);
  const auto chain = analyze_chain(p);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_GE(chain.r(i, j), 1.0 - 1e-12);
}

TEST(PassageTimes, SizeMismatchThrows) {
  const auto chain = analyze_chain(test::chain3());
  EXPECT_THROW(first_passage_times(chain.z, linalg::Vector{0.5, 0.5}),
               std::invalid_argument);
}

class PassageRecurrenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PassageRecurrenceTest, RecurrenceAcrossSizes) {
  util::Rng rng(900 + GetParam());
  const auto p = test::random_positive_chain(GetParam(), rng);
  const auto chain = analyze_chain(p);
  const std::size_t n = GetParam();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double rhs = 1.0;
      for (std::size_t k = 0; k < n; ++k)
        if (k != j) rhs += p(i, k) * chain.r(k, j);
      EXPECT_NEAR(chain.r(i, j), rhs, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PassageRecurrenceTest,
                         ::testing::Values(2, 3, 4, 6, 9, 12));

}  // namespace
}  // namespace mocos::markov
